"""Chaos suite: the experiment path survives every injected fault class.

Each test runs the same small real-job batch under one fault class and
asserts the surviving results are *bit-identical* to the fault-free
baseline — resilience must recover the exact numbers, not merely avoid
crashing.  Faults are deterministic (seeded plan, cross-process call
counters in a per-test directory), so these tests never flake.

The ``crash`` class uses a two-worker pool: in the serial engine a
worker crash *is* a caller crash, exactly as a real segfault would be.
"""

import pytest

from repro.datapath.parse import parse_datapath
from repro.kernels import load_kernel
from repro.resilience.faults import injected
from repro.runner import BindJob, ResultCache, RunStore
from repro.runner.api import run_jobs


def _jobs():
    dfg = load_kernel("ewf")
    dp = parse_datapath("|2,1|1,1|", num_buses=2)
    return [
        BindJob.make(dfg, dp, "pcc"),
        BindJob.make(dfg, dp, "b-init"),
        BindJob.make(dfg, dp, "b-iter", iter_starts=1),
    ]


def _projection(results):
    return [(r.key, r.status, r.latency, r.transfers) for r in results]


@pytest.fixture(scope="module")
def baseline():
    """The fault-free truth every chaos run must reproduce."""
    return _projection(run_jobs(_jobs(), backoff=0.0))


class TestChaosExecutor:
    def test_transient_oserror_is_retried_away(self, baseline, tmp_path):
        with injected(
            {"executor.attempt": {"kind": "oserror", "hits": [0]}},
            dir=tmp_path / "faults",
        ):
            results = run_jobs(_jobs(), retries=2, backoff=0.0)
        assert _projection(results) == baseline
        assert results[0].attempts == 2  # first attempt burned by the fault
        assert all(r.attempts >= 1 for r in results)

    def test_inprocess_error_is_retried_away(self, baseline, tmp_path):
        with injected(
            {"executor.attempt": {"kind": "error", "hits": [1]}},
            dir=tmp_path / "faults",
        ):
            results = run_jobs(_jobs(), retries=1, backoff=0.0)
        assert _projection(results) == baseline

    def test_timeout_is_retried_away(self, baseline, tmp_path):
        with injected(
            {
                "executor.attempt": {
                    "kind": "sleep",
                    "hits": [0],
                    "seconds": 30.0,
                }
            },
            dir=tmp_path / "faults",
        ):
            results = run_jobs(_jobs(), timeout=0.5, retries=1, backoff=0.0)
        assert _projection(results) == baseline
        assert results[0].attempts == 2

    def test_worker_crash_is_quarantined_and_rerun(self, baseline, tmp_path):
        with injected(
            {"executor.attempt": {"kind": "crash", "hits": [0]}},
            dir=tmp_path / "faults",
        ):
            results = run_jobs(
                _jobs(), max_workers=2, retries=2, backoff=0.0
            )
        assert _projection(results) == baseline

    def test_exhausted_retries_fail_only_the_faulted_job(self, tmp_path):
        with injected(
            {"executor.attempt": {"kind": "error", "hits": [0, 1]}},
            dir=tmp_path / "faults",
        ):
            results = run_jobs(_jobs(), retries=1, backoff=0.0)
        assert results[0].status == "failed"
        assert "injected error" in results[0].error
        assert all(r.status == "ok" for r in results[1:])


class TestChaosCache:
    def test_torn_cache_write_heals_to_reexecution(self, baseline, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with injected(
            {"cache.put.write": {"kind": "torn", "hits": [0]}},
            dir=tmp_path / "faults",
        ):
            first = run_jobs(_jobs(), cache=cache, backoff=0.0)
        assert _projection(first) == baseline

        # Second run: the torn blob is quarantined, its job re-executes,
        # the other two replay from cache — same numbers either way.
        cache2 = ResultCache(tmp_path / "cache")
        second = run_jobs(_jobs(), cache=cache2, backoff=0.0)
        assert _projection(second) == baseline
        assert cache2.stats.quarantined == 1
        corrupt = list((tmp_path / "cache").glob("??/*.corrupt"))
        assert len(corrupt) == 1

    def test_corrupted_cache_blob_heals_to_reexecution(
        self, baseline, tmp_path
    ):
        cache = ResultCache(tmp_path / "cache")
        with injected(
            {"cache.put.write": {"kind": "corrupt", "hits": [0]}},
            dir=tmp_path / "faults",
        ):
            first = run_jobs(_jobs(), cache=cache, backoff=0.0)
        assert _projection(first) == baseline

        cache2 = ResultCache(tmp_path / "cache")
        second = run_jobs(_jobs(), cache=cache2, backoff=0.0)
        assert _projection(second) == baseline
        assert cache2.stats.quarantined == 1

    def test_transient_cache_read_error_is_a_miss(self, baseline, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_jobs(_jobs(), cache=cache, backoff=0.0)
        with injected(
            {"cache.get": {"kind": "oserror", "hits": [0]}},
            dir=tmp_path / "faults",
        ):
            cache2 = ResultCache(tmp_path / "cache")
            results = run_jobs(_jobs(), cache=cache2, backoff=0.0)
        assert _projection(results) == baseline


class TestChaosStore:
    def test_torn_store_line_is_skipped_on_read(self, baseline, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        with injected(
            {"store.record.write": {"kind": "torn", "hits": [2]}},
            dir=tmp_path / "faults",
        ):
            results = run_jobs(_jobs(), store=store, backoff=0.0)
        assert _projection(results) == baseline  # results untouched
        # The torn record is dropped by the reader, the rest survive.
        assert len(store.records()) == 2

    def test_corrupted_store_line_fails_checksum(self, baseline, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        with injected(
            {"store.record.write": {"kind": "corrupt", "hits": [0]}},
            dir=tmp_path / "faults",
        ):
            results = run_jobs(_jobs(), store=store, backoff=0.0)
        assert _projection(results) == baseline
        records = store.records()
        # The scribbled line either fails JSON parsing or its checksum;
        # both degrade to a skipped line, never a wrong record.
        assert len(records) == 2
        for record in records:
            assert record["status"] == "ok"


class TestChaosEvalStore:
    def test_corrupted_outcome_blob_is_quarantined(self, baseline, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with injected(
            {"evalstore.write.data": {"kind": "corrupt", "hits": [0]}},
            dir=tmp_path / "faults",
        ):
            first = run_jobs(_jobs(), cache=cache, backoff=0.0)
        assert _projection(first) == baseline

        # A fresh run with a cold result cache re-evaluates; the damaged
        # outcome blob is detected, quarantined, and rebuilt — the
        # numbers never drift because outcomes are re-derived, not
        # trusted.
        cache2 = ResultCache(tmp_path / "cache2")
        evals_env = str(cache.root / "evals")
        import os

        os.environ["REPRO_EVAL_CACHE"] = evals_env
        try:
            second = run_jobs(_jobs(), cache=cache2, backoff=0.0)
        finally:
            del os.environ["REPRO_EVAL_CACHE"]
        assert _projection(second) == baseline

    def test_transient_evalstore_read_error_degrades_to_cold(
        self, baseline, tmp_path
    ):
        with injected(
            {"evalstore.load": {"kind": "oserror", "hits": [0, 1, 2]}},
            dir=tmp_path / "faults",
        ):
            cache = ResultCache(tmp_path / "cache")
            results = run_jobs(_jobs(), cache=cache, backoff=0.0)
        assert _projection(results) == baseline
