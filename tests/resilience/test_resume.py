"""Kill-and-resume and circuit-breaker semantics of ``run_jobs``."""

from repro.datapath.parse import parse_datapath
from repro.kernels import load_kernel
from repro.resilience.faults import injected
from repro.runner import BindJob, RunStore
from repro.runner.api import run_jobs


def _jobs():
    dfg = load_kernel("ewf")
    dp = parse_datapath("|2,1|1,1|", num_buses=2)
    return [
        BindJob.make(dfg, dp, "pcc"),
        BindJob.make(dfg, dp, "b-init"),
        BindJob.make(dfg, dp, "b-iter", iter_starts=1),
    ]


def _projection(results):
    return [(r.key, r.status, r.latency, r.transfers) for r in results]


class TestResume:
    def test_resume_replays_ok_jobs_and_runs_only_the_missing(
        self, tmp_path
    ):
        jobs = _jobs()
        baseline = _projection(run_jobs(jobs, backoff=0.0))

        # "Killed" sweep: only the first two jobs ever recorded.
        store = RunStore(tmp_path / "runs.jsonl")
        run_jobs(jobs[:2], store=store, backoff=0.0)
        assert len(store.records()) == 2

        # Resumed sweep over the full batch.
        resumed = run_jobs(
            jobs, store=store, resume=store, backoff=0.0
        )
        assert _projection(resumed) == baseline

        # The two prior jobs replayed without execution ...
        for result in resumed[:2]:
            assert result.worker == "resume"
            assert result.attempts == 0
            assert result.cached
        # ... and only the missing third actually ran.
        assert resumed[2].worker != "resume"
        assert resumed[2].attempts >= 1
        assert not resumed[2].cached

        # The store now tells the whole story: 2 original + 3 resumed
        # records, and exactly one of the resumed ones executed.
        records = store.records()
        assert len(records) == 5
        executed = [r for r in records[2:] if r["worker"] != "resume"]
        assert len(executed) == 1
        assert executed[0]["key"] == resumed[2].key

    def test_failed_prior_record_is_reexecuted(self, tmp_path):
        jobs = _jobs()[:1]
        store = RunStore(tmp_path / "runs.jsonl")
        with injected(
            {"executor.attempt": {"kind": "error", "hits": [0, 1]}},
            dir=tmp_path / "faults",
        ):
            [failed] = run_jobs(
                jobs, store=store, retries=1, backoff=0.0
            )
        assert failed.status == "failed"
        assert failed.attempts == 2

        # One prior failure (2 attempts) is below the default threshold
        # of 3: the resumed run re-executes and now succeeds.
        [result] = run_jobs(
            jobs, store=store, resume=store, backoff=0.0
        )
        assert result.status == "ok"
        assert result.worker != "resume"


class TestCircuitBreaker:
    def _poisoned_store(self, tmp_path, jobs):
        store = RunStore(tmp_path / "runs.jsonl")
        with injected(
            {"executor.attempt": {"kind": "error", "hits": [0, 1, 2]}},
            dir=tmp_path / "faults",
        ):
            [failed] = run_jobs(
                jobs, store=store, retries=2, backoff=0.0
            )
        assert failed.status == "failed"
        assert failed.attempts == 3
        return store

    def test_breaker_quarantines_without_execution(self, tmp_path):
        jobs = _jobs()[:1]
        store = self._poisoned_store(tmp_path, jobs)

        # No faults are active now, so if the job executed it would
        # succeed — a quarantined status proves the breaker short-
        # circuited before execution.
        [result] = run_jobs(
            jobs,
            store=store,
            resume=store,
            breaker_threshold=3,
            backoff=0.0,
        )
        assert result.status == "quarantined"
        assert result.worker == "breaker"
        assert result.attempts == 0
        assert "circuit breaker" in result.error

        [incident] = store.incidents()
        assert incident["kind"] == "circuit-breaker"
        assert incident["key"] == result.key
        assert store.summary().quarantined == 1

    def test_breaker_spares_healthy_jobs(self, tmp_path):
        jobs = _jobs()
        store = RunStore(tmp_path / "runs.jsonl")
        with injected(
            {"executor.attempt": {"kind": "error", "hits": [0, 1, 2]}},
            dir=tmp_path / "faults",
        ):
            results = run_jobs(
                jobs[:1], store=store, retries=2, backoff=0.0
            )
        assert results[0].status == "failed"

        resumed = run_jobs(
            jobs,
            store=store,
            resume=store,
            breaker_threshold=3,
            backoff=0.0,
        )
        assert resumed[0].status == "quarantined"
        assert all(r.status == "ok" for r in resumed[1:])

    def test_breaker_disabled_with_nonpositive_threshold(self, tmp_path):
        jobs = _jobs()[:1]
        store = self._poisoned_store(tmp_path, jobs)
        [result] = run_jobs(
            jobs,
            store=store,
            resume=store,
            breaker_threshold=0,
            backoff=0.0,
        )
        assert result.status == "ok"
