"""Property tests: every store reads cleanly from any torn prefix.

A crash can truncate a write at *any* byte.  For each store format we
take a healthy artifact and re-read it truncated at every byte offset:
the reader must never raise, and must recover exactly the records whose
bytes fully survived (minus, at worst, a quarantined blob) — never a
corrupted or invented record.
"""

from repro.datapath.parse import parse_datapath
from repro.kernels import load_kernel
from repro.runner import BindJob, ResultCache, RunStore
from repro.runner.api import run_jobs
from repro.search.diskcache import OutcomeStore, outcome_cache_key
from repro.search.session import SearchSession


def _jobs():
    dfg = load_kernel("ewf")
    dp = parse_datapath("|2,1|1,1|", num_buses=2)
    return [
        BindJob.make(dfg, dp, "pcc"),
        BindJob.make(dfg, dp, "b-init"),
    ]


class TestRunStoreTornTail:
    def test_every_truncation_reads_a_clean_prefix(self, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        results = run_jobs(_jobs(), store=store)
        data = store.path.read_bytes()
        full = store.records()
        assert len(full) == len(results)

        line_ends = [i + 1 for i, b in enumerate(data) if b == 0x0A]
        for cut in range(len(data) + 1):
            store.path.write_bytes(data[:cut])
            records = store.records()  # must never raise
            # A line survives once all its *content* bytes are present —
            # the trailing newline itself is not part of the record.
            expected = sum(1 for end in line_ends if end - 1 <= cut)
            assert len(records) == expected, f"cut at byte {cut}"
            for record in records:
                assert record["status"] == "ok"


class TestResultCacheTornTail:
    def test_every_truncation_misses_or_hits_exactly(self, tmp_path):
        cache = ResultCache(tmp_path)
        [result, _] = run_jobs(_jobs(), cache=cache)
        path = cache._path(result.key)
        data = path.read_bytes()

        for cut in range(len(data) + 1):
            path.write_bytes(data[:cut])
            fresh = ResultCache(tmp_path)
            payload = fresh.get(result.key)  # must never raise
            if payload is not None:
                # Only a blob whose full content survived may hit (the
                # trailing newline is cosmetic) — and it must be exact.
                assert cut >= len(data.rstrip(b"\n"))
                assert payload["latency"] == result.latency
            # A truncated blob may have been quarantined; restore the
            # original path for the next iteration.
            corrupt = path.with_suffix(".json.corrupt")
            if corrupt.exists():
                corrupt.unlink()


class TestOutcomeStoreTornTail:
    def test_every_truncation_loads_empty_or_full(self, tmp_path):
        dfg = load_kernel("ewf")
        dp = parse_datapath("|2,1|1,1|", num_buses=2)
        import os

        os.environ["REPRO_EVAL_CACHE"] = str(tmp_path)
        try:
            session = SearchSession(dfg, dp, fast=True)
            from repro.core.driver import bind_initial

            bind_initial(dfg, dp, session=session)
        finally:
            del os.environ["REPRO_EVAL_CACHE"]
        store = OutcomeStore(tmp_path)
        key = outcome_cache_key(dfg, dp)
        path = store.path_for(key)
        data = path.read_bytes()
        full = store.load(key)
        assert full

        for cut in range(len(data) + 1):
            path.write_bytes(data[:cut])
            entries = store.load(key)  # must never raise
            if entries:
                assert cut >= len(data.rstrip(b"\n"))
                assert entries == full
            corrupt = path.with_suffix(".json.corrupt")
            if corrupt.exists():
                corrupt.unlink()


class TestIncidentTornTail:
    def test_incident_lines_survive_truncation_of_later_records(
        self, tmp_path
    ):
        store = RunStore(tmp_path / "runs.jsonl")
        store.record_incident("run_jobs", "circuit-breaker", "test", key="k")
        run_jobs(_jobs(), store=store)
        data = store.path.read_bytes()
        first_end = data.index(b"\n") + 1
        # Any cut after the first line keeps the incident readable.
        for cut in range(first_end, len(data) + 1):
            store.path.write_bytes(data[:cut])
            assert len(store.incidents()) == 1
