"""Unit tests for the deterministic fault-injection substrate."""

import json
import os

import pytest

from repro.resilience.faults import (
    FAULTS_ENV,
    FaultPlan,
    fire,
    injected,
    perturb,
)


class TestPlanParsing:
    def test_parse_minimal(self):
        plan = FaultPlan.parse(
            '{"sites": {"cache.get": {"kind": "oserror"}}}'
        )
        spec = plan.sites["cache.get"]
        assert spec.kind == "oserror"
        assert spec.hits == (0,)

    def test_parse_full(self):
        plan = FaultPlan.parse(
            json.dumps(
                {
                    "seed": 7,
                    "dir": "/tmp/x",
                    "sites": {
                        "a": {"kind": "sleep", "hits": [1, 3], "seconds": 0.5}
                    },
                }
            )
        )
        assert plan.seed == 7
        assert plan.dir == "/tmp/x"
        assert plan.sites["a"].hits == (1, 3)
        assert plan.sites["a"].seconds == 0.5

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.parse('{"sites": {"a": {"kind": "meteor"}}}')

    def test_bad_hits_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.parse('{"sites": {"a": {"kind": "error", "hits": [-1]}}}')

    def test_malformed_env_is_inert(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "{not json")
        assert FaultPlan.from_env() is None
        assert perturb("anything", "data") == "data"  # never breaks a run

    def test_no_env_is_inert(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        assert perturb("anything", "data") == "data"
        fire("anything")  # no-op, no exception


class TestDeterministicIndexing:
    def test_local_counter_fires_at_named_hits_only(self):
        plan = FaultPlan.parse(
            '{"sites": {"s": {"kind": "error", "hits": [1, 2]}}}'
        )
        observed = [plan.active("s") is not None for _ in range(5)]
        assert observed == [False, True, True, False, False]

    def test_unnamed_site_consumes_no_index(self):
        plan = FaultPlan.parse(
            '{"sites": {"s": {"kind": "error", "hits": [0]}}}'
        )
        for _ in range(10):
            assert plan.active("other") is None
        assert plan.active("s") is not None  # still index 0

    def test_cross_process_markers_claim_each_index_once(self, tmp_path):
        plan_a = FaultPlan.parse(
            json.dumps(
                {
                    "dir": str(tmp_path),
                    "sites": {"s": {"kind": "error", "hits": [0]}},
                }
            )
        )
        plan_b = FaultPlan.parse(
            json.dumps(
                {
                    "dir": str(tmp_path),
                    "sites": {"s": {"kind": "error", "hits": [0]}},
                }
            )
        )
        # Two independent plan instances (two "processes") share the
        # marker directory: only the first call anywhere sees index 0.
        assert plan_a.active("s") is not None
        assert plan_b.active("s") is None
        assert len(list(tmp_path.iterdir())) == 2


class TestPerturbKinds:
    def test_oserror(self, tmp_path):
        with injected({"s": {"kind": "oserror", "hits": [0]}}, dir=tmp_path):
            with pytest.raises(OSError, match="injected"):
                fire("s")
            fire("s")  # index 1: clean

    def test_error(self, tmp_path):
        with injected({"s": {"kind": "error", "hits": [0]}}, dir=tmp_path):
            with pytest.raises(RuntimeError, match="injected"):
                fire("s")

    def test_torn_halves_payload(self, tmp_path):
        with injected({"s": {"kind": "torn", "hits": [0]}}, dir=tmp_path):
            assert perturb("s", "abcdefgh") == "abcd"

    def test_corrupt_scribbles_same_way_every_time(self, tmp_path):
        with injected(
            {"s": {"kind": "corrupt", "hits": [0, 1]}}, dir=tmp_path
        ):
            payload = json.dumps({"x": list(range(40))})
            first = perturb("s", payload)
            second = perturb("s", payload)
        assert first != payload
        assert "#" in first
        assert len(first) == len(payload)
        assert first == second  # deterministic scramble

    def test_injected_restores_environment(self, tmp_path):
        before = os.environ.get(FAULTS_ENV)
        with injected({"s": {"kind": "error"}}, dir=tmp_path):
            assert os.environ.get(FAULTS_ENV)
        assert os.environ.get(FAULTS_ENV) == before
