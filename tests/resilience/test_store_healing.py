"""Self-healing store behaviour: checksums, quarantine, eviction, memo."""

import json
import os
import time

from repro.datapath.parse import parse_datapath
from repro.kernels import load_kernel
from repro.runner import BindJob, ResultCache, RunStore
from repro.runner.api import run_jobs
from repro.search.diskcache import OutcomeStore, outcome_cache_key
from repro.search.session import SearchSession


def _job():
    dfg = load_kernel("ewf")
    dp = parse_datapath("|2,1|1,1|", num_buses=2)
    return BindJob.make(dfg, dp, "b-init")


class TestResultCacheHealing:
    def test_checksum_mismatch_quarantines(self, tmp_path):
        cache = ResultCache(tmp_path)
        [result] = run_jobs([_job()], cache=cache)
        path = cache._path(result.key)
        envelope = json.loads(path.read_text())
        envelope["result"]["latency"] = 1  # silent tampering
        path.write_text(json.dumps(envelope))

        fresh = ResultCache(tmp_path)
        assert fresh.get(result.key) is None
        assert fresh.stats.quarantined == 1
        assert path.with_suffix(".json.corrupt").exists()
        # Quarantined blobs are never consulted again: next lookup is a
        # plain miss.
        assert fresh.get(result.key) is None
        assert fresh.stats.quarantined == 1

    def test_legacy_blob_without_checksum_accepted(self, tmp_path):
        cache = ResultCache(tmp_path)
        [result] = run_jobs([_job()], cache=cache)
        path = cache._path(result.key)
        envelope = json.loads(path.read_text())
        del envelope["sha256"]
        path.write_text(json.dumps(envelope))
        payload = ResultCache(tmp_path).get(result.key)
        assert payload is not None
        assert payload["latency"] == result.latency


class TestRunStoreHealing:
    def test_lines_carry_verifiable_checksums(self, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        run_jobs([_job()], store=store)
        [entry] = store.records()
        assert "sha256" in entry

    def test_corrupted_line_is_skipped(self, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        run_jobs([_job()], store=store)
        line = store.path.read_text()
        damaged = line.replace('"status": "ok"', '"status": "onk"')
        assert damaged != line
        store.path.write_text(damaged)
        assert store.records() == []  # checksum mismatch -> dropped

    def test_legacy_line_without_checksum_accepted(self, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        run_jobs([_job()], store=store)
        entry = json.loads(store.path.read_text())
        del entry["sha256"]
        store.path.write_text(json.dumps(entry) + "\n")
        assert len(store.records()) == 1

    def test_incident_records_round_trip(self, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        store.record_incident("run_jobs", "cache-write-failed", "disk full",
                              key="abc")
        run_jobs([_job()], store=store)
        [incident] = store.incidents()
        assert incident["kind"] == "cache-write-failed"
        assert incident["key"] == "abc"
        assert len(store.records()) == 1  # incidents don't pollute records


class TestOutcomeStoreHealing:
    def _store_with_blob(self, tmp_path):
        dfg = load_kernel("ewf")
        dp = parse_datapath("|2,1|1,1|", num_buses=2)
        os.environ["REPRO_EVAL_CACHE"] = str(tmp_path)
        try:
            session = SearchSession(dfg, dp, fast=True)
            from repro.core.driver import bind

            bind(dfg, dp, session=session)
        finally:
            del os.environ["REPRO_EVAL_CACHE"]
        key = outcome_cache_key(dfg, dp)
        return OutcomeStore(tmp_path), key

    def test_blob_is_sharded_and_checksummed(self, tmp_path):
        store, key = self._store_with_blob(tmp_path)
        path = store.path_for(key)
        assert path.exists()
        assert path.parent.name == key[:2]
        blob = json.loads(path.read_text())
        assert blob["sha256"]
        assert store.load(key)

    def test_legacy_flat_blob_still_read(self, tmp_path):
        store, key = self._store_with_blob(tmp_path)
        sharded = store.path_for(key)
        flat = store.root / f"{key}.json"
        os.replace(sharded, flat)
        assert store.load(key)

    def test_corrupted_blob_quarantined_and_empty(self, tmp_path):
        store, key = self._store_with_blob(tmp_path)
        path = store.path_for(key)
        blob = json.loads(path.read_text())
        blob["entries"][0][4] = blob["entries"][0][4] + 1  # tamper latency
        path.write_text(json.dumps(blob))
        assert store.load(key) == {}
        assert path.with_suffix(".json.corrupt").exists()
        assert not path.exists()

    def test_parse_memo_reused_and_invalidated(self, tmp_path):
        store, key = self._store_with_blob(tmp_path)
        first = store.load(key)
        second = store.load(key)
        assert first == second
        assert first is not second  # callers get independent mappings
        # Rewriting the blob must invalidate the memo (mtime/size change).
        path = store.path_for(key)
        entries = dict(first)
        placement = next(iter(entries))
        store._write(key, {placement: entries[placement]})
        assert len(store.load(key)) == 1

    def test_eviction_trims_to_byte_budget(self, tmp_path):
        store, key = self._store_with_blob(tmp_path)
        # Plant older decoy blobs; the real blob stays newest.
        for i in range(3):
            decoy = store.root / "00" / f"{'0' * 63}{i}.json"
            decoy.parent.mkdir(exist_ok=True)
            decoy.write_text("x" * 4096)
            old = time.time() - 1000 - i
            os.utime(decoy, (old, old))
        keep = store.path_for(key)
        bounded = OutcomeStore(tmp_path, max_bytes=keep.stat().st_size + 100)
        removed = bounded.evict(keep=keep)
        assert removed >= 2
        assert keep.exists()
        assert bounded.total_bytes() <= bounded.max_bytes + 4096

    def test_max_bytes_env_knob(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_EVAL_CACHE_MAX_MB", "2")
        store = OutcomeStore(tmp_path)
        assert store.max_bytes == 2 * 1024 * 1024
        monkeypatch.setenv("REPRO_EVAL_CACHE_MAX_MB", "junk")
        assert OutcomeStore(tmp_path).max_bytes is None

    def test_merge_unions_concurrent_sessions(self, tmp_path):
        dfg = load_kernel("ewf")
        dp = parse_datapath("|2,1|1,1|", num_buses=2)
        key = outcome_cache_key(dfg, dp)
        store = OutcomeStore(tmp_path)

        from repro.core.driver import bind, bind_initial

        os.environ["REPRO_EVAL_CACHE"] = str(tmp_path)
        try:
            s1 = SearchSession(dfg, dp, fast=True)
            bind_initial(dfg, dp, session=s1)
            s2 = SearchSession(dfg, dp, fast=True)
            bind(dfg, dp, session=s2)
        finally:
            del os.environ["REPRO_EVAL_CACHE"]
        merged = store.load(key)
        assert len(merged) >= len(dict(s1.evaluator.cache.items()))
