"""Checked-invariant tests: honest outcomes pass, tampered ones don't."""

import pytest

from repro.core.driver import bind
from repro.datapath.parse import parse_datapath
from repro.kernels import load_kernel
from repro.resilience.validate import (
    InvariantViolation,
    validate_outcome,
    validate_trajectory,
)
from repro.schedule.fastpath import FastOutcome
from repro.search.session import SearchSession

KERNEL, SPEC = "ewf", "|2,1|1,1|"


def _cell():
    return load_kernel(KERNEL), parse_datapath(SPEC, num_buses=2)


def _tampered(out, **overrides):
    """A copy of a FastOutcome with some raw arrays replaced."""
    fields = {
        "ctx": out.ctx,
        "placement": out.placement,
        "pairs": out.pairs,
        "starts": out.starts,
        "units": out.units,
        "latency": out.latency,
    }
    fields.update(overrides)
    return FastOutcome(**fields)


class TestValidateOutcome:
    def test_fast_outcome_passes(self):
        dfg, dp = _cell()
        session = SearchSession(dfg, dp, fast=True)
        result = bind(dfg, dp, session=session)
        out = session.evaluate(result.binding)
        validate_outcome(dfg, dp, result.binding, out)

    def test_naive_schedule_passes(self):
        dfg, dp = _cell()
        session = SearchSession(dfg, dp, fast=False)
        result = bind(dfg, dp, session=session)
        out = session.evaluate(result.binding)
        validate_outcome(dfg, dp, result.binding, out)

    def test_latency_tampering_detected(self):
        dfg, dp = _cell()
        session = SearchSession(dfg, dp, fast=True)
        result = bind(dfg, dp, session=session)
        out = session.evaluate(result.binding)
        poisoned = _tampered(out, latency=out.latency - 1)
        with pytest.raises(InvariantViolation, match="latency"):
            validate_outcome(dfg, dp, result.binding, poisoned)

    def test_missing_transfer_detected(self):
        dfg, dp = _cell()
        session = SearchSession(dfg, dp, fast=True)
        result = bind(dfg, dp, session=session)
        out = session.evaluate(result.binding)
        assert out.pairs, "cell must have at least one transfer"
        poisoned = _tampered(
            out,
            pairs=out.pairs[:-1],
            starts=out.starts[:-1],
            units=out.units[:-1],
        )
        with pytest.raises(InvariantViolation, match="transfer"):
            validate_outcome(dfg, dp, result.binding, poisoned)

    def test_start_cycle_tampering_detected(self):
        dfg, dp = _cell()
        session = SearchSession(dfg, dp, fast=True)
        result = bind(dfg, dp, session=session)
        out = session.evaluate(result.binding)
        # Pull one operation's start far earlier than its predecessors
        # allow: the schedule-legality re-check must notice.
        starts = list(out.starts)
        victim = max(range(len(starts)), key=lambda i: starts[i])
        starts[victim] = 0
        poisoned = _tampered(out, starts=tuple(starts))
        with pytest.raises(InvariantViolation):
            validate_outcome(dfg, dp, result.binding, poisoned)


class TestSessionDegradation:
    """A poisoned memo entry degrades to the naive engine, not a crash."""

    def test_poisoned_memo_entry_yields_incident_and_correct_result(self):
        dfg, dp = _cell()
        reference = SearchSession(dfg, dp, fast=True, validate=False)
        result = bind(dfg, dp, session=reference)
        honest = reference.evaluate(result.binding)

        session = SearchSession(dfg, dp, fast=True, validate=True)
        placement = session.evaluator.placement_of(result.binding)
        session.evaluator.cache.put(
            placement,
            _tampered(honest, latency=honest.latency + 5),
        )
        out = session.evaluate(result.binding)
        # Degraded evaluation: naive engine, honest numbers.
        assert out.latency == honest.latency
        assert out.num_transfers == honest.num_transfers
        assert len(session.stats.incidents) == 1
        incident = session.stats.incidents[0]
        assert incident["site"] == "session.evaluate"
        assert incident["kind"] == "invariant-violation"
        # The poisoned entry was evicted: the next evaluation recomputes
        # and passes validation with no new incident.
        again = session.evaluate(result.binding)
        assert again.latency == honest.latency
        assert len(session.stats.incidents) == 1

    def test_validation_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_VALIDATE", raising=False)
        dfg, dp = _cell()
        session = SearchSession(dfg, dp)
        assert session.validate is False

    def test_validation_env_gate(self, monkeypatch):
        monkeypatch.setenv("REPRO_VALIDATE", "1")
        dfg, dp = _cell()
        session = SearchSession(dfg, dp)
        assert session.validate is True

    def test_validated_run_produces_no_incidents(self):
        dfg, dp = _cell()
        session = SearchSession(dfg, dp, validate=True)
        result = bind(dfg, dp, session=session)
        assert session.stats.incidents == []
        assert result.latency > 0


class TestValidateTrajectory:
    def test_strictly_decreasing_passes(self):
        validate_trajectory([(1, (5, 2)), (3, (4, 2)), (7, (4, 1))])

    def test_json_form_accepted(self):
        validate_trajectory([[1, [5, 2]], [3, [4, 2]]], segments=[0])

    def test_non_decreasing_quality_rejected(self):
        with pytest.raises(InvariantViolation, match="strictly"):
            validate_trajectory([(1, (4, 2)), (2, (4, 2))])

    def test_backwards_evaluations_rejected(self):
        with pytest.raises(InvariantViolation, match="backwards"):
            validate_trajectory([(5, (4, 2)), (3, (3, 2))])

    def test_segment_reset_allowed(self):
        # Second descent restarts from a worse quality — legal when a
        # segment boundary marks the restart.
        trajectory = [(1, (4, 2)), (2, (3, 2)), (5, (9, 9)), (6, (8, 1))]
        validate_trajectory(trajectory, segments=[0, 2])
        with pytest.raises(InvariantViolation):
            validate_trajectory(trajectory, segments=[0])

    def test_real_session_trajectories_validate(self):
        dfg, dp = _cell()
        session = SearchSession(dfg, dp)
        bind(dfg, dp, session=session)
        assert session.stats.best_trajectory  # non-trivial check
        validate_trajectory(
            session.stats.best_trajectory, session.stats.segments
        )
