"""Unit tests of the anytime substrate (repro.resilience.anytime).

Budgets, cancel tokens, the checksummed snapshot sidecar, heartbeats,
and salvage.  The contract under test everywhere: a deadline, cancel,
or crash never yields a wrong answer — only a legal best-so-far one —
and a torn or corrupted sidecar tail costs the final snapshot, never
correctness or byte-stability of what is salvaged.
"""

import json
import os
import time

import pytest

from repro.core.driver import bind_initial
from repro.core.iterative import iterative_improvement
from repro.datapath.parse import parse_datapath
from repro.kernels import load_kernel
from repro.resilience.anytime import (
    DEADLINE_ENV,
    HEARTBEAT_FORMAT,
    SNAPSHOT_FORMAT,
    AnytimeSnapshot,
    Budget,
    CancelToken,
    CountdownToken,
    SnapshotWriter,
    global_token,
    load_last_snapshot,
    read_heartbeat,
    reset_global_token,
    salvage_job_result,
    write_heartbeat,
)
from repro.resilience.faults import injected
from repro.runner import BindJob


class TestCancelTokens:
    def test_cancel_is_sticky_and_observable(self):
        token = CancelToken()
        assert not token.cancelled
        token.cancel()
        assert token.cancelled
        assert token.cancelled  # idempotent

    def test_countdown_token_cuts_after_exactly_k_polls(self):
        token = CountdownToken(3)
        assert [token.cancelled for _ in range(6)] == [
            False, False, False, True, True, True,
        ]

    def test_countdown_zero_cuts_on_first_poll(self):
        assert CountdownToken(0).cancelled is True

    def test_reset_global_token_replaces_a_cancelled_one(self):
        first = global_token()
        first.cancel()
        fresh = reset_global_token()
        assert fresh is global_token()
        assert fresh is not first
        assert not fresh.cancelled


class TestBudget:
    def test_from_env_reads_absolute_deadline(self, monkeypatch):
        monkeypatch.setenv(DEADLINE_ENV, "12345.5")
        budget = Budget.from_env()
        assert budget.deadline_epoch == 12345.5
        assert budget.token is global_token()

    def test_malformed_deadline_is_unbounded(self, monkeypatch):
        monkeypatch.setenv(DEADLINE_ENV, "soon")
        budget = Budget.from_env()
        assert budget.deadline_epoch is None
        assert budget.remaining_seconds() is None

    def test_remaining_seconds_tracks_wall_clock(self):
        budget = Budget(deadline_epoch=time.time() + 100.0)
        remaining = budget.remaining_seconds()
        assert 90.0 < remaining <= 100.0
        assert Budget(deadline_epoch=time.time() - 5.0).remaining_seconds() < 0


def _snapshot(latency=10, transfers=4, evaluations=7):
    return AnytimeSnapshot(
        binding={"op1": 0, "op2": 1},
        quality=(latency, transfers),
        latency=latency,
        transfers=transfers,
        evaluations=evaluations,
        stats={"cache_hits": 3, "cache_misses": 4},
    )


class TestSnapshotSidecar:
    def test_round_trip_through_dict(self):
        snap = _snapshot()
        clone = AnytimeSnapshot.from_dict(snap.to_dict())
        assert clone == snap
        assert snap.to_dict()["format"] == SNAPSHOT_FORMAT

    def test_unknown_format_is_rejected(self):
        data = _snapshot().to_dict()
        data["format"] = "repro-snapshot/999"
        with pytest.raises(ValueError):
            AnytimeSnapshot.from_dict(data)

    def test_load_returns_last_intact_line(self, tmp_path):
        path = tmp_path / "side.jsonl"
        writer = SnapshotWriter(path)
        for latency in (12, 11, 10):
            assert writer.write(_snapshot(latency=latency))
        assert writer.written == 3
        assert load_last_snapshot(path).latency == 10

    def test_missing_or_empty_sidecar_is_none(self, tmp_path):
        assert load_last_snapshot(tmp_path / "absent.jsonl") is None
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert load_last_snapshot(empty) is None

    def test_truncation_at_every_offset_never_yields_garbage(self, tmp_path):
        """A crash can tear the file anywhere; salvage must degrade to
        the previous intact snapshot, never to a wrong or partial one."""
        path = tmp_path / "side.jsonl"
        writer = SnapshotWriter(path)
        first, second = _snapshot(latency=12), _snapshot(latency=10)
        writer.write(first)
        data = path.read_bytes()
        writer.write(second)
        full = path.read_bytes()
        torn = tmp_path / "torn.jsonl"
        for cut in range(len(full) + 1):
            torn.write_bytes(full[:cut])
            loaded = load_last_snapshot(torn)
            if cut < len(data):
                assert loaded is None or loaded == first
            elif cut < len(full) - 1:
                assert loaded == first  # second line damaged -> skipped
            else:
                # Only the trailing newline (or nothing) is missing:
                # the second line's JSON + checksum are intact.
                assert loaded == second

    def test_corrupt_tail_falls_back_to_previous_line(self, tmp_path):
        path = tmp_path / "side.jsonl"
        writer = SnapshotWriter(path)
        writer.write(_snapshot(latency=12))
        with injected({"anytime.snapshot": {"kind": "corrupt", "hits": [0]}}):
            writer.write(_snapshot(latency=10))
        assert load_last_snapshot(path).latency == 12

    def test_torn_write_fault_is_survived(self, tmp_path):
        path = tmp_path / "side.jsonl"
        writer = SnapshotWriter(path)
        writer.write(_snapshot(latency=12))
        with injected({"anytime.snapshot": {"kind": "torn", "hits": [0]}}):
            writer.write(_snapshot(latency=10))
        assert load_last_snapshot(path).latency == 12


class TestHeartbeat:
    def test_write_then_read_round_trips(self, tmp_path):
        path = tmp_path / "worker.hb"
        assert write_heartbeat(path, "round")
        payload = read_heartbeat(path)
        assert payload["format"] == HEARTBEAT_FORMAT
        assert payload["pid"] == os.getpid()
        assert payload["note"] == "round"

    def test_corrupt_payload_still_advances_mtime(self, tmp_path):
        """Liveness is the file's mtime: a scribbled payload reads as
        None but must never mask progress from the watchdog."""
        path = tmp_path / "worker.hb"
        write_heartbeat(path, "first")
        before = path.stat().st_mtime_ns
        time.sleep(0.01)
        with injected({"watchdog.heartbeat": {"kind": "corrupt", "hits": [0]}}):
            assert write_heartbeat(path, "second")
        assert read_heartbeat(path) is None
        assert path.stat().st_mtime_ns > before


def _job():
    return BindJob.make(
        load_kernel("ewf"),
        parse_datapath("|2,1|1,1|", num_buses=2, move_latency=1),
        "b-iter",
    )


@pytest.fixture(scope="module")
def improved():
    """One real descent result: a legal binding with known (L, M)."""
    job = _job()
    dfg, dp = job.dfg(), job.datapath()
    seed = bind_initial(dfg, dp)
    result = iterative_improvement(dfg, dp, seed.binding)
    return job, result


class TestSalvage:
    def _write(self, path, result, latency=None, transfers=None):
        snap = AnytimeSnapshot(
            binding=dict(result.binding),
            quality=(result.schedule.latency, result.schedule.num_transfers),
            latency=latency if latency is not None else result.schedule.latency,
            transfers=(
                transfers
                if transfers is not None
                else result.schedule.num_transfers
            ),
            evaluations=result.evaluations,
        )
        SnapshotWriter(path).write(snap)
        return snap

    def test_salvage_replays_snapshot_exactly(self, improved, tmp_path):
        job, result = improved
        path = tmp_path / "side.jsonl"
        snap = self._write(path, result)
        salvaged = salvage_job_result(job, path)
        assert salvaged is not None
        assert salvaged.status == "ok"
        assert salvaged.completion == "salvaged"
        assert salvaged.latency == snap.latency
        assert salvaged.transfers == snap.transfers
        assert salvaged.extras["binding"] == dict(result.binding)
        assert salvaged.extras["salvaged"] is True

    def test_salvage_is_byte_stable(self, improved, tmp_path):
        """The acceptance bar: salvaging the same sidecar twice — and
        salvaging a sidecar whose tail was torn off — produces the
        byte-identical result."""
        job, result = improved
        intact = tmp_path / "intact.jsonl"
        self._write(intact, result)
        torn = tmp_path / "torn.jsonl"
        self._write(torn, result)
        with injected({"anytime.snapshot": {"kind": "torn", "hits": [0]}}):
            # A damaged later line that salvage must skip over.
            self._write(torn, result, latency=1, transfers=0)
        dumps = [
            json.dumps(salvage_job_result(job, p).to_dict(), sort_keys=True)
            for p in (intact, intact, torn)
        ]
        assert dumps[0] == dumps[1] == dumps[2]

    def test_mismatched_snapshot_is_rejected(self, improved, tmp_path):
        """A snapshot whose recorded (L, M) does not replay is a lie —
        salvage must refuse it rather than publish a wrong result."""
        job, result = improved
        path = tmp_path / "lying.jsonl"
        self._write(path, result, latency=result.schedule.latency - 1)
        assert salvage_job_result(job, path) is None

    def test_unknown_operations_are_rejected(self, improved, tmp_path):
        job, result = improved
        snap = AnytimeSnapshot(
            binding={"not-an-op": 0},
            quality=(1,),
            latency=1,
            transfers=0,
            evaluations=1,
        )
        path = tmp_path / "bogus.jsonl"
        SnapshotWriter(path).write(snap)
        assert salvage_job_result(job, path) is None

    def test_no_sidecar_means_no_salvage(self, improved, tmp_path):
        job, _ = improved
        assert salvage_job_result(job, tmp_path / "never-written.jsonl") is None
