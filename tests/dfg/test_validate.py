"""Unit tests for DFG structural validation."""

import pytest

from repro.dfg.graph import Dfg
from repro.dfg.ops import ADD, MOVE, OpType
from repro.dfg.validate import ValidationError, validate_dfg


class TestValidate:
    def test_accepts_good_graph(self, diamond, registry):
        validate_dfg(diamond, registry)

    def test_rejects_three_operand_op(self, registry):
        g = Dfg("t")
        for n in ("a", "b", "c", "d"):
            g.add_op(n, ADD)
        for p in ("a", "b", "c"):
            g.add_edge(p, "d")
        with pytest.raises(ValidationError, match="exceeds max"):
            validate_dfg(g, registry)

    def test_max_operands_configurable(self, registry):
        g = Dfg("t")
        for n in ("a", "b", "c", "d"):
            g.add_op(n, ADD)
        for p in ("a", "b", "c"):
            g.add_edge(p, "d")
        validate_dfg(g, registry, max_operands=3)

    def test_rejects_unregistered_type(self, registry):
        g = Dfg("t")
        g.add_op("v1", OpType("quantum"))
        with pytest.raises(ValidationError, match="unregistered"):
            validate_dfg(g, registry)

    def test_no_registry_skips_type_check(self):
        g = Dfg("t")
        g.add_op("v1", OpType("quantum"))
        validate_dfg(g)

    def test_rejects_regular_move(self, registry):
        g = Dfg("t")
        g.add_op("v1", MOVE)
        with pytest.raises(ValidationError, match="optype move"):
            validate_dfg(g, registry)

    def test_rejects_transfer_without_producer(self, registry):
        g = Dfg("t")
        g.add_op("t1", MOVE, is_transfer=True, source="x")
        g.add_op("v1", ADD)
        g.add_edge("t1", "v1")
        with pytest.raises(ValidationError, match="producers"):
            validate_dfg(g, registry)

    def test_rejects_transfer_without_consumer(self, registry):
        g = Dfg("t")
        g.add_op("v1", ADD)
        g.add_op("t1", MOVE, is_transfer=True, source="v1")
        g.add_edge("v1", "t1")
        with pytest.raises(ValidationError, match="no consumer"):
            validate_dfg(g, registry)

    def test_accepts_well_formed_transfer(self, figure1_dfg, registry):
        from repro.dfg.transform import bind_dfg

        bound = bind_dfg(figure1_dfg, {"v1": 0, "v2": 0, "v3": 1, "v4": 1})
        validate_dfg(bound.graph, registry)
