"""Unit tests for the symbolic tracer."""

import pytest

from repro.dfg.ops import ADD, MULT, NEG, SUB
from repro.dfg.trace import Tracer


class TestTracer:
    def test_inputs_create_no_nodes(self):
        tr = Tracer("t")
        a, b = tr.inputs("a", "b")
        assert len(tr.build()) == 0
        assert a.node is None

    def test_constants_create_no_nodes(self):
        tr = Tracer("t")
        c = tr.const(3.14)
        assert c.node is None
        assert "3.14" in c.label

    def test_add_recorded(self):
        tr = Tracer("t")
        a, b = tr.inputs("a", "b")
        c = a + b
        g = tr.build()
        assert g.num_operations == 1
        assert g.operation(c.node).optype is ADD

    def test_operator_types(self):
        tr = Tracer("t")
        a, b = tr.inputs("a", "b")
        results = [a + b, a - b, a * b, -a]
        g = tr.build()
        types = [g.operation(r.node).optype for r in results]
        assert types == [ADD, SUB, MULT, NEG]

    def test_reflected_operators(self):
        tr = Tracer("t")
        a = tr.input("a")
        r1 = 2 + a
        r2 = 2 - a
        r3 = 2 * a
        g = tr.build()
        assert g.operation(r1.node).optype is ADD
        assert g.operation(r2.node).optype is SUB
        assert g.operation(r3.node).optype is MULT
        # constant operands contribute no edges
        assert g.in_degree(r1.node) == 0

    def test_dataflow_edges(self):
        tr = Tracer("t")
        a, b, c = tr.inputs("a", "b", "c")
        d = a + b
        e = d * c
        g = tr.build()
        assert g.successors(d.node) == (e.node,)

    def test_shared_subexpression_shares_node(self):
        tr = Tracer("t")
        a, b = tr.inputs("a", "b")
        d = a + b
        e = d * d  # same Sym used twice: one node, one (collapsed) edge
        g = tr.build()
        assert g.num_operations == 2
        assert g.in_degree(e.node) == 1

    def test_mixing_tracers_rejected(self):
        tr1, tr2 = Tracer("a"), Tracer("b")
        x = tr1.input("x")
        y = tr2.input("y")
        with pytest.raises(ValueError, match="different tracers"):
            tr1.op(ADD, x, y)

    def test_build_freezes_tracer(self):
        tr = Tracer("t")
        a, b = tr.inputs("a", "b")
        __ = a + b
        tr.build()
        with pytest.raises(RuntimeError, match="already built"):
            __ = a * b

    def test_outputs_reject_liveins(self):
        tr = Tracer("t")
        a = tr.input("a")
        with pytest.raises(ValueError, match="live-in"):
            tr.outputs(a)

    def test_node_names_sequential(self):
        tr = Tracer("t")
        a, b = tr.inputs("a", "b")
        r1 = a + b
        r2 = r1 * b
        assert r1.node == "v1"
        assert r2.node == "v2"
