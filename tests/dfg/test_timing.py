"""Unit tests for ASAP/ALAP timing analysis."""

import pytest

from repro.dfg.graph import Dfg
from repro.dfg.ops import ADD, MULT, default_registry
from repro.dfg.timing import (
    compute_timing,
    critical_path,
    critical_path_length,
)


class TestAsapAlap:
    def test_chain_levels(self, chain5, registry):
        t = compute_timing(chain5, registry)
        for i in range(1, 6):
            assert t.asap[f"v{i}"] == i - 1
            assert t.alap[f"v{i}"] == i - 1
            assert t.mobility(f"v{i}") == 0
        assert t.critical_path_length == 5

    def test_diamond_mobility(self, diamond, registry):
        t = compute_timing(diamond, registry)
        # All four ops are on a length-3 path; v2 and v3 both at level 1.
        assert t.critical_path_length == 3
        assert t.mobility("v1") == 0
        assert t.mobility("v2") == 0
        assert t.mobility("v3") == 0
        assert t.mobility("v4") == 0

    def test_side_branch_gets_mobility(self, registry):
        g = Dfg("t")
        for name in ("a", "b", "c", "side"):
            g.add_op(name, ADD)
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.add_edge("side", "c")
        t = compute_timing(g, registry)
        assert t.mobility("side") == 1
        assert t.asap["side"] == 0
        assert t.alap["side"] == 1

    def test_stretched_target_latency(self, chain5, registry):
        t = compute_timing(chain5, registry, target_latency=8)
        assert t.target_latency == 8
        for i in range(1, 6):
            assert t.mobility(f"v{i}") == 3

    def test_target_below_critical_path_rejected(self, chain5, registry):
        with pytest.raises(ValueError, match="below the critical path"):
            compute_timing(chain5, registry, target_latency=4)

    def test_asap_respects_latency(self, registry):
        reg = registry.with_overrides(latencies={MULT: 3})
        g = Dfg("t")
        g.add_op("m", MULT)
        g.add_op("a", ADD)
        g.add_edge("m", "a")
        t = compute_timing(g, reg)
        assert t.asap["a"] == 3
        assert t.critical_path_length == 4

    def test_time_frame(self, chain5, registry):
        t = compute_timing(chain5, registry, target_latency=7)
        assert t.time_frame("v1") == (0, 2)

    def test_empty_graph(self, registry):
        t = compute_timing(Dfg("empty"), registry)
        assert t.critical_path_length == 0
        assert t.target_latency == 0


class TestCriticalPath:
    def test_length_matches_chain(self, chain5, registry):
        assert critical_path_length(chain5, registry) == 5

    def test_path_is_a_real_chain(self, diamond, registry):
        path = critical_path(diamond, registry)
        assert len(path) == 3
        for u, v in zip(path, path[1:]):
            assert v in diamond.successors(u)

    def test_all_path_ops_critical(self, chain5, registry):
        t = compute_timing(chain5, registry)
        for n in critical_path(chain5, registry):
            assert t.mobility(n) == 0

    def test_wide_graph_path_length_one(self, wide8, registry):
        assert critical_path_length(wide8, registry) == 1
        assert len(critical_path(wide8, registry)) == 1

    def test_kernel_critical_paths(self, registry):
        from repro.kernels import KERNEL_STATS, load_kernel

        for name, (_, _, lcp) in KERNEL_STATS.items():
            assert critical_path_length(load_kernel(name), registry) == lcp
