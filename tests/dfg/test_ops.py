"""Unit tests for operation/FU type definitions and the registry."""

import pytest

from repro.dfg.ops import (
    ADD,
    ALU,
    BUS,
    MOVE,
    MUL,
    MULT,
    SUB,
    FuType,
    OpType,
    OpTypeInfo,
    OpTypeRegistry,
    default_registry,
)


class TestOpTypeInfo:
    def test_defaults(self):
        info = OpTypeInfo(ADD, ALU)
        assert info.latency == 1
        assert info.dii == 1

    def test_latency_must_be_positive(self):
        with pytest.raises(ValueError, match="latency"):
            OpTypeInfo(ADD, ALU, latency=0)

    def test_dii_must_be_positive(self):
        with pytest.raises(ValueError, match="dii"):
            OpTypeInfo(ADD, ALU, latency=2, dii=0)

    def test_dii_cannot_exceed_latency(self):
        with pytest.raises(ValueError, match="cannot exceed"):
            OpTypeInfo(ADD, ALU, latency=1, dii=2)

    def test_unpipelined_resource(self):
        info = OpTypeInfo(MULT, MUL, latency=3, dii=3)
        assert info.dii == info.latency


class TestDefaultRegistry:
    def test_paper_setup_all_unit_latency(self, registry):
        assert registry.latency(ADD) == 1
        assert registry.latency(MULT) == 1
        assert registry.move_latency == 1
        assert registry.move_dii == 1

    def test_futype_partition(self, registry):
        assert registry.futype(ADD) is ALU
        assert registry.futype(SUB) is ALU
        assert registry.futype(MULT) is MUL
        assert registry.futype(MOVE) is BUS

    def test_unknown_type_raises(self, registry):
        with pytest.raises(KeyError, match="not registered"):
            registry.latency(OpType("bogus"))

    def test_contains_and_len(self, registry):
        assert ADD in registry
        assert OpType("bogus") not in registry
        assert len(registry) > 5

    def test_fu_types_deduplicated(self, registry):
        types = registry.fu_types()
        assert len(types) == len(set(types))
        assert set(types) == {ALU, MUL, BUS}

    def test_optypes_for(self, registry):
        alu_ops = registry.optypes_for(ALU)
        assert ADD in alu_ops
        assert MULT not in alu_ops

    def test_custom_latencies(self):
        reg = default_registry(move_latency=2, mul_latency=3)
        assert reg.move_latency == 2
        assert reg.latency(MULT) == 3


class TestOverrides:
    def test_with_overrides_is_a_copy(self, registry):
        reg2 = registry.with_overrides(move_latency=2)
        assert registry.move_latency == 1
        assert reg2.move_latency == 2

    def test_override_arbitrary_latency(self, registry):
        reg2 = registry.with_overrides(latencies={MULT: 4})
        assert reg2.latency(MULT) == 4
        assert reg2.dii(MULT) == 1  # stays pipelined

    def test_override_clamps_dii_down(self, registry):
        reg2 = registry.with_overrides(latencies={MULT: 3}, diis={MULT: 3})
        reg3 = reg2.with_overrides(latencies={MULT: 2})
        assert reg3.dii(MULT) == 2

    def test_override_dii_only(self, registry):
        reg2 = registry.with_overrides(
            latencies={MULT: 2}
        ).with_overrides(diis={MULT: 2})
        assert reg2.dii(MULT) == 2
        assert reg2.latency(MULT) == 2

    def test_copy_independent(self, registry):
        reg2 = registry.copy()
        reg2.register(OpTypeInfo(OpType("div"), ALU, latency=8, dii=8))
        assert OpType("div") in reg2
        assert OpType("div") not in registry


class TestTypeEquality:
    def test_futype_identity_by_name(self):
        assert FuType("ALU") == ALU
        assert FuType("X") != ALU

    def test_optype_usable_as_dict_key(self):
        d = {ADD: 1, MULT: 2}
        assert d[OpType("add")] == 1

    def test_reprs(self):
        assert "ALU" in repr(ALU)
        assert "add" in repr(ADD)
        assert str(ALU) == "ALU"
        assert str(ADD) == "add"
