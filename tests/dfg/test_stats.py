"""Unit tests for DFG statistics."""

import pytest

from repro.dfg.graph import Dfg
from repro.dfg.ops import ALU, MUL
from repro.dfg.stats import dfg_stats
from repro.kernels import load_kernel


class TestDfgStats:
    def test_diamond(self, diamond, registry):
        s = dfg_stats(diamond, registry)
        assert s.num_operations == 4
        assert s.num_edges == 4
        assert s.critical_path == 3
        assert s.num_inputs == 1
        assert s.num_outputs == 1
        assert s.max_fanout == 2
        assert s.ops_per_futype[ALU] == 3
        assert s.ops_per_futype[MUL] == 1

    def test_width_profile_sums_to_ops(self, diamond, registry):
        s = dfg_stats(diamond, registry)
        assert sum(s.width_profile) == 4
        assert len(s.width_profile) == s.critical_path

    def test_chain_width_one(self, chain5, registry):
        s = dfg_stats(chain5, registry)
        assert s.width_profile == (1, 1, 1, 1, 1)
        assert s.avg_width == pytest.approx(1.0)

    def test_wide_graph(self, wide8, registry):
        s = dfg_stats(wide8, registry)
        assert s.avg_width == pytest.approx(8.0)
        assert s.num_inputs == s.num_outputs == 8

    def test_empty(self, registry):
        s = dfg_stats(Dfg("e"), registry)
        assert s.num_operations == 0
        assert s.critical_path == 0
        assert s.width_profile == ()

    def test_kernel_table_headers(self, registry):
        """Stats reproduce the paper's sub-header quantities."""
        from repro.kernels import KERNEL_STATS

        for name, (nv, ncc, lcp) in KERNEL_STATS.items():
            s = dfg_stats(load_kernel(name), registry)
            assert (s.num_operations, s.num_components, s.critical_path) == (
                nv,
                ncc,
                lcp,
            )

    def test_ewf_is_output_heavy(self, registry):
        """The kernel class the paper says favours reverse binding:
        few source operations, many sinks (EWF: one input chain head,
        five result/state values)."""
        s = dfg_stats(load_kernel("ewf"), registry)
        assert s.num_outputs > s.num_inputs
