"""Unit tests for the random DFG generators."""

import pytest

from repro.dfg.generators import (
    butterfly_dfg,
    chain_dfg,
    random_dag,
    random_layered_dfg,
    reduction_tree_dfg,
)
from repro.dfg.ops import default_registry
from repro.dfg.timing import critical_path_length
from repro.dfg.validate import validate_dfg


class TestRandomLayered:
    def test_size(self):
        g = random_layered_dfg(30, seed=1)
        assert g.num_operations == 30

    def test_deterministic_per_seed(self):
        g1 = random_layered_dfg(25, seed=7)
        g2 = random_layered_dfg(25, seed=7)
        assert list(g1) == list(g2)
        assert set(g1.edges()) == set(g2.edges())

    def test_different_seeds_differ(self):
        g1 = random_layered_dfg(25, seed=1)
        g2 = random_layered_dfg(25, seed=2)
        assert set(g1.edges()) != set(g2.edges())

    def test_valid_structure(self, registry):
        for seed in range(5):
            validate_dfg(random_layered_dfg(40, seed=seed), registry)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            random_layered_dfg(0)


class TestRandomDag:
    def test_fanin_capped_at_two(self, registry):
        g = random_dag(50, edge_probability=0.9, seed=3)
        for n in g:
            assert g.in_degree(n) <= 2

    def test_valid(self, registry):
        validate_dfg(random_dag(30, seed=5), registry)


class TestShapes:
    def test_chain_critical_path(self, registry):
        g = chain_dfg(7)
        assert critical_path_length(g, registry) == 7
        assert g.num_operations == 7

    def test_chain_rejects_zero(self):
        with pytest.raises(ValueError):
            chain_dfg(0)

    def test_butterfly_power_of_two(self):
        with pytest.raises(ValueError):
            butterfly_dfg(2, width=6)

    def test_butterfly_structure(self, registry):
        g = butterfly_dfg(3, width=8)
        validate_dfg(g, registry)
        assert g.num_operations == 3 * 8

    def test_reduction_tree(self, registry):
        g = reduction_tree_dfg(8)
        validate_dfg(g, registry)
        assert g.num_operations == 7
        assert critical_path_length(g, registry) == 3

    def test_reduction_tree_odd_leaves(self, registry):
        g = reduction_tree_dfg(5)
        validate_dfg(g, registry)
        assert g.num_operations == 4

    def test_reduction_tree_rejects_one(self):
        with pytest.raises(ValueError):
            reduction_tree_dfg(1)
