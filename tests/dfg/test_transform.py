"""Unit tests for bound-DFG construction (transfer insertion, Figure 1)."""

import pytest

from repro.dfg.graph import Dfg
from repro.dfg.ops import ADD, MOVE
from repro.dfg.transform import bind_dfg, transfer_name


class TestBindDfg:
    def test_same_cluster_no_transfers(self, diamond):
        bound = bind_dfg(diamond, {n: 0 for n in diamond})
        assert bound.num_transfers == 0
        assert set(bound.graph.edges()) == set(diamond.edges())

    def test_cut_edge_gets_transfer(self, figure1_dfg):
        # Figure 1: v2 in cluster A(0), v3 in cluster B(1) -> transfer t1.
        binding = {"v1": 1, "v2": 0, "v3": 1, "v4": 1}
        bound = bind_dfg(figure1_dfg, binding)
        assert bound.num_transfers == 1
        t = transfer_name("v2", 1)
        assert t in bound.graph
        assert bound.graph.predecessors(t) == ("v2",)
        assert bound.graph.successors(t) == ("v3",)
        # The direct edge v2 -> v3 is gone.
        assert "v3" not in bound.graph.successors("v2")

    def test_transfer_placed_in_destination_cluster(self, figure1_dfg):
        binding = {"v1": 1, "v2": 0, "v3": 1, "v4": 1}
        bound = bind_dfg(figure1_dfg, binding)
        t = transfer_name("v2", 1)
        assert bound.placement[t] == 1
        assert bound.transfer_sources[t] == ("v2", 0)

    def test_transfer_shared_by_same_cluster_consumers(self, diamond):
        # v1 in cluster 0; v2, v3, v4 in cluster 1: v1's value is moved
        # once, not once per consumer.
        bound = bind_dfg(diamond, {"v1": 0, "v2": 1, "v3": 1, "v4": 1})
        assert bound.num_transfers == 1
        t = transfer_name("v1", 1)
        assert set(bound.graph.successors(t)) == {"v2", "v3"}

    def test_separate_transfers_per_destination(self, diamond):
        # v1 in 0, v2 in 1, v3 in 2 -> two transfers out of v1.
        bound = bind_dfg(diamond, {"v1": 0, "v2": 1, "v3": 2, "v4": 0})
        names = {t.name for t in bound.graph.transfer_operations()}
        assert transfer_name("v1", 1) in names
        assert transfer_name("v1", 2) in names
        # v4 pulls v2's and v3's results back into cluster 0.
        assert bound.num_transfers == 4

    def test_transfer_count_matches_binding_helper(self, diamond):
        from repro.core.binding import Binding

        binding = Binding({"v1": 0, "v2": 1, "v3": 2, "v4": 0})
        bound = bind_dfg(diamond, binding)
        assert bound.num_transfers == binding.num_required_transfers(diamond)

    def test_transfers_are_move_type(self, figure1_dfg):
        bound = bind_dfg(figure1_dfg, {"v1": 0, "v2": 0, "v3": 1, "v4": 0})
        for t in bound.graph.transfer_operations():
            assert t.optype is MOVE
            assert t.is_transfer

    def test_rejects_already_bound_graph(self, figure1_dfg):
        bound = bind_dfg(figure1_dfg, {"v1": 0, "v2": 0, "v3": 1, "v4": 0})
        with pytest.raises(ValueError, match="already contains"):
            bind_dfg(bound.graph, {})

    def test_rejects_incomplete_binding(self, diamond):
        with pytest.raises(ValueError, match="no cluster assignment"):
            bind_dfg(diamond, {"v1": 0})

    def test_regular_placement_preserved(self, diamond):
        binding = {"v1": 0, "v2": 1, "v3": 0, "v4": 1}
        bound = bind_dfg(diamond, binding)
        for name, cluster in binding.items():
            assert bound.placement[name] == cluster

    def test_bound_graph_is_acyclic(self, diamond):
        bound = bind_dfg(diamond, {"v1": 0, "v2": 1, "v3": 1, "v4": 0})
        bound.graph.topological_order()  # raises on a cycle

    def test_deterministic_transfer_order(self, diamond):
        b1 = bind_dfg(diamond, {"v1": 0, "v2": 1, "v3": 2, "v4": 0})
        b2 = bind_dfg(diamond, {"v1": 0, "v2": 1, "v3": 2, "v4": 0})
        assert [t.name for t in b1.graph.transfer_operations()] == [
            t.name for t in b2.graph.transfer_operations()
        ]
