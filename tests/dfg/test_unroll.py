"""Unit tests for DFG unrolling."""

import pytest

from repro.dfg.ops import default_registry
from repro.dfg.timing import critical_path_length
from repro.dfg.unroll import unroll, unroll_chained
from repro.dfg.validate import validate_dfg


class TestUnroll:
    def test_factor_one_is_copy(self, diamond):
        u = unroll(diamond, 1)
        assert u.num_operations == 4
        assert len(list(u.edges())) == 4

    def test_independent_copies(self, diamond, registry):
        u = unroll(diamond, 3)
        assert u.num_operations == 12
        assert u.num_components == 3
        validate_dfg(u, registry)

    def test_critical_path_unchanged(self, chain5, registry):
        u = unroll(chain5, 4)
        assert critical_path_length(u, registry) == 5

    def test_matches_dct_dit2_construction(self, registry):
        from repro.kernels import load_kernel

        dit = load_kernel("dct-dit")
        u = unroll(dit, 2)
        dit2 = load_kernel("dct-dit-2")
        assert u.num_operations == dit2.num_operations
        assert u.num_components == dit2.num_components
        assert critical_path_length(u, registry) == critical_path_length(
            dit2, registry
        )

    def test_rejects_zero(self, diamond):
        with pytest.raises(ValueError):
            unroll(diamond, 0)

    def test_name(self, diamond):
        assert unroll(diamond, 2).name == "diamond-x2"
        assert unroll(diamond, 2, name="db").name == "db"


class TestUnrollChained:
    def test_carry_connects_iterations(self, chain5, registry):
        u = unroll_chained(chain5, 3, {"v5": ["v1"]})
        assert u.num_operations == 15
        assert u.num_components == 1
        assert "i1.v1" in u.successors("i0.v5")
        validate_dfg(u, registry)

    def test_carry_serializes_critical_path(self, chain5, registry):
        u = unroll_chained(chain5, 3, {"v5": ["v1"]})
        assert critical_path_length(u, registry) == 15

    def test_unknown_producer_rejected(self, chain5):
        with pytest.raises(KeyError, match="producer"):
            unroll_chained(chain5, 2, {"nope": ["v1"]})

    def test_unknown_consumer_rejected(self, chain5):
        with pytest.raises(KeyError, match="consumer"):
            unroll_chained(chain5, 2, {"v5": ["nope"]})

    def test_operand_limit_enforced(self, diamond):
        # v4 already has two operands; a carry into it would be a third.
        with pytest.raises(ValueError, match="two operands"):
            unroll_chained(diamond, 2, {"v4": ["v4"]})

    def test_no_carry_equals_unroll(self, diamond):
        u1 = unroll_chained(diamond, 2, {})
        assert u1.num_components == 2
        assert u1.num_operations == 8
