"""Unit tests for DFG JSON serialization."""

import json

import pytest

from repro.dfg.serialize import (
    FORMAT,
    dfg_from_dict,
    dfg_to_dict,
    load_dfg,
    save_dfg,
)
from repro.dfg.transform import bind_dfg


class TestRoundTrip:
    def test_simple_roundtrip(self, diamond):
        restored = dfg_from_dict(dfg_to_dict(diamond))
        assert list(restored) == list(diamond)
        assert set(restored.edges()) == set(diamond.edges())
        assert restored.name == diamond.name
        for n in diamond:
            assert restored.operation(n).optype == diamond.operation(n).optype

    def test_bound_graph_roundtrip(self, diamond):
        bound = bind_dfg(diamond, {"v1": 0, "v2": 1, "v3": 1, "v4": 0})
        restored = dfg_from_dict(dfg_to_dict(bound.graph))
        assert restored.num_transfers == bound.num_transfers
        t = bound.graph.transfer_operations()[0]
        r = restored.operation(t.name)
        assert r.is_transfer
        assert r.source == t.source

    def test_file_roundtrip(self, diamond, tmp_path):
        path = tmp_path / "diamond.json"
        save_dfg(diamond, path)
        restored = load_dfg(path)
        assert set(restored.edges()) == set(diamond.edges())

    def test_format_marker(self, diamond):
        data = dfg_to_dict(diamond)
        assert data["format"] == FORMAT

    def test_unknown_format_rejected(self, diamond):
        data = dfg_to_dict(diamond)
        data["format"] = "other/9"
        with pytest.raises(ValueError, match="unsupported"):
            dfg_from_dict(data)

    def test_missing_format_rejected(self, diamond):
        data = dfg_to_dict(diamond)
        del data["format"]
        with pytest.raises(ValueError, match="unsupported"):
            dfg_from_dict(data)

    def test_output_is_json_serializable(self, diamond):
        json.dumps(dfg_to_dict(diamond))

    def test_kernel_roundtrip(self):
        from repro.kernels import load_kernel

        ewf = load_kernel("ewf")
        restored = dfg_from_dict(dfg_to_dict(ewf))
        assert restored.num_operations == 34
        assert set(restored.edges()) == set(ewf.edges())
