"""Property-based tests of the symbolic tracer.

Random expression trees over random inputs must always trace to valid,
acyclic DFGs whose operation count equals the number of arithmetic
nodes in the expression.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dfg.ops import default_registry
from repro.dfg.trace import Tracer
from repro.dfg.validate import validate_dfg


def build_expression(tr, inputs, structure, counter):
    """Interpret ``structure`` (a nested spec) into traced arithmetic.

    ``structure`` is either an int (pick input / constant) or a tuple
    ``(op, left, right)`` with op in 0..2 (+, -, *).
    """
    if isinstance(structure, int):
        if structure % 3 == 0:
            return tr.const(float(structure))
        return inputs[structure % len(inputs)]
    op, left, right = structure
    a = build_expression(tr, inputs, left, counter)
    b = build_expression(tr, inputs, right, counter)
    # both operands constants would fold in a real frontend, but the
    # tracer must still record a node with no operand edges.
    counter[0] += 1
    if op % 3 == 0:
        return a + b
    if op % 3 == 1:
        return a - b
    return a * b


expression = st.deferred(
    lambda: st.integers(min_value=1, max_value=20)
    | st.tuples(st.integers(0, 2), expression, expression)
)


@given(structure=expression, num_inputs=st.integers(min_value=1, max_value=4))
@settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
def test_traced_expression_is_valid_dfg(structure, num_inputs):
    tr = Tracer("prop")
    inputs = [tr.input(f"x{i}") for i in range(num_inputs)]
    counter = [0]
    result = build_expression(tr, inputs, structure, counter)
    g = tr.build()
    assert g.num_operations == counter[0]
    validate_dfg(g, default_registry())
    if counter[0]:
        assert result.node is not None
        assert result.node in g
