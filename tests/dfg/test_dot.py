"""Unit tests for Graphviz DOT export."""

from repro.dfg.dot import to_dot
from repro.dfg.transform import bind_dfg


class TestDot:
    def test_contains_all_nodes_and_edges(self, diamond):
        dot = to_dot(diamond)
        for n in diamond:
            assert f'"{n}"' in dot
        assert '"v1" -> "v2";' in dot

    def test_valid_digraph_syntax(self, diamond):
        dot = to_dot(diamond)
        assert dot.startswith('digraph "diamond" {')
        assert dot.rstrip().endswith("}")

    def test_placement_creates_cluster_subgraphs(self, diamond):
        bound = bind_dfg(diamond, {"v1": 0, "v2": 1, "v3": 1, "v4": 0})
        dot = to_dot(bound.graph, bound.placement)
        assert "subgraph cluster_0" in dot
        assert "subgraph cluster_1" in dot

    def test_transfers_drawn_as_diamonds(self, diamond):
        bound = bind_dfg(diamond, {"v1": 0, "v2": 1, "v3": 1, "v4": 0})
        dot = to_dot(bound.graph, bound.placement)
        assert "shape=diamond" in dot

    def test_title(self, diamond):
        dot = to_dot(diamond, title="My Graph")
        assert 'label="My Graph"' in dot
