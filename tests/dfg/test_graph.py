"""Unit tests for the DFG data structure."""

import pytest

from repro.dfg.graph import CycleError, Dfg, Operation
from repro.dfg.ops import ADD, MOVE, MULT, SUB


class TestOperation:
    def test_regular_operation(self):
        op = Operation("v1", ADD)
        assert op.name == "v1"
        assert not op.is_transfer
        assert op.source is None

    def test_transfer_must_be_move(self):
        with pytest.raises(ValueError, match="must have optype MOVE"):
            Operation("t1", ADD, is_transfer=True)

    def test_transfer_with_source(self):
        op = Operation("t1", MOVE, is_transfer=True, source="v1")
        assert op.source == "v1"

    def test_regular_cannot_have_source(self):
        with pytest.raises(ValueError, match="cannot carry"):
            Operation("v1", ADD, source="v0")

    def test_str(self):
        assert str(Operation("v1", ADD)) == "v1"


class TestConstruction:
    def test_add_and_lookup(self):
        g = Dfg("t")
        g.add_op("v1", ADD)
        assert "v1" in g
        assert g.operation("v1").optype is ADD

    def test_duplicate_name_rejected(self):
        g = Dfg("t")
        g.add_op("v1", ADD)
        with pytest.raises(ValueError, match="duplicate"):
            g.add_op("v1", MULT)

    def test_unknown_lookup_raises(self):
        g = Dfg("t")
        with pytest.raises(KeyError, match="unknown operation"):
            g.operation("nope")

    def test_edge_endpoints_must_exist(self):
        g = Dfg("t")
        g.add_op("v1", ADD)
        with pytest.raises(KeyError):
            g.add_edge("v1", "v2")
        with pytest.raises(KeyError):
            g.add_edge("v0", "v1")

    def test_self_loop_rejected(self):
        g = Dfg("t")
        g.add_op("v1", ADD)
        with pytest.raises(CycleError):
            g.add_edge("v1", "v1")

    def test_parallel_edges_collapsed(self):
        g = Dfg("t")
        g.add_op("v1", ADD)
        g.add_op("v2", ADD)
        g.add_edge("v1", "v2")
        g.add_edge("v1", "v2")
        assert g.num_edges == 1

    def test_remove_operation(self, diamond):
        diamond.remove_operation("v2")
        assert "v2" not in diamond
        assert diamond.successors("v1") == ("v3",)
        assert diamond.predecessors("v4") == ("v3",)

    def test_remove_unknown_raises(self, diamond):
        with pytest.raises(KeyError):
            diamond.remove_operation("nope")


class TestQueries:
    def test_counts(self, diamond):
        assert len(diamond) == 4
        assert diamond.num_operations == 4
        assert diamond.num_edges == 4
        assert diamond.num_regular == 4
        assert diamond.num_transfers == 0

    def test_adjacency(self, diamond):
        assert set(diamond.successors("v1")) == {"v2", "v3"}
        assert set(diamond.predecessors("v4")) == {"v2", "v3"}
        assert diamond.in_degree("v1") == 0
        assert diamond.out_degree("v1") == 2

    def test_inputs_outputs(self, diamond):
        assert diamond.inputs() == ("v1",)
        assert diamond.outputs() == ("v4",)

    def test_iteration_is_insertion_order(self, diamond):
        assert list(diamond) == ["v1", "v2", "v3", "v4"]

    def test_edges_iterates_all(self, diamond):
        assert set(diamond.edges()) == {
            ("v1", "v2"),
            ("v1", "v3"),
            ("v2", "v4"),
            ("v3", "v4"),
        }

    def test_regular_vs_transfer_partition(self):
        g = Dfg("t")
        g.add_op("v1", ADD)
        g.add_op("t1", MOVE, is_transfer=True, source="v1")
        g.add_op("v2", ADD)
        g.add_edge("v1", "t1")
        g.add_edge("t1", "v2")
        assert [o.name for o in g.regular_operations()] == ["v1", "v2"]
        assert [o.name for o in g.transfer_operations()] == ["t1"]
        assert g.num_transfers == 1


class TestAlgorithms:
    def test_topological_order(self, diamond):
        order = diamond.topological_order()
        pos = {n: i for i, n in enumerate(order)}
        for u, v in diamond.edges():
            assert pos[u] < pos[v]

    def test_topological_order_cached_and_invalidated(self, diamond):
        first = diamond.topological_order()
        assert diamond.topological_order() is first
        diamond.add_op("v5", ADD)
        diamond.add_edge("v4", "v5")
        assert diamond.topological_order() != first

    def test_cycle_detection(self):
        g = Dfg("t")
        g.add_op("v1", ADD)
        g.add_op("v2", ADD)
        # Build a cycle by poking the internals (add_edge cannot create
        # one on names alone, so simulate a corrupted graph).
        g.add_edge("v1", "v2")
        g._succs["v2"].append("v1")
        g._preds["v1"].append("v2")
        g._topo_cache = None
        with pytest.raises(CycleError):
            g.topological_order()

    def test_connected_components_single(self, diamond):
        assert diamond.num_components == 1

    def test_connected_components_multiple(self, wide8):
        assert wide8.num_components == 8

    def test_components_partition_nodes(self, wide8):
        comps = wide8.connected_components()
        names = sorted(n for comp in comps for n in comp)
        assert names == sorted(wide8)

    def test_descendants_ancestors(self, diamond):
        assert diamond.descendants("v1") == {"v2", "v3", "v4"}
        assert diamond.ancestors("v4") == {"v1", "v2", "v3"}
        assert diamond.descendants("v4") == set()
        assert diamond.ancestors("v1") == set()


class TestCopies:
    def test_copy_is_independent(self, diamond):
        g2 = diamond.copy()
        g2.add_op("v5", ADD)
        assert "v5" not in diamond
        g2.add_edge("v4", "v5")
        assert diamond.out_degree("v4") == 0

    def test_without_transfers_roundtrip(self, diamond):
        from repro.dfg.transform import bind_dfg

        bound = bind_dfg(diamond, {"v1": 0, "v2": 1, "v3": 0, "v4": 1})
        restored = bound.graph.without_transfers()
        assert set(restored) == set(diamond)
        assert set(restored.edges()) == set(diamond.edges())

    def test_to_networkx(self, diamond):
        nx_graph = diamond.to_networkx()
        assert nx_graph.number_of_nodes() == 4
        assert nx_graph.number_of_edges() == 4
        assert nx_graph.nodes["v3"]["optype"] == "mul"

    def test_repr(self, diamond):
        assert "ops=4" in repr(diamond)
