"""Golden-value regression net for the deterministic table cells.

B-INIT and PCC are deterministic, so their ``(L, M)`` on fixed (kernel,
datapath) cells are exact regression anchors: any change to the cost
function, the scheduler, a kernel's structure, or the sweep will show
up here immediately.  (B-ITER cells are pinned only by inequality — its
multi-start search is deterministic too, but far more sensitive to
benign heuristic tweaks.)

If an intentional algorithm change shifts these values, re-measure and
update — and re-check EXPERIMENTS.md's tables while at it.
"""

import pytest

from repro import bind, bind_initial, parse_datapath
from repro.baselines import pcc_bind
from repro.kernels import load_kernel

# (kernel, datapath, B-INIT (L, M), PCC (L, M)) at N_B=2, lat(move)=1.
GOLDEN_CELLS = [
    ("arf", "|1,1|1,1|", (12, 3), (12, 3)),
    ("arf", "|1,2|1,2|", (10, 3), (10, 3)),
    ("ewf", "|2,1|1,1|", (15, 5), (14, 4)),
    ("fft", "|2,1|2,1|1,2|", (8, 5), (9, 5)),
    ("dct-dif", "|2,1|2,1|", (10, 4), (10, 8)),
    ("dct-lee", "|2,2|2,1|", (11, 1), (12, 5)),
    ("dct-dit", "|3,1|2,2|1,3|", (11, 8), (11, 6)),
]


@pytest.mark.parametrize("kernel,spec,init_lm,pcc_lm", GOLDEN_CELLS)
def test_b_init_golden(kernel, spec, init_lm, pcc_lm):
    dfg = load_kernel(kernel)
    dp = parse_datapath(spec, num_buses=2)
    result = bind_initial(dfg, dp)
    assert (result.latency, result.num_transfers) == init_lm


@pytest.mark.parametrize("kernel,spec,init_lm,pcc_lm", GOLDEN_CELLS)
def test_pcc_golden(kernel, spec, init_lm, pcc_lm):
    dfg = load_kernel(kernel)
    dp = parse_datapath(spec, num_buses=2)
    result = pcc_bind(dfg, dp)
    assert (result.latency, result.num_transfers) == pcc_lm


@pytest.mark.parametrize("kernel,spec,init_lm,pcc_lm", GOLDEN_CELLS)
def test_b_iter_dominates_both(kernel, spec, init_lm, pcc_lm):
    """The headline inequality on every golden cell: B-ITER is at least
    as good as both its own initial phase and PCC."""
    dfg = load_kernel(kernel)
    dp = parse_datapath(spec, num_buses=2)
    result = bind(dfg, dp)
    assert result.latency <= init_lm[0]
    assert result.latency <= pcc_lm[0]
