"""Reproductions of the paper's illustrative figures (1-6).

Each test class rebuilds the exact scenario one of the paper's figures
shows and asserts the behaviour the figure illustrates.  Together they
cover the paper's entire set of figures (the measured evaluation lives in
the Tables 1/2 harness under ``benchmarks/``).
"""

import pytest

from repro.core.binding import Binding
from repro.core.cost import trcost
from repro.core.initial import initial_binding
from repro.core.iterative import boundary_operations, candidate_moves
from repro.core.loadprofile import ProfileSet, operation_window
from repro.core.ordering import paper_order
from repro.core.quality import quality_qm, quality_qu
from repro.datapath.parse import parse_datapath
from repro.dfg.graph import Dfg
from repro.dfg.ops import ADD, ALU, default_registry
from repro.dfg.timing import compute_timing
from repro.dfg.transform import bind_dfg, transfer_name
from repro.schedule.list_scheduler import list_schedule


class TestFigure1:
    """Figure 1: binding rewrites the DFG with a transfer operation.

    v2 and v3 bound to different clusters force data transfer t1 into
    the bound DFG, replacing the direct v2 -> v3 dependency.
    """

    def test_transfer_inserted_on_cut_edge(self, figure1_dfg):
        binding = {"v1": 1, "v2": 0, "v3": 1, "v4": 1}
        bound = bind_dfg(figure1_dfg, binding)
        t1 = transfer_name("v2", 1)
        assert t1 in bound.graph
        assert bound.graph.predecessors(t1) == ("v2",)
        assert bound.graph.successors(t1) == ("v3",)

    def test_original_dfg_recoverable(self, figure1_dfg):
        binding = {"v1": 1, "v2": 0, "v3": 1, "v4": 1}
        bound = bind_dfg(figure1_dfg, binding)
        original = bound.graph.without_transfers()
        assert set(original.edges()) == set(figure1_dfg.edges())


class TestFigure2:
    """Figure 2: the three-component lexicographic binding order."""

    @pytest.fixture
    def figure2_dfg(self):
        g = Dfg("figure2")
        for n in ("v1", "v2", "v3", "v4", "v5", "v6"):
            g.add_op(n, ADD)
        g.add_edge("v1", "v3")
        g.add_edge("v2", "v4")
        g.add_edge("v3", "v5")
        g.add_edge("v3", "v6")
        g.add_edge("v4", "v6")
        return g

    def test_binding_order_is_v1_through_v6(self, figure2_dfg, registry):
        timing = compute_timing(figure2_dfg, registry)
        order = paper_order(figure2_dfg, timing, registry)
        assert order == ["v1", "v2", "v3", "v4", "v5", "v6"]


class TestFigure3:
    """Figure 3: direct-data-dependency and common-consumer penalties."""

    @pytest.fixture
    def figure3_dfg(self):
        g = Dfg("figure3")
        for n in ("v1", "v2", "v", "v3"):
            g.add_op(n, ADD)
        g.add_edge("v1", "v")
        g.add_edge("v2", "v3")
        g.add_edge("v", "v3")
        return g

    def test_trcost_v_to_b_is_two(self, figure3_dfg):
        A, B = 0, 1
        bn = {"v1": A, "v2": A}
        penalty, _ = trcost(figure3_dfg, "v", B, bn)
        # trcost_dd(v, B) = 1 (operand from v1 in A)
        # trcost_cc(v, B) = 1 (common consumer v3 with v2 in A)
        assert penalty == 2

    def test_trcost_v_to_a_is_zero(self, figure3_dfg):
        bn = {"v1": 0, "v2": 0}
        penalty, _ = trcost(figure3_dfg, "v", 0, bn)
        assert penalty == 0


class TestFigure4:
    """Figure 4: the load profile over L_PR scheduling steps."""

    def test_profile_has_lpr_levels_and_time_frames(self, registry):
        g = Dfg("f4")
        for n in ("a", "b", "c"):
            g.add_op(n, ADD)
        g.add_edge("a", "b")
        dp = parse_datapath("|1,1|1,1|", num_buses=2)
        ps = ProfileSet(g, dp, lpr=4)
        assert ps.lpr == 4
        # op 'c' is free-floating: mobility 3, height 1/4 across 4 levels
        w = operation_window(ps.timing, "c", dii=1)
        assert (w.start, w.end) == (0, 3)
        assert w.height == pytest.approx(0.25)
        # chain ops a->b have mobility 2 at L_PR=4
        wa = operation_window(ps.timing, "a", dii=1)
        assert wa.height == pytest.approx(1 / 3)


class TestFigure5:
    """Figure 5: a boundary perturbation re-binds v2 across the cut.

    Chain v1 -> v2 -> v3 with v1, v2 in cluster A and v3 in cluster B:
    v2 is a boundary operation and B is its candidate destination;
    moving it shifts the transfer up (it now carries v1's value).
    """

    @pytest.fixture
    def figure5(self):
        g = Dfg("figure5")
        for n in ("v1", "v2", "v3"):
            g.add_op(n, ADD)
        g.add_edge("v1", "v2")
        g.add_edge("v2", "v3")
        return g, Binding({"v1": 0, "v2": 0, "v3": 1})

    def test_v2_is_boundary_with_candidate_b(self, figure5, two_cluster):
        g, binding = figure5
        assert "v2" in boundary_operations(g, binding)
        assert candidate_moves(g, two_cluster, binding, "v2") == (1,)

    def test_perturbation_shifts_transfer_up(self, figure5, two_cluster):
        g, binding = figure5
        before = bind_dfg(g, binding)
        assert transfer_name("v2", 1) in before.graph

        after = bind_dfg(g, binding.rebind(("v2", 1)))
        assert transfer_name("v2", 1) not in after.graph
        assert transfer_name("v1", 1) in after.graph  # shifted up
        assert after.num_transfers == before.num_transfers


class TestFigure6:
    """Figure 6: Q_U separates bindings the naive latency cost cannot."""

    def test_qu_prefers_fewer_last_step_completions(self):
        g = Dfg("f6")
        for n in ("w", "x", "y", "z"):
            g.add_op(n, ADD)
        dp = parse_datapath("|2,1|2,1|", num_buses=2)
        a = list_schedule(bind_dfg(g, {n: 0 for n in g}), dp)
        b = list_schedule(bind_dfg(g, {"w": 0, "x": 0, "y": 0, "z": 1}), dp)
        assert a.latency == b.latency  # naive cost sees no difference
        assert quality_qu(b) < quality_qu(a)  # Q_U does

    def test_comparison_is_lexicographic(self):
        assert (10, 2, 5) < (10, 3, 0)
        assert (9, 9, 9) < (10, 0, 0)
