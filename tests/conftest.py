"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.datapath.model import Cluster, Datapath
from repro.datapath.parse import parse_datapath
from repro.dfg.graph import Dfg
from repro.dfg.ops import ADD, ALU, MUL, MULT, SUB, default_registry


@pytest.fixture
def registry():
    """The paper's default all-unit-latency registry."""
    return default_registry()


@pytest.fixture
def two_cluster():
    """The |1,1|1,1| machine from Table 1, N_B = 2."""
    return parse_datapath("|1,1|1,1|", num_buses=2)


@pytest.fixture
def three_cluster():
    """The heterogeneous |2,1|1,1|1,2| machine, N_B = 2."""
    return parse_datapath("|2,1|1,1|1,2|", num_buses=2)


@pytest.fixture
def diamond():
    """A 4-op diamond: v1 feeds v2 and v3, both feed v4."""
    g = Dfg("diamond")
    g.add_op("v1", ADD)
    g.add_op("v2", ADD)
    g.add_op("v3", MULT)
    g.add_op("v4", ADD)
    g.add_edge("v1", "v2")
    g.add_edge("v1", "v3")
    g.add_edge("v2", "v4")
    g.add_edge("v3", "v4")
    return g


@pytest.fixture
def chain5():
    """A 5-op dependency chain of additions."""
    g = Dfg("chain5")
    prev = None
    for i in range(1, 6):
        g.add_op(f"v{i}", ADD)
        if prev:
            g.add_edge(prev, f"v{i}")
        prev = f"v{i}"
    return g


@pytest.fixture
def wide8():
    """8 independent additions — maximum parallelism, no edges."""
    g = Dfg("wide8")
    for i in range(1, 9):
        g.add_op(f"v{i}", ADD)
    return g


@pytest.fixture
def figure1_dfg():
    """The 4-op DFG of the paper's Figure 1 (v1, v2 -> v3 -> v4 shape).

    v1 and v2 are independent producers; v3 consumes both; v4 consumes
    v3.  Binding v2 and v3 to different clusters forces transfer t1.
    """
    g = Dfg("figure1")
    g.add_op("v1", ADD)
    g.add_op("v2", ADD)
    g.add_op("v3", ADD)
    g.add_op("v4", ADD)
    g.add_edge("v1", "v3")
    g.add_edge("v2", "v3")
    g.add_edge("v3", "v4")
    return g
