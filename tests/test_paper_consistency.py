"""Consistency checks between the code and the paper's stated setup.

These tests pin the constants and configuration facts the paper states
explicitly, so that refactors cannot silently drift away from the
published algorithm.
"""

import pytest

from repro.core.cost import CostParams
from repro.datapath.library import TABLE1_CONFIGS, TABLE2_SWEEP
from repro.dfg.ops import ADD, BUS, MOVE, MULT, SUB, default_registry
from repro.kernels import KERNEL_STATS


class TestEquationConstants:
    def test_cost_weights_match_section_312(self):
        """alpha = beta = 1.0 and gamma = 1.1 (Equation 1)."""
        params = CostParams()
        assert params.alpha == 1.0
        assert params.beta == 1.0
        assert params.gamma == 1.1

    def test_default_registry_matches_table1_setup(self):
        """Table 1: all operations take one cycle; fully pipelined."""
        reg = default_registry()
        for optype in (ADD, SUB, MULT, MOVE):
            assert reg.latency(optype) == 1
            assert reg.dii(optype) == 1

    def test_move_runs_on_bus(self):
        """futype(move) = BUS (Section 2)."""
        assert default_registry().futype(MOVE) == BUS


class TestEvaluationSetup:
    def test_table1_has_33_cells(self):
        assert sum(len(v) for v in TABLE1_CONFIGS.values()) == 32 + 1

    def test_table2_sweep_matches_paper(self):
        assert TABLE2_SWEEP == ((1, 1), (2, 1), (1, 2), (2, 2))

    def test_kernel_population(self):
        """Seven kernels, N_V totals as in the table sub-headers."""
        assert len(KERNEL_STATS) == 7
        assert sum(nv for nv, _, _ in KERNEL_STATS.values()) == (
            41 + 49 + 48 + 96 + 38 + 34 + 28
        )

    def test_every_table1_machine_is_two_bus(self):
        from repro.datapath.library import table1_datapaths

        for kernel in TABLE1_CONFIGS:
            for dp in table1_datapaths(kernel):
                assert dp.num_buses == 2
                assert dp.move_latency == 1


class TestAbstractionChoices:
    def test_fus_read_at_most_two_operands(self):
        """Section 2: every FU reads up to two operands — enforced by
        kernel validation."""
        from repro.dfg.validate import validate_dfg
        from repro.kernels import KERNELS, load_kernel

        for name in KERNELS:
            validate_dfg(load_kernel(name), default_registry(), max_operands=2)

    def test_transfer_latency_definition(self):
        """lat(move) is 'cycles to produce the result at the specified
        location': a transferred value is usable exactly lat(move)
        cycles after the move issues."""
        from repro.datapath.parse import parse_datapath
        from repro.dfg.graph import Dfg
        from repro.dfg.transform import bind_dfg
        from repro.schedule.list_scheduler import list_schedule

        g = Dfg("t")
        g.add_op("p", ADD)
        g.add_op("c", ADD)
        g.add_edge("p", "c")
        for lat in (1, 2, 3):
            dp = parse_datapath("|1,1|1,1|", num_buses=1, move_latency=lat)
            s = list_schedule(bind_dfg(g, {"p": 0, "c": 1}), dp)
            assert s.latency == 2 + lat
