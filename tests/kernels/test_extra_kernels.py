"""Tests for the extra (non-paper) kernel library."""

import pytest

from repro.core.driver import bind_initial
from repro.datapath.parse import parse_datapath
from repro.dfg.ops import MUL, default_registry
from repro.dfg.timing import critical_path_length
from repro.dfg.validate import validate_dfg
from repro.kernels.extra import (
    EXTRA_KERNELS,
    build_dot_product,
    build_fft8,
    build_fir,
    build_iir_biquad,
    build_matmul,
)


class TestStructures:
    @pytest.mark.parametrize("name", sorted(EXTRA_KERNELS))
    def test_valid(self, name, registry):
        validate_dfg(EXTRA_KERNELS[name](), registry)

    def test_fir_is_latency_bound(self, registry):
        g = build_fir(16)
        # 16 muls + 15 adds; the accumulate chain (first mul + 15 adds)
        # is the critical path.
        assert g.num_operations == 31
        assert critical_path_length(g, registry) == 16

    def test_fir_rejects_tiny(self):
        with pytest.raises(ValueError):
            build_fir(1)

    def test_dot_product_log_depth(self, registry):
        g = build_dot_product(8)
        assert g.num_operations == 8 + 7
        assert critical_path_length(g, registry) == 4  # mul + 3 adds

    def test_dot_product_power_of_two(self):
        with pytest.raises(ValueError):
            build_dot_product(6)

    def test_matmul_counts(self, registry):
        g = build_matmul(3)
        muls = sum(
            1
            for op in g.regular_operations()
            if registry.futype(op.optype) == MUL
        )
        assert muls == 27
        assert g.num_operations == 27 + 9 * 2  # n^2 * (n-1) adds

    def test_matmul_components_per_output(self):
        g = build_matmul(2)
        # each output element's reduction tree is independent
        assert g.num_components == 4

    def test_biquad_cascade_depth_grows(self, registry):
        d1 = critical_path_length(build_iir_biquad(1), registry)
        d3 = critical_path_length(build_iir_biquad(3), registry)
        assert d3 > d1

    def test_fft8_structure(self, registry):
        g = build_fft8()
        # Like DCT-DIF, the first butterfly rank splits the dataflow
        # into a sum half and a difference half that never share an
        # operation (inputs are live-ins, not nodes): two components.
        assert g.num_components == 2
        assert g.num_operations == 60
        assert critical_path_length(g, registry) == 6


class TestBindability:
    @pytest.mark.parametrize("name", sorted(EXTRA_KERNELS))
    def test_binds_on_two_cluster_machine(self, name):
        g = EXTRA_KERNELS[name]()
        dp = parse_datapath("|2,1|1,1|", num_buses=2)
        result = bind_initial(g, dp)
        assert result.latency >= critical_path_length(g, dp.registry)
