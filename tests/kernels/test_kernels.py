"""Tests for the benchmark kernels: the paper's table-header stats."""

import pytest

from repro.dfg.ops import ALU, MUL, default_registry
from repro.dfg.timing import critical_path_length
from repro.dfg.validate import validate_dfg
from repro.kernels import KERNEL_STATS, KERNELS, kernel_summary, load_kernel

ALL_KERNELS = sorted(KERNELS)


class TestPaperStats:
    @pytest.mark.parametrize("name", ALL_KERNELS)
    def test_nv_ncc_lcp_match_paper(self, name):
        """The sub-header stats of Table 1 (N_V, N_CC, L_CP)."""
        dfg = load_kernel(name)
        expected_nv, expected_ncc, expected_lcp = KERNEL_STATS[name]
        assert dfg.num_operations == expected_nv
        assert dfg.num_components == expected_ncc
        assert critical_path_length(dfg, default_registry()) == expected_lcp

    @pytest.mark.parametrize("name", ALL_KERNELS)
    def test_structurally_valid(self, name):
        validate_dfg(load_kernel(name), default_registry())

    @pytest.mark.parametrize("name", ALL_KERNELS)
    def test_deterministic_construction(self, name):
        g1, g2 = load_kernel(name), load_kernel(name)
        assert list(g1) == list(g2)
        assert set(g1.edges()) == set(g2.edges())

    def test_ewf_operation_mix(self):
        """The classic EWF mix: 26 additive ops, 8 multiplications."""
        info = kernel_summary("ewf")
        assert info.num_alu_ops == 26
        assert info.num_mul_ops == 8

    def test_arf_operation_mix(self):
        """The classic ARF mix: 12 additive ops, 16 multiplications."""
        info = kernel_summary("arf")
        assert info.num_alu_ops == 12
        assert info.num_mul_ops == 16

    def test_dct_dit2_is_two_copies(self):
        dit = load_kernel("dct-dit")
        dit2 = load_kernel("dct-dit-2")
        assert dit2.num_operations == 2 * dit.num_operations
        comps = dit2.connected_components()
        assert sorted(len(c) for c in comps) == [48, 48]

    def test_dif_components_are_even_and_odd_halves(self):
        dif = load_kernel("dct-dif")
        sizes = sorted(len(c) for c in dif.connected_components())
        assert sum(sizes) == 41
        assert len(sizes) == 2


class TestRegistry:
    def test_unknown_kernel(self):
        with pytest.raises(KeyError, match="unknown kernel"):
            load_kernel("mpeg")

    def test_case_insensitive(self):
        assert load_kernel("EWF").num_operations == 34

    def test_summary_fields(self):
        info = kernel_summary("fft")
        assert info.name == "fft"
        assert info.num_operations == info.num_alu_ops + info.num_mul_ops


class TestBindability:
    @pytest.mark.parametrize("name", ALL_KERNELS)
    def test_bindable_on_every_table1_datapath(self, name):
        from repro.datapath.library import table1_datapaths

        dfg = load_kernel(name)
        for dp in table1_datapaths(name):
            dp.check_bindable(dfg)

    @pytest.mark.parametrize("name", ALL_KERNELS)
    def test_max_two_operands(self, name):
        """The paper's FUs read at most two operands."""
        dfg = load_kernel(name)
        for op in dfg.operations():
            assert dfg.in_degree(op.name) <= 2
