"""End-to-end integration tests across the whole pipeline."""

import pytest

from repro import (
    bind,
    bind_initial,
    parse_datapath,
    validate_binding,
    validate_schedule,
)
from repro.baselines import (
    annealing_bind,
    exhaustive_bind,
    pcc_bind,
    random_search,
    uas_bind,
)
from repro.dfg.generators import chain_dfg, random_layered_dfg
from repro.dfg.timing import critical_path_length
from repro.kernels import KERNELS, load_kernel


class TestFullPipelinePerKernel:
    @pytest.mark.parametrize("kernel", sorted(KERNELS))
    def test_bind_on_two_cluster_machine(self, kernel):
        dfg = load_kernel(kernel)
        dp = parse_datapath("|2,1|1,1|", num_buses=2)
        result = bind(dfg, dp, iter_starts=1)
        validate_binding(result.binding, dfg, dp)
        validate_schedule(result.schedule)
        lcp = critical_path_length(dfg, dp.registry)
        assert result.latency >= lcp
        # every binding algorithm output beats serial execution
        assert result.latency <= dfg.num_operations


class TestOptimalityOnSmallGraphs:
    """The paper verified some B-INIT/B-ITER results optimal; we check
    the same on exhaustively-solvable instances."""

    @pytest.mark.parametrize("seed", range(5))
    def test_biter_within_one_cycle_of_optimal(self, seed):
        g = random_layered_dfg(9, seed=seed)
        dp = parse_datapath("|1,1|1,1|", num_buses=1)
        optimal = exhaustive_bind(g, dp)
        ours = bind(g, dp)
        assert ours.latency <= optimal.latency + 1

    def test_biter_optimal_on_chain(self):
        g = chain_dfg(6)
        dp = parse_datapath("|1,1|1,1|", num_buses=1)
        optimal = exhaustive_bind(g, dp)
        ours = bind(g, dp)
        assert ours.latency == optimal.latency == 6


class TestCrossAlgorithmConsistency:
    def test_all_algorithms_agree_on_trivial_machine(self):
        # On a single cluster every algorithm must find the same L
        # (resource-constrained minimum) and zero transfers.
        g = random_layered_dfg(20, seed=3)
        dp = parse_datapath("|2,2|", num_buses=1)
        results = {
            "b-init": bind_initial(g, dp),
            "b-iter": bind(g, dp, iter_starts=1),
            "pcc": pcc_bind(g, dp),
            "uas": uas_bind(g, dp),
        }
        latencies = {name: r.latency for name, r in results.items()}
        transfers = {name: r.num_transfers for name, r in results.items()}
        assert len(set(latencies.values())) == 1, latencies
        assert set(transfers.values()) == {0}

    def test_heuristics_beat_random_floor(self):
        g = random_layered_dfg(30, seed=7)
        dp = parse_datapath("|1,1|1,1|1,1|", num_buses=2)
        floor = random_search(g, dp, samples=25, seed=0)
        assert bind(g, dp, iter_starts=1).latency <= floor.latency
        assert pcc_bind(g, dp).latency <= floor.latency + 1

    def test_annealing_comparable_to_binit(self):
        g = random_layered_dfg(20, seed=9)
        dp = parse_datapath("|1,1|1,1|", num_buses=2)
        sa = annealing_bind(g, dp, seed=0)
        init = bind_initial(g, dp)
        # annealing explores much more; B-INIT should stay within 2 cycles
        assert init.latency <= sa.latency + 2


class TestMoveLatencySweeps:
    def test_latency_monotonic_in_move_cost(self):
        dfg = load_kernel("fft")
        spec = "|2,2|2,1|2,2|3,1|1,1|"
        results = {}
        for lm in (1, 2):
            dp = parse_datapath(spec, num_buses=1, move_latency=lm)
            results[lm] = bind_initial(dfg, dp).latency
        assert results[2] >= results[1]

    def test_latency_monotonic_in_buses(self):
        dfg = load_kernel("fft")
        spec = "|2,2|2,1|2,2|3,1|1,1|"
        results = {}
        for nb in (1, 2):
            dp = parse_datapath(spec, num_buses=nb)
            results[nb] = bind_initial(dfg, dp).latency
        assert results[2] <= results[1]
