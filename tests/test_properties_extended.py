"""Property-based tests over the extension subsystems.

Covers invariants of unrolling, register pressure, latency bounds, VLIW
emission, and modulo scheduling on randomly generated loops.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.pressure import register_pressure
from repro.codegen import emit_vliw
from repro.core.binding import Binding
from repro.core.driver import bind_initial
from repro.datapath.parse import parse_datapath
from repro.dfg.generators import random_layered_dfg
from repro.dfg.timing import critical_path_length
from repro.dfg.transform import bind_dfg
from repro.dfg.unroll import unroll, unroll_chained
from repro.modulo import CarriedEdge, LoopDfg, mii, modulo_bind
from repro.schedule.bounds import latency_lower_bound
from repro.schedule.list_scheduler import list_schedule

dfg_strategy = st.builds(
    random_layered_dfg,
    num_ops=st.integers(min_value=2, max_value=30),
    seed=st.integers(min_value=0, max_value=5000),
    width=st.integers(min_value=1, max_value=6),
)

datapath_strategy = st.builds(
    lambda shape, buses: parse_datapath(
        "|" + "|".join(f"{a},{m}" for a, m in shape) + "|", num_buses=buses
    ),
    shape=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=2),
            st.integers(min_value=1, max_value=2),
        ),
        min_size=1,
        max_size=3,
    ),
    buses=st.integers(min_value=1, max_value=2),
)

relaxed = settings(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@given(dfg=dfg_strategy, factor=st.integers(min_value=1, max_value=4))
@relaxed
def test_unroll_invariants(dfg, factor):
    u = unroll(dfg, factor)
    assert u.num_operations == factor * dfg.num_operations
    assert u.num_components == factor * dfg.num_components
    reg = parse_datapath("|1,1|").registry
    assert critical_path_length(u, reg) == critical_path_length(dfg, reg)


@given(dfg=dfg_strategy, factor=st.integers(min_value=2, max_value=3))
@relaxed
def test_unroll_chained_deepens_when_carried(dfg, factor):
    outs = dfg.outputs()
    ins = [n for n in dfg.inputs() if dfg.in_degree(n) < 2]
    if not outs or not ins:
        return
    carry = {outs[0]: [ins[0]]}
    if outs[0] == ins[0]:
        return
    u = unroll_chained(dfg, factor, carry)
    reg = parse_datapath("|1,1|").registry
    assert critical_path_length(u, reg) >= critical_path_length(dfg, reg)
    assert u.num_operations == factor * dfg.num_operations


@given(dfg=dfg_strategy, datapath=datapath_strategy, salt=st.integers(0, 99))
@relaxed
def test_pressure_invariants(dfg, datapath, salt):
    rng = random.Random(salt)
    binding = Binding(
        {
            op.name: rng.choice(datapath.target_set(op.optype))
            for op in dfg.regular_operations()
        }
    )
    schedule = list_schedule(bind_dfg(dfg, binding), datapath)
    report = register_pressure(schedule)
    # peak pressure cannot exceed the number of tracked values, and a
    # cluster with no ops has zero pressure
    assert 0 < report.peak <= report.total_values
    for c in range(datapath.num_clusters):
        if not binding.cluster_members(c) and not any(
            schedule.bound.placement[t.name] == c
            for t in schedule.bound.graph.transfer_operations()
        ):
            assert report.per_cluster[c] == 0


@given(dfg=dfg_strategy, datapath=datapath_strategy)
@relaxed
def test_bounds_admissible(dfg, datapath):
    lb = latency_lower_bound(dfg, datapath)
    result = bind_initial(dfg, datapath)
    assert lb <= result.latency


@given(dfg=dfg_strategy, datapath=datapath_strategy, salt=st.integers(0, 99))
@relaxed
def test_codegen_invariants(dfg, datapath, salt):
    rng = random.Random(salt)
    binding = Binding(
        {
            op.name: rng.choice(datapath.target_set(op.optype))
            for op in dfg.regular_operations()
        }
    )
    schedule = list_schedule(bind_dfg(dfg, binding), datapath)
    program = emit_vliw(schedule)
    assert program.num_cycles == schedule.latency
    busy = [
        s for w in program.words for s in w.slots if s.opcode != "nop"
    ]
    assert len(busy) == len(schedule.bound.graph)
    # registers unique per value
    assert len(set(program.registers.values())) == len(program.registers)


@given(
    dfg=st.builds(
        random_layered_dfg,
        num_ops=st.integers(min_value=2, max_value=16),
        seed=st.integers(min_value=0, max_value=500),
    ),
    datapath=datapath_strategy,
    carry_count=st.integers(min_value=0, max_value=2),
)
@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_modulo_bind_invariants(dfg, datapath, carry_count):
    outs = dfg.outputs()
    carried = [
        CarriedEdge(outs[i % len(outs)], outs[i % len(outs)], 1)
        for i in range(min(carry_count, len(outs)))
    ]
    loop = LoopDfg(dfg, carried)
    result = modulo_bind(loop, datapath)
    assert result.ii >= mii(loop, datapath)
    result.schedule.validate()
    # one iteration's span covers every operation at least once
    assert result.schedule.schedule_length >= 1
