"""The declarative sweep grammar: expansion, validation, summaries."""

import pytest

from repro.runner import ResultCache
from repro.search.registry import ConfigError
from repro.tune import (
    DatapathSpec,
    SweepSpec,
    run_sweep,
    summarize_sweep,
)


def _spec(**data):
    return SweepSpec.from_dict(data)


class TestFromDict:
    def test_cross_product(self):
        spec = _spec(
            kernels=["ewf", "arf"],
            datapaths=["|2,1|1,1|", {"spec": "|1,1|1,1|", "buses": 1}],
            strategies=["pcc"],
        )
        assert [(k, m.spec) for k, m in spec.cells] == [
            ("ewf", "|2,1|1,1|"),
            ("ewf", "|1,1|1,1|"),
            ("arf", "|2,1|1,1|"),
            ("arf", "|1,1|1,1|"),
        ]
        assert spec.cells[1][1].num_buses == 1
        assert spec.cells[0][1].num_buses == 2

    def test_explicit_cells(self):
        spec = _spec(
            cells=[["ewf", "|2,1|1,1|"], {"kernel": "arf",
                                          "datapath": {"spec": "|1,1|1,1|"}}],
            strategies=["b-init"],
        )
        assert [k for k, _ in spec.cells] == ["ewf", "arf"]

    def test_grid_expansion_sorted_keys(self):
        spec = _spec(
            cells=[["arf", "|1,1|1,1|"]],
            strategies=[
                {"name": "b-init", "grid": {"gamma": [0.5, 1.1],
                                            "direction": ["forward"]}}
            ],
        )
        assert [v.label for v in spec.variants] == [
            "b-init[direction=forward,gamma=0.5]",
            "b-init[direction=forward,gamma=1.1]",
        ]

    def test_base_config_merged_under_grid(self):
        spec = _spec(
            cells=[["arf", "|1,1|1,1|"]],
            strategies=[
                {"name": "b-iter", "config": {"iter_starts": 1},
                 "grid": {"quality": ["latency", "qu"]}}
            ],
        )
        for variant in spec.variants:
            assert variant.config_dict()["iter_starts"] == 1
        assert [v.label for v in spec.variants] == [
            "b-iter[quality=latency]",
            "b-iter[quality=qu]",
        ]

    def test_explicit_label(self):
        spec = _spec(
            cells=[["arf", "|1,1|1,1|"]],
            strategies=[{"name": "b-iter", "config": {"iter_starts": 4},
                         "label": "wide"}],
        )
        assert spec.variants[0].label == "wide"

    def test_round_trip(self):
        spec = _spec(
            kernels=["arf"],
            datapaths=["|1,1|1,1|"],
            strategies=[{"name": "b-init", "grid": {"gamma": [0.5, 2.0]}}],
        )
        again = SweepSpec.from_dict(spec.to_dict())
        assert again == spec

    def test_compile_order_and_keys_stable(self):
        data = {
            "kernels": ["ewf", "arf"],
            "datapaths": ["|1,1|1,1|"],
            "strategies": ["pcc", "b-init"],
        }
        first = [j.cache_key() for j in SweepSpec.from_dict(data).compile()]
        second = [j.cache_key() for j in SweepSpec.from_dict(data).compile()]
        assert first == second
        assert len(first) == len(set(first)) == 4


class TestFromDictErrors:
    def test_missing_strategies(self):
        with pytest.raises(ConfigError, match="non-empty 'strategies'"):
            _spec(kernels=["ewf"], datapaths=["|1,1|1,1|"])

    def test_unknown_top_level_key(self):
        with pytest.raises(ConfigError, match="unknown keys"):
            _spec(kernels=["ewf"], datapaths=["|1,1|1,1|"],
                  strategies=["pcc"], budget=3)

    def test_cells_and_kernels_conflict(self):
        with pytest.raises(ConfigError, match="not both"):
            _spec(cells=[["ewf", "|1,1|1,1|"]], kernels=["arf"],
                  datapaths=["|1,1|1,1|"], strategies=["pcc"])

    def test_missing_datapaths(self):
        with pytest.raises(ConfigError, match="'kernels' and 'datapaths'"):
            _spec(kernels=["ewf"], strategies=["pcc"])

    def test_unknown_kernel_fails_fast(self):
        with pytest.raises(KeyError, match="nosuch"):
            _spec(kernels=["nosuch"], datapaths=["|1,1|1,1|"],
                  strategies=["pcc"])

    def test_unknown_strategy_fails_fast(self):
        with pytest.raises(Exception, match="nosuch"):
            _spec(kernels=["ewf"], datapaths=["|1,1|1,1|"],
                  strategies=["nosuch"])

    def test_bad_grid_value_names_variant(self):
        with pytest.raises(ConfigError, match=r"b-init.*gamma"):
            _spec(kernels=["ewf"], datapaths=["|1,1|1,1|"],
                  strategies=[{"name": "b-init",
                               "grid": {"gamma": ["not-a-float"]}}])

    def test_config_grid_overlap(self):
        with pytest.raises(ConfigError, match="both"):
            _spec(kernels=["ewf"], datapaths=["|1,1|1,1|"],
                  strategies=[{"name": "b-init",
                               "config": {"gamma": 1.1},
                               "grid": {"gamma": [0.5]}}])

    def test_label_cannot_cover_grid(self):
        with pytest.raises(ConfigError, match="label"):
            _spec(kernels=["ewf"], datapaths=["|1,1|1,1|"],
                  strategies=[{"name": "b-init", "label": "x",
                               "grid": {"gamma": [0.5, 1.1]}}])

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ConfigError, match="duplicate variant labels"):
            _spec(kernels=["ewf"], datapaths=["|1,1|1,1|"],
                  strategies=["pcc", "pcc"])

    def test_empty_grid_values(self):
        with pytest.raises(ConfigError, match="non-empty list"):
            _spec(kernels=["ewf"], datapaths=["|1,1|1,1|"],
                  strategies=[{"name": "b-init", "grid": {"gamma": []}}])


class TestRunAndSummarize:
    def test_sweep_to_comparison_rows(self):
        spec = _spec(
            cells=[["arf", "|1,1|1,1|"]],
            strategies=["pcc", {"name": "b-iter",
                                "config": {"iter_starts": 1}}],
        )
        results = run_sweep(spec)
        assert all(r.ok for r in results)
        rows = summarize_sweep(spec, results)
        assert len(rows) == 1
        row = rows[0]
        assert row.kernel == "arf"
        assert row.datapath_spec == "|1,1|1,1|"
        labels = [label for label, _ in row.cells]
        assert labels == ["pcc", "b-iter[iter_starts=1]"]
        cells = dict(row.cells)
        assert cells[labels[1]].latency <= cells["pcc"].latency

    def test_portfolio_is_sweepable(self):
        spec = _spec(
            cells=[["arf", "|1,1|1,1|"]],
            strategies=[{"name": "portfolio",
                         "config": {"racers": "pcc,b-init",
                                    "max_evals": 200, "seed": 0}}],
        )
        results = run_sweep(spec)
        assert results[0].ok
        rows = summarize_sweep(spec, results)
        (label, cell), = rows[0].cells
        assert label.startswith("portfolio[")
        assert cell.search_stats.get("racers")

    def test_sweep_results_cacheable(self, tmp_path):
        spec = _spec(
            cells=[["arf", "|1,1|1,1|"]],
            strategies=["b-init"],
        )
        cache = ResultCache(tmp_path / "cache")
        cold = run_sweep(spec, cache=cache)
        warm_cache = ResultCache(tmp_path / "cache")
        warm = run_sweep(spec, cache=warm_cache)
        assert warm_cache.stats.misses == 0
        assert (cold[0].latency, cold[0].transfers) == (
            warm[0].latency,
            warm[0].transfers,
        )

    def test_summarize_length_mismatch(self):
        spec = _spec(cells=[["arf", "|1,1|1,1|"]], strategies=["pcc"])
        with pytest.raises(ValueError, match="expected 1 results"):
            summarize_sweep(spec, [])

    def test_datapath_spec_build(self):
        machine = DatapathSpec(spec="|2,1|1,1|", num_buses=1, move_latency=2)
        dp = machine.build()
        assert dp.num_buses == 1
        assert dp.move_latency == 2
        assert machine.to_dict() == {
            "spec": "|2,1|1,1|",
            "buses": 1,
            "move_latency": 2,
        }
