"""Unit tests for VLIW code emission."""

import pytest

from repro.codegen import emit_vliw
from repro.core.driver import bind
from repro.datapath.parse import parse_datapath
from repro.dfg.transform import bind_dfg
from repro.kernels import load_kernel
from repro.schedule.list_scheduler import list_schedule


@pytest.fixture
def program(diamond, two_cluster):
    bound = bind_dfg(diamond, {"v1": 0, "v2": 0, "v3": 1, "v4": 0})
    schedule = list_schedule(bound, two_cluster)
    return schedule, emit_vliw(schedule)


class TestEmission:
    def test_one_word_per_cycle(self, program):
        schedule, prog = program
        assert prog.num_cycles == schedule.latency
        assert [w.cycle for w in prog.words] == list(range(schedule.latency))

    def test_every_op_appears_once(self, program):
        schedule, prog = program
        comments = [
            s.comment for w in prog.words for s in w.slots if s.opcode != "nop"
        ]
        assert sorted(comments) == sorted(schedule.bound.graph)

    def test_slot_layout_is_constant(self, program):
        _, prog = program
        layouts = {tuple(s.resource for s in w.slots) for w in prog.words}
        assert len(layouts) == 1
        (layout,) = layouts
        assert "bus.0" in layout
        assert "c0.ALU.0" in layout

    def test_transfer_reads_remote_register(self, program):
        _, prog = program
        moves = [
            s for w in prog.words for s in w.slots if s.opcode == "move"
        ]
        assert moves
        for m in moves:
            # source register lives in another cluster than the dest
            src_cluster = m.sources[0].split(".")[0]
            dst_cluster = m.dest.split(".")[0]
            assert src_cluster != dst_cluster

    def test_registers_are_per_cluster(self, program):
        _, prog = program
        for name, register in prog.registers.items():
            assert register.startswith("c")
            assert ".r" in register

    def test_dataflow_consistency(self, program):
        """Every non-move operand register was produced earlier."""
        schedule, prog = program
        produced = set()
        for w in prog.words:
            reads = []
            for s in w.slots:
                if s.opcode == "nop":
                    continue
                for src in s.sources:
                    if ".r" in src:
                        reads.append(src)
            for r in reads:
                assert r in produced, f"read-before-write of {r}"
            for s in w.slots:
                if s.dest:
                    produced.add(s.dest)

    def test_assembly_renders(self, program):
        _, prog = program
        text = prog.assembly()
        assert "nop" in text
        assert "move" in text
        assert text.startswith(";")

    def test_utilization_in_unit_range(self, program):
        _, prog = program
        assert 0.0 < prog.utilization() <= 1.0


class TestKernelEmission:
    @pytest.mark.parametrize("kernel", ["arf", "ewf"])
    def test_kernels_emit_cleanly(self, kernel):
        dfg = load_kernel(kernel)
        dp = parse_datapath("|2,1|1,1|", num_buses=2)
        result = bind(dfg, dp, iter_starts=1)
        prog = emit_vliw(result.schedule)
        assert prog.num_cycles == result.latency
        busy = [
            s for w in prog.words for s in w.slots if s.opcode != "nop"
        ]
        assert len(busy) == len(result.schedule.bound.graph)

    def test_register_counts_match_allocation(self):
        dfg = load_kernel("arf")
        dp = parse_datapath("|1,1|1,1|", num_buses=2)
        result = bind(dfg, dp, iter_starts=1)
        prog = emit_vliw(result.schedule)
        total = sum(prog.num_registers_per_cluster.values())
        assert total == len(result.schedule.bound.graph)
