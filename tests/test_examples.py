"""Smoke tests: every example script runs end-to-end.

Each example is executed as a subprocess (the way a user would run it),
scoped down via arguments/environment so the suite stays fast.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, env_extra=None, timeout=600):
    env = dict(os.environ)
    if env_extra:
        env.update(env_extra)
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "schedule latency L =" in out
    assert "Gantt chart" in out


def test_reproduce_table1_single_kernel():
    out = run_example("reproduce_table1.py", "arf")
    assert "ARF" in out
    assert "B-ITER vs PCC" in out


def test_reproduce_table2():
    out = run_example("reproduce_table2.py")
    assert "Table 2" in out
    assert "bus-constrained" in out


def test_design_space_exploration():
    out = run_example(
        "design_space_exploration.py",
        "arf",
        env_extra={"DSE_MAX_CLUSTERS": "2", "DSE_MAX_FUS": "6"},
    )
    assert "Pareto-optimal" in out


def test_custom_kernel():
    out = run_example("custom_kernel.py")
    assert "FIR body" in out
    assert "bound on" in out


def test_register_pressure():
    out = run_example("register_pressure.py", "arf", "ewf")
    assert "per-cluster pressure" in out
    assert "arf" in out


def test_software_pipelining():
    out = run_example("software_pipelining.py")
    assert "ResMII" in out
    assert "throughput-optimal" in out


def test_clustering_overhead():
    out = run_example("clustering_overhead.py", "arf", "fft")
    assert "overhead" in out
    assert "ports" in out
