"""Unit tests for the register-pressure-aware refinement extension."""

import pytest

from repro.analysis.pressure import register_pressure
from repro.core.driver import bind_initial
from repro.core.pressure_aware import (
    pressure_aware_improvement,
    pressure_quality,
)
from repro.core.binding import validate_binding
from repro.datapath.parse import parse_datapath
from repro.dfg.generators import random_layered_dfg
from repro.kernels import load_kernel


class TestPressureQuality:
    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            pressure_quality(0)

    def test_vector_shape(self, diamond, two_cluster):
        from repro.dfg.transform import bind_dfg
        from repro.schedule.list_scheduler import list_schedule

        schedule = list_schedule(
            bind_dfg(diamond, {n: 0 for n in diamond}), two_cluster
        )
        q = pressure_quality(budget=2)(schedule)
        assert len(q) == 3
        assert q[0] == schedule.latency

    def test_large_budget_zero_excess(self, diamond, two_cluster):
        from repro.dfg.transform import bind_dfg
        from repro.schedule.list_scheduler import list_schedule

        schedule = list_schedule(
            bind_dfg(diamond, {n: 0 for n in diamond}), two_cluster
        )
        q = pressure_quality(budget=100)(schedule)
        assert q[1] == 0


class TestRefinement:
    def test_never_increases_latency(self, two_cluster):
        for seed in (1, 4):
            g = random_layered_dfg(24, seed=seed)
            init = bind_initial(g, two_cluster)
            refined = pressure_aware_improvement(
                g, two_cluster, init.binding, budget=4
            )
            assert refined.schedule.latency <= init.latency
            validate_binding(refined.binding, g, two_cluster)

    def test_reduces_excess_when_possible(self, two_cluster):
        # Start from a deliberately lopsided binding on a wide graph.
        from repro.core.binding import Binding

        g = random_layered_dfg(24, seed=7, width=8)
        lopsided = Binding({n: 0 for n in g})
        budget = 4
        before_q = None
        from repro.dfg.transform import bind_dfg
        from repro.schedule.list_scheduler import list_schedule

        before = list_schedule(bind_dfg(g, lopsided), two_cluster)
        before_q = pressure_quality(budget)(before)
        refined = pressure_aware_improvement(
            g, two_cluster, lopsided, budget=budget
        )
        after_q = pressure_quality(budget)(refined.schedule)
        assert after_q <= before_q

    def test_kernel_budget_refinement(self):
        dfg = load_kernel("dct-dif")
        dp = parse_datapath("|2,1|2,1|", num_buses=2)
        init = bind_initial(dfg, dp)
        report_before = register_pressure(init.schedule)
        refined = pressure_aware_improvement(
            dfg, dp, init.binding, budget=max(2, report_before.peak - 1)
        )
        report_after = register_pressure(refined.schedule)
        assert refined.schedule.latency <= init.latency
        assert report_after.peak <= report_before.peak
