"""Unit tests for the Q_U and Q_M quality vectors (Figure 6)."""

import pytest

from repro.core.quality import make_quality, quality_qm, quality_qu
from repro.datapath.parse import parse_datapath
from repro.dfg.graph import Dfg
from repro.dfg.ops import ADD
from repro.dfg.transform import bind_dfg
from repro.schedule.list_scheduler import list_schedule


def schedule_for(dfg, binding, spec="|1,1|1,1|"):
    dp = parse_datapath(spec, num_buses=2)
    return list_schedule(bind_dfg(dfg, binding), dp)


class TestQu:
    def test_structure(self, diamond, two_cluster):
        s = schedule_for(diamond, {n: 0 for n in diamond})
        q = quality_qu(s)
        assert q[0] == s.latency
        assert len(q) == s.latency + 1
        assert sum(q[1:]) == 4  # every regular op completes somewhere

    def test_u0_counts_last_step_completions(self, chain5):
        s = schedule_for(chain5, {n: 0 for n in chain5})
        q = quality_qu(s)
        assert q[1] == 1  # only the chain tail completes at step L

    def test_depth_truncation(self, chain5):
        s = schedule_for(chain5, {n: 0 for n in chain5})
        q = quality_qu(s, depth=2)
        assert len(q) == 3

    def test_figure6_discrimination(self):
        """Q_U must distinguish bindings that Q_M cannot (Figure 6).

        Build two schedules with equal latency where one has fewer
        operations completing at the last step: Q_U prefers it, Q_M is
        indifferent (same L, same M = 0).
        """
        # Four independent ops on two 2-ALU clusters: all in cluster 0
        # gives L = 2 with two ops completing at the last step; moving
        # one op to cluster 1 keeps L = 2 but only one op finishes last.
        g = Dfg("f6")
        for n in ("w", "x", "y", "z"):
            g.add_op(n, ADD)
        dp = parse_datapath("|2,1|2,1|", num_buses=2)
        crowded = list_schedule(
            bind_dfg(g, {"w": 0, "x": 0, "y": 0, "z": 0}), dp
        )
        spread = list_schedule(
            bind_dfg(g, {"w": 0, "x": 0, "y": 0, "z": 1}), dp
        )
        assert crowded.latency == spread.latency == 2
        assert quality_qm(crowded) == quality_qm(spread)
        assert quality_qu(spread) < quality_qu(crowded)

    def test_latency_dominates(self, chain5):
        short = schedule_for(chain5, {n: 0 for n in chain5})
        long = schedule_for(
            chain5, {"v1": 0, "v2": 1, "v3": 0, "v4": 1, "v5": 0}
        )
        assert short.latency < long.latency
        assert quality_qu(short) < quality_qu(long)


class TestQm:
    def test_structure(self, diamond):
        s = schedule_for(diamond, {"v1": 0, "v2": 1, "v3": 1, "v4": 0})
        assert quality_qm(s) == (s.latency, s.num_transfers)

    def test_fewer_moves_better_at_same_latency(self, diamond):
        a = schedule_for(diamond, {n: 0 for n in diamond})
        b = schedule_for(diamond, {"v1": 0, "v2": 0, "v3": 1, "v4": 0})
        if a.latency == b.latency:
            assert quality_qm(a) < quality_qm(b)


class TestMakeQuality:
    def test_lookup(self):
        assert make_quality("qu") is quality_qu
        assert make_quality("qm") is quality_qm

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown quality"):
            make_quality("q9")
