"""The REPRO_WARM_CONTEXTS process-level SchedContext pool."""

import pytest

from repro.core.evalcache import (
    WARM_CONTEXT_ENV,
    Evaluator,
    shared_context,
    warm_contexts_enabled,
)
from repro.core import evalcache
from repro.datapath.parse import parse_datapath
from repro.kernels import load_kernel


@pytest.fixture(autouse=True)
def clean_pool(monkeypatch):
    """Each test gets an empty pool and an unset gate."""
    monkeypatch.delenv(WARM_CONTEXT_ENV, raising=False)
    monkeypatch.setattr(evalcache, "_context_pool", type(evalcache._context_pool)())


class TestGate:
    def test_disabled_by_default(self):
        assert not warm_contexts_enabled()

    @pytest.mark.parametrize("value", ["1", "true", "YES", "on"])
    def test_enabled_values(self, monkeypatch, value):
        monkeypatch.setenv(WARM_CONTEXT_ENV, value)
        assert warm_contexts_enabled()

    @pytest.mark.parametrize("value", ["0", "false", "", "off"])
    def test_disabled_values(self, monkeypatch, value):
        monkeypatch.setenv(WARM_CONTEXT_ENV, value)
        assert not warm_contexts_enabled()


class TestSharing:
    def test_cold_evaluators_build_private_contexts(self, diamond):
        dp = parse_datapath("|1,1|1,1|", num_buses=2)
        a, b = Evaluator(diamond, dp), Evaluator(diamond, dp)
        assert a.ctx is not b.ctx

    def test_warm_evaluators_share_one_context(self, monkeypatch, diamond):
        monkeypatch.setenv(WARM_CONTEXT_ENV, "1")
        dp = parse_datapath("|1,1|1,1|", num_buses=2)
        a, b = Evaluator(diamond, dp), Evaluator(diamond, dp)
        assert a.ctx is b.ctx

    def test_different_machines_never_share(self, monkeypatch, diamond):
        monkeypatch.setenv(WARM_CONTEXT_ENV, "1")
        two = parse_datapath("|1,1|1,1|", num_buses=2)
        three = parse_datapath("|1,1|1,1|", num_buses=3)
        assert (
            shared_context(diamond, two) is not shared_context(diamond, three)
        )

    def test_pool_is_lru_bounded(self, monkeypatch, diamond):
        monkeypatch.setenv(WARM_CONTEXT_ENV, "1")
        monkeypatch.setattr(evalcache, "_CONTEXT_POOL_MAX", 2)
        dps = [
            parse_datapath("|1,1|1,1|", num_buses=b) for b in (2, 3, 4)
        ]
        first = shared_context(diamond, dps[0])
        shared_context(diamond, dps[1])
        shared_context(diamond, dps[2])  # evicts the |N_B=2| context
        assert len(evalcache._context_pool) == 2
        assert shared_context(diamond, dps[0]) is not first  # rebuilt


class TestBitIdentity:
    def test_warm_and_cold_runs_agree_exactly(self, monkeypatch):
        """Sharing a context across jobs must not change any outcome."""
        from repro.core.driver import bind

        dfg = load_kernel("ewf")
        dp = parse_datapath("|2,1|1,1|", num_buses=2)

        cold = bind(dfg, dp, iter_starts=2)
        monkeypatch.setenv(WARM_CONTEXT_ENV, "1")
        warm_first = bind(dfg, dp, iter_starts=2)
        # Second warm run reuses the pooled (now exercised) context.
        warm_second = bind(dfg, dp, iter_starts=2)

        for warm in (warm_first, warm_second):
            assert warm.latency == cold.latency
            assert warm.num_transfers == cold.num_transfers
            assert warm.binding == cold.binding
