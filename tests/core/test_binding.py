"""Unit tests for the Binding mapping and its validator."""

import pytest

from repro.core.binding import Binding, BindingError, validate_binding
from repro.datapath.model import Cluster, Datapath
from repro.dfg.ops import ALU, MUL


class TestBindingMapping:
    def test_mapping_protocol(self, diamond):
        b = Binding({n: 0 for n in diamond})
        assert b["v1"] == 0
        assert len(b) == 4
        assert set(b) == set(diamond)

    def test_equality_and_hash(self):
        b1 = Binding({"a": 0, "b": 1})
        b2 = Binding({"b": 1, "a": 0})
        assert b1 == b2
        assert hash(b1) == hash(b2)
        assert b1 == {"a": 0, "b": 1}
        assert b1 != Binding({"a": 1, "b": 1})

    def test_rebind_returns_new(self):
        b = Binding({"a": 0, "b": 0})
        b2 = b.rebind(("a", 1))
        assert b["a"] == 0
        assert b2["a"] == 1
        assert b2["b"] == 0

    def test_rebind_multiple(self):
        b = Binding({"a": 0, "b": 0, "c": 0})
        b2 = b.rebind(("a", 1), ("c", 2))
        assert (b2["a"], b2["b"], b2["c"]) == (1, 0, 2)

    def test_rebind_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown operation"):
            Binding({"a": 0}).rebind(("x", 1))

    def test_cluster_members(self):
        b = Binding({"a": 0, "b": 1, "c": 0})
        assert set(b.cluster_members(0)) == {"a", "c"}
        assert b.cluster_members(2) == ()

    def test_used_clusters(self):
        assert Binding({"a": 2, "b": 0}).used_clusters() == (0, 2)

    def test_cut_edges(self, diamond):
        b = Binding({"v1": 0, "v2": 0, "v3": 1, "v4": 0})
        cut = set(b.cut_edges(diamond))
        assert cut == {("v1", "v3"), ("v3", "v4")}

    def test_num_required_transfers_shares_destinations(self, diamond):
        # v1 feeds v2 and v3, both in cluster 1: ONE transfer.
        b = Binding({"v1": 0, "v2": 1, "v3": 1, "v4": 1})
        assert b.num_required_transfers(diamond) == 1
        # different destinations: one each.
        b2 = Binding({"v1": 0, "v2": 1, "v3": 2, "v4": 0})
        assert b2.num_required_transfers(diamond) == 4


class TestValidateBinding:
    def test_accepts_valid(self, diamond, two_cluster):
        validate_binding(
            Binding({"v1": 0, "v2": 1, "v3": 0, "v4": 1}), diamond, two_cluster
        )

    def test_rejects_unbound(self, diamond, two_cluster):
        with pytest.raises(BindingError, match="unbound"):
            validate_binding(Binding({"v1": 0}), diamond, two_cluster)

    def test_rejects_unknown_op(self, diamond, two_cluster):
        b = Binding({n: 0 for n in diamond} | {"ghost": 0})
        with pytest.raises(BindingError, match="not in the DFG"):
            validate_binding(b, diamond, two_cluster)

    def test_rejects_out_of_range_cluster(self, diamond, two_cluster):
        b = Binding({"v1": 0, "v2": 0, "v3": 0, "v4": 5})
        with pytest.raises(BindingError, match="non-existent"):
            validate_binding(b, diamond, two_cluster)

    def test_rejects_missing_fu_type(self, diamond):
        dp = Datapath([Cluster(0, {ALU: 1, MUL: 1}), Cluster(1, {ALU: 1})])
        # v3 is a multiply; cluster 1 has no multiplier.
        b = Binding({"v1": 0, "v2": 0, "v3": 1, "v4": 0})
        with pytest.raises(BindingError, match="no MUL units"):
            validate_binding(b, diamond, dp)
