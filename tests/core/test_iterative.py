"""Unit tests for the B-ITER boundary-perturbation phase (Figure 5)."""

import pytest

from repro.core.binding import Binding, validate_binding
from repro.core.initial import initial_binding
from repro.core.iterative import (
    boundary_operations,
    candidate_moves,
    iterative_improvement,
)
from repro.core.quality import quality_qm, quality_qu
from repro.datapath.parse import parse_datapath
from repro.dfg.generators import random_layered_dfg
from repro.dfg.transform import bind_dfg
from repro.schedule.list_scheduler import list_schedule


class TestBoundaryOperations:
    def test_identifies_cut_endpoints(self, diamond):
        b = Binding({"v1": 0, "v2": 0, "v3": 1, "v4": 0})
        boundary = set(boundary_operations(diamond, b))
        assert boundary == {"v1", "v3", "v4"}

    def test_empty_when_single_cluster(self, diamond):
        b = Binding({n: 0 for n in diamond})
        assert boundary_operations(diamond, b) == ()


class TestCandidateMoves:
    def test_neighbour_clusters_only(self, diamond, three_cluster):
        b = Binding({"v1": 0, "v2": 1, "v3": 2, "v4": 0})
        # v1's consumers live in clusters 1 and 2.
        assert candidate_moves(diamond, three_cluster, b, "v1") == (1, 2)

    def test_excludes_current_cluster(self, diamond, three_cluster):
        b = Binding({"v1": 0, "v2": 0, "v3": 1, "v4": 0})
        assert candidate_moves(diamond, three_cluster, b, "v4") == (1,)

    def test_respects_target_set(self, diamond):
        dp = parse_datapath("|1,1|1,0|", num_buses=2)
        # v3 is a multiply; cluster 1 has no MUL, so even though its
        # neighbours live there it cannot move.
        b = Binding({"v1": 1, "v2": 1, "v3": 0, "v4": 1})
        assert candidate_moves(diamond, dp, b, "v3") == ()


class TestIterativeImprovement:
    def test_never_worse_than_start(self, two_cluster):
        for seed in range(3):
            g = random_layered_dfg(24, seed=seed)
            init = initial_binding(g, two_cluster)
            start = list_schedule(bind_dfg(g, init.binding), two_cluster)
            result = iterative_improvement(g, two_cluster, init.binding)
            # latency is the end-to-end guarantee (the Q_M pass may
            # reshape deeper Q_U components while trimming moves)
            assert result.schedule.latency <= start.latency
            qu_only = iterative_improvement(
                g, two_cluster, init.binding, quality="qu"
            )
            assert quality_qu(qu_only.schedule) <= quality_qu(start)
            validate_binding(result.binding, g, two_cluster)

    def test_fixes_obviously_bad_binding(self, chain5, two_cluster):
        # A chain alternating clusters is strictly worse than one
        # cluster; B-ITER must repair it fully.
        bad = Binding({f"v{i}": (i % 2) for i in range(1, 6)})
        start = list_schedule(bind_dfg(chain5, bad), two_cluster)
        result = iterative_improvement(chain5, two_cluster, bad)
        assert result.schedule.latency == 5
        assert result.schedule.num_transfers == 0
        assert result.schedule.latency < start.latency

    def test_qm_pass_reduces_moves_not_latency(self, two_cluster):
        g = random_layered_dfg(24, seed=5)
        init = initial_binding(g, two_cluster)
        qu_only = iterative_improvement(g, two_cluster, init.binding, quality="qu")
        both = iterative_improvement(g, two_cluster, init.binding, quality="qu+qm")
        assert both.schedule.latency <= qu_only.schedule.latency
        if both.schedule.latency == qu_only.schedule.latency:
            assert both.schedule.num_transfers <= qu_only.schedule.num_transfers

    def test_latency_only_quality_supported(self, diamond, two_cluster):
        init = initial_binding(diamond, two_cluster)
        result = iterative_improvement(
            diamond, two_cluster, init.binding, quality="latency"
        )
        validate_binding(result.binding, diamond, two_cluster)

    def test_unknown_quality_rejected(self, diamond, two_cluster):
        init = initial_binding(diamond, two_cluster)
        with pytest.raises(ValueError, match="unknown quality"):
            iterative_improvement(
                diamond, two_cluster, init.binding, quality="best"
            )

    def test_max_iterations_respected(self, two_cluster):
        g = random_layered_dfg(24, seed=2)
        bad = Binding(
            {n: (i % 2) for i, n in enumerate(g)}
        )
        result = iterative_improvement(g, two_cluster, bad, max_iterations=1)
        assert result.iterations <= 2  # one per quality pass

    def test_history_monotonic_per_pass(self, two_cluster):
        g = random_layered_dfg(30, seed=9)
        bad = Binding({n: (i % 2) for i, n in enumerate(g)})
        result = iterative_improvement(g, two_cluster, bad, quality="qu")
        for prev, cur in zip(result.history, result.history[1:]):
            assert cur < prev

    def test_evaluation_count_reported(self, diamond, two_cluster):
        init = initial_binding(diamond, two_cluster)
        result = iterative_improvement(diamond, two_cluster, init.binding)
        assert result.evaluations >= 1

    def test_pairs_flag(self, two_cluster):
        g = random_layered_dfg(20, seed=3)
        init = initial_binding(g, two_cluster)
        no_pairs = iterative_improvement(
            g, two_cluster, init.binding, use_pairs=False
        )
        with_pairs = iterative_improvement(
            g, two_cluster, init.binding, use_pairs=True
        )
        assert quality_qm(with_pairs.schedule) <= quality_qm(no_pairs.schedule) or \
            quality_qu(with_pairs.schedule) <= quality_qu(no_pairs.schedule)
