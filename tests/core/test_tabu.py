"""Unit tests for the tabu-search improvement variant (footnote 4)."""

import pytest

from repro.core.binding import Binding, validate_binding
from repro.core.driver import bind_initial
from repro.core.iterative import iterative_improvement
from repro.core.quality import quality_qm, quality_qu
from repro.core.tabu import tabu_improvement
from repro.datapath.parse import parse_datapath
from repro.dfg.generators import random_layered_dfg


class TestTabu:
    def test_never_worse_than_start(self, two_cluster):
        for seed in (0, 5):
            g = random_layered_dfg(22, seed=seed)
            init = bind_initial(g, two_cluster)
            result = tabu_improvement(g, two_cluster, init.binding)
            # latency is the end-to-end guarantee (see the B-ITER note)
            assert result.schedule.latency <= init.latency
            validate_binding(result.binding, g, two_cluster)

    def test_matches_or_beats_plain_biter(self, two_cluster):
        for seed in (2, 7):
            g = random_layered_dfg(22, seed=seed)
            init = bind_initial(g, two_cluster)
            plain = iterative_improvement(g, two_cluster, init.binding)
            tabu = tabu_improvement(g, two_cluster, init.binding)
            assert (
                tabu.schedule.latency,
                tabu.schedule.num_transfers,
            ) <= (
                plain.schedule.latency,
                plain.schedule.num_transfers,
            )

    def test_fixes_bad_binding(self, chain5, two_cluster):
        bad = Binding({f"v{i}": i % 2 for i in range(1, 6)})
        result = tabu_improvement(chain5, two_cluster, bad)
        assert result.schedule.latency == 5
        assert result.schedule.num_transfers == 0

    def test_budget_limits_steps(self, two_cluster):
        g = random_layered_dfg(20, seed=3)
        init = bind_initial(g, two_cluster)
        result = tabu_improvement(
            g, two_cluster, init.binding, max_steps=3
        )
        assert result.iterations <= 3
        validate_binding(result.binding, g, two_cluster)

    def test_sideways_budget_zero_acts_like_descent(self, two_cluster):
        g = random_layered_dfg(18, seed=9)
        init = bind_initial(g, two_cluster)
        strict = tabu_improvement(
            g, two_cluster, init.binding, sideways_budget=0
        )
        assert quality_qm(strict.schedule) <= quality_qm(init.schedule)
