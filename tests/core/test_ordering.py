"""Unit tests for the binding-order ranking functions (Figure 2)."""

import pytest

from repro.core.ordering import (
    make_ordering,
    mobility_order,
    paper_order,
    random_order,
    reverse_order,
)
from repro.dfg.graph import Dfg
from repro.dfg.ops import ADD, default_registry
from repro.dfg.timing import compute_timing


@pytest.fixture
def figure2_dfg():
    """The DFG of the paper's Figure 2.

    A 3-level graph where the intended binding order is v1, v2, v3, v4,
    v5, v6: v1 heads the critical path (level 0, zero mobility), v2 is a
    level-0 op with mobility, v3/v4 sit at level 1 (v3 less mobile and
    with more consumers), v5/v6 at level 2.
    """
    g = Dfg("figure2")
    for n in ("v1", "v2", "v3", "v4", "v5", "v6"):
        g.add_op(n, ADD)
    g.add_edge("v1", "v3")
    g.add_edge("v2", "v4")
    g.add_edge("v3", "v5")
    g.add_edge("v3", "v6")
    g.add_edge("v4", "v6")
    return g


class TestPaperOrder:
    def test_figure2_order(self, figure2_dfg, registry):
        t = compute_timing(figure2_dfg, registry)
        order = paper_order(figure2_dfg, t, registry)
        assert order == ["v1", "v2", "v3", "v4", "v5", "v6"]

    def test_critical_path_first(self, chain5, registry):
        t = compute_timing(chain5, registry)
        order = paper_order(chain5, t, registry)
        assert order == ["v1", "v2", "v3", "v4", "v5"]

    def test_enumerates_all_once(self, diamond, registry):
        t = compute_timing(diamond, registry)
        order = paper_order(diamond, t, registry)
        assert sorted(order) == sorted(diamond)

    def test_lower_mobility_first_within_level(self, registry):
        g = Dfg("m")
        for n in ("crit1", "crit2", "loose"):
            g.add_op(n, ADD)
        g.add_edge("crit1", "crit2")
        t = compute_timing(g, registry)
        order = paper_order(g, t, registry)
        # 'loose' has alap 1 (mobility 1) so it comes after crit1 but the
        # level-0 critical op binds first.
        assert order[0] == "crit1"

    def test_more_consumers_first_on_tie(self, registry):
        g = Dfg("c")
        g.add_op("fan", ADD)
        g.add_op("solo", ADD)
        for i in range(3):
            g.add_op(f"k{i}", ADD)
        g.add_edge("fan", "k0")
        g.add_edge("fan", "k1")
        g.add_edge("solo", "k2")
        t = compute_timing(g, registry)
        order = paper_order(g, t, registry)
        assert order.index("fan") < order.index("solo")


class TestReverseOrder:
    def test_outputs_first(self, chain5, registry):
        t = compute_timing(chain5, registry)
        order = reverse_order(chain5, t, registry)
        assert order == ["v5", "v4", "v3", "v2", "v1"]

    def test_enumerates_all_once(self, diamond, registry):
        t = compute_timing(diamond, registry)
        assert sorted(reverse_order(diamond, t, registry)) == sorted(diamond)


class TestAblationOrders:
    def test_mobility_order_walks_critical_path(self, registry):
        g = Dfg("m")
        for n in ("a", "b", "side"):
            g.add_op(n, ADD)
        g.add_edge("a", "b")
        t = compute_timing(g, registry)
        order = mobility_order(g, t, registry)
        assert order[:2] == ["a", "b"]  # vertical traversal
        assert order[2] == "side"

    def test_random_order_deterministic_per_seed(self, diamond, registry):
        t = compute_timing(diamond, registry)
        o1 = random_order(3)(diamond, t, registry)
        o2 = random_order(3)(diamond, t, registry)
        assert o1 == o2
        assert sorted(o1) == sorted(diamond)


class TestMakeOrdering:
    def test_lookup(self):
        assert make_ordering("paper") is paper_order
        assert make_ordering("reverse") is reverse_order
        assert make_ordering("mobility") is mobility_order
        assert callable(make_ordering("random", seed=1))

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown ordering"):
            make_ordering("alphabetical")
