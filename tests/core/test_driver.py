"""Unit tests for the driver (L_PR sweep + direction + B-ITER seeding)."""

import pytest

from repro.core.binding import validate_binding
from repro.core.driver import bind, bind_initial, default_lpr_values
from repro.core.quality import quality_qm
from repro.datapath.parse import parse_datapath
from repro.dfg.generators import random_layered_dfg
from repro.dfg.timing import critical_path_length


class TestDefaultLprValues:
    def test_starts_at_critical_path(self, chain5, two_cluster):
        values = default_lpr_values(chain5, two_cluster)
        assert values[0] == 5

    def test_monotonic_and_bounded(self, two_cluster):
        g = random_layered_dfg(40, seed=1)
        values = default_lpr_values(g, two_cluster, max_points=8)
        assert list(values) == sorted(set(values))
        assert len(values) <= 8

    def test_covers_resource_bound(self, wide8):
        # 8 ops on a single-ALU machine: resource bound is 8 >> L_CP 1.
        dp = parse_datapath("|1,1|", num_buses=1)
        values = default_lpr_values(wide8, dp)
        assert values[-1] >= 8


class TestBindInitial:
    def test_picks_best_sweep_point(self, two_cluster):
        g = random_layered_dfg(30, seed=4)
        result = bind_initial(g, two_cluster)
        # the winner must be the minimum (L, M) over the logged sweep
        best_logged = min((l, m) for _, _, l, m in result.sweep_log)
        assert (result.latency, result.num_transfers) == best_logged

    def test_sweep_log_deduplicates_bindings(self, two_cluster):
        g = random_layered_dfg(20, seed=8)
        result = bind_initial(g, two_cluster)
        assert len(result.sweep_log) >= 1

    def test_explicit_lpr_values(self, chain5, two_cluster):
        result = bind_initial(chain5, two_cluster, lpr_values=[5, 6])
        assert result.lpr in (5, 6)

    def test_forward_only(self, diamond, two_cluster):
        result = bind_initial(diamond, two_cluster, directions=(False,))
        assert not result.reverse

    def test_timing_recorded(self, diamond, two_cluster):
        result = bind_initial(diamond, two_cluster)
        assert result.init_seconds > 0
        assert result.iter_seconds == 0.0
        assert result.iter_result is None


class TestBind:
    def test_full_flow_improves_or_ties_initial(self, two_cluster):
        for seed in (0, 6):
            g = random_layered_dfg(26, seed=seed)
            result = bind(g, two_cluster)
            assert quality_qm(result.schedule) <= quality_qm(
                result.initial_schedule
            )
            validate_binding(result.binding, g, two_cluster)

    def test_improve_false_matches_bind_initial(self, two_cluster):
        g = random_layered_dfg(22, seed=2)
        a = bind(g, two_cluster, improve=False)
        b = bind_initial(g, two_cluster)
        assert a.binding == b.binding
        assert a.iter_result is None

    def test_iter_starts_one_is_cheaper(self, two_cluster):
        g = random_layered_dfg(26, seed=3)
        single = bind(g, two_cluster, iter_starts=1)
        full = bind(g, two_cluster)
        # multi-start can only match or beat the single-start result
        assert (full.latency, full.num_transfers) <= (
            single.latency,
            single.num_transfers,
        )

    def test_latency_never_below_critical_path(self, two_cluster):
        g = random_layered_dfg(30, seed=12)
        result = bind(g, two_cluster)
        assert result.latency >= critical_path_length(g, two_cluster.registry)

    def test_iter_result_populated(self, diamond, two_cluster):
        result = bind(diamond, two_cluster)
        assert result.iter_result is not None
        assert result.iter_seconds >= 0.0

    def test_result_properties(self, diamond, two_cluster):
        result = bind(diamond, two_cluster)
        assert result.latency == result.schedule.latency
        assert result.num_transfers == result.schedule.num_transfers
