"""Behavioural tests of B-INIT's cost components steering decisions."""

import pytest

from repro.core.cost import CostParams
from repro.core.driver import bind_initial
from repro.core.initial import initial_binding
from repro.datapath.parse import parse_datapath
from repro.dfg.graph import Dfg
from repro.dfg.ops import ADD
from repro.dfg.transform import bind_dfg
from repro.schedule.list_scheduler import list_schedule


def two_producer_consumer_graph(pairs):
    """``pairs`` producer/consumer chains feeding one final reducer."""
    g = Dfg("pc")
    for i in range(pairs):
        g.add_op(f"p{i}", ADD)
        g.add_op(f"c{i}", ADD)
        g.add_edge(f"p{i}", f"c{i}")
    return g


class TestBuscostInfluence:
    def test_scarce_bus_discourages_scattering(self):
        """With one slow bus, B-INIT should produce fewer transfers
        than with an abundant bus at equal FU resources."""
        g = two_producer_consumer_graph(6)
        scarce = parse_datapath("|2,1|2,1|", num_buses=1, move_latency=2)
        rich = parse_datapath("|2,1|2,1|", num_buses=4)
        r_scarce = bind_initial(g, scarce)
        r_rich = bind_initial(g, rich)
        assert r_scarce.num_transfers <= r_rich.num_transfers + 1

    def test_transfers_never_pay_on_one_cluster_worth_of_work(self):
        # 3 ops, 3 ALUs in cluster 0: no reason to leave it.
        g = Dfg("tiny")
        for n in ("a", "b", "c"):
            g.add_op(n, ADD)
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        dp = parse_datapath("|3,1|1,1|", num_buses=2)
        result = bind_initial(g, dp)
        assert result.num_transfers == 0


class TestCommonConsumerSteering:
    def test_siblings_attract(self):
        """Two producers of a common consumer co-locate (the Figure 3
        mechanism) when capacity allows."""
        g = Dfg("sib")
        for n in ("p1", "p2", "c"):
            g.add_op(n, ADD)
        g.add_edge("p1", "c")
        g.add_edge("p2", "c")
        dp = parse_datapath("|2,1|2,1|", num_buses=2)
        result = initial_binding(g, dp)
        assert result.binding["p1"] == result.binding["p2"]
        assert result.binding["c"] == result.binding["p1"]
        schedule = list_schedule(bind_dfg(g, result.binding), dp)
        assert schedule.num_transfers == 0


class TestGammaExtremes:
    def test_huge_gamma_eliminates_transfers(self):
        """gamma >> 1 makes transfers prohibitive: B-INIT degenerates to
        per-component clustering."""
        g = two_producer_consumer_graph(4)
        dp = parse_datapath("|1,1|1,1|", num_buses=2)
        result = initial_binding(g, dp, params=CostParams(gamma=100.0))
        schedule = list_schedule(bind_dfg(g, result.binding), dp)
        assert schedule.num_transfers == 0

    def test_zero_gamma_ignores_transfers(self):
        """gamma = 0 removes the transfer penalty entirely; the binder
        is then free to scatter (and usually does on parallel work)."""
        g = two_producer_consumer_graph(4)
        dp = parse_datapath("|1,1|1,1|", num_buses=2)
        zero = initial_binding(g, dp, params=CostParams(gamma=0.0))
        paper = initial_binding(g, dp)
        s_zero = list_schedule(bind_dfg(g, zero.binding), dp)
        s_paper = list_schedule(bind_dfg(g, paper.binding), dp)
        assert s_zero.num_transfers >= s_paper.num_transfers


class TestReverseOnOutputHeavy:
    def test_reverse_direction_participates(self):
        """On output-heavy kernels the driver's reverse runs produce
        distinct candidates (the Section 3.1.4 motivation)."""
        from repro.kernels import load_kernel

        dfg = load_kernel("ewf")
        dp = parse_datapath("|2,1|1,1|", num_buses=2)
        forward = bind_initial(dfg, dp, directions=(False,))
        reverse = bind_initial(dfg, dp, directions=(True,))
        assert forward.binding != reverse.binding
