"""Unit tests for the greedy initial binding (B-INIT)."""

import pytest

from repro.core.binding import validate_binding
from repro.core.cost import CostParams
from repro.core.initial import initial_binding
from repro.core.ordering import make_ordering
from repro.datapath.parse import parse_datapath
from repro.dfg.generators import random_layered_dfg
from repro.dfg.graph import Dfg
from repro.dfg.ops import ADD, MULT
from repro.dfg.transform import bind_dfg
from repro.schedule.list_scheduler import list_schedule


class TestBasics:
    def test_produces_complete_valid_binding(self, diamond, two_cluster):
        result = initial_binding(diamond, two_cluster)
        validate_binding(result.binding, diamond, two_cluster)
        assert set(result.binding) == set(diamond)

    def test_deterministic(self, two_cluster):
        g = random_layered_dfg(25, seed=11)
        r1 = initial_binding(g, two_cluster)
        r2 = initial_binding(g, two_cluster)
        assert r1.binding == r2.binding

    def test_respects_target_sets(self, diamond):
        dp = parse_datapath("|2,0|1,1|", num_buses=2)
        result = initial_binding(diamond, dp)
        assert result.binding["v3"] == 1  # only cluster with a multiplier

    def test_unbindable_dfg_raises(self, diamond):
        dp = parse_datapath("|2,0|", num_buses=1)
        with pytest.raises(ValueError, match="no\\s+supporting cluster"):
            initial_binding(diamond, dp)

    def test_lpr_recorded(self, chain5, two_cluster):
        result = initial_binding(chain5, two_cluster, lpr=9)
        assert result.lpr == 9

    def test_default_lpr_is_critical_path(self, chain5, two_cluster):
        assert initial_binding(chain5, two_cluster).lpr == 5

    def test_order_recorded(self, diamond, two_cluster):
        result = initial_binding(diamond, two_cluster)
        assert sorted(result.order) == sorted(diamond)

    def test_cost_log_optional(self, diamond, two_cluster):
        assert initial_binding(diamond, two_cluster).cost_log == ()
        logged = initial_binding(diamond, two_cluster, keep_log=True)
        assert len(logged.cost_log) == 4
        name, cluster, breakdown = logged.cost_log[0]
        assert name == logged.order[0]
        assert cluster == logged.binding[name]


class TestQualityBehaviour:
    def test_chain_stays_in_one_cluster(self, chain5, two_cluster):
        # A pure chain gains nothing from splitting: no transfers.
        result = initial_binding(chain5, two_cluster)
        assert len(set(result.binding.values())) == 1

    def test_parallel_work_spreads(self, two_cluster):
        # Two independent chains of length 4 should use both clusters
        # when each cluster has one ALU.
        g = Dfg("two-chains")
        for c in ("a", "b"):
            prev = None
            for i in range(4):
                n = f"{c}{i}"
                g.add_op(n, ADD)
                if prev:
                    g.add_edge(prev, n)
                prev = n
        dp = parse_datapath("|1,1|1,1|", num_buses=2)
        result = initial_binding(g, dp)
        clusters_a = {result.binding[f"a{i}"] for i in range(4)}
        clusters_b = {result.binding[f"b{i}"] for i in range(4)}
        # each chain stays together...
        assert len(clusters_a) == 1
        assert len(clusters_b) == 1
        # ...and the two chains use different clusters.
        assert clusters_a != clusters_b

    def test_no_gratuitous_transfers_single_cluster(self, chain5):
        dp = parse_datapath("|2,2|", num_buses=1)
        result = initial_binding(chain5, dp)
        bound = bind_dfg(chain5, result.binding)
        assert bound.num_transfers == 0

    def test_reverse_direction_valid(self, diamond, two_cluster):
        result = initial_binding(diamond, two_cluster, reverse=True)
        validate_binding(result.binding, diamond, two_cluster)
        assert result.reverse

    def test_custom_ordering(self, diamond, two_cluster):
        result = initial_binding(
            diamond, two_cluster, ordering=make_ordering("mobility")
        )
        validate_binding(result.binding, diamond, two_cluster)

    def test_bad_ordering_rejected(self, diamond, two_cluster):
        def broken_order(dfg, timing, registry):
            return ["v1"]

        with pytest.raises(ValueError, match="every regular operation"):
            initial_binding(diamond, two_cluster, ordering=broken_order)


class TestAgainstSchedule:
    @pytest.mark.parametrize("seed", range(4))
    def test_reasonable_latency_on_random_graphs(self, seed, two_cluster):
        from repro.dfg.timing import critical_path_length

        g = random_layered_dfg(30, seed=seed)
        result = initial_binding(g, two_cluster)
        schedule = list_schedule(bind_dfg(g, result.binding), two_cluster)
        lcp = critical_path_length(g, two_cluster.registry)
        # Sanity bound: within 3x the critical path on a 4-FU machine.
        assert lcp <= schedule.latency <= 3 * lcp + 8
