"""Unit tests for the force-directed load profiles (Figure 4)."""

import pytest

from repro.core.loadprofile import (
    Profile,
    ProfileSet,
    Window,
    operation_window,
    transfer_window,
)
from repro.datapath.parse import parse_datapath
from repro.dfg.graph import Dfg
from repro.dfg.ops import ADD, ALU, MUL, MULT, default_registry
from repro.dfg.timing import compute_timing


class TestWindow:
    def test_width(self):
        assert Window(2, 4, 1.0).width == 3
        assert Window(3, 2, 1.0).width == 0  # empty


class TestOperationWindow:
    def test_zero_mobility_full_height(self, chain5, registry):
        t = compute_timing(chain5, registry)
        w = operation_window(t, "v1", dii=1)
        assert w == Window(0, 0, 1.0)

    def test_mobility_spreads_load(self, chain5, registry):
        t = compute_timing(chain5, registry, target_latency=7)
        w = operation_window(t, "v1", dii=1)
        assert w.start == 0
        assert w.end == 2
        assert w.height == pytest.approx(1 / 3)

    def test_window_area_is_one_when_pipelined(self, chain5, registry):
        # height * width == 1 for dii == 1 (each op is one unit of work).
        for target in (5, 6, 9):
            t = compute_timing(chain5, registry, target_latency=target)
            w = operation_window(t, "v3", dii=1)
            assert w.height * w.width == pytest.approx(1.0)

    def test_dii_extends_window(self, chain5, registry):
        t = compute_timing(chain5, registry)
        w = operation_window(t, "v2", dii=3)
        assert w.end - w.start + 1 == 3


class TestTransferWindow:
    def test_forward_opens_after_producer(self, chain5, registry):
        t = compute_timing(chain5, registry, target_latency=7)
        w = transfer_window(
            t, "v1", "v2", producer_latency=1, move_latency=1, move_dii=1
        )
        assert w.start == t.asap["v1"] + 1
        # consumer mobility 2, minus lat(move) -> 1
        assert w.height == pytest.approx(1 / 2)

    def test_negative_mobility_clamped(self, chain5, registry):
        t = compute_timing(chain5, registry)  # zero mobility everywhere
        w = transfer_window(
            t, "v1", "v2", producer_latency=1, move_latency=1, move_dii=1
        )
        assert w.height == 1.0  # mobility clamped to 0

    def test_reverse_closes_before_consumer(self, chain5, registry):
        t = compute_timing(chain5, registry, target_latency=7)
        w = transfer_window(
            t,
            "v4",
            "v5",
            producer_latency=1,
            move_latency=1,
            move_dii=1,
            reverse=True,
        )
        assert w.end <= t.alap["v5"] - 1 + 1  # ends by consumer's start


class TestProfile:
    def test_add_and_value(self):
        p = Profile(5)
        p.add(Window(1, 3, 0.5))
        assert p.value(0) == 0.0
        assert p.value(2) == 0.5
        assert p.value(4) == 0.0

    def test_add_clips_to_length(self):
        p = Profile(3)
        p.add(Window(-2, 10, 1.0))
        assert p.levels == [1.0, 1.0, 1.0]

    def test_signed_removal(self):
        p = Profile(3)
        p.add(Window(0, 2, 1.0))
        p.add(Window(0, 2, 1.0), sign=-1.0)
        assert all(abs(v) < 1e-12 for v in p.levels)

    def test_out_of_range_value_is_zero(self):
        assert Profile(2).value(99) == 0.0


class TestProfileSet:
    def test_centralized_profile_conservation(self, registry):
        # Total centralized ALU load equals the number of ALU ops.
        g = Dfg("g")
        for i in range(6):
            g.add_op(f"a{i}", ADD)
        g.add_edge("a0", "a1")
        dp = parse_datapath("|2,1|1,1|", num_buses=2)
        ps = ProfileSet(g, dp)
        total = sum(
            ps.load_dp(ALU, tau) * dp.total_fu_count(ALU)
            for tau in range(ps.length)
        )
        assert total == pytest.approx(6.0)

    def test_cluster_profiles_start_empty(self, diamond, two_cluster):
        ps = ProfileSet(diamond, two_cluster)
        for tau in range(ps.length):
            assert ps.load_cl(0, ALU, tau) == 0.0
            assert ps.load_bus(tau) == 0.0

    def test_commit_and_uncommit_roundtrip(self, diamond, two_cluster):
        ps = ProfileSet(diamond, two_cluster)
        ps.commit_operation("v1", 0)
        assert any(ps.load_cl(0, ALU, tau) > 0 for tau in range(ps.length))
        ps.uncommit_operation("v1", 0)
        assert all(
            abs(ps.load_cl(0, ALU, tau)) < 1e-12 for tau in range(ps.length)
        )

    def test_commit_to_unsupported_cluster_raises(self, diamond):
        dp = parse_datapath("|1,0|1,1|", num_buses=2)
        ps = ProfileSet(diamond, dp)
        with pytest.raises(ValueError, match="no MUL"):
            ps.commit_operation("v3", 0)  # v3 is a multiply

    def test_lpr_defaults_to_critical_path(self, chain5, two_cluster):
        ps = ProfileSet(chain5, two_cluster)
        assert ps.lpr == 5

    def test_lpr_stretch(self, chain5, two_cluster):
        ps = ProfileSet(chain5, two_cluster, lpr=8)
        assert ps.lpr == 8
        # stretched mobility lowers peak load
        ps.commit_operation("v1", 0)
        peak = max(ps.load_cl(0, ALU, tau) for tau in range(ps.length))
        assert peak == pytest.approx(1 / 4)  # mobility 3

    def test_bus_profile_commit(self, chain5, two_cluster):
        ps = ProfileSet(chain5, two_cluster)
        ps.commit_transfer(Window(1, 1, 1.0))
        assert ps.load_bus(1) == pytest.approx(0.5)  # N_B = 2
