"""Unit tests for the icost cost function and its components (Figure 3)."""

import pytest

from repro.core.cost import CostParams, buscost, fucost, icost, trcost
from repro.core.loadprofile import ProfileSet, Window
from repro.datapath.parse import parse_datapath
from repro.dfg.graph import Dfg
from repro.dfg.ops import ADD


@pytest.fixture
def figure3_dfg():
    """The DFG of the paper's Figure 3.

    v1 -> v, v2 -> v3, v -> v3: binding v to B with bn(v1) = A yields
    trcost_dd = 1; with bn(v2) = A, the common consumer v3 yields
    trcost_cc = 1; total trcost(v, B) = 2.
    """
    g = Dfg("figure3")
    for n in ("v1", "v2", "v", "v3"):
        g.add_op(n, ADD)
    g.add_edge("v1", "v")
    g.add_edge("v2", "v3")
    g.add_edge("v", "v3")
    return g


A, B = 0, 1


class TestTrcostForward:
    def test_figure3_example(self, figure3_dfg):
        bn = {"v1": A, "v2": A}
        penalty, producers = trcost(figure3_dfg, "v", B, bn)
        assert penalty == 2  # dd(v1) + cc(v3 via v2)
        assert producers == ["v1"]

    def test_figure3_same_cluster_is_free(self, figure3_dfg):
        bn = {"v1": A, "v2": A}
        penalty, producers = trcost(figure3_dfg, "v", A, bn)
        assert penalty == 0
        assert producers == []

    def test_unbound_predecessors_ignored(self, figure3_dfg):
        penalty, _ = trcost(figure3_dfg, "v", B, {})
        assert penalty == 0

    def test_share_aware_skips_committed_transfer(self, figure3_dfg):
        bn = {"v1": A, "v2": A}
        committed = {("v1", B)}
        penalty, producers = trcost(
            figure3_dfg, "v", B, bn, committed, share_aware=True
        )
        assert penalty == 1  # only the common-consumer part remains
        assert producers == []

    def test_share_unaware_counts_again(self, figure3_dfg):
        bn = {"v1": A, "v2": A}
        committed = {("v1", B)}
        penalty, producers = trcost(
            figure3_dfg, "v", B, bn, committed, share_aware=False
        )
        assert penalty == 2
        assert producers == ["v1"]

    def test_one_cc_penalty_per_consumer(self):
        # v feeds one consumer with TWO bound remote predecessors: the
        # cc penalty is per consumer, not per remote predecessor.
        g = Dfg("g")
        for n in ("z1", "z2", "v", "u"):
            g.add_op(n, ADD)
        g.add_edge("z1", "u")
        g.add_edge("z2", "u")
        g.add_edge("v", "u")
        penalty, _ = trcost(g, "v", B, {"z1": A, "z2": A})
        assert penalty == 1

    def test_dd_counts_each_remote_predecessor(self, diamond):
        # v4's two producers in two other clusters: two transfers.
        penalty, producers = trcost(diamond, "v4", 2, {"v2": 0, "v3": 1, "v1": 0})
        assert penalty == 2
        assert set(producers) == {"v2", "v3"}


class TestTrcostReverse:
    def test_distinct_consumer_clusters(self, diamond):
        # v1's consumers v2 (cluster 1) and v3 (cluster 1): ONE transfer.
        penalty, producers = trcost(
            diamond, "v1", 0, {"v2": 1, "v3": 1}, reverse=True
        )
        assert penalty == 1
        assert producers == ["v1"]

    def test_two_destinations(self, diamond):
        penalty, producers = trcost(
            diamond, "v1", 0, {"v2": 1, "v3": 2}, reverse=True
        )
        assert penalty == 2

    def test_common_producer_lookahead(self, diamond):
        # Binding v2 to cluster 1 while sibling v3 (same producer v1) is
        # already bound to cluster 0: v1's value must reach two places.
        penalty, _ = trcost(diamond, "v2", 1, {"v3": 0}, reverse=True)
        assert penalty == 1


class TestFucost:
    def test_zero_when_cluster_fits(self, wide8, two_cluster):
        ps = ProfileSet(wide8, two_cluster)
        assert fucost(ps, "v1", 0) == 0

    def test_penalty_when_overloaded(self, wide8):
        dp = parse_datapath("|1,1|1,1|", num_buses=2)
        ps = ProfileSet(wide8, dp)  # L_PR = 1: all ops at level 0
        ps.commit_operation("v1", 0)
        # Second op at the same single level on the single ALU: load 2.0
        # exceeds max(load_DP, 1) = max(8/2, 1)?  load_DP = 8 ops / 2
        # ALUs = 4.0 at level 0, so the threshold is 4.0.
        assert fucost(ps, "v2", 0) == 0
        for n in ("v2", "v3", "v4", "v5", "v6", "v7", "v8"):
            ps.commit_operation(n, 0)
        # Now cluster 0 carries all 8 (normalized 8.0 > 4.0): another op
        # would see the overload.
        g2 = wide8.copy()
        g2.add_op("v9", wide8.operation("v1").optype)
        ps2 = ProfileSet(g2, dp)
        for n in wide8:
            ps2.commit_operation(n, 0)
        assert fucost(ps2, "v9", 0) >= 1

    def test_exempt_when_not_overloaded_absolute(self, chain5, two_cluster):
        # A chain on a stretched profile never exceeds absolute load 1.
        ps = ProfileSet(chain5, two_cluster, lpr=10)
        for n in ("v1", "v2", "v3", "v4"):
            ps.commit_operation(n, 0)
        assert fucost(ps, "v5", 0) == 0


class TestBuscost:
    def test_no_penalty_under_capacity(self, diamond, two_cluster):
        ps = ProfileSet(diamond, two_cluster)
        assert buscost(ps, "v2", [Window(0, 0, 1.0)]) == 0  # N_B = 2

    def test_penalty_over_capacity(self, diamond):
        dp = parse_datapath("|1,1|1,1|", num_buses=1)
        ps = ProfileSet(diamond, dp)
        ps.commit_transfer(Window(1, 1, 1.0))
        assert buscost(ps, "v2", [Window(1, 1, 1.0)]) == 1

    def test_disjoint_windows_no_penalty(self, diamond):
        dp = parse_datapath("|1,1|1,1|", num_buses=1)
        ps = ProfileSet(diamond, dp)
        ps.commit_transfer(Window(0, 0, 1.0))
        assert buscost(ps, "v2", [Window(2, 2, 1.0)]) == 0


class TestIcost:
    def test_weights_match_equation1(self, figure3_dfg, two_cluster):
        ps = ProfileSet(figure3_dfg, two_cluster)
        bn = {"v1": A, "v2": A}
        bd = icost(figure3_dfg, two_cluster, ps, "v", B, bn)
        # all-unit latencies: icost = fucost + buscost + 1.1 * trcost
        expected = bd.fucost + bd.buscost + 1.1 * bd.trcost
        assert bd.total == pytest.approx(expected)
        assert bd.trcost == 2

    def test_gamma_weighting(self, figure3_dfg, two_cluster):
        ps = ProfileSet(figure3_dfg, two_cluster)
        bn = {"v1": A, "v2": A}
        bd = icost(
            figure3_dfg,
            two_cluster,
            ps,
            "v",
            B,
            bn,
            params=CostParams(gamma=2.0),
        )
        assert bd.total == pytest.approx(bd.fucost + bd.buscost + 2.0 * bd.trcost)

    def test_new_transfers_reported_forward(self, figure3_dfg, two_cluster):
        ps = ProfileSet(figure3_dfg, two_cluster)
        bd = icost(figure3_dfg, two_cluster, ps, "v", B, {"v1": A, "v2": A})
        assert bd.new_transfers == (("v1", B),)

    def test_new_transfers_reported_reverse(self, diamond, two_cluster):
        ps = ProfileSet(diamond, two_cluster)
        bd = icost(
            diamond, two_cluster, ps, "v1", 0, {"v2": 1, "v3": 1}, reverse=True
        )
        assert bd.new_transfers == (("v1", 1),)

    def test_dii_weighting_of_fucost(self, two_cluster):
        # With a dii-2 multiplier, each overload cycle costs 2.
        from repro.dfg.ops import MULT

        reg = two_cluster.registry.with_overrides(
            latencies={MULT: 2}, diis={MULT: 2}
        )
        dp = two_cluster.with_bus()  # copy
        dp.registry = reg
        g = Dfg("g")
        for i in range(4):
            g.add_op(f"m{i}", MULT)
        ps = ProfileSet(g, dp)
        for i in range(3):
            ps.commit_operation(f"m{i}", 0)
        bd = icost(g, dp, ps, "m3", 0, {})
        assert bd.total == pytest.approx(bd.fucost * 2 + bd.buscost + 0.0)
