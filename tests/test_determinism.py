"""Determinism tests: every algorithm is a pure function of its inputs.

Reproducibility is a hard requirement for an experiments library — the
paper's tables must come out identical run after run.  These tests run
each algorithm twice (fresh objects each time, so accidental reliance on
id()/hash ordering of fresh objects would surface) and require identical
bindings, not merely identical metrics.
"""

import pytest

from repro.baselines import (
    annealing_bind,
    mincut_bind,
    pcc_bind,
    random_search,
    uas_bind,
)
from repro.core.driver import bind, bind_initial
from repro.datapath.parse import parse_datapath
from repro.dfg.generators import random_layered_dfg
from repro.kernels import load_kernel


def fresh_inputs(seed=11):
    return random_layered_dfg(22, seed=seed), parse_datapath(
        "|2,1|1,1|", num_buses=2
    )


class TestDeterminism:
    def test_b_init(self):
        g1, dp1 = fresh_inputs()
        g2, dp2 = fresh_inputs()
        assert bind_initial(g1, dp1).binding == bind_initial(g2, dp2).binding

    def test_full_bind(self):
        g1, dp1 = fresh_inputs()
        g2, dp2 = fresh_inputs()
        r1 = bind(g1, dp1)
        r2 = bind(g2, dp2)
        assert r1.binding == r2.binding
        assert (r1.latency, r1.num_transfers) == (r2.latency, r2.num_transfers)

    def test_pcc(self):
        g1, dp1 = fresh_inputs()
        g2, dp2 = fresh_inputs()
        assert pcc_bind(g1, dp1).binding == pcc_bind(g2, dp2).binding

    def test_uas(self):
        g1, dp1 = fresh_inputs()
        g2, dp2 = fresh_inputs()
        assert uas_bind(g1, dp1).binding == uas_bind(g2, dp2).binding

    def test_mincut(self):
        # min-cut requires homogeneous clusters
        g1 = random_layered_dfg(22, seed=11)
        g2 = random_layered_dfg(22, seed=11)
        dp1 = parse_datapath("|1,1|1,1|", num_buses=2)
        dp2 = parse_datapath("|1,1|1,1|", num_buses=2)
        assert mincut_bind(g1, dp1).binding == mincut_bind(g2, dp2).binding

    def test_annealing_per_seed(self):
        g1, dp1 = fresh_inputs()
        g2, dp2 = fresh_inputs()
        assert (
            annealing_bind(g1, dp1, seed=5).binding
            == annealing_bind(g2, dp2, seed=5).binding
        )

    def test_random_search_per_seed(self):
        g1, dp1 = fresh_inputs()
        g2, dp2 = fresh_inputs()
        assert (
            random_search(g1, dp1, samples=10, seed=3).binding
            == random_search(g2, dp2, samples=10, seed=3).binding
        )

    def test_kernel_table_cell(self):
        dfg1, dfg2 = load_kernel("arf"), load_kernel("arf")
        dp = parse_datapath("|1,1|1,1|", num_buses=2)
        r1 = bind(dfg1, dp)
        r2 = bind(dfg2, dp)
        assert r1.binding == r2.binding

    def test_sweep_log_stable(self):
        g1, dp1 = fresh_inputs()
        g2, dp2 = fresh_inputs()
        assert bind_initial(g1, dp1).sweep_log == bind_initial(g2, dp2).sweep_log
