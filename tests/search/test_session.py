"""Unit tests of the search substrate: session, quality, problem.

The differential suite (``test_golden_differential.py``) proves the
ported strategies unchanged; these tests cover the substrate's own
contracts — budgets, deadlines, telemetry, quality-spec parsing, frozen
operations — which no strategy exercised before.
"""

import pytest

from repro.core.driver import bind
from repro.core.driver import bind_initial
from repro.core.iterative import iterative_improvement
from repro.datapath.parse import parse_datapath
from repro.kernels import load_kernel
from repro.search import (
    BindingProblem,
    Neighborhood,
    QualitySpec,
    SearchSession,
)
from repro.search.quality import pressure_vector


@pytest.fixture
def cell():
    return load_kernel("arf"), parse_datapath("|1,1|1,1|", num_buses=2)


class TestSearchSession:
    def test_counts_evaluations_and_memo_traffic(self, cell):
        # fast=True: memo hit/miss classification only exists on the
        # fast path (the naive path has no memo to count against).
        dfg, dp = cell
        session = SearchSession(dfg, dp, fast=True)
        ri = bind_initial(dfg, dp)
        session.evaluate(ri.binding)
        session.evaluate(ri.binding)  # identical placement: memo hit
        assert session.stats.evaluations == 2
        assert session.stats.cache_misses == 1
        assert session.stats.cache_hits == 1

    def test_fast_and_naive_agree(self, cell):
        dfg, dp = cell
        ri = bind_initial(dfg, dp)
        fast = SearchSession(dfg, dp, fast=True).evaluate(ri.binding)
        naive = SearchSession(dfg, dp, fast=False).evaluate(ri.binding)
        assert (fast.latency, fast.num_transfers) == (
            naive.latency, naive.num_transfers
        )

    def test_evaluation_budget_stops_descent(self, cell):
        dfg, dp = cell
        ri = bind_initial(dfg, dp)
        session = SearchSession(dfg, dp, max_evaluations=3)
        result = iterative_improvement(dfg, dp, ri.binding, session=session)
        assert session.stats.budget_exhausted
        # The result is still a complete, valid binding.
        assert result.schedule.latency >= 1
        unbudgeted = iterative_improvement(dfg, dp, ri.binding)
        assert unbudgeted.evaluations > 3

    def test_deadline_already_expired(self, cell):
        dfg, dp = cell
        ri = bind_initial(dfg, dp)
        session = SearchSession(dfg, dp, deadline_seconds=-1.0)
        iterative_improvement(dfg, dp, ri.binding, session=session)
        assert session.stats.deadline_exceeded

    def test_phase_seconds_accumulate(self, cell):
        dfg, dp = cell
        session = SearchSession(dfg, dp)
        bind(dfg, dp, session=session)
        phases = session.stats.phase_seconds
        assert "b-init" in phases and "b-iter" in phases
        assert all(seconds >= 0.0 for seconds in phases.values())

    def test_seeded_rng(self, cell):
        dfg, dp = cell
        a = SearchSession(dfg, dp, seed=7).rng.random()
        b = SearchSession(dfg, dp, seed=7).rng.random()
        assert a == b

    def test_stats_as_dict_round_trips_to_json(self, cell):
        import json

        dfg, dp = cell
        session = SearchSession(dfg, dp, fast=True)
        bind(dfg, dp, session=session)
        payload = session.stats.as_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["evaluations"] > 0
        assert payload["cache_hits"] + payload["cache_misses"] == (
            payload["evaluations"]
        )


class TestQualitySpec:
    def test_parse_default_passes(self):
        spec = QualitySpec.parse("qu+qm")
        assert spec.passes == ("qu", "qm")
        assert len(spec.functions()) == 2

    def test_parse_parametric_pressure(self, cell):
        dfg, dp = cell
        spec = QualitySpec.parse("qp:4")
        (fn,) = spec.functions()
        out = SearchSession(dfg, dp).evaluate(bind_initial(dfg, dp).binding)
        q = fn(out)
        assert len(q) == 3 and q[0] == out.latency

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError, match="unknown quality"):
            QualitySpec.parse("qu+bogus")
        with pytest.raises(ValueError, match="unknown quality"):
            QualitySpec.parse("bogus:4")

    def test_pressure_vector_validates_budget(self):
        with pytest.raises(ValueError):
            pressure_vector(0)

    def test_pressure_vector_matches_reference_analysis(self, cell):
        from repro.analysis.pressure import register_pressure

        dfg, dp = cell
        binding = bind_initial(dfg, dp).binding
        fast_out = SearchSession(dfg, dp, fast=True).evaluate(binding)
        naive_out = SearchSession(dfg, dp, fast=False).evaluate(binding)
        budget = 2
        expected_excess = sum(
            max(0, p - budget)
            for p in register_pressure(naive_out).per_cluster.values()
        )
        for out in (fast_out, naive_out):
            latency, excess, moves = pressure_vector(budget)(out)
            assert latency == naive_out.latency
            assert excess == expected_excess
            assert moves == naive_out.num_transfers


class TestBindingProblem:
    def test_frozen_ops_excluded_from_moves(self, cell):
        dfg, dp = cell
        frozen = {op.name for op in dfg.regular_operations()}
        problem = BindingProblem(dfg, dp, frozen=frozenset(frozen))
        binding = bind_initial(dfg, dp).binding
        assert problem.neighborhood().boundary(binding) == ()

    def test_unknown_frozen_name_rejected(self, cell):
        dfg, dp = cell
        with pytest.raises(ValueError, match="nonexistent"):
            BindingProblem(dfg, dp, frozen=frozenset({"nonexistent"}))

    def test_session_and_validate(self, cell):
        dfg, dp = cell
        problem = BindingProblem(dfg, dp)
        session = problem.session(seed=1)
        binding = bind_initial(dfg, dp).binding
        problem.validate(binding)
        out = session.evaluate(binding)
        assert out.latency >= 1


class TestNeighborhood:
    def test_boundary_and_moves_match_legacy_wrappers(self, cell):
        from repro.core.iterative import boundary_operations, candidate_moves

        dfg, dp = cell
        binding = bind_initial(dfg, dp).binding
        nbhd = Neighborhood(dfg, dp)
        assert nbhd.boundary(binding) == boundary_operations(dfg, binding)
        for v in nbhd.boundary(binding):
            assert nbhd.moves(binding, v) == candidate_moves(dfg, dp, binding, v)

    def test_moves_requires_datapath(self, cell):
        dfg, dp = cell
        binding = bind_initial(dfg, dp).binding
        nbhd = Neighborhood(dfg)
        assert isinstance(nbhd.boundary(binding), tuple)
        with pytest.raises(ValueError, match="datapath"):
            nbhd.moves(binding, next(iter(binding)))

    def test_random_reassignment_respects_frozen(self, cell):
        import random

        dfg, dp = cell
        binding = bind_initial(dfg, dp).binding
        names = [op.name for op in dfg.regular_operations()]
        frozen = set(names[:-1])
        nbhd = Neighborhood(dfg, dp, frozen=frozen)
        rng = random.Random(0)
        for _ in range(20):
            move = nbhd.random_reassignment(binding, rng)
            if move is not None:
                assert move[0] == names[-1]


class TestEvaluateMany:
    """The batched evaluation contract behind the descent round.

    ``evaluate_many`` may *execute* in placement-delta order, but it
    must be observationally identical to the sequential loop: same
    outcomes in input order, same evaluation count, same memo hit/miss
    split.
    """

    def _round(self, cell):
        dfg, dp = cell
        binding = bind_initial(dfg, dp).binding
        nbhd = Neighborhood(dfg, dp)
        boundary = nbhd.boundary(binding)
        moves = {v: nbhd.moves(binding, v) for v in boundary}
        return [
            binding.rebind(*p)
            for p in nbhd.perturbations(binding, boundary, moves)
        ]

    def test_matches_sequential_on_fast_path(self, cell):
        dfg, dp = cell
        candidates = self._round(cell)
        assert len(candidates) > 1
        a = SearchSession(dfg, dp, fast=True)
        b = SearchSession(dfg, dp, fast=True)
        seq = [a.evaluate(c) for c in candidates]
        batch = b.evaluate_many(candidates)
        assert [(o.latency, o.num_transfers) for o in batch] == [
            (o.latency, o.num_transfers) for o in seq
        ]
        assert b.stats.evaluations == a.stats.evaluations
        assert b.evaluator.stats == a.evaluator.stats

    def test_matches_sequential_on_naive_path(self, cell):
        dfg, dp = cell
        candidates = self._round(cell)
        a = SearchSession(dfg, dp, fast=False)
        b = SearchSession(dfg, dp, fast=False)
        seq = [a.evaluate(c) for c in candidates]
        batch = b.evaluate_many(candidates)
        assert [(o.latency, o.num_transfers) for o in batch] == [
            (o.latency, o.num_transfers) for o in seq
        ]
        assert b.stats.evaluations == a.stats.evaluations

    def test_empty_and_singleton_batches(self, cell):
        dfg, dp = cell
        session = SearchSession(dfg, dp, fast=True)
        assert session.evaluate_many([]) == []
        binding = bind_initial(dfg, dp).binding
        (only,) = session.evaluate_many([binding])
        assert only.latency == session.evaluate(binding).latency

    def test_duplicates_hit_the_memo_once(self, cell):
        dfg, dp = cell
        binding = bind_initial(dfg, dp).binding
        session = SearchSession(dfg, dp, fast=True)
        outs = session.evaluate_many([binding, binding, binding])
        assert len({id(o) for o in outs}) == 1  # one memo entry
        assert session.stats.evaluations == 3
        assert session.stats.cache_misses == 1
