"""Session integration of the vector batch engine.

``SearchSession.evaluate_many`` packs big-enough uncached batches into
vector lanes; everything observable — outcomes, evaluation counts, the
memo hit/miss split, search trajectories — must be bit-identical to
the scalar path, and every gate (env, threshold, validation, numpy) or
vector-engine error must land the batch safely back on the scalar
loop.  These tests pin the accounting regression from the PR 5 batch
path: pre-probe hits count exactly like scalar hits.
"""

import random

import pytest

from repro.core.driver import bind
from repro.datapath.parse import parse_datapath
from repro.kernels import load_kernel
from repro.resilience.faults import injected
from repro.schedule.vectorpath import vector_context_for
from repro.search.session import SearchSession
from repro.service.metrics import Metrics

pytest.importorskip("numpy")

DP = "|3,1|2,2|1,3|"


def _cell(kernel="dct-dif"):
    dfg = load_kernel(kernel)
    return dfg, parse_datapath(DP, num_buses=2)


def _bindings(dfg, dp, width, seed=3, duplicates=0):
    names = [op.name for op in dfg.operations()]
    rng = random.Random(seed)
    out = [
        {
            name: rng.choice(dp.target_set(dfg.operation(name).optype))
            for name in names
        }
        for _ in range(width)
    ]
    return out + out[:duplicates]


def _stats_tuple(session):
    s, e = session.stats, session.eval_stats
    return (
        s.evaluations,
        s.cache_hits,
        s.cache_misses,
        e.hits,
        e.misses,
        e.evaluations,
    )


class TestAccountingParity:
    def test_stats_identical_across_engines(self, monkeypatch):
        # The regression the satellite task names: pre-probe hits on
        # the vector path must book identically to scalar memo hits —
        # same per-counter totals, duplicate candidates included.
        dfg, dp = _cell()
        results = {}
        for gate in ("1", "0"):
            monkeypatch.setenv("REPRO_VECTORPATH", gate)
            session = SearchSession(dfg, dp, fast=True)
            batch = _bindings(dfg, dp, width=70, duplicates=12)
            outs = session.evaluate_many(batch)
            # A second pass over the same batch: everything hits.
            outs2 = session.evaluate_many(batch)
            results[gate] = (
                _stats_tuple(session),
                [(o.latency, o.starts, o.units, o.pairs) for o in outs],
            )
            assert [o.latency for o in outs] == [o.latency for o in outs2]
        assert results["1"] == results["0"]

    def test_search_stats_identical_on_full_run(self, monkeypatch):
        dfg, dp = _cell("ewf")
        payloads = {}
        for gate in ("1", "0"):
            monkeypatch.setenv("REPRO_VECTORPATH", gate)
            r = bind(dfg, dp)
            payloads[gate] = (
                r.schedule.latency,
                r.schedule.num_transfers,
                dict(r.binding),
            )
        assert payloads["1"] == payloads["0"]

    def test_vector_batch_reports_engine(self, monkeypatch):
        dfg, dp = _cell()
        monkeypatch.setenv("REPRO_VECTORPATH", "1")
        session = SearchSession(dfg, dp, fast=True)
        session.evaluate_many(_bindings(dfg, dp, width=64))
        stats = session.stats
        assert stats.engine_batches.get("vector") == 1
        assert stats.engine_candidates.get("vector") == 64
        payload = stats.as_dict()
        assert payload["engines"]["vector"]["batches"] == 1


class TestGatesHonored:
    def test_env_gate_forces_scalar(self, monkeypatch):
        dfg, dp = _cell()
        monkeypatch.setenv("REPRO_VECTORPATH", "0")
        session = SearchSession(dfg, dp, fast=True)
        session.evaluate_many(_bindings(dfg, dp, width=64))
        assert "vector" not in session.stats.engine_batches
        assert session.stats.engine_batches.get("scalar") == 1

    def test_threshold_keeps_small_batches_scalar(self, monkeypatch):
        dfg, dp = _cell()
        monkeypatch.setenv("REPRO_VECTORPATH", "1")
        monkeypatch.setenv("REPRO_VECTOR_THRESHOLD", "1000")
        session = SearchSession(dfg, dp, fast=True)
        session.evaluate_many(_bindings(dfg, dp, width=64))
        assert "vector" not in session.stats.engine_batches

    def test_threshold_counts_uncached_not_batch_width(self, monkeypatch):
        # 64 candidates but only ~8 uncached after warming: below the
        # threshold, so the memo + scalar path serves the batch.
        dfg, dp = _cell()
        monkeypatch.setenv("REPRO_VECTORPATH", "1")
        monkeypatch.setenv("REPRO_VECTOR_THRESHOLD", "16")
        session = SearchSession(dfg, dp, fast=True)
        batch = _bindings(dfg, dp, width=64)
        session.evaluate_many(batch)  # vector: 64 uncached
        session.evaluate_many(batch + _bindings(dfg, dp, width=8, seed=99))
        assert session.stats.engine_batches == {"vector": 1, "scalar": 1}

    def test_validation_stays_on_scalar_path(self, monkeypatch):
        dfg, dp = _cell("ewf")
        monkeypatch.setenv("REPRO_VECTORPATH", "1")
        session = SearchSession(dfg, dp, fast=True, validate=True)
        session.evaluate_many(_bindings(dfg, dp, width=48))
        assert "vector" not in session.stats.engine_batches
        assert session.stats.incidents == []

    def test_naive_session_reports_naive(self):
        dfg, dp = _cell("ewf")
        session = SearchSession(dfg, dp, fast=False)
        session.evaluate_many(_bindings(dfg, dp, width=1))
        assert session.stats.engine_batches == {"naive": 1}


class TestDegradeOnError:
    def test_vector_fault_degrades_to_scalar(self, monkeypatch, tmp_path):
        # Chaos: an injected error inside the vector engine records an
        # incident, the batch is re-served by the scalar path with
        # identical outcomes, and the session never retries the vector
        # engine.
        dfg, dp = _cell()
        monkeypatch.setenv("REPRO_VECTORPATH", "1")
        batch = _bindings(dfg, dp, width=64)
        clean = SearchSession(dfg, dp, fast=True)
        expected = [o.latency for o in clean.evaluate_many(batch)]
        with injected(
            {"vectorpath.evaluate": {"kind": "error", "hits": [0]}},
            dir=tmp_path / "faults",
        ):
            session = SearchSession(dfg, dp, fast=True)
            outs = session.evaluate_many(batch)
            assert [o.latency for o in outs] == expected
            assert _stats_tuple(session) == _stats_tuple(clean)
            incidents = session.stats.incidents
            assert len(incidents) == 1
            assert incidents[0]["site"] == "session.evaluate_many"
            assert incidents[0]["kind"] == "vector-engine-error"
            # Disabled for good: the next batch goes scalar even
            # though no fault remains armed.
            session.evaluate_many(_bindings(dfg, dp, width=64, seed=5))
            assert session.stats.engine_batches == {"scalar": 2}


class TestWarmVectorContexts:
    def test_vector_context_rides_warm_sched_context(self, monkeypatch):
        # REPRO_WARM_CONTEXTS pools SchedContexts; the vector tables
        # are cached on the context instance, so warm workers reuse
        # them across sessions without recompiling.
        dfg, dp = _cell("ewf")
        monkeypatch.setenv("REPRO_WARM_CONTEXTS", "1")
        monkeypatch.setenv("REPRO_VECTORPATH", "1")
        a = SearchSession(dfg, dp, fast=True)
        b = SearchSession(dfg, dp, fast=True)
        assert a.evaluator.ctx is b.evaluator.ctx
        assert vector_context_for(a.evaluator.ctx) is vector_context_for(
            b.evaluator.ctx
        )


class TestServiceMetrics:
    def test_record_engines_aggregates(self):
        metrics = Metrics()
        metrics.record_engines({"vector": {"batches": 2, "candidates": 128}})
        metrics.record_engines(
            {
                "vector": {"batches": 1, "candidates": 64},
                "scalar": {"batches": 3, "candidates": 30},
            }
        )
        snap = metrics.snapshot()
        assert snap["engines"] == {
            "scalar": {"batches": 3, "candidates": 30},
            "vector": {"batches": 3, "candidates": 192},
        }

    def test_snapshot_has_engines_key_when_empty(self):
        assert Metrics().snapshot()["engines"] == {}
