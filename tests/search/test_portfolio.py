"""Portfolio racing: plan math, determinism, conservation, salvage.

Four layers of guarantees:

* :func:`parse_racers` / :func:`plan_rungs` are pure and fussy — every
  malformed entry dies with a one-line error before any binder runs;
* the race is *deterministic*: same seed, same budget ⇒ identical
  winner, rung log and per-racer trajectories, on both the scalar and
  the vectorized evaluation engine;
* the shared ledger is *conserved*: the charged decision count never
  exceeds the configured budget (on a cell where every racer converges
  under its allotment) and always equals the summed per-racer spend;
* a cancel token falling at *any* poll still salvages a legal,
  validated best-so-far — mirroring ``test_anytime_cut`` one level up.
"""

import json
import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.binding import Binding
from repro.datapath.parse import parse_datapath
from repro.dfg.transform import bind_dfg
from repro.kernels import load_kernel
from repro.resilience.anytime import CountdownToken
from repro.resilience.validate import validate_outcome
from repro.schedule.list_scheduler import list_schedule
from repro.search.portfolio import (
    Rung,
    parse_racers,
    plan_rungs,
    run_portfolio,
)
from repro.search.registry import ConfigError, get_strategy, run_strategy

GATES = ("0", "1")  # scalar engine / vectorized batch engine

RACERS = json.dumps(
    [
        {"name": "pcc"},
        {"name": "b-init"},
        {"name": "b-iter", "config": {"iter_starts": 1}},
    ]
)
BUDGET = 600
SEED = 7


def _cell():
    return load_kernel("arf"), parse_datapath("|1,1|1,1|", num_buses=2)


def _with_gate(gate, fn):
    previous = os.environ.get("REPRO_VECTORPATH")
    os.environ["REPRO_VECTORPATH"] = gate
    try:
        return fn()
    finally:
        if previous is None:
            os.environ.pop("REPRO_VECTORPATH", None)
        else:
            os.environ["REPRO_VECTORPATH"] = previous


class TestParseRacers:
    def test_comma_list(self):
        specs = parse_racers("pcc, b-init")
        assert [(s.label, s.name) for s in specs] == [
            ("pcc", "pcc"),
            ("b-init", "b-init"),
        ]
        assert all(s.config == () for s in specs)

    def test_json_array_with_config_and_label(self):
        specs = parse_racers(
            '[{"name": "b-iter", "config": {"iter_starts": 2}, '
            '"label": "wide"}, "pcc"]'
        )
        assert specs[0].label == "wide"
        assert specs[0].name == "b-iter"
        assert specs[0].config_dict() == {"iter_starts": 2}
        assert specs[1].label == "pcc"

    def test_duplicate_labels_get_ordinals(self):
        specs = parse_racers(
            '[{"name": "b-iter", "config": {"quality": "latency"}},'
            ' {"name": "b-iter", "config": {"quality": "qu"}}]'
        )
        assert [s.label for s in specs] == ["b-iter#1", "b-iter#2"]

    def test_python_list_accepted(self):
        specs = parse_racers(["pcc", {"name": "tabu"}])
        assert [s.name for s in specs] == ["pcc", "tabu"]

    @pytest.mark.parametrize("value", ["", "   ", None, []])
    def test_empty_rejected(self, value):
        with pytest.raises(ValueError, match="non-empty 'racers'"):
            parse_racers(value)

    def test_self_nesting_rejected(self):
        with pytest.raises(ValueError, match="cannot race itself"):
            parse_racers("b-iter,portfolio")

    def test_unknown_strategy_rejected(self):
        with pytest.raises(Exception, match="nosuch"):
            parse_racers("nosuch")

    def test_unknown_entry_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown keys"):
            parse_racers('[{"name": "pcc", "budget": 3}]')

    def test_bad_config_rejected_by_schema(self):
        with pytest.raises((ConfigError, ValueError), match="iter_starts"):
            parse_racers('[{"name": "b-iter", "config": {"iter_starts": 0}}]')

    def test_bad_json_rejected(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            parse_racers("[{not json")

    def test_config_must_be_object(self):
        with pytest.raises(ValueError, match="config must be an object"):
            parse_racers('[{"name": "pcc", "config": [1]}]')


class TestPlanRungs:
    def test_even_split(self):
        plan = plan_rungs(4, 900, eta=2)
        assert [r.survivors for r in plan] == [4, 2, 1]
        # budget // (len(rungs) * survivors), per rung
        assert [r.increment for r in plan] == [75, 150, 300]
        assert plan[0] == Rung(index=0, survivors=4, increment=75)

    def test_geometric_ramp(self):
        plan = plan_rungs(5, 10_000, eta=3, rung_evals=10)
        assert [r.survivors for r in plan] == [5, 2, 1]
        assert [r.increment for r in plan] == [10, 30, 90]

    def test_single_racer_single_rung(self):
        plan = plan_rungs(1, 100)
        assert len(plan) == 1
        assert plan[0].survivors == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one racer"):
            plan_rungs(0, 100)
        with pytest.raises(ValueError, match="eta"):
            plan_rungs(3, 100, eta=1)
        with pytest.raises(ValueError, match="budget"):
            plan_rungs(3, 0)


class TestPortfolioSchema:
    def test_registered_with_schema(self):
        strategy = get_strategy("portfolio")
        fields = strategy.field_names()
        for key in ("racers", "max_evals", "eta", "rung_evals", "seed"):
            assert key in fields

    def test_missing_racers_one_line_error(self):
        dfg, dp = _cell()
        with pytest.raises(ConfigError, match="non-empty 'racers'"):
            run_portfolio(dfg, dp, {})

    def test_bad_racer_one_line_error(self):
        dfg, dp = _cell()
        with pytest.raises(
            (ConfigError, ValueError), match="cannot race itself"
        ):
            run_portfolio(dfg, dp, {"racers": "portfolio"})


@pytest.mark.parametrize("gate", GATES)
class TestPortfolioDeterminism:
    def test_same_seed_same_race(self, gate):
        dfg, dp = _cell()
        config = {"racers": RACERS, "max_evals": BUDGET, "seed": SEED}

        def run():
            return run_portfolio(dfg, dp, config)

        first = _with_gate(gate, run)
        second = _with_gate(gate, run)
        for key in (
            "winner",
            "winner_strategy",
            "charged",
            "rung_log",
            "per_racer",
            "trajectories",
        ):
            assert first.extras[key] == second.extras[key], key
        assert (first.latency, first.transfers) == (
            second.latency,
            second.transfers,
        )
        assert first.binding == second.binding

    def test_budget_conserved_and_accounted(self, gate):
        dfg, dp = _cell()
        config = {"racers": RACERS, "max_evals": BUDGET, "seed": SEED}
        result = _with_gate(gate, lambda: run_portfolio(dfg, dp, config))

        charged = result.extras["charged"]
        per_racer = json.loads(result.extras["per_racer"])
        # Conservation: the ledger never exceeds the configured budget
        # on a cell where every racer converges under its allotment.
        assert 0 < charged <= BUDGET
        # Accounting: the ledger equals the summed per-racer spend, and
        # that same total is what SearchStats reports downstream.
        assert charged == sum(
            entry["evaluations"] for entry in per_racer.values()
        )
        assert result.stats["search_stats"]["evaluations"] == charged
        # Every racer label appears in the /metrics-bound accounting.
        racers = result.stats["search_stats"]["racers"]
        assert set(racers) == set(per_racer)
        assert result.extras["winner"] in per_racer

    def test_winner_beats_every_single_racer(self, gate):
        """Acceptance: the race never loses to the best racer alone."""
        dfg, dp = _cell()
        config = {"racers": RACERS, "max_evals": BUDGET, "seed": SEED}
        race = _with_gate(gate, lambda: run_portfolio(dfg, dp, config))

        def singles():
            out = []
            for spec in json.loads(RACERS):
                child = dict(spec.get("config") or {})
                fields = get_strategy(spec["name"]).field_names()
                if "max_evals" in fields:
                    child["max_evals"] = BUDGET
                if "seed" in fields:
                    child["seed"] = SEED
                single = run_strategy(spec["name"], dfg, dp, **child)
                out.append((single.latency, single.transfers))
            return out

        best = min(_with_gate(gate, singles))
        assert (race.latency, race.transfers) <= best

    def test_trajectories_are_monotone(self, gate):
        dfg, dp = _cell()
        config = {"racers": RACERS, "max_evals": BUDGET, "seed": SEED}
        result = _with_gate(gate, lambda: run_portfolio(dfg, dp, config))
        trajectories = json.loads(result.extras["trajectories"])
        assert trajectories
        for label, points in trajectories.items():
            lms = [(l, m) for _, l, m in points]
            assert lms == sorted(lms, reverse=True) or all(
                b <= a for a, b in zip(lms, lms[1:])
            ), label


@pytest.mark.parametrize("gate", GATES)
class TestPortfolioCutAnywhere:
    """A cancel token at any poll yields a legal, validated salvage."""

    _TRUTH = {}

    def _truth(self, gate):
        if gate not in self._TRUTH:
            dfg, dp = _cell()
            config = {"racers": RACERS, "max_evals": BUDGET, "seed": SEED}
            result = _with_gate(
                gate, lambda: run_portfolio(dfg, dp, config)
            )
            self._TRUTH[gate] = (
                result.extras["winner"],
                (result.latency, result.transfers),
            )
        return self._TRUTH[gate]

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(polls=st.integers(min_value=0, max_value=200))
    def test_cut_at_any_poll_is_legal(self, gate, polls):
        full_winner, full_lm = self._truth(gate)
        dfg, dp = _cell()
        config = {"racers": RACERS, "max_evals": BUDGET, "seed": SEED}

        def run():
            token = CountdownToken(polls)
            result = run_portfolio(dfg, dp, config, cancel=token)
            return token, result

        token, result = _with_gate(gate, run)

        # Legal: whatever racer the cut landed in, the salvaged binding
        # replays to a schedule that passes every checked invariant and
        # matches the reported (L, M) exactly.
        assert result.binding is not None
        schedule = list_schedule(bind_dfg(dfg, Binding(result.binding)), dp)
        validate_outcome(dfg, dp, result.binding, schedule)
        assert (schedule.latency, schedule.num_transfers) == (
            result.latency,
            result.transfers,
        )

        # Honest tag: an uncut race reproduces the full-run numbers.
        assert result.status in ("cancelled", "complete")
        if result.status == "complete" and not token.cancelled:
            assert result.extras["winner"] == full_winner
            assert (result.latency, result.transfers) == full_lm
        assert result.extras["charged"] <= BUDGET
