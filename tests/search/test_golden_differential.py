"""Differential suite: every ported strategy is bit-identical.

``golden_search.json`` was captured on the pre-``repro.search`` code —
before move generation, evaluation, budgets, and telemetry moved into
the shared substrate — over the paper's kernels × datapaths.  Each
record pins latency, transfer count, and the *complete placement map*
(plus node counts for branch and bound), so any drift introduced by the
refactor — a reordered neighbourhood, a changed tie-break, an extra RNG
draw — fails here immediately, not as a subtle quality regression.

Runs on both engines: the default fast path, and (in CI) a second pass
with ``REPRO_FASTPATH=0``.
"""

import json
from pathlib import Path

import pytest

from repro import bind, bind_initial, parse_datapath
from repro.baselines import pcc_bind
from repro.baselines.annealing import annealing_bind
from repro.baselines.branch_and_bound import branch_and_bound_bind
from repro.core.iterative import iterative_improvement
from repro.core.pressure_aware import pressure_aware_improvement
from repro.core.tabu import tabu_improvement
from repro.kernels import load_kernel

GOLDEN_PATH = Path(__file__).parent / "golden_search.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

#: The capture grid: all seven cells for the deterministic algorithms,
#: the first three (small) cells for the expensive walks.
CELLS = [
    ("arf", "|1,1|1,1|"),
    ("arf", "|1,2|1,2|"),
    ("ewf", "|2,1|1,1|"),
    ("fft", "|2,1|2,1|1,2|"),
    ("dct-dif", "|2,1|2,1|"),
    ("dct-lee", "|2,2|2,1|"),
    ("dct-dit", "|3,1|2,2|1,3|"),
]
SMALL = CELLS[:3]


def _cell(kernel, spec):
    return load_kernel(kernel), parse_datapath(spec, num_buses=2)


def _assert_matches(record, latency, transfers, binding):
    assert latency == record["latency"]
    assert transfers == record["transfers"]
    assert {name: binding[name] for name in binding} == record["placements"]


@pytest.mark.parametrize("kernel,spec", CELLS)
def test_driver_matches_golden(kernel, spec):
    dfg, dp = _cell(kernel, spec)
    r = bind(dfg, dp)
    _assert_matches(GOLDEN[f"{kernel} {spec}"]["driver"], r.latency,
                    r.num_transfers, r.binding)


@pytest.mark.parametrize("kernel,spec", CELLS)
def test_b_init_matches_golden(kernel, spec):
    dfg, dp = _cell(kernel, spec)
    r = bind_initial(dfg, dp)
    _assert_matches(GOLDEN[f"{kernel} {spec}"]["b-init"], r.latency,
                    r.num_transfers, r.binding)


@pytest.mark.parametrize("kernel,spec", CELLS)
def test_iterative_matches_golden(kernel, spec):
    dfg, dp = _cell(kernel, spec)
    ri = bind_initial(dfg, dp)
    r = iterative_improvement(dfg, dp, ri.binding)
    _assert_matches(GOLDEN[f"{kernel} {spec}"]["iterative"],
                    r.schedule.latency, r.schedule.num_transfers, r.binding)


@pytest.mark.parametrize("kernel,spec", CELLS)
def test_pcc_matches_golden(kernel, spec):
    dfg, dp = _cell(kernel, spec)
    r = pcc_bind(dfg, dp)
    _assert_matches(GOLDEN[f"{kernel} {spec}"]["pcc"], r.latency,
                    r.num_transfers, r.binding)


@pytest.mark.parametrize("kernel,spec", CELLS)
def test_pressure_matches_golden(kernel, spec):
    dfg, dp = _cell(kernel, spec)
    ri = bind_initial(dfg, dp)
    r = pressure_aware_improvement(dfg, dp, ri.binding, budget=4)
    _assert_matches(GOLDEN[f"{kernel} {spec}"]["pressure"],
                    r.schedule.latency, r.schedule.num_transfers, r.binding)


@pytest.mark.parametrize("kernel,spec", SMALL)
def test_tabu_matches_golden(kernel, spec):
    dfg, dp = _cell(kernel, spec)
    ri = bind_initial(dfg, dp)
    r = tabu_improvement(dfg, dp, ri.binding)
    _assert_matches(GOLDEN[f"{kernel} {spec}"]["tabu"],
                    r.schedule.latency, r.schedule.num_transfers, r.binding)


@pytest.mark.parametrize("kernel,spec", SMALL)
def test_annealing_matches_golden(kernel, spec):
    """The seeded walk consumes the RNG identically across the port."""
    dfg, dp = _cell(kernel, spec)
    r = annealing_bind(dfg, dp, seed=0)
    _assert_matches(GOLDEN[f"{kernel} {spec}"]["annealing"],
                    r.schedule.latency, r.schedule.num_transfers, r.binding)


@pytest.mark.parametrize("kernel,spec", SMALL)
def test_branch_and_bound_matches_golden(kernel, spec):
    """Same tree: node count and optimality proof must not drift."""
    dfg, dp = _cell(kernel, spec)
    r = branch_and_bound_bind(dfg, dp, max_nodes=20_000)
    record = GOLDEN[f"{kernel} {spec}"]["bnb"]
    _assert_matches(record, r.latency, r.num_transfers, r.binding)
    assert r.nodes_explored == record["nodes"]
    assert r.proven_optimal == record["proven_optimal"]


class TestBudgetedLargeCell:
    """Budget-truncated runs on the largest capture cell are pinned too.

    Evaluation budgets (unlike deadlines) are deterministic, so the
    truncated trajectories of the expensive walks on ``dct-dit`` —
    skipped from the unbudgeted stochastic grid for cost — must
    reproduce bit for bit on both engines.
    """

    KERNEL, SPEC = "dct-dit", "|3,1|2,2|1,3|"

    def _record(self, algo):
        return GOLDEN[f"{self.KERNEL} {self.SPEC} budgeted"][algo]

    def _session(self, dfg, dp, max_evaluations, seed=None):
        from repro.search.session import SearchSession

        return SearchSession(
            dfg, dp, max_evaluations=max_evaluations, seed=seed
        )

    def test_tabu_budgeted(self):
        dfg, dp = _cell(self.KERNEL, self.SPEC)
        ri = bind_initial(dfg, dp)
        session = self._session(dfg, dp, 400)
        r = tabu_improvement(dfg, dp, ri.binding, session=session)
        record = self._record("tabu")
        _assert_matches(record, r.schedule.latency,
                        r.schedule.num_transfers, r.binding)
        assert session.stats.budget_exhausted == record["budget_exhausted"]

    def test_annealing_budgeted(self):
        dfg, dp = _cell(self.KERNEL, self.SPEC)
        session = self._session(dfg, dp, 400, seed=0)
        r = annealing_bind(dfg, dp, seed=0, session=session)
        record = self._record("annealing")
        _assert_matches(record, r.schedule.latency,
                        r.schedule.num_transfers, r.binding)
        assert session.stats.budget_exhausted == record["budget_exhausted"]

    def test_branch_and_bound_budgeted(self):
        dfg, dp = _cell(self.KERNEL, self.SPEC)
        session = self._session(dfg, dp, 300)
        r = branch_and_bound_bind(dfg, dp, max_nodes=20_000, session=session)
        record = self._record("bnb")
        _assert_matches(record, r.latency, r.num_transfers, r.binding)
        assert r.nodes_explored == record["nodes"]
        assert r.proven_optimal == record["proven_optimal"]
        assert session.stats.budget_exhausted == record["budget_exhausted"]
