"""Property: any deadline cut point yields a legal best-so-far result.

Hypothesis drives a :class:`CountdownToken` — "the deadline fell at
poll *k*" — through B-ITER on a Table 1 cell, on both the scalar and
the vectorized batch engine.  Whatever ``k`` is, the cut search must
return a binding that

* is *legal*: its replayed schedule passes the checked invariants of
  :func:`repro.resilience.validate.validate_outcome`;
* sits on a *monotone prefix* of the uncut trajectory: the committed
  quality history is exactly the first ``n`` entries of the fault-free
  run's history (deterministic descent, cut at a round boundary);
* keeps an honest status tag: ``cancelled`` when the token cut it,
  and when the run actually finished, bit-identical numbers to the
  uncut run under the ``complete`` tag;
* leaves a strictly-improving snapshot sidecar whose last line
  replays to exactly its recorded ``(L, M)`` — what salvage trusts.
"""

import json
import os
import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.driver import bind_initial
from repro.core.iterative import iterative_improvement
from repro.datapath.parse import parse_datapath
from repro.kernels import load_kernel
from repro.resilience.anytime import SNAPSHOT_ENV, CountdownToken
from repro.resilience.validate import validate_outcome
from repro.search import SearchSession

GATES = ("0", "1")  # scalar engine / vectorized batch engine

#: gate -> (seed binding, uncut history, uncut (L, M)); computed once
#: per engine so every hypothesis example compares against one truth.
_TRUTH = {}


def _cell():
    return load_kernel("arf"), parse_datapath("|1,1|1,1|", num_buses=2)


def _with_gate(gate, fn):
    previous = os.environ.get("REPRO_VECTORPATH")
    os.environ["REPRO_VECTORPATH"] = gate
    try:
        return fn()
    finally:
        if previous is None:
            os.environ.pop("REPRO_VECTORPATH", None)
        else:
            os.environ["REPRO_VECTORPATH"] = previous


def _truth(gate):
    if gate not in _TRUTH:
        def run():
            dfg, dp = _cell()
            seed = bind_initial(dfg, dp).binding
            full = iterative_improvement(dfg, dp, seed)
            return (
                seed,
                tuple(full.history),
                (full.schedule.latency, full.schedule.num_transfers),
            )

        _TRUTH[gate] = _with_gate(gate, run)
    return _TRUTH[gate]


@pytest.mark.parametrize("gate", GATES)
class TestDeadlineCutAnywhere:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(polls=st.integers(min_value=0, max_value=80))
    def test_cut_at_any_poll_is_legal_and_a_prefix(self, gate, polls):
        seed, full_history, full_lm = _truth(gate)
        dfg, dp = _cell()
        sidecar = Path(tempfile.mkdtemp()) / "side.jsonl"

        def run():
            os.environ[SNAPSHOT_ENV] = str(sidecar)
            try:
                token = CountdownToken(polls)
                session = SearchSession(dfg, dp, fast=True, cancel=token)
                result = iterative_improvement(dfg, dp, seed, session=session)
                return token, session, result
            finally:
                os.environ.pop(SNAPSHOT_ENV, None)

        token, session, result = _with_gate(gate, run)

        # Legal: the returned binding's schedule passes every checked
        # invariant, whatever round the cut landed on.
        validate_outcome(dfg, dp, result.binding, result.schedule)

        # Monotone prefix: the committed-quality trajectory of the cut
        # run is exactly the head of the uncut run's trajectory.
        assert result.history == full_history[: len(result.history)]

        # Honest tag: the session reports how the search ended, and a
        # run the token never cut reproduces the uncut numbers exactly.
        status = session.result_status()
        assert status in ("cancelled", "complete")
        if status == "complete":
            assert result.history == full_history
            assert (
                result.schedule.latency,
                result.schedule.num_transfers,
            ) == full_lm
        else:
            assert token.cancelled

        # The best-so-far snapshot replays to its recorded (L, M) —
        # the exact check salvage performs before trusting a sidecar.
        snap = session.best_snapshot
        assert snap is not None
        replay = session.schedule(snap.binding)
        assert (replay.latency, replay.num_transfers) == (
            snap.latency,
            snap.transfers,
        )

        # The sidecar trajectory is strictly improving in (L, M): each
        # appended line dominated every line before it.
        trail = [
            (line["latency"], line["transfers"])
            for line in map(json.loads, sidecar.read_text().splitlines())
        ]
        assert trail, "at least the seed snapshot is always written"
        assert (snap.latency, snap.transfers) == trail[-1]
        assert all(b < a for a, b in zip(trail, trail[1:]))
