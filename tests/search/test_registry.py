"""The strategy registry: schemas, parity, and end-to-end dispatch.

Three contracts pinned here:

* **parity** — every public binding entry point in ``repro.core`` /
  ``repro.baselines`` is reachable through exactly one registered
  strategy, and every public strategy maps back to one of them (no
  orphan registrations, no unregistered algorithms);
* **schemas** — config validation rejects what the old per-module
  keyword plumbing silently mangled (bools as budgets, typo'd keys,
  non-scalar values), while never injecting defaults (job cache keys
  contain exactly what the caller set);
* **dispatch** — every public strategy runs through ``run_jobs`` on a
  tiny homogeneous cell, and its ``StrategyResult`` (stats shape,
  extras) round-trips the result cache bit for bit.
"""

import importlib

import pytest

from repro.datapath.parse import parse_datapath
from repro.dfg.generators import random_layered_dfg
from repro.runner import BindJob, ResultCache
from repro.runner.api import run_jobs
from repro.search.registry import (
    ConfigError,
    ConfigField,
    Strategy,
    StrategyResult,
    get_strategy,
    iter_strategies,
    register_strategy,
    run_strategy,
    strategy_names,
)

# ----------------------------------------------------------------------
# Parity: registry <-> algorithm modules
# ----------------------------------------------------------------------

#: baselines module -> strategy name wrapping its ``*_bind`` entry point.
BASELINE_STRATEGIES = {
    "annealing": "annealing",
    "branch_and_bound": "branch-and-bound",
    "centralized": "centralized",
    "exhaustive": "exhaustive",
    "mincut": "mincut",
    "pcc": "pcc",
    "random_binding": "random",
    "uas": "uas",
}

#: core entry point -> strategy name driving it.
CORE_STRATEGIES = {
    ("repro.core.driver", "bind_initial"): "b-init",
    ("repro.core.driver", "bind"): "b-iter",
    ("repro.core.tabu", "tabu_improvement"): "tabu",
    ("repro.core.pressure_aware", "pressure_aware_improvement"): "pressure",
    ("repro.search.portfolio", "run_portfolio"): "portfolio",
}


class TestParity:
    def test_every_baseline_module_has_a_strategy(self):
        names = strategy_names()
        for module, strategy in BASELINE_STRATEGIES.items():
            mod = importlib.import_module(f"repro.baselines.{module}")
            # centralized exports a latency reference, not a binder.
            binders = [
                n for n in mod.__all__
                if n.endswith("_bind") or n == "centralized_latency"
            ]
            assert binders, f"repro.baselines.{module} exports no binder"
            assert strategy in names, (
                f"binder(s) {binders} of repro.baselines.{module} have "
                f"no registered strategy {strategy!r}"
            )

    def test_no_baseline_module_is_missing_from_the_map(self):
        # A new baselines module with a ``*_bind`` export must be added
        # to the registry (and to BASELINE_STRATEGIES above).
        import pkgutil

        import repro.baselines as pkg

        for info in pkgutil.iter_modules(pkg.__path__):
            mod = importlib.import_module(f"repro.baselines.{info.name}")
            binders = [
                n for n in getattr(mod, "__all__", ())
                if n.endswith("_bind")
            ]
            if binders:
                assert info.name in BASELINE_STRATEGIES, (
                    f"repro.baselines.{info.name} exports {binders} but "
                    "has no strategy mapping"
                )

    def test_every_core_entry_point_has_a_strategy(self):
        names = strategy_names()
        for (module, attr), strategy in CORE_STRATEGIES.items():
            assert hasattr(importlib.import_module(module), attr)
            assert strategy in names

    def test_every_public_strategy_maps_back(self):
        expected = set(BASELINE_STRATEGIES.values()) | set(
            CORE_STRATEGIES.values()
        )
        assert set(strategy_names()) == expected

    def test_hidden_strategies_are_debug_hooks_only(self):
        hidden = set(strategy_names(include_hidden=True)) - set(
            strategy_names()
        )
        assert hidden == {
            "debug-fail",
            "debug-sleep",
            "debug-crash",
            "debug-cancel",
        }
        for name in hidden:
            assert not get_strategy(name).strict

    def test_iter_strategies_sorted_and_described(self):
        strategies = list(iter_strategies())
        assert [s.name for s in strategies] == sorted(strategy_names())
        for s in strategies:
            assert s.description, f"{s.name} has no description"


# ----------------------------------------------------------------------
# Registration mechanics
# ----------------------------------------------------------------------

class TestRegistration:
    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_strategy(
                Strategy(name="pcc", run=lambda d, p, c: None)
            )

    def test_replace_allows_rebinding(self):
        original = get_strategy("pcc")
        try:
            stub = Strategy(
                name="pcc", run=lambda d, p, c: None, description="stub"
            )
            assert register_strategy(stub, replace=True) is stub
            assert get_strategy("pcc") is stub
        finally:
            register_strategy(original, replace=True)

    def test_unknown_name_lists_known(self):
        with pytest.raises(ValueError) as err:
            get_strategy("no-such-algo")
        assert "unknown algorithm 'no-such-algo'" in str(err.value)
        assert "pcc" in str(err.value)


# ----------------------------------------------------------------------
# Schema validation
# ----------------------------------------------------------------------

class TestValidation:
    def test_unknown_key_rejected_for_strict(self):
        with pytest.raises(ConfigError, match="'typo'"):
            get_strategy("b-iter").validate_config({"typo": 1})

    def test_unknown_key_accepted_for_debug_hooks(self):
        assert get_strategy("debug-sleep").validate_config(
            {"anything": 1}
        ) == {"anything": 1}

    def test_bool_is_not_an_int(self):
        # A budget of ``True`` is a bug, not a 1.
        with pytest.raises(ConfigError, match="max_evals"):
            get_strategy("b-iter").validate_config({"max_evals": True})

    def test_int_accepted_for_float(self):
        assert get_strategy("b-iter").validate_config(
            {"deadline": 5}
        ) == {"deadline": 5}

    def test_none_always_means_default(self):
        assert get_strategy("b-iter").validate_config(
            {"iter_starts": None}
        ) == {"iter_starts": None}

    def test_minimum_bound(self):
        with pytest.raises(ConfigError, match=">= 1"):
            get_strategy("b-iter").validate_config({"iter_starts": 0})

    def test_quality_spec_checked(self):
        strategy = get_strategy("b-iter")
        assert strategy.validate_config({"quality": "qu+qm"})
        with pytest.raises(ConfigError, match="quality"):
            strategy.validate_config({"quality": "bogus"})

    def test_non_scalar_is_a_type_error(self):
        with pytest.raises(TypeError, match="not a JSON scalar"):
            get_strategy("b-iter").validate_config({"max_evals": [1]})

    def test_defaults_are_not_injected(self):
        # Cache-key stability: absent keys stay absent.
        assert get_strategy("annealing").validate_config({}) == {}

    def test_field_validate_standalone(self):
        f = ConfigField("x", int, minimum=2)
        f.validate(2)
        f.validate(None)
        with pytest.raises(ConfigError):
            f.validate(1)
        with pytest.raises(ConfigError):
            f.validate("2")


# ----------------------------------------------------------------------
# End-to-end dispatch on a tiny homogeneous cell
# ----------------------------------------------------------------------

#: Deterministic, fast configs for the smoke sweep.  The cell is small
#: enough for exhaustive search and homogeneous for min-cut.
SMOKE_CONFIGS = {
    "annealing": {"seed": 0, "max_evals": 300},
    "random": {"seed": 0, "samples": 40},
    "branch-and-bound": {"max_nodes": 20_000},
    "b-iter": {"iter_starts": 1},
    "pressure": {"iter_starts": 1},
    "tabu": {"max_steps": 50},
    "portfolio": {"racers": "pcc,b-init", "max_evals": 200, "seed": 0},
}

#: The canonical stats shape of session-backed strategies (the one
#: ``session_stats`` emits); strategies bypassing the session layer
#: report no stats at all — never a third shape.
CANONICAL_STATS = {
    "eval_hits", "eval_misses", "evaluations", "search_stats",
}


def _smoke_cell():
    return (
        random_layered_dfg(7, seed=3),
        parse_datapath("|2,2|2,2|", num_buses=2),
    )


class TestDispatch:
    def test_run_strategy_convenience(self):
        dfg, dp = _smoke_cell()
        result = run_strategy("pcc", dfg, dp)
        assert isinstance(result, StrategyResult)
        assert result.latency > 0 and result.transfers >= 0
        assert result.binding is not None

    @pytest.mark.parametrize("name", strategy_names())
    def test_stats_shape_is_uniform(self, name):
        dfg, dp = _smoke_cell()
        result = run_strategy(name, dfg, dp, **SMOKE_CONFIGS.get(name, {}))
        assert set(result.stats) in (set(), CANONICAL_STATS)
        for key, value in result.extras.items():
            assert isinstance(
                value, (str, int, float, bool, type(None))
            ), f"extras[{key!r}] is not a JSON scalar"

    def test_centralized_has_no_binding(self):
        dfg, dp = _smoke_cell()
        assert run_strategy("centralized", dfg, dp).binding is None

    def test_every_strategy_through_run_jobs_with_cache(self, tmp_path):
        dfg, dp = _smoke_cell()
        jobs = [
            BindJob.make(dfg, dp, name, **SMOKE_CONFIGS.get(name, {}))
            for name in strategy_names()
        ]
        cache = ResultCache(tmp_path / "cache")
        first = run_jobs(jobs, cache=cache)
        for result in first:
            assert result.ok, f"{result.algorithm}: {result.error}"
            assert result.latency > 0
            assert not result.cached

        # Cold replay from the cache: every StrategyResult-derived
        # field round-trips, extras included.
        replay = run_jobs(jobs, cache=ResultCache(tmp_path / "cache"))
        for a, b in zip(first, replay):
            assert b.cached
            assert (a.latency, a.transfers) == (b.latency, b.transfers)
            assert a.extras == b.extras
            assert a.search_stats == b.search_stats
            assert (a.eval_hits, a.eval_misses, a.evaluations) == (
                b.eval_hits, b.eval_misses, b.evaluations
            )

    def test_exhaustive_matches_branch_and_bound(self):
        # Two independent exact strategies agree on the tiny cell —
        # the registry dispatches to genuinely different algorithms.
        dfg, dp = _smoke_cell()
        exact = run_strategy("exhaustive", dfg, dp)
        bnb = run_strategy("branch-and-bound", dfg, dp)
        assert exact.latency == bnb.latency
