"""Differential tests: fast per-cluster liveness is bit-identical.

``FastOutcome.pressure_per_cluster()`` reconstructs the reference
register-pressure analysis (``repro.analysis.pressure``) directly from
the fast engine's integer arrays — birth at the producer's finish,
death at the last same-cluster consumer (or the transfer reading it),
transfers living in their destination cluster.  That reconstruction
must agree with :func:`repro.analysis.pressure.register_pressure` run
on the materialized schedule for *every* binding, not just converged
ones — random bindings exercise transfer-heavy placements that descent
never visits.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.pressure import register_pressure
from repro.baselines.annealing import random_binding_seeded
from repro.core.driver import bind_initial
from repro.core.evalcache import Evaluator
from repro.core.pressure_aware import pressure_aware_improvement
from repro.datapath.parse import parse_datapath
from repro.dfg.generators import random_layered_dfg
from repro.kernels import load_kernel

dfg_strategy = st.builds(
    random_layered_dfg,
    num_ops=st.integers(min_value=1, max_value=30),
    seed=st.integers(min_value=0, max_value=10_000),
    width=st.integers(min_value=1, max_value=6),
    mul_fraction=st.floats(min_value=0.0, max_value=1.0),
)

datapath_strategy = st.builds(
    lambda shape, buses: parse_datapath(
        "|" + "|".join(f"{a},{m}" for a, m in shape) + "|", num_buses=buses
    ),
    shape=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=3),
            st.integers(min_value=1, max_value=3),
        ),
        min_size=1,
        max_size=3,
    ),
    buses=st.integers(min_value=1, max_value=3),
)

relaxed = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@relaxed
@given(dfg=dfg_strategy, dp=datapath_strategy, seed=st.integers(0, 1000))
def test_fast_pressure_equals_reference_on_random_bindings(dfg, dp, seed):
    binding = random_binding_seeded(dfg, dp, random.Random(seed))
    outcome = Evaluator(dfg, dp).evaluate(binding)
    fast = outcome.pressure_per_cluster()
    reference = register_pressure(outcome.to_schedule()).per_cluster
    assert fast == dict(reference)


@relaxed
@given(dfg=dfg_strategy, dp=datapath_strategy)
def test_fast_pressure_on_greedy_binding(dfg, dp):
    binding = bind_initial(dfg, dp).binding
    outcome = Evaluator(dfg, dp).evaluate(binding)
    assert outcome.pressure_per_cluster() == dict(
        register_pressure(outcome.to_schedule()).per_cluster
    )


def test_pressure_descent_identical_fast_and_naive():
    """The Q_P descent commits the same moves on either engine."""
    for kernel, spec in [("arf", "|1,1|1,1|"), ("ewf", "|2,1|1,1|")]:
        dfg = load_kernel(kernel)
        dp = parse_datapath(spec, num_buses=2)
        start = bind_initial(dfg, dp).binding
        for budget in (2, 4):
            fast = pressure_aware_improvement(
                dfg, dp, start, budget=budget, fast=True
            )
            naive = pressure_aware_improvement(
                dfg, dp, start, budget=budget, fast=False
            )
            assert dict(fast.binding) == dict(naive.binding)
            assert fast.history == naive.history
            assert fast.evaluations == naive.evaluations
            assert (fast.schedule.latency, fast.schedule.num_transfers) == (
                naive.schedule.latency, naive.schedule.num_transfers
            )


def test_pressure_descent_rides_memo():
    """Sharing a session with B-ITER starts the Q_P pass memo-warm.

    The memo only exists on the fast path, so this pins ``fast=True``
    regardless of the ``REPRO_FASTPATH`` gate (the differential tests
    above cover the naive engine).
    """
    from repro.core.driver import bind
    from repro.search import SearchSession

    dfg = load_kernel("arf")
    dp = parse_datapath("|1,1|1,1|", num_buses=2)
    session = SearchSession(dfg, dp, fast=True)
    base = bind(dfg, dp, session=session)
    refined = pressure_aware_improvement(
        dfg, dp, base.binding, budget=4, session=session
    )
    assert refined.cache_hits > 0
    assert session.eval_stats.hits >= refined.cache_hits
