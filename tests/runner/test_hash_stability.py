"""Content-hash stability across the interconnect refactor.

``BindJob.cache_key`` is a persistent contract: result caches and run
stores written before the topology-aware interconnect landed must
replay byte-for-byte afterwards.  The pinned digests below were
computed on the pre-interconnect tree; they hold because bus machines
keep suffix-free specs and the job envelope gained no fields.
"""

import pytest

from repro.datapath.interconnect import Interconnect
from repro.datapath.model import Datapath
from repro.datapath.parse import parse_cluster_spec, parse_datapath
from repro.kernels.registry import load_kernel
from repro.runner.jobs import BindJob

#: (kernel, spec, num_buses, move_latency, algorithm, config) -> digest
#: computed at commit 9d2d504 (pre-interconnect).
LEGACY_KEYS = {
    ("ewf", "|2,1|1,1|", 2, 1, "b-init", ()): (
        "075edb6d98980bedc9d368f693ea0acd56f26c29fde59dd25c514f745a59b092"
    ),
    ("fft", "|2,2|2,1|2,2|3,1|1,1|", 1, 2, "b-iter", (("quality", "qu"),)): (
        "c6e3c1bdbe65ed24e2ac766acbde7b48b6df6f7463185369569be6f8da6e3961"
    ),
}


class TestBusHashStability:
    def test_bus_jobs_hash_as_before_the_refactor(self):
        for (kernel, spec, nb, lm, algo, config), digest in (
            LEGACY_KEYS.items()
        ):
            job = BindJob.make(
                load_kernel(kernel),
                parse_datapath(spec, num_buses=nb, move_latency=lm),
                algo,
                **dict(config),
            )
            assert job.cache_key() == digest, (
                f"{algo} on {spec}: cache key drifted — legacy result "
                "caches would go cold (or worse, collide)"
            )

    def test_bus_spec_stays_suffix_free(self):
        dp = parse_datapath("|2,1|1,1|", num_buses=2)
        assert dp.spec() == "|2,1|1,1|"
        assert "@" not in dp.spec()

    def test_explicit_bus_cap_suffix_normalizes_away(self):
        # '@bus:cap=2' is spelled out but means exactly N_B=2: same
        # machine, same suffix-free spec, same cache key.
        plain = parse_datapath("|2,1|1,1|", num_buses=2)
        spelled = parse_datapath("|2,1|1,1| @bus:cap=2")
        assert spelled.spec() == plain.spec()
        dfg = load_kernel("ewf")
        assert (
            BindJob.make(dfg, spelled, "b-init").cache_key()
            == BindJob.make(dfg, plain, "b-init").cache_key()
        )


class TestTopologyHashing:
    def test_topologies_key_distinctly(self):
        dfg = load_kernel("ewf")
        keys = {
            BindJob.make(
                dfg, parse_datapath("|1,1|1,1|1,1|" + suffix), "b-init"
            ).cache_key()
            for suffix in ("", " @ring:cap=1", " @mesh:cap=1", " @p2p:cap=1")
        }
        assert len(keys) == 4

    def test_topology_spec_round_trips_through_job(self):
        dp = parse_datapath("|1,1|1,1|1,1| @ring:cap=2")
        job = BindJob.make(load_kernel("ewf"), dp, "b-init")
        assert job.datapath_spec == "|1,1|1,1|1,1| @ring:cap=2"
        assert job.datapath().interconnect == dp.interconnect

    def test_hand_built_interconnect_refused(self):
        # A machine whose links no spec can reproduce must not be
        # carried by spec — that would silently rehydrate differently.
        clusters = [parse_cluster_spec("1,1", i) for i in range(3)]
        ring = Interconnect.make("ring", 3, 1)
        lopsided = Interconnect(
            topology="ring",
            num_clusters=3,
            links=ring.links[:-1],  # drop one direction of one edge
        )
        dp = Datapath(clusters, interconnect=lopsided)
        with pytest.raises(ValueError, match="cannot reproduce"):
            BindJob.make(load_kernel("ewf"), dp, "b-init")
