"""Acceptance checks of the experiment engine (ISSUE criteria).

1. Parallel dispatch must not change *what* is computed: for the random
   study and the DSE sweep, ``max_workers=1`` and ``max_workers=4``
   must produce byte-identical summaries.  Wall-clock ``seconds`` are
   inherently non-deterministic, so the comparison is over a canonical
   seconds-free projection of the rows/points — everything else must
   match byte for byte.
2. A repeated run against a warm cache must perform *zero* binder
   invocations, observable through the cache statistics and through the
   run store's provenance fields.
"""

import json

from repro.analysis.random_study import StudyConfig, run_random_study
from repro.explore.dse import enumerate_datapaths, explore
from repro.kernels.registry import load_kernel
from repro.runner import ResultCache, RunStore

CONFIG = StudyConfig(num_graphs=4, num_ops=12, run_iter=True, iter_starts=1)


def _study_projection(rows):
    """Canonical JSON of everything except wall-clock seconds."""
    return json.dumps(
        [
            {
                "kernel": row.kernel,
                "datapath": row.datapath_spec,
                "num_buses": row.num_buses,
                "move_latency": row.move_latency,
                "pcc": row.pcc.lm,
                "b_init": row.b_init.lm,
                "b_iter": row.b_iter.lm if row.b_iter else None,
            }
            for row in rows
        ],
        sort_keys=True,
    ).encode()


def _dse_projection(points):
    return json.dumps(
        [
            {
                "datapath": p.datapath_spec,
                "num_buses": p.num_buses,
                "area": p.area,
                "latency": p.latency,
                "transfers": p.total_transfers,
                "per_kernel": {k: list(v) for k, v in p.per_kernel.items()},
            }
            for p in points
        ],
        sort_keys=True,
    ).encode()


class TestParallelDeterminism:
    def test_random_study_identical_across_worker_counts(self):
        serial = run_random_study(CONFIG, max_workers=1)
        parallel = run_random_study(CONFIG, max_workers=4)
        assert _study_projection(serial) == _study_projection(parallel)

    def test_dse_identical_across_worker_counts(self):
        kernels = {"ewf": load_kernel("ewf")}
        candidates = enumerate_datapaths(max_clusters=2, max_total_fus=4)
        serial = explore(kernels, candidates, max_workers=1)
        parallel = explore(kernels, candidates, max_workers=4)
        assert _dse_projection(serial) == _dse_projection(parallel)


class TestWarmCache:
    def test_second_run_invokes_no_binder(self, tmp_path):
        cold_cache = ResultCache(tmp_path / "cache")
        cold = run_random_study(CONFIG, cache=cold_cache)
        num_jobs = 3 * CONFIG.num_graphs
        assert cold_cache.stats.misses == num_jobs
        assert cold_cache.stats.writes == num_jobs

        warm_cache = ResultCache(tmp_path / "cache")
        store = RunStore(tmp_path / "runs.jsonl")
        warm = run_random_study(CONFIG, cache=warm_cache, store=store)

        # Zero binder invocations: every lookup hit, nothing written.
        assert warm_cache.stats.hits == num_jobs
        assert warm_cache.stats.misses == 0
        assert warm_cache.stats.writes == 0
        assert warm_cache.stats.hit_rate == 1.0

        # ... and the run store agrees on the provenance.
        summary = store.summary()
        assert summary.total == num_jobs
        assert summary.cached == num_jobs
        assert summary.executed == 0
        assert all(r["worker"] == "cache" for r in store.records())

        # The replayed study is identical to the cold one.
        assert _study_projection(warm) == _study_projection(cold)

    def test_cache_shared_between_serial_and_parallel(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_random_study(CONFIG, max_workers=4, cache=cache)
        replay_cache = ResultCache(tmp_path / "cache")
        run_random_study(CONFIG, max_workers=1, cache=replay_cache)
        assert replay_cache.stats.misses == 0
