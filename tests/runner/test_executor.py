"""run_batch: serial/parallel engines, timeouts, retries, crash recovery.

The ``debug-*`` algorithms registered in :mod:`repro.runner.jobs` drive
the failure paths: ``debug-fail`` always raises, ``debug-sleep`` busy-
waits past a timeout, ``debug-crash`` kills its worker process outright
(``os._exit``), which on a process pool simulates a segfault/OOM kill.
"""

import pytest

from repro.datapath.parse import parse_datapath
from repro.dfg.generators import random_layered_dfg
from repro.kernels.registry import load_kernel
from repro.runner import BindJob, run_batch


@pytest.fixture
def dp():
    return parse_datapath("|1,1|1,1|", num_buses=2)


def _ok_job(dp, seed=0):
    return BindJob.make(random_layered_dfg(8, seed=seed), dp, "b-init")


class TestValidation:
    def test_bad_max_workers(self, dp):
        with pytest.raises(ValueError, match="max_workers"):
            run_batch([_ok_job(dp)], max_workers=0)

    def test_bad_retries(self, dp):
        with pytest.raises(ValueError, match="retries"):
            run_batch([_ok_job(dp)], retries=-1)

    def test_empty_batch(self):
        assert run_batch([]) == []


class TestSerialEngine:
    def test_results_in_input_order(self, dp):
        jobs = [_ok_job(dp, seed=s) for s in range(4)]
        results = run_batch(jobs, max_workers=1)
        assert [r.key for r in results] == [j.cache_key() for j in jobs]
        assert all(r.ok and r.attempts == 1 for r in results)

    def test_failure_is_in_band(self, dp):
        jobs = [
            _ok_job(dp, seed=0),
            BindJob.make(load_kernel("ewf"), dp, "debug-fail"),
            _ok_job(dp, seed=1),
        ]
        results = run_batch(jobs, max_workers=1, retries=2)
        assert [r.status for r in results] == ["ok", "failed", "ok"]
        assert results[1].attempts == 3  # 1 + 2 retries
        assert "injected failure" in results[1].error

    def test_timeout_enforced(self, dp):
        job = BindJob.make(load_kernel("ewf"), dp, "debug-sleep", seconds=30)
        (result,) = run_batch([job], max_workers=1, timeout=0.2, retries=0)
        assert result.status == "failed"
        assert "JobTimeout" in result.error

    def test_on_result_called_per_job(self, dp):
        seen = []
        jobs = [_ok_job(dp, seed=s) for s in range(3)]
        run_batch(jobs, max_workers=1, on_result=seen.append)
        assert len(seen) == 3


class TestPoolEngine:
    def test_results_in_input_order(self, dp):
        jobs = [_ok_job(dp, seed=s) for s in range(5)]
        results = run_batch(jobs, max_workers=3)
        assert [r.key for r in results] == [j.cache_key() for j in jobs]
        assert all(r.ok for r in results)

    def test_pool_matches_serial(self, dp):
        jobs = [_ok_job(dp, seed=s) for s in range(4)]
        serial = run_batch(jobs, max_workers=1)
        pooled = run_batch(jobs, max_workers=2)
        assert [(r.latency, r.transfers) for r in serial] == [
            (r.latency, r.transfers) for r in pooled
        ]

    def test_raising_job_does_not_abort_batch(self, dp):
        jobs = [
            BindJob.make(load_kernel("ewf"), dp, "debug-fail"),
            _ok_job(dp, seed=0),
            _ok_job(dp, seed=1),
        ]
        results = run_batch(jobs, max_workers=2, retries=1)
        assert [r.status for r in results] == ["failed", "ok", "ok"]
        assert results[0].attempts == 2

    def test_timeout_enforced_in_worker(self, dp):
        jobs = [
            BindJob.make(load_kernel("ewf"), dp, "debug-sleep", seconds=30),
            _ok_job(dp, seed=0),
        ]
        results = run_batch(jobs, max_workers=2, timeout=0.2, retries=0)
        assert results[0].status == "failed"
        assert "JobTimeout" in results[0].error
        assert results[1].ok

    def test_worker_crash_does_not_starve_bystanders(self, dp):
        # debug-crash os._exit()s the worker, breaking the whole pool;
        # recovery must re-run the crasher in isolation and leave the
        # innocent jobs' retry budgets untouched.
        jobs = [
            BindJob.make(load_kernel("ewf"), dp, "debug-crash"),
            _ok_job(dp, seed=0),
            _ok_job(dp, seed=1),
        ]
        results = run_batch(jobs, max_workers=2, retries=1)
        assert results[0].status == "failed"
        assert "crashed" in results[0].error
        assert results[0].attempts == 2
        assert results[1].ok and results[2].ok

    def test_crash_with_zero_retries(self, dp):
        jobs = [BindJob.make(load_kernel("ewf"), dp, "debug-crash")]
        (result,) = run_batch(jobs, max_workers=2, retries=0)
        assert result.status == "failed"
        assert result.attempts == 1
