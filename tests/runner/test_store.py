"""RunStore: append-only JSONL records, crash tolerance, summaries."""

import json

import pytest

from repro.kernels.registry import load_kernel
from repro.runner import BindJob, JobResult, RunStore, execute_job
from repro.runner.store import RUN_FORMAT


@pytest.fixture
def job(two_cluster):
    return BindJob.make(load_kernel("ewf"), two_cluster, "b-init")


@pytest.fixture
def store(tmp_path):
    return RunStore(tmp_path / "runs.jsonl")


class TestRecording:
    def test_record_fields(self, store, job):
        result = execute_job(job)
        store.record(job, result)
        (entry,) = store.records()
        assert entry["format"] == RUN_FORMAT
        assert entry["key"] == job.cache_key()
        assert entry["kernel"] == "ewf"
        assert entry["algorithm"] == "b-init"
        assert entry["datapath"] == job.datapath_spec
        assert entry["num_buses"] == 2
        assert entry["status"] == "ok"
        assert entry["latency"] == result.latency
        assert entry["transfers"] == result.transfers
        assert entry["attempts"] == 1
        assert entry["cached"] is False
        assert entry["error"] is None

    def test_append_only(self, store, job):
        result = execute_job(job)
        for _ in range(3):
            store.record(job, result)
        assert len(store.records()) == 3
        assert len(store.path.read_text().splitlines()) == 3

    def test_failed_record(self, store, job):
        failure = JobResult(
            key=job.cache_key(),
            kernel=job.kernel,
            algorithm=job.algorithm,
            datapath_spec=job.datapath_spec,
            status="failed",
            error="RuntimeError: boom",
            attempts=2,
        )
        store.record(job, failure)
        (entry,) = store.records()
        assert entry["status"] == "failed"
        assert entry["error"] == "RuntimeError: boom"
        assert entry["latency"] is None


class TestReading:
    def test_missing_file_reads_empty(self, tmp_path):
        assert RunStore.read(tmp_path / "nope.jsonl") == []

    def test_torn_tail_skipped(self, store, job):
        store.record(job, execute_job(job))
        with store.path.open("a") as f:
            f.write('{"format": "repro-run/1", "key": "tru')  # crash mid-write
        assert len(store.records()) == 1

    def test_unknown_format_skipped(self, store, job):
        store.record(job, execute_job(job))
        with store.path.open("a") as f:
            f.write(json.dumps({"format": "repro-run/999"}) + "\n")
            f.write("\n")  # blank lines are fine too
        assert len(store.records()) == 1


class TestSummary:
    def test_counters(self, store, job):
        ok = execute_job(job)
        cached = execute_job(job)
        cached.cached = True
        failed = JobResult(
            key=job.cache_key(),
            kernel=job.kernel,
            algorithm=job.algorithm,
            datapath_spec=job.datapath_spec,
            status="failed",
            error="RuntimeError: boom",
        )
        store.record(job, ok)
        store.record(job, cached)
        store.record(job, failed)
        summary = store.summary()
        assert summary.total == 3
        assert summary.ok == 2
        assert summary.failed == 1
        assert summary.cached == 1
        assert summary.executed == 2
