"""Cross-worker evaluation-outcome sharing (REPRO_EVAL_CACHE).

When ``run_jobs`` has a result cache, workers run with
``REPRO_EVAL_CACHE`` pointing into it: every ``SearchSession``
warm-starts its evaluation memo from the on-disk :class:`OutcomeStore`
and merges back on ``persist()``.  Sharing is an accelerator, never an
input: results must be identical with the store cold, warm, or absent,
and across worker counts.
"""

import os

from repro.core.driver import bind, bind_initial
from repro.core.evalcache import Evaluator
from repro.datapath.parse import parse_datapath
from repro.kernels.registry import load_kernel
from repro.runner import ResultCache, run_jobs
from repro.runner.jobs import BindJob
from repro.search import EVAL_CACHE_ENV, OutcomeStore, SearchSession


def _projection(results):
    return [
        (r.kernel, r.algorithm, r.status, r.latency, r.transfers)
        for r in results
    ]


def _jobs():
    out = []
    for kernel in ("arf", "ewf"):
        dfg = load_kernel(kernel)
        dp = parse_datapath("|1,1|1,1|", num_buses=2)
        out.append(BindJob.make(dfg, dp, "b-iter"))
        out.append(BindJob.make(dfg, dp, "pressure", budget=4))
    return out


class TestOutcomeStore:
    def test_persist_then_warm_round_trip(self, tmp_path, monkeypatch):
        dfg = load_kernel("arf")
        dp = parse_datapath("|1,1|1,1|", num_buses=2)
        monkeypatch.setenv(EVAL_CACHE_ENV, str(tmp_path / "evals"))

        first = SearchSession(dfg, dp)
        bind(dfg, dp, session=first)
        assert first.persist() > 0

        second = SearchSession(dfg, dp)
        binding = bind_initial(dfg, dp).binding
        second.evaluate(binding)
        assert second.stats.cache_hits == 1
        assert second.stats.cache_misses == 0

    def test_warm_is_bit_equivalent(self, tmp_path, monkeypatch):
        dfg = load_kernel("ewf")
        dp = parse_datapath("|2,1|1,1|", num_buses=2)
        binding = bind_initial(dfg, dp).binding
        cold = Evaluator(dfg, dp).evaluate(binding)

        monkeypatch.setenv(EVAL_CACHE_ENV, str(tmp_path / "evals"))
        seeding = SearchSession(dfg, dp)
        seeding.evaluate(binding)
        seeding.persist()
        warm = SearchSession(dfg, dp).evaluate(binding).to_schedule()
        reference = cold.to_schedule()
        assert dict(warm.start) == dict(reference.start)
        assert dict(warm.instance) == dict(reference.instance)
        assert warm.latency == reference.latency

    def test_store_ignores_other_problems(self, tmp_path):
        # Outcomes are keyed by (DFG, datapath); a store populated for
        # one problem must not leak into another.
        store_root = tmp_path / "evals"
        dfg_a = load_kernel("arf")
        dfg_b = load_kernel("ewf")
        dp = parse_datapath("|1,1|1,1|", num_buses=2)
        os.environ[EVAL_CACHE_ENV] = str(store_root)
        try:
            session_a = SearchSession(dfg_a, dp)
            bind(dfg_a, dp, session=session_a)
            session_a.persist()
            session_b = SearchSession(dfg_b, dp)
            session_b.evaluate(bind_initial(dfg_b, dp).binding)
            assert session_b.stats.cache_hits == 0
        finally:
            del os.environ[EVAL_CACHE_ENV]


class TestRunnerEvalSharing:
    def test_two_workers_with_shared_store_match_serial(self, tmp_path):
        serial = run_jobs(_jobs())
        cache = ResultCache(tmp_path / "cache")
        pooled = run_jobs(_jobs(), max_workers=2, cache=cache)
        assert _projection(pooled) == _projection(serial)
        assert all(r.ok for r in pooled)
        # The batch actually exercised the shared store.
        evals = OutcomeStore(cache.root / "evals")
        assert len(evals.blob_paths()) > 0

    def test_env_is_restored_after_batch(self, tmp_path):
        assert EVAL_CACHE_ENV not in os.environ
        run_jobs(_jobs()[:1], cache=ResultCache(tmp_path / "cache"))
        assert EVAL_CACHE_ENV not in os.environ

    def test_explicit_env_wins(self, tmp_path, monkeypatch):
        mine = tmp_path / "mine"
        monkeypatch.setenv(EVAL_CACHE_ENV, str(mine))
        cache = ResultCache(tmp_path / "cache")
        results = run_jobs(_jobs()[:1], cache=cache)
        assert results[0].ok
        assert os.environ[EVAL_CACHE_ENV] == str(mine)
        assert not (cache.root / "evals").exists()

    def test_pressure_jobs_report_search_stats(self, tmp_path):
        (result,) = run_jobs([_jobs()[1]])  # arf "pressure" job
        assert result.ok
        assert result.search_stats is not None
        assert result.search_stats["evaluations"] > 0
        assert result.search_stats["cache_hits"] > 0
        assert any(
            name.startswith("descend:qp")
            for name in result.search_stats["phase_seconds"]
        )
