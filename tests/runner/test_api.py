"""run_jobs: the composed engine (cache + executor + store + progress)."""

import pytest

from repro.datapath.parse import parse_datapath
from repro.dfg.generators import random_layered_dfg
from repro.kernels.registry import load_kernel
from repro.runner import ResultCache, RunStore
from repro.runner.api import run_jobs
from repro.runner.jobs import BindJob


@pytest.fixture
def dp():
    return parse_datapath("|2,1|1,1|", num_buses=2)


@pytest.fixture
def jobs(dp):
    return [
        BindJob.make(random_layered_dfg(10, seed=s), dp, algo)
        for s in range(2)
        for algo in ("pcc", "b-init")
    ]


class TestCaching:
    def test_warm_run_executes_nothing(self, jobs, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = run_jobs(jobs, cache=cache)
        assert cache.stats.misses == len(jobs)
        assert cache.stats.writes == len(jobs)

        warm_cache = ResultCache(tmp_path / "cache")
        warm = run_jobs(jobs, cache=warm_cache)
        assert warm_cache.stats.hits == len(jobs)
        assert warm_cache.stats.misses == 0
        assert all(r.cached for r in warm)
        assert all(r.worker == "cache" and r.attempts == 0 for r in warm)
        assert [(r.latency, r.transfers) for r in warm] == [
            (r.latency, r.transfers) for r in cold
        ]

    def test_failures_are_not_cached(self, dp, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        job = BindJob.make(load_kernel("ewf"), dp, "debug-fail")
        (first,) = run_jobs([job], cache=cache, retries=0)
        assert first.status == "failed"
        assert cache.stats.writes == 0
        (second,) = run_jobs([job], cache=cache, retries=0)
        assert second.status == "failed"
        assert not second.cached  # re-attempted, not replayed

    def test_mixed_hit_miss_batch_keeps_order(self, jobs, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_jobs(jobs[:2], cache=cache)
        results = run_jobs(jobs, cache=cache)
        assert [r.key for r in results] == [j.cache_key() for j in jobs]
        assert [r.cached for r in results] == [True, True, False, False]


class TestStore:
    def test_every_job_recorded_in_input_order(self, jobs, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        run_jobs(jobs, store=store)
        records = store.records()
        assert [r["key"] for r in records] == [j.cache_key() for j in jobs]
        summary = store.summary()
        assert summary.total == len(jobs)
        assert summary.ok == len(jobs)
        assert summary.executed == len(jobs)

    def test_cache_provenance_recorded(self, jobs, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        store = RunStore(tmp_path / "runs.jsonl")
        run_jobs(jobs, cache=cache)
        run_jobs(jobs, cache=cache, store=store)
        assert all(r["cached"] for r in store.records())
        assert store.summary().executed == 0


class TestProgress:
    def test_callback_sees_every_job(self, jobs):
        lines = []
        run_jobs(jobs, progress=lambda t: lines.append(t.line()))
        assert len(lines) == len(jobs)
        assert lines[-1].startswith(f"{len(jobs)}/{len(jobs)} jobs")

    def test_cached_counter(self, jobs, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_jobs(jobs, cache=cache)
        trackers = []
        run_jobs(jobs, cache=cache, progress=trackers.append)
        assert trackers[-1].cached == len(jobs)
        assert trackers[-1].failed == 0
