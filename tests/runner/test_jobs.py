"""BindJob / JobResult: construction, validation, and cache keys.

The cache-key contract is load-bearing for the whole experiment engine:
the same job must hash identically across processes, hash-randomization
seeds, and config-dict orderings, and *any* semantic change to the job
must change the key.  The property tests below pin that contract over
random DFG populations.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.datapath.parse import parse_datapath
from repro.dfg.generators import random_layered_dfg
from repro.dfg.ops import MULT, default_registry
from repro.dfg.serialize import dfg_from_dict, dfg_to_dict
from repro.kernels.registry import load_kernel
from repro.runner import BindJob, JobResult, execute_job
from repro.runner.jobs import JOB_SCHEMA, RESULT_SCHEMA


@pytest.fixture
def ewf_job(two_cluster):
    return BindJob.make(load_kernel("ewf"), two_cluster, "b-init")


class TestBindJobConstruction:
    def test_make_normalizes_spec(self, two_cluster):
        job = BindJob.make(load_kernel("ewf"), two_cluster, "pcc")
        assert job.datapath_spec == two_cluster.spec()
        assert job.num_buses == 2
        assert job.move_latency == 1

    def test_unknown_algorithm_rejected(self, two_cluster, diamond):
        with pytest.raises(ValueError, match="unknown algorithm"):
            BindJob.make(diamond, two_cluster, "simplex")

    def test_non_scalar_config_rejected(self, two_cluster, diamond):
        with pytest.raises(TypeError, match="not a JSON scalar"):
            BindJob.make(diamond, two_cluster, "b-iter", iter_starts=[1, 2])

    def test_custom_registry_rejected(self, diamond):
        reg = default_registry().with_overrides(latencies={MULT: 6})
        dp = parse_datapath("|1,1|1,1|", num_buses=2, registry=reg)
        with pytest.raises(ValueError, match="custom timing registry"):
            BindJob.make(diamond, dp, "b-init")

    def test_rehydration_round_trip(self, ewf_job, two_cluster):
        dfg = ewf_job.dfg()
        assert dfg.name == "ewf"
        assert dfg.num_operations == load_kernel("ewf").num_operations
        dp = ewf_job.datapath()
        assert dp.spec() == two_cluster.spec()
        assert dp.num_buses == two_cluster.num_buses

    def test_jobs_are_hashable_and_picklable(self, ewf_job):
        import pickle

        clone = pickle.loads(pickle.dumps(ewf_job))
        assert clone == ewf_job
        assert hash(clone) == hash(ewf_job)
        assert clone.cache_key() == ewf_job.cache_key()


class TestCacheKey:
    def test_key_is_hex_sha256(self, ewf_job):
        key = ewf_job.cache_key()
        assert len(key) == 64
        int(key, 16)  # raises if not hex

    def test_serialize_round_trip_keys_identically(self, two_cluster):
        dfg = load_kernel("arf")
        job = BindJob.make(dfg, two_cluster, "pcc")
        clone = dfg_from_dict(json.loads(json.dumps(dfg_to_dict(dfg))))
        assert BindJob.make(clone, two_cluster, "pcc").cache_key() == (
            job.cache_key()
        )

    def test_config_order_independent(self, two_cluster, diamond):
        a = BindJob.make(diamond, two_cluster, "debug-sleep", x=1, seconds=2)
        b = BindJob.make(diamond, two_cluster, "debug-sleep", seconds=2, x=1)
        assert a.cache_key() == b.cache_key()

    def test_every_field_is_significant(self, diamond, two_cluster):
        base = BindJob.make(diamond, two_cluster, "b-iter", iter_starts=1)
        variants = [
            BindJob.make(diamond, two_cluster, "b-iter", iter_starts=2),
            BindJob.make(diamond, two_cluster, "b-iter"),
            BindJob.make(diamond, two_cluster, "b-init"),
            BindJob.make(
                diamond,
                parse_datapath("|2,1|1,1|", num_buses=2),
                "b-iter",
                iter_starts=1,
            ),
            BindJob.make(
                diamond,
                parse_datapath("|1,1|1,1|", num_buses=1),
                "b-iter",
                iter_starts=1,
            ),
            BindJob.make(
                diamond,
                parse_datapath("|1,1|1,1|", num_buses=2, move_latency=2),
                "b-iter",
                iter_starts=1,
            ),
        ]
        keys = {base.cache_key()} | {v.cache_key() for v in variants}
        assert len(keys) == 1 + len(variants)

    def test_different_dfgs_key_differently(self, two_cluster):
        a = random_layered_dfg(12, seed=0)
        b = random_layered_dfg(12, seed=1)
        assert (
            BindJob.make(a, two_cluster, "pcc").cache_key()
            != BindJob.make(b, two_cluster, "pcc").cache_key()
        )

    def test_schema_tag_in_envelope(self, ewf_job):
        # Defensive: the schema tag must participate in the hash, so a
        # bump invalidates old keys.  Reconstruct the envelope here.
        envelope = json.dumps(
            {
                "schema": JOB_SCHEMA,
                "dfg": ewf_job.dfg_json,
                "datapath": ewf_job.datapath_spec,
                "num_buses": ewf_job.num_buses,
                "move_latency": ewf_job.move_latency,
                "algorithm": ewf_job.algorithm,
                "config": list(ewf_job.config),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        import hashlib

        assert (
            hashlib.sha256(envelope.encode()).hexdigest()
            == ewf_job.cache_key()
        )

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        num_ops=st.integers(4, 24),
        iter_starts=st.one_of(st.none(), st.integers(1, 4)),
    )
    def test_key_stable_over_round_trip_property(
        self, seed, num_ops, iter_starts
    ):
        dp = parse_datapath("|2,1|1,1|", num_buses=2)
        dfg = random_layered_dfg(num_ops, seed=seed)
        job = BindJob.make(dfg, dp, "b-iter", iter_starts=iter_starts)
        clone_dfg = dfg_from_dict(json.loads(job.dfg_json))
        clone = BindJob.make(
            clone_dfg, job.datapath(), "b-iter", iter_starts=iter_starts
        )
        assert clone == job
        assert clone.cache_key() == job.cache_key()

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), delta=st.integers(1, 5))
    def test_any_config_change_changes_key_property(self, seed, delta):
        dp = parse_datapath("|1,1|1,1|", num_buses=2)
        dfg = random_layered_dfg(10, seed=seed)
        a = BindJob.make(dfg, dp, "b-iter", iter_starts=1)
        b = BindJob.make(dfg, dp, "b-iter", iter_starts=1 + delta)
        assert a.cache_key() != b.cache_key()

    def test_key_stable_across_processes(self, tmp_path):
        # The key must not depend on PYTHONHASHSEED or interpreter
        # instance: compute the same job's key in fresh subprocesses
        # with different hash seeds and compare.
        src_root = Path(repro.__file__).resolve().parents[1]
        script = (
            "from repro.datapath.parse import parse_datapath\n"
            "from repro.kernels.registry import load_kernel\n"
            "from repro.runner import BindJob\n"
            "job = BindJob.make(load_kernel('ewf'),"
            " parse_datapath('|2,1|1,1|', num_buses=2),"
            " 'b-iter', iter_starts=3)\n"
            "print(job.cache_key())\n"
        )
        keys = set()
        for hashseed in ("0", "1", "12345"):
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                check=True,
                env={
                    "PYTHONPATH": str(src_root),
                    "PYTHONHASHSEED": hashseed,
                },
            )
            keys.add(out.stdout.strip())
        assert len(keys) == 1
        in_process = BindJob.make(
            load_kernel("ewf"),
            parse_datapath("|2,1|1,1|", num_buses=2),
            "b-iter",
            iter_starts=3,
        ).cache_key()
        assert keys == {in_process}


class TestJobResult:
    def test_to_from_dict_round_trip(self):
        result = JobResult(
            key="k" * 64,
            kernel="ewf",
            algorithm="pcc",
            datapath_spec="|1,1|1,1|",
            latency=14,
            transfers=4,
            seconds=0.25,
        )
        data = result.to_dict()
        assert data["format"] == RESULT_SCHEMA
        assert JobResult.from_dict(data) == result

    def test_from_dict_rejects_unknown_format(self):
        with pytest.raises(ValueError, match="unsupported result format"):
            JobResult.from_dict({"format": "repro-runresult/999"})

    def test_execute_job_fills_measurements(self, two_cluster):
        job = BindJob.make(load_kernel("ewf"), two_cluster, "b-init")
        result = execute_job(job)
        assert result.ok
        assert result.key == job.cache_key()
        assert result.kernel == "ewf"
        assert result.latency is not None and result.latency > 0
        assert result.transfers is not None and result.transfers >= 0
        assert result.seconds > 0
