"""ResultCache: content-addressed blobs, stats, corruption tolerance."""

import json

import pytest

from repro.kernels.registry import load_kernel
from repro.runner import BindJob, ResultCache, execute_job
from repro.runner.cache import CACHE_FORMAT


@pytest.fixture
def job(two_cluster):
    return BindJob.make(load_kernel("ewf"), two_cluster, "b-init")


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestRoundTrip:
    def test_put_get(self, cache, job):
        result = execute_job(job)
        key = job.cache_key()
        cache.put(key, result.to_dict())
        assert cache.get(key) == result.to_dict()
        assert key in cache
        assert len(cache) == 1

    def test_blob_layout(self, cache, job):
        key = job.cache_key()
        cache.put(key, execute_job(job).to_dict())
        blob = cache.root / key[:2] / f"{key}.json"
        assert blob.exists()
        envelope = json.loads(blob.read_text())
        assert envelope["format"] == CACHE_FORMAT
        assert envelope["key"] == key

    def test_missing_key_is_miss(self, cache):
        assert cache.get("ab" + "0" * 62) is None
        assert ("ab" + "0" * 62) not in cache

    def test_malformed_key_rejected(self, cache):
        with pytest.raises(ValueError, match="malformed cache key"):
            cache.get("ab")


class TestCorruptionTolerance:
    def _plant(self, cache, key, text):
        path = cache.root / key[:2] / f"{key}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)

    def test_torn_json_is_miss(self, cache):
        key = "cd" + "1" * 62
        self._plant(cache, key, '{"format": "repro-ca')
        assert cache.get(key) is None

    def test_unknown_envelope_format_is_miss(self, cache, job):
        key = job.cache_key()
        envelope = {
            "format": "repro-cache/999",
            "key": key,
            "result": execute_job(job).to_dict(),
        }
        self._plant(cache, key, json.dumps(envelope))
        assert cache.get(key) is None

    def test_key_mismatch_is_miss(self, cache, job):
        # A blob copied/renamed to the wrong address must not replay.
        key = job.cache_key()
        other = "ef" + "2" * 62
        envelope = {
            "format": CACHE_FORMAT,
            "key": key,
            "result": execute_job(job).to_dict(),
        }
        self._plant(cache, other, json.dumps(envelope))
        assert cache.get(other) is None

    def test_unknown_result_schema_is_miss(self, cache, job):
        key = job.cache_key()
        result = execute_job(job).to_dict()
        result["format"] = "repro-runresult/999"
        envelope = {"format": CACHE_FORMAT, "key": key, "result": result}
        self._plant(cache, key, json.dumps(envelope))
        assert cache.get(key) is None


class TestStats:
    def test_counters(self, cache, job):
        key = job.cache_key()
        assert cache.get(key) is None
        cache.put(key, execute_job(job).to_dict())
        assert cache.get(key) is not None
        assert cache.get(key) is not None
        assert cache.stats.misses == 1
        assert cache.stats.hits == 2
        assert cache.stats.writes == 1
        assert cache.stats.lookups == 3
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_hit_rate_without_lookups(self, cache):
        assert cache.stats.hit_rate == 0.0
