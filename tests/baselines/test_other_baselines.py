"""Unit tests for the annealing, min-cut, UAS, random, and exhaustive
baselines."""

import pytest

from repro.baselines.annealing import annealing_bind
from repro.baselines.exhaustive import exhaustive_bind, search_space_size
from repro.baselines.mincut import mincut_bind
from repro.baselines.random_binding import random_bind, random_search
from repro.baselines.uas import uas_bind
from repro.core.binding import validate_binding
from repro.datapath.parse import parse_datapath
from repro.dfg.generators import random_layered_dfg
from repro.dfg.timing import critical_path_length


class TestAnnealing:
    def test_valid_and_deterministic(self, two_cluster):
        g = random_layered_dfg(18, seed=1)
        r1 = annealing_bind(g, two_cluster, seed=42)
        r2 = annealing_bind(g, two_cluster, seed=42)
        validate_binding(r1.binding, g, two_cluster)
        assert r1.binding == r2.binding

    def test_beats_single_random_binding(self, two_cluster):
        g = random_layered_dfg(18, seed=2)
        from repro.dfg.transform import bind_dfg
        from repro.schedule.list_scheduler import list_schedule

        annealed = annealing_bind(g, two_cluster, seed=0)
        rand = list_schedule(
            bind_dfg(g, random_bind(g, two_cluster, seed=0)), two_cluster
        )
        assert annealed.latency <= rand.latency

    def test_counters(self, two_cluster):
        g = random_layered_dfg(15, seed=3)
        r = annealing_bind(g, two_cluster, seed=1)
        assert r.moves_tried >= r.moves_accepted >= 0


class TestMinCut:
    def test_requires_homogeneous(self, three_cluster, diamond):
        with pytest.raises(ValueError, match="homogeneous"):
            mincut_bind(diamond, three_cluster)

    def test_valid_binding(self, two_cluster):
        g = random_layered_dfg(24, seed=4)
        r = mincut_bind(g, two_cluster)
        validate_binding(r.binding, g, two_cluster)

    def test_balance_respected(self, two_cluster):
        g = random_layered_dfg(24, seed=5)
        r = mincut_bind(g, two_cluster, balance_tolerance=0.25)
        counts = [len(r.binding.cluster_members(c)) for c in range(2)]
        assert abs(counts[0] - counts[1]) <= 0.5 * 24 * 0.25 * 2 + 2

    def test_reports_cut_size(self, chain5, two_cluster):
        r = mincut_bind(chain5, two_cluster, balance_tolerance=1.0)
        cut = sum(
            1 for u, v in chain5.edges() if r.binding[u] != r.binding[v]
        )
        assert r.cut_size == cut


class TestUas:
    def test_valid_binding(self, two_cluster):
        g = random_layered_dfg(24, seed=6)
        r = uas_bind(g, two_cluster)
        validate_binding(r.binding, g, two_cluster)

    def test_native_latency_sane(self, two_cluster):
        g = random_layered_dfg(24, seed=7)
        r = uas_bind(g, two_cluster)
        lcp = critical_path_length(g, two_cluster.registry)
        assert r.native_latency >= lcp
        assert r.latency >= lcp

    def test_single_cluster_no_transfers(self, chain5):
        dp = parse_datapath("|2,2|", num_buses=1)
        r = uas_bind(chain5, dp)
        assert r.num_transfers == 0
        assert r.latency == 5


class TestRandomSearch:
    def test_more_samples_no_worse(self, two_cluster):
        g = random_layered_dfg(16, seed=8)
        few = random_search(g, two_cluster, samples=3, seed=0)
        many = random_search(g, two_cluster, samples=40, seed=0)
        assert (many.latency, many.num_transfers) <= (
            few.latency,
            few.num_transfers,
        )

    def test_invalid_samples(self, diamond, two_cluster):
        with pytest.raises(ValueError):
            random_search(diamond, two_cluster, samples=0)


class TestExhaustive:
    def test_space_size(self, diamond, two_cluster):
        assert search_space_size(diamond, two_cluster) == 2**4

    def test_optimal_on_diamond(self, diamond, two_cluster):
        r = exhaustive_bind(diamond, two_cluster)
        # L_CP = 3 and the machine has enough FUs: optimum is 3/0.
        assert r.latency == 3
        assert r.num_transfers == 0

    def test_symmetry_reduction_counts(self, diamond, two_cluster):
        r = exhaustive_bind(diamond, two_cluster)
        assert r.evaluated == 2**3  # first op pinned on homogeneous dp

    def test_space_cap_enforced(self, two_cluster):
        g = random_layered_dfg(40, seed=9)
        with pytest.raises(ValueError, match="exceeds cap"):
            exhaustive_bind(g, two_cluster, max_space=100)

    def test_beats_or_ties_every_heuristic(self, two_cluster):
        from repro.core.driver import bind

        g = random_layered_dfg(10, seed=10)
        optimal = exhaustive_bind(g, two_cluster)
        ours = bind(g, two_cluster)
        assert optimal.latency <= ours.latency
