"""Unit tests for the centralized-datapath reference."""

import pytest

from repro.baselines.centralized import (
    centralized_equivalent,
    centralized_latency,
    clustering_overhead,
)
from repro.core.driver import bind
from repro.datapath.parse import parse_datapath
from repro.dfg.generators import chain_dfg, random_layered_dfg
from repro.dfg.ops import ALU, MUL
from repro.kernels import load_kernel


class TestCentralizedEquivalent:
    def test_fu_totals_preserved(self, three_cluster):
        central = centralized_equivalent(three_cluster)
        assert central.num_clusters == 1
        assert central.total_fu_count(ALU) == three_cluster.total_fu_count(ALU)
        assert central.total_fu_count(MUL) == three_cluster.total_fu_count(MUL)

    def test_registry_carries_over(self):
        dp = parse_datapath("|1,1|1,1|", move_latency=3)
        central = centralized_equivalent(dp)
        assert central.move_latency == 3


class TestCentralizedLatency:
    def test_no_transfers(self, diamond, two_cluster):
        schedule = centralized_latency(diamond, two_cluster)
        assert schedule.num_transfers == 0

    def test_lower_or_equal_to_clustered(self, two_cluster):
        for seed in (0, 3):
            g = random_layered_dfg(24, seed=seed)
            central = centralized_latency(g, two_cluster).latency
            clustered = bind(g, two_cluster, iter_starts=1).latency
            assert central <= clustered

    def test_chain_unaffected_by_centralization(self, chain5, two_cluster):
        assert centralized_latency(chain5, two_cluster).latency == 5


class TestClusteringOverhead:
    def test_ratio_at_least_one(self, two_cluster):
        g = random_layered_dfg(24, seed=5)
        result = bind(g, two_cluster, iter_starts=1)
        ratio = clustering_overhead(g, two_cluster, result.latency)
        assert ratio >= 1.0

    def test_rejects_impossible_latency(self, two_cluster):
        g = random_layered_dfg(24, seed=5)
        with pytest.raises(ValueError, match="cannot be valid"):
            clustering_overhead(g, two_cluster, 1)

    def test_paper_kernels_modest_overhead(self):
        """The algorithms keep the clustering penalty moderate — the
        point of the whole paper."""
        dp = parse_datapath("|2,1|2,1|", num_buses=2)
        for name in ("arf", "ewf", "dct-dif"):
            dfg = load_kernel(name)
            result = bind(dfg, dp, iter_starts=1)
            ratio = clustering_overhead(dfg, dp, result.latency)
            assert ratio <= 1.5

    def test_empty_graph_ratio_one(self, two_cluster):
        from repro.dfg.graph import Dfg

        assert clustering_overhead(Dfg("e"), two_cluster, 0) == 1.0
