"""Unit tests for the PCC baseline."""

import pytest

from repro.baselines.pcc import approx_latency, form_partial_components, pcc_bind
from repro.core.binding import Binding, validate_binding
from repro.datapath.parse import parse_datapath
from repro.dfg.generators import random_layered_dfg
from repro.dfg.timing import critical_path_length


class TestPartialComponents:
    def test_partition_covers_all_ops(self, diamond):
        for cap in (1, 2, 10):
            comps = form_partial_components(diamond, cap)
            names = sorted(n for comp in comps for n in comp)
            assert names == sorted(diamond)

    def test_cap_respected(self, two_cluster):
        g = random_layered_dfg(30, seed=1)
        for cap in (2, 4, 7):
            comps = form_partial_components(g, cap)
            assert max(len(c) for c in comps) <= cap

    def test_cap_one_gives_singletons(self, diamond):
        comps = form_partial_components(diamond, 1)
        assert all(len(c) == 1 for c in comps)
        assert len(comps) == 4

    def test_large_cap_groups_dependence_cones(self, chain5):
        comps = form_partial_components(chain5, 10)
        assert len(comps) == 1

    def test_invalid_cap(self, diamond):
        with pytest.raises(ValueError):
            form_partial_components(diamond, 0)


class TestApproxLatency:
    def test_chain_exact(self, chain5, two_cluster):
        b = Binding({n: 0 for n in chain5})
        assert approx_latency(chain5, two_cluster, b) == 5

    def test_cut_chain_charges_move(self, chain5, two_cluster):
        b = Binding({"v1": 0, "v2": 0, "v3": 1, "v4": 1, "v5": 1})
        assert approx_latency(chain5, two_cluster, b) == 6

    def test_fu_contention_modeled(self, wide8):
        dp = parse_datapath("|1,1|1,1|", num_buses=2)
        b = Binding({n: 0 for n in wide8})
        assert approx_latency(wide8, dp, b) == 8

    def test_bus_contention_ignored(self, wide8):
        # The approximation's known blind spot: it never charges bus
        # conflicts (this is what Table 2 exploits).
        from repro.dfg.graph import Dfg
        from repro.dfg.ops import ADD

        g = Dfg("x")
        for i in range(4):
            g.add_op(f"p{i}", ADD)
            g.add_op(f"c{i}", ADD)
            g.add_edge(f"p{i}", f"c{i}")
        b = Binding({f"p{i}": 0 for i in range(4)} | {f"c{i}": 1 for i in range(4)})
        dp = parse_datapath("|4,1|4,1|", num_buses=1)
        assert approx_latency(g, dp, b) == 3  # real scheduler would say 6


class TestPccBind:
    def test_valid_binding(self, two_cluster):
        g = random_layered_dfg(25, seed=2)
        result = pcc_bind(g, two_cluster)
        validate_binding(result.binding, g, two_cluster)

    def test_sweep_log_covers_caps(self, diamond, two_cluster):
        result = pcc_bind(diamond, two_cluster, component_caps=(2, 4))
        assert len(result.sweep_log) == 2
        assert result.component_cap in (2, 4)

    def test_result_is_best_of_sweep(self, two_cluster):
        g = random_layered_dfg(20, seed=3)
        result = pcc_bind(g, two_cluster)
        assert (result.latency, result.num_transfers) == min(
            (l, m) for _, l, m in result.sweep_log
        )

    def test_improvement_helps_or_ties(self, two_cluster):
        g = random_layered_dfg(25, seed=4)
        raw = pcc_bind(g, two_cluster, improve=False)
        improved = pcc_bind(g, two_cluster, improve=True)
        assert improved.latency <= raw.latency

    def test_latency_at_least_critical_path(self, two_cluster):
        g = random_layered_dfg(25, seed=5)
        result = pcc_bind(g, two_cluster)
        assert result.latency >= critical_path_length(g, two_cluster.registry)

    def test_heterogeneous_datapath(self, three_cluster):
        g = random_layered_dfg(25, seed=6)
        result = pcc_bind(g, three_cluster)
        validate_binding(result.binding, g, three_cluster)

    def test_mul_only_cluster_component_split(self):
        # A datapath where one cluster lacks multipliers: components
        # containing multiplies must avoid it (or split).
        from repro.kernels import load_kernel

        dfg = load_kernel("arf")
        dp = parse_datapath("|2,0|1,2|", num_buses=2)
        result = pcc_bind(dfg, dp)
        validate_binding(result.binding, dfg, dp)
