"""Unit tests for the exact branch-and-bound binder."""

import pytest

from repro.baselines.branch_and_bound import branch_and_bound_bind
from repro.baselines.exhaustive import exhaustive_bind
from repro.core.binding import validate_binding
from repro.core.driver import bind, bind_initial
from repro.datapath.parse import parse_datapath
from repro.dfg.generators import chain_dfg, random_layered_dfg


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_exhaustive_on_small_graphs(self, seed, two_cluster):
        g = random_layered_dfg(8, seed=seed)
        exact = exhaustive_bind(g, two_cluster)
        bnb = branch_and_bound_bind(g, two_cluster)
        assert bnb.proven_optimal
        assert (bnb.latency, bnb.num_transfers) == (
            exact.latency,
            exact.num_transfers,
        )

    def test_valid_binding(self, three_cluster):
        g = random_layered_dfg(12, seed=7)
        result = branch_and_bound_bind(g, three_cluster)
        validate_binding(result.binding, g, three_cluster)

    def test_never_worse_than_b_init(self, two_cluster):
        g = random_layered_dfg(14, seed=3)
        init = bind_initial(g, two_cluster)
        result = branch_and_bound_bind(g, two_cluster)
        assert (result.latency, result.num_transfers) <= (
            init.latency,
            init.num_transfers,
        )

    def test_chain_trivial_optimum(self, two_cluster):
        result = branch_and_bound_bind(chain_dfg(6), two_cluster)
        assert result.proven_optimal
        assert result.latency == 6
        assert result.num_transfers == 0


class TestBudget:
    def test_budget_exhaustion_flagged(self, two_cluster):
        g = random_layered_dfg(30, seed=1)
        result = branch_and_bound_bind(g, two_cluster, max_nodes=50)
        assert not result.proven_optimal
        # incumbent still valid
        validate_binding(result.binding, g, two_cluster)

    def test_nodes_counted(self, two_cluster):
        g = random_layered_dfg(8, seed=2)
        result = branch_and_bound_bind(g, two_cluster)
        assert 0 < result.nodes_explored <= 2**8 * 4


class TestBIterNearOptimality:
    """The paper: "in some cases we were able to verify that the
    generated solutions were optimal" — check B-ITER against proven
    optima on mid-size instances."""

    @pytest.mark.parametrize("seed", range(3))
    def test_biter_within_one_cycle(self, seed, two_cluster):
        g = random_layered_dfg(14, seed=seed)
        optimal = branch_and_bound_bind(g, two_cluster, max_nodes=500_000)
        ours = bind(g, two_cluster)
        if optimal.proven_optimal:
            assert ours.latency <= optimal.latency + 1
