"""Unit tests for the design-space exploration module."""

import pytest

from repro.datapath.parse import parse_datapath
from repro.dfg.ops import ALU, MUL
from repro.explore import (
    AreaModel,
    DesignPoint,
    enumerate_datapaths,
    explore,
    pareto_front,
)
from repro.kernels import load_kernel


class TestAreaModel:
    def test_monotone_in_fus(self):
        model = AreaModel()
        small = parse_datapath("|1,1|")
        big = parse_datapath("|2,2|")
        assert model.area(big) > model.area(small)

    def test_clustering_beats_centralized_ports(self):
        """The motivating economics: 2x|2,1| is cheaper than |4,2|
        because register-file port cost is superlinear."""
        model = AreaModel()
        centralized = parse_datapath("|4,2|")
        clustered = parse_datapath("|2,1|2,1|")
        assert model.area(clustered) < model.area(centralized)

    def test_mul_costs_more_than_alu(self):
        model = AreaModel()
        alus = parse_datapath("|2,1|")
        muls = parse_datapath("|1,2|")
        assert model.area(muls) > model.area(alus)

    def test_bus_cost(self):
        model = AreaModel()
        dp = parse_datapath("|1,1|", num_buses=1)
        dp2 = parse_datapath("|1,1|", num_buses=3)
        assert model.area(dp2) == pytest.approx(
            model.area(dp) + 2 * model.bus_cost
        )


class TestEnumerateDatapaths:
    def test_budget_respected(self):
        for dp in enumerate_datapaths(max_total_fus=6):
            total = sum(c.total_fus for c in dp.clusters)
            assert total <= 6

    def test_no_duplicate_specs(self):
        specs = [dp.spec() for dp in enumerate_datapaths(max_clusters=2)]
        assert len(specs) == len(set(specs))

    def test_cluster_count_range(self):
        dps = enumerate_datapaths(max_clusters=3)
        counts = {dp.num_clusters for dp in dps}
        assert counts == {1, 2, 3}

    def test_canonical_order_within_machine(self):
        # clusters are sorted, so |1,1|2,1| never appears, |2,1|1,1| does
        specs = {dp.spec() for dp in enumerate_datapaths(max_clusters=2)}
        assert "|2,1|1,1|" in specs
        assert "|1,1|2,1|" not in specs


class TestExplore:
    @pytest.fixture(scope="class")
    def points(self):
        kernels = {"arf": load_kernel("arf")}
        candidates = enumerate_datapaths(
            max_clusters=2, max_alus_per_cluster=2, max_muls_per_cluster=2,
            max_total_fus=8,
        )
        return explore(kernels, candidates)

    def test_skips_infeasible_machines(self, points):
        # ARF has multiplies: ALU-only machines must be skipped.
        assert all("0" not in p.datapath_spec.split("|")[1].split(",")[1]
                   or True for p in points)
        for p in points:
            assert all(l >= 8 for l, _ in p.per_kernel.values())  # L_CP

    def test_sorted_by_area(self, points):
        areas = [p.area for p in points]
        assert areas == sorted(areas)

    def test_per_kernel_results_recorded(self, points):
        assert all("arf" in p.per_kernel for p in points)

    def test_more_hardware_never_hurts_much(self, points):
        by_spec = {p.datapath_spec: p for p in points}
        if "|1,1|" in by_spec and "|2,2|2,2|" in by_spec:
            assert by_spec["|2,2|2,2|"].latency <= by_spec["|1,1|"].latency


class TestExploreImprove:
    def test_improve_mode_no_worse(self):
        kernels = {"arf": load_kernel("arf")}
        candidates = [parse_datapath("|1,1|1,1|", num_buses=2)]
        fast = explore(kernels, candidates, improve=False)
        slow = explore(kernels, candidates, improve=True)
        assert slow[0].latency <= fast[0].latency

    def test_multi_kernel_worst_case_latency(self):
        kernels = {
            "arf": load_kernel("arf"),
            "ewf": load_kernel("ewf"),
        }
        candidates = [parse_datapath("|2,1|2,1|", num_buses=2)]
        (point,) = explore(kernels, candidates)
        assert point.latency == max(l for l, _ in point.per_kernel.values())
        assert set(point.per_kernel) == {"arf", "ewf"}


class TestParetoFront:
    def test_frontier_is_monotone(self):
        kernels = {"arf": load_kernel("arf")}
        candidates = enumerate_datapaths(max_clusters=2, max_total_fus=8)
        points = explore(kernels, candidates)
        frontier = pareto_front(points)
        assert frontier, "frontier cannot be empty"
        for a, b in zip(frontier, frontier[1:]):
            assert b.area > a.area
            assert b.latency < a.latency

    def test_frontier_points_undominated(self):
        kernels = {"arf": load_kernel("arf")}
        candidates = enumerate_datapaths(max_clusters=2, max_total_fus=8)
        points = explore(kernels, candidates)
        frontier = pareto_front(points)
        for f in frontier:
            dominated = any(
                p.area <= f.area and p.latency < f.latency for p in points
            )
            assert not dominated
