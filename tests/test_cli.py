"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bind_defaults(self):
        args = build_parser().parse_args(["bind", "ewf"])
        assert args.datapath == "|1,1|1,1|"
        assert args.buses == 2
        assert args.algorithm == "b-iter"


class TestCommands:
    def test_kernels_listing(self, capsys):
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        for kernel in ("ewf", "arf", "fft", "dct-dif"):
            assert kernel in out

    def test_bind_kernel(self, capsys):
        rc = main(["bind", "arf", "-d", "|1,1|1,1|", "-a", "b-init"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "L = " in out
        assert "cluster 0" in out

    def test_bind_with_pcc(self, capsys):
        assert main(["bind", "arf", "-a", "pcc"]) == 0
        assert "via pcc" in capsys.readouterr().out

    def test_bind_with_gantt(self, capsys):
        assert main(["bind", "arf", "-a", "b-init", "--gantt"]) == 0
        assert "c0.ALU.0" in capsys.readouterr().out

    def test_bind_dot_output(self, tmp_path, capsys):
        dot = tmp_path / "out.dot"
        rc = main(["bind", "arf", "-a", "b-init", "--dot", str(dot)])
        assert rc == 0
        assert dot.exists()
        assert "digraph" in dot.read_text()

    def test_bind_json_dfg_file(self, tmp_path, capsys, diamond):
        from repro.dfg.serialize import save_dfg

        path = tmp_path / "g.json"
        save_dfg(diamond, path)
        assert main(["bind", str(path), "-a", "b-init"]) == 0

    def test_table2_no_iter(self, capsys):
        assert main(["table2", "--no-iter"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert out.count("N_B=") >= 4

    def test_table1_single_kernel_no_iter(self, capsys):
        assert main(["table1", "--kernel", "arf", "--no-iter"]) == 0
        assert "ARF" in capsys.readouterr().out

    def test_move_latency_flag(self, capsys):
        assert main(
            ["bind", "arf", "-a", "b-init", "--move-latency", "2"]
        ) == 0
        assert "lat(move)=2" in capsys.readouterr().out

    def test_pressure_command(self, capsys):
        assert main(["pressure", "arf", "-d", "|1,1|1,1|"]) == 0
        out = capsys.readouterr().out
        assert "peak pressure" in out
        assert "centralized" in out

    def test_dse_command(self, capsys):
        rc = main(["dse", "arf", "--max-clusters", "1", "--max-fus", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Pareto-optimal" in out

    def test_table2_export(self, tmp_path, capsys):
        out_file = tmp_path / "t2.csv"
        assert main(["table2", "--no-iter", "--out", str(out_file)]) == 0
        assert out_file.exists()
        assert "kernel" in out_file.read_text()

    def test_kernels_verbose(self, capsys):
        assert main(["kernels", "-v"]) == 0
        out = capsys.readouterr().out
        assert "width" in out
        assert "fanout" in out

    def test_bind_svg_output(self, tmp_path, capsys):
        svg = tmp_path / "out.svg"
        assert main(["bind", "arf", "-a", "b-init", "--svg", str(svg)]) == 0
        assert svg.exists()
        assert svg.read_text().startswith("<svg")


class TestRunnerFlags:
    def test_jobs_flag_defaults_to_serial(self):
        args = build_parser().parse_args(["table1"])
        assert args.jobs == 1
        assert args.cache_dir is None
        assert args.store is None

    def test_jobs_short_flag(self):
        args = build_parser().parse_args(["dse", "ewf", "-j", "4"])
        assert args.jobs == 4

    def test_table1_parallel(self, capsys):
        rc = main(["table1", "--kernel", "ewf", "--no-iter", "-j", "2"])
        assert rc == 0
        assert "EWF" in capsys.readouterr().out

    def test_table1_cache_and_store(self, tmp_path, capsys):
        from repro.runner import RunStore

        cache_dir = tmp_path / "cache"
        store_path = tmp_path / "runs.jsonl"
        argv = [
            "table1",
            "--kernel",
            "ewf",
            "--no-iter",
            "--cache-dir",
            str(cache_dir),
            "--store",
            str(store_path),
        ]
        assert main(argv) == 0
        first = RunStore(store_path).summary()
        assert first.total > 0
        assert first.executed == first.total

        # Second invocation replays everything from the cache.
        capsys.readouterr()
        assert main(argv) == 0
        second = RunStore(store_path).summary()
        assert second.total == 2 * first.total
        assert second.cached == first.total

    def test_dse_with_cache(self, tmp_path, capsys):
        argv = [
            "dse",
            "ewf",
            "--max-clusters",
            "1",
            "--max-fus",
            "4",
            "--cache-dir",
            str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first
