"""Differential tests: the fast evaluation engine is bit-equivalent.

The fast path (``repro.schedule.fastpath`` + ``repro.core.evalcache``)
promises *bit-identical* results to the naive ``bind_dfg`` +
``list_schedule`` pipeline — same latency, same transfer count, same
start cycle and unit assignment for every operation, same descent
trajectory.  These tests enforce the promise over random DFGs × random
datapaths (hypothesis) and over directed perturbation sequences that
exercise the incremental transfer re-derivation and the memo.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.binding import Binding
from repro.core.evalcache import EvalCache, Evaluator
from repro.core.iterative import (
    boundary_operations,
    candidate_moves,
    iterative_improvement,
)
from repro.datapath.parse import parse_datapath
from repro.dfg.generators import random_layered_dfg
from repro.dfg.graph import Dfg
from repro.dfg.ops import ADD, MULT
from repro.dfg.transform import bind_delta, bind_dfg
from repro.kernels import load_kernel
from repro.schedule.fastpath import SchedContext, fast_list_schedule
from repro.schedule.list_scheduler import list_schedule

# -- strategies -------------------------------------------------------------

dfg_strategy = st.builds(
    random_layered_dfg,
    num_ops=st.integers(min_value=1, max_value=35),
    seed=st.integers(min_value=0, max_value=10_000),
    width=st.integers(min_value=1, max_value=8),
    mul_fraction=st.floats(min_value=0.0, max_value=1.0),
)

datapath_strategy = st.builds(
    lambda shape, buses, topo: parse_datapath(
        "|" + "|".join(f"{a},{m}" for a, m in shape) + "|" + topo,
        num_buses=buses,
    ),
    shape=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=3),
            st.integers(min_value=1, max_value=3),
        ),
        min_size=1,
        max_size=4,
    ),
    buses=st.integers(min_value=1, max_value=3),
    # "" is the paper's shared bus; the rest exercise routed multi-hop
    # interconnects through the same differential.
    topo=st.sampled_from(
        ("", " @ring:cap=1", " @mesh:cap=1", " @p2p:cap=1", " @ring:cap=2")
    ),
)

relaxed = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _random_binding(dfg, datapath, seed):
    rng = random.Random(seed)
    return Binding(
        {
            op.name: rng.choice(datapath.target_set(op.optype))
            for op in dfg.regular_operations()
        }
    )


def _assert_schedules_identical(fast, naive):
    assert fast.latency == naive.latency
    assert fast.num_transfers == naive.num_transfers
    assert dict(fast.start) == dict(naive.start)
    assert dict(fast.instance) == dict(naive.instance)


# -- fast_list_schedule ≡ list_schedule -------------------------------------


class TestFastListSchedule:
    @given(dfg=dfg_strategy, dp=datapath_strategy, seed=st.integers(0, 999))
    @relaxed
    def test_equivalent_on_random_inputs(self, dfg, dp, seed):
        binding = _random_binding(dfg, dp, seed)
        bound = bind_dfg(dfg, binding, interconnect=dp.interconnect)
        _assert_schedules_identical(
            fast_list_schedule(bound, dp), list_schedule(bound, dp)
        )

    @pytest.mark.parametrize("kernel", ["ewf", "fft", "arf"])
    @pytest.mark.parametrize("spec", ["|1,1|1,1|", "|2,1|1,1|"])
    def test_equivalent_on_paper_kernels(self, kernel, spec):
        dfg = load_kernel(kernel)
        dp = parse_datapath(spec, num_buses=2)
        binding = _random_binding(dfg, dp, seed=7)
        bound = bind_dfg(dfg, binding, interconnect=dp.interconnect)
        _assert_schedules_identical(
            fast_list_schedule(bound, dp), list_schedule(bound, dp)
        )

    def test_custom_priority_stays_on_fast_path(self, diamond, two_cluster):
        # Sortable custom priorities (here: 1-tuples) are rank-packed
        # into the fast scheduler's integer keys, not punted to the
        # naive scheduler — and the result is identical either way.
        binding = Binding({n: 0 for n in diamond})
        bound = bind_dfg(diamond, binding)
        priority = {n: (i,) for i, n in enumerate(bound.graph)}
        _assert_schedules_identical(
            fast_list_schedule(bound, two_cluster, priority=priority),
            list_schedule(bound, two_cluster, priority=priority),
        )

    @given(
        dfg=dfg_strategy,
        dp=datapath_strategy,
        seed=st.integers(0, 999),
        levels=st.integers(min_value=1, max_value=3),
    )
    @relaxed
    def test_custom_priority_tie_breaks_match_naive(
        self, dfg, dp, seed, levels
    ):
        # Non-unique priorities force name tie-breaks: the naive heap
        # orders by (priority, name), and the packed-key path must
        # reproduce that exactly.  Few distinct levels maximize ties.
        binding = _random_binding(dfg, dp, seed)
        bound = bind_dfg(dfg, binding, interconnect=dp.interconnect)
        rng = random.Random(seed)
        priority = {n: rng.randrange(levels) for n in bound.graph}
        _assert_schedules_identical(
            fast_list_schedule(bound, dp, priority=priority),
            list_schedule(bound, dp, priority=priority),
        )

    def test_incomparable_priority_falls_back_to_naive(
        self, diamond, two_cluster
    ):
        # Mixed int/str priorities cannot be rank-sorted; the fast path
        # must defer to the naive scheduler rather than raise.
        binding = Binding({n: 0 for n in diamond})
        bound = bind_dfg(diamond, binding)
        names = list(bound.graph)
        priority = {n: (0 if i % 2 else "x") for i, n in enumerate(names)}
        try:
            expected = list_schedule(bound, two_cluster, priority=priority)
        except TypeError:
            with pytest.raises(TypeError):
                fast_list_schedule(bound, two_cluster, priority=priority)
        else:
            _assert_schedules_identical(
                fast_list_schedule(bound, two_cluster, priority=priority),
                expected,
            )

    def test_budget_error_matches_naive_message(self):
        # An infeasible pool is impossible through bind_dfg; instead check
        # the budget formula agrees by scheduling a graph right at it.
        g = Dfg("tiny")
        g.add_op("a", ADD)
        dp = parse_datapath("|1,1|", num_buses=1)
        bound = bind_dfg(g, Binding({"a": 0}))
        _assert_schedules_identical(
            fast_list_schedule(bound, dp), list_schedule(bound, dp)
        )


# -- SchedContext.evaluate ≡ naive pipeline ---------------------------------


class TestSchedContextEvaluate:
    @given(dfg=dfg_strategy, dp=datapath_strategy, seed=st.integers(0, 999))
    @relaxed
    def test_outcome_matches_naive(self, dfg, dp, seed):
        binding = _random_binding(dfg, dp, seed)
        ctx = SchedContext(dfg, dp)
        out = ctx.evaluate(tuple(binding[n] for n in ctx.names))
        naive = list_schedule(bind_dfg(dfg, binding, interconnect=dp.interconnect), dp)
        assert out.latency == naive.latency
        assert out.num_transfers == naive.num_transfers
        assert out.completion_profile() == naive.completion_profile()
        _assert_schedules_identical(out.to_schedule(), naive)

    @given(
        dfg=dfg_strategy,
        dp=datapath_strategy,
        seed=st.integers(0, 999),
        n_moves=st.integers(1, 12),
    )
    @relaxed
    def test_incremental_dests_across_perturbations(
        self, dfg, dp, seed, n_moves
    ):
        """Chained perturbations exercise the incremental dest patching."""
        rng = random.Random(seed)
        binding = _random_binding(dfg, dp, seed)
        evaluator = Evaluator(dfg, dp)
        names = [op.name for op in dfg.regular_operations()]
        for _ in range(n_moves):
            v = rng.choice(names)
            ts = dfg.operation(v).optype
            targets = dp.target_set(ts)
            binding = binding.rebind((v, rng.choice(targets)))
            out = evaluator.evaluate(binding)
            naive = list_schedule(bind_dfg(dfg, binding, interconnect=dp.interconnect), dp)
            assert (out.latency, out.num_transfers) == (
                naive.latency,
                naive.num_transfers,
            )
            _assert_schedules_identical(out.to_schedule(), naive)


# -- bind_delta ≡ bind_dfg ---------------------------------------------------


class TestBindDelta:
    @given(
        dfg=dfg_strategy,
        dp=datapath_strategy,
        seed=st.integers(0, 999),
        n_moves=st.integers(1, 8),
    )
    @relaxed
    def test_identical_including_insertion_order(
        self, dfg, dp, seed, n_moves
    ):
        rng = random.Random(seed)
        binding = _random_binding(dfg, dp, seed)
        prev = bind_dfg(dfg, binding, interconnect=dp.interconnect)
        names = [op.name for op in dfg.regular_operations()]
        for _ in range(n_moves):
            v = rng.choice(names)
            binding = binding.rebind(
                (v, rng.choice(dp.target_set(dfg.operation(v).optype)))
            )
            delta = bind_delta(
                dfg, prev, binding, interconnect=dp.interconnect
            )
            full = bind_dfg(dfg, binding, interconnect=dp.interconnect)
            # Same nodes in the same insertion order (the scheduler's
            # priority tie-break depends on it), same edges, same maps.
            assert list(delta.graph) == list(full.graph)
            assert set(delta.graph.edges()) == set(full.graph.edges())
            assert dict(delta.placement) == dict(full.placement)
            assert dict(delta.transfer_sources) == dict(
                full.transfer_sources
            )
            assert dict(delta.producer_dests) == dict(full.producer_dests)
            prev = delta

    def test_explicit_moved_argument(self, diamond, two_cluster):
        b0 = Binding({"v1": 0, "v2": 0, "v3": 0, "v4": 0})
        prev = bind_dfg(diamond, b0)
        b1 = b0.rebind(("v3", 1))
        delta = bind_delta(diamond, prev, b1, moved=["v3"])
        full = bind_dfg(diamond, b1)
        assert list(delta.graph) == list(full.graph)
        assert dict(delta.placement) == dict(full.placement)


# -- memo correctness ---------------------------------------------------------


class TestEvalCache:
    def test_hit_returns_identical_outcome(self, two_cluster):
        dfg = load_kernel("ewf")
        evaluator = Evaluator(dfg, two_cluster)
        binding = _random_binding(dfg, two_cluster, seed=3)
        first = evaluator.evaluate(binding)
        assert evaluator.cache.misses == 1
        second = evaluator.evaluate(binding)
        assert evaluator.cache.hits == 1
        assert second is first  # the memo returns the cached object
        assert evaluator.evaluations == 1

    def test_eviction_bound(self):
        cache = EvalCache(max_entries=2)
        cache.put((0,), "a")
        cache.put((1,), "b")
        cache.put((2,), "c")
        assert len(cache) == 2
        assert cache.get((0,)) is None  # oldest evicted
        assert cache.get((2,)) == "c"

    def test_cache_never_changes_descent_trajectory(self, two_cluster):
        """A shared (pre-warmed) memo must not alter B-ITER's descent."""
        dfg = load_kernel("ewf")
        start = _random_binding(dfg, two_cluster, seed=11)

        cold = iterative_improvement(dfg, two_cluster, start, fast=True)

        # Pre-warm an evaluator with every binding the descent will see
        # in scrambled order, then rerun: identical trajectory required.
        warm_eval = Evaluator(dfg, two_cluster)
        probe = start
        warm_eval.evaluate(probe)
        for v in boundary_operations(dfg, probe):
            for c in candidate_moves(dfg, two_cluster, probe, v):
                warm_eval.evaluate(probe.rebind((v, c)))
        warm = iterative_improvement(
            dfg, two_cluster, start, evaluator=warm_eval
        )

        assert warm.binding == cold.binding
        assert warm.history == cold.history
        assert warm.iterations == cold.iterations
        assert warm.evaluations == cold.evaluations
        _assert_schedules_identical(warm.schedule, cold.schedule)
        assert warm.cache_hits > 0  # the warm memo actually served hits


# -- end-to-end descent equivalence ------------------------------------------


class TestDescentEquivalence:
    @given(dfg=dfg_strategy, dp=datapath_strategy, seed=st.integers(0, 99))
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_fast_descent_equals_naive_descent(self, dfg, dp, seed):
        start = _random_binding(dfg, dp, seed)
        fast = iterative_improvement(dfg, dp, start, fast=True)
        naive = iterative_improvement(dfg, dp, start, fast=False)
        assert fast.binding == naive.binding
        assert fast.history == naive.history
        assert fast.iterations == naive.iterations
        assert fast.evaluations == naive.evaluations
        _assert_schedules_identical(fast.schedule, naive.schedule)

    @pytest.mark.parametrize("kernel,spec", [("ewf", "|2,1|1,1|"), ("fft", "|1,1|1,1|")])
    def test_driver_bit_equivalence_on_paper_cells(self, kernel, spec):
        from repro.core.driver import bind

        dfg = load_kernel(kernel)
        dp = parse_datapath(spec, num_buses=2)
        fast = bind(dfg, dp, fast=True)
        naive = bind(dfg, dp, fast=False)
        assert fast.binding == naive.binding
        assert fast.sweep_log == naive.sweep_log
        assert fast.iter_result.history == naive.iter_result.history
        _assert_schedules_identical(fast.schedule, naive.schedule)
        assert fast.eval_hits > 0  # the memo did real work
