"""Unit tests for list-scheduling priorities."""

from repro.dfg.graph import Dfg
from repro.dfg.ops import ADD
from repro.schedule.priorities import alap_priority, asap_priority


class TestAlapPriority:
    def test_urgent_before_mobile(self, registry):
        g = Dfg("p")
        g.add_op("a", ADD)
        g.add_op("b", ADD)
        g.add_op("c", ADD)
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.add_op("loose", ADD)
        keys = alap_priority(g, registry)
        assert keys["a"] < keys["loose"]

    def test_total_order(self, diamond, registry):
        keys = alap_priority(diamond, registry)
        assert len({keys[n] for n in diamond}) == len(diamond)

    def test_consumer_count_breaks_ties(self, registry):
        g = Dfg("p")
        g.add_op("fan", ADD)
        g.add_op("solo", ADD)
        for i in range(2):
            g.add_op(f"c{i}", ADD)
            g.add_edge("fan", f"c{i}")
        g.add_op("c9", ADD)
        g.add_edge("solo", "c9")
        keys = alap_priority(g, registry)
        assert keys["fan"] < keys["solo"]


class TestAsapPriority:
    def test_late_ops_first(self, chain5, registry):
        keys = asap_priority(chain5, registry)
        assert keys["v5"] < keys["v1"]

    def test_total_order(self, diamond, registry):
        keys = asap_priority(diamond, registry)
        assert len({keys[n] for n in diamond}) == len(diamond)
