"""Unit tests for latency lower bounds."""

import pytest

from repro.core.driver import bind
from repro.datapath.parse import parse_datapath
from repro.dfg.generators import chain_dfg, random_layered_dfg
from repro.dfg.graph import Dfg
from repro.dfg.ops import ALU, MUL, MULT, default_registry
from repro.schedule.bounds import latency_bounds, latency_lower_bound


class TestBounds:
    def test_chain_bound_is_critical_path(self, chain5, two_cluster):
        b = latency_bounds(chain5, two_cluster)
        assert b.critical_path == 5
        assert b.resource <= 5
        assert b.combined == 5

    def test_wide_graph_bound_is_resource(self, wide8):
        dp = parse_datapath("|1,1|", num_buses=1)
        b = latency_bounds(wide8, dp)
        assert b.critical_path == 1
        assert b.resource == 8
        assert b.combined == 8
        assert b.per_type[ALU] == 8

    def test_unpipelined_resources_raise_bound(self):
        g = Dfg("m")
        for i in range(4):
            g.add_op(f"m{i}", MULT)
        reg = default_registry().with_overrides(
            latencies={MULT: 2}, diis={MULT: 2}
        )
        dp = parse_datapath("|1,1|", num_buses=1, registry=reg)
        b = latency_bounds(g, dp)
        assert b.per_type[MUL] == 8  # 4 ops x dii 2 on one unit

    def test_missing_fu_type_raises(self, diamond):
        dp = parse_datapath("|2,0|", num_buses=1)
        with pytest.raises(ValueError, match="no MUL"):
            latency_bounds(diamond, dp)

    @pytest.mark.parametrize("seed", range(4))
    def test_bound_never_exceeds_achieved_latency(self, seed, two_cluster):
        g = random_layered_dfg(25, seed=seed)
        lb = latency_lower_bound(g, two_cluster)
        result = bind(g, two_cluster, iter_starts=1)
        assert lb <= result.latency

    def test_kernel_bounds_hold(self, two_cluster):
        from repro.kernels import KERNELS, load_kernel

        for name in KERNELS:
            dfg = load_kernel(name)
            lb = latency_lower_bound(dfg, two_cluster)
            assert lb >= 1
