"""Differential tests: the vector batch engine is bit-identical.

The vector engine (``repro.schedule.vectorpath``) promises the same
bit-identity contract the scalar fast path made in PR 2, now for whole
batches: every lane's latency, start cycles, unit assignments, transfer
pairs, and lexicographic tie-breaks must equal a per-candidate
``SchedContext.evaluate`` — which is itself pinned against the naive
``bind_dfg`` + ``list_schedule`` pipeline.  The suite enforces the
chain over random DFGs × datapaths × placements (hypothesis), over the
paper kernels, over every registered quality kind (the quality vectors
read derived state — completion profiles, register pressure — so they
cross-check the whole outcome, not just the latency), and over torn
batch shapes (width 1, odd widths, duplicates).
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.binding import Binding
from repro.datapath.parse import parse_datapath
from repro.dfg.generators import random_layered_dfg
from repro.dfg.transform import bind_dfg
from repro.kernels import load_kernel
from repro.schedule.fastpath import SchedContext, fast_list_schedule
from repro.schedule.list_scheduler import list_schedule
from repro.schedule.vectorpath import (
    DEFAULT_VECTOR_THRESHOLD,
    VectorContext,
    VectorUnsupported,
    vector_batch_threshold,
    vector_context_for,
    vectorpath_enabled,
)
from repro.search.quality import QualitySpec

np = pytest.importorskip("numpy")

# -- strategies (mirroring test_fastpath_equiv) -----------------------------

dfg_strategy = st.builds(
    random_layered_dfg,
    num_ops=st.integers(min_value=1, max_value=35),
    seed=st.integers(min_value=0, max_value=10_000),
    width=st.integers(min_value=1, max_value=8),
    mul_fraction=st.floats(min_value=0.0, max_value=1.0),
)

datapath_strategy = st.builds(
    lambda shape, buses, topo: parse_datapath(
        "|" + "|".join(f"{a},{m}" for a, m in shape) + "|" + topo,
        num_buses=buses,
    ),
    shape=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=3),
            st.integers(min_value=1, max_value=3),
        ),
        min_size=1,
        max_size=4,
    ),
    buses=st.integers(min_value=1, max_value=3),
    # "" is the paper's shared bus; the rest exercise routed multi-hop
    # interconnects through the same differential.
    topo=st.sampled_from(
        ("", " @ring:cap=1", " @mesh:cap=1", " @p2p:cap=1", " @ring:cap=2")
    ),
)

relaxed = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Every registered quality kind, parametric ones included.
QUALITY_SPECS = ("qu", "qm", "lm", "latency", "qp:4")


def _random_placements(ctx, datapath, seed, width):
    rng = random.Random(seed)
    targets = [
        tuple(datapath.target_set(ctx.dfg.operation(name).optype))
        for name in ctx.names
    ]
    return [
        tuple(rng.choice(ts) for ts in targets) for _ in range(width)
    ]


def _assert_outcomes_identical(vec, ref):
    assert vec.latency == ref.latency
    assert vec.starts == ref.starts
    assert vec.units == ref.units
    assert vec.pairs == ref.pairs


# -- evaluate_batch ≡ per-candidate evaluate ≡ naive ------------------------


class TestBatchDifferential:
    @given(
        dfg=dfg_strategy,
        dp=datapath_strategy,
        seed=st.integers(0, 999),
        width=st.integers(min_value=1, max_value=9),
    )
    @relaxed
    def test_matches_scalar_and_naive_on_random_inputs(
        self, dfg, dp, seed, width
    ):
        ctx = SchedContext(dfg, dp)
        vctx = VectorContext(ctx)
        placements = _random_placements(ctx, dp, seed, width)
        outcomes = vctx.evaluate_batch(placements)
        assert len(outcomes) == width
        for placement, vec in zip(placements, outcomes):
            ref = ctx.evaluate(list(placement))
            _assert_outcomes_identical(vec, ref)
        # Chain to the naive pipeline on the first lane: the vector
        # outcome materializes to the exact naive schedule.
        binding = Binding(dict(zip(ctx.names, placements[0])))
        naive = list_schedule(bind_dfg(dfg, binding, interconnect=dp.interconnect), dp)
        sched = outcomes[0].to_schedule()
        assert sched.latency == naive.latency
        assert dict(sched.start) == dict(naive.start)
        assert dict(sched.instance) == dict(naive.instance)

    @pytest.mark.parametrize(
        "kernel", ["ewf", "fft", "arf", "dct-dif", "dct-lee"]
    )
    def test_matches_scalar_on_paper_kernels(self, kernel):
        dfg = load_kernel(kernel)
        dp = parse_datapath("|3,1|2,2|1,3|", num_buses=2)
        ctx = SchedContext(dfg, dp)
        vctx = VectorContext(ctx)
        placements = _random_placements(ctx, dp, seed=7, width=40)
        placements.append(tuple(0 for _ in ctx.names))  # transfer-free lane
        for placement, vec in zip(
            placements, vctx.evaluate_batch(placements)
        ):
            _assert_outcomes_identical(vec, ctx.evaluate(list(placement)))

    @given(
        dfg=dfg_strategy,
        dp=datapath_strategy,
        seed=st.integers(0, 999),
    )
    @relaxed
    def test_quality_vectors_identical_for_all_kinds(self, dfg, dp, seed):
        # Quality functions read latency, transfer counts, completion
        # profiles, and register pressure off the outcome — computing
        # all registered kinds on the vector outcome vs the naive
        # schedule cross-checks the derived state end to end.
        ctx = SchedContext(dfg, dp)
        vctx = VectorContext(ctx)
        placements = _random_placements(ctx, dp, seed, width=3)
        outcomes = vctx.evaluate_batch(placements)
        for placement, vec in zip(placements, outcomes):
            binding = Binding(dict(zip(ctx.names, placement)))
            naive = list_schedule(bind_dfg(dfg, binding, interconnect=dp.interconnect), dp)
            for spec in QUALITY_SPECS:
                for fn in QualitySpec.parse(spec).functions():
                    assert fn(vec) == fn(naive), spec

    @given(
        dfg=dfg_strategy,
        dp=datapath_strategy,
        seed=st.integers(0, 999),
        prio=st.integers(0, 99),
    )
    @relaxed
    def test_custom_priority_path_is_undisturbed(self, dfg, dp, seed, prio):
        # Custom priority maps run through ``fast_list_schedule`` (rank
        # packing), not the batch engine — a vector evaluation of the
        # same binding must not perturb them, and all three engines
        # stay mutually consistent on the default priorities.
        ctx = SchedContext(dfg, dp)
        vctx = VectorContext(ctx)
        placement = _random_placements(ctx, dp, seed, width=1)[0]
        vec = vctx.evaluate_batch([placement])[0]
        binding = Binding(dict(zip(ctx.names, placement)))
        bound = bind_dfg(dfg, binding, interconnect=dp.interconnect)
        rng = random.Random(prio)
        priority = {n: rng.randrange(5) for n in bound.graph}
        fast = fast_list_schedule(bound, dp, priority=priority)
        naive = list_schedule(bound, dp, priority=priority)
        assert fast.latency == naive.latency
        assert dict(fast.start) == dict(naive.start)
        # Default-priority naive still matches the vector lane.
        default = list_schedule(bound, dp)
        assert vec.latency == default.latency


class TestTornBatches:
    """Batch shapes the descent loop never produces must still work."""

    def _fixture(self):
        dfg = load_kernel("ewf")
        dp = parse_datapath("|2,1|1,1|", num_buses=2)
        ctx = SchedContext(dfg, dp)
        return ctx, VectorContext(ctx), dp

    def test_width_one(self):
        ctx, vctx, dp = self._fixture()
        placement = _random_placements(ctx, dp, seed=1, width=1)[0]
        (vec,) = vctx.evaluate_batch([placement])
        _assert_outcomes_identical(vec, ctx.evaluate(list(placement)))

    @pytest.mark.parametrize("width", [3, 7, 13])
    def test_odd_widths(self, width):
        ctx, vctx, dp = self._fixture()
        placements = _random_placements(ctx, dp, seed=width, width=width)
        outcomes = vctx.evaluate_batch(placements)
        assert len(outcomes) == width
        for placement, vec in zip(placements, outcomes):
            _assert_outcomes_identical(vec, ctx.evaluate(list(placement)))

    def test_duplicate_lanes_agree(self):
        # Width > distinct candidates: duplicated lanes are scheduled
        # independently and must agree with each other and the scalar.
        ctx, vctx, dp = self._fixture()
        base = _random_placements(ctx, dp, seed=9, width=2)
        placements = base * 3
        outcomes = vctx.evaluate_batch(placements)
        ref = [ctx.evaluate(list(p)) for p in base]
        for i, vec in enumerate(outcomes):
            _assert_outcomes_identical(vec, ref[i % 2])

    def test_empty_batch(self):
        _, vctx, _ = self._fixture()
        assert vctx.evaluate_batch([]) == []


# -- gates, thresholds, degradation -----------------------------------------


class TestGates:
    def test_env_gate_mirrors_fastpath(self, monkeypatch):
        monkeypatch.delenv("REPRO_VECTORPATH", raising=False)
        assert vectorpath_enabled()
        for off in ("0", "false", "no", "off"):
            monkeypatch.setenv("REPRO_VECTORPATH", off)
            assert not vectorpath_enabled()
        monkeypatch.setenv("REPRO_VECTORPATH", "1")
        assert vectorpath_enabled()

    def test_threshold_env_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_VECTOR_THRESHOLD", raising=False)
        assert vector_batch_threshold() == DEFAULT_VECTOR_THRESHOLD
        monkeypatch.setenv("REPRO_VECTOR_THRESHOLD", "5")
        assert vector_batch_threshold() == 5
        monkeypatch.setenv("REPRO_VECTOR_THRESHOLD", "garbage")
        assert vector_batch_threshold() == DEFAULT_VECTOR_THRESHOLD

    def test_context_cached_on_sched_context(self):
        dfg = load_kernel("ewf")
        dp = parse_datapath("|2,1|1,1|", num_buses=2)
        ctx = SchedContext(dfg, dp)
        first = vector_context_for(ctx)
        assert isinstance(first, VectorContext)
        assert vector_context_for(ctx) is first

    def test_gate_off_returns_none(self, monkeypatch):
        dfg = load_kernel("ewf")
        dp = parse_datapath("|2,1|1,1|", num_buses=2)
        ctx = SchedContext(dfg, dp)
        monkeypatch.setenv("REPRO_VECTORPATH", "0")
        assert vector_context_for(ctx) is None

    def test_unpipelined_model_is_unsupported(self):
        dfg = load_kernel("ewf")
        dp = parse_datapath("|2,1|1,1|", num_buses=2)
        ctx = SchedContext(dfg, dp)
        ctx.all_dii_one = False  # simulate a dii != 1 registry
        with pytest.raises(VectorUnsupported):
            VectorContext(ctx)
        # vector_context_for memoizes the rejection as a cheap None.
        assert vector_context_for(ctx) is None
        assert vector_context_for(ctx) is None
