"""Tri-engine agreement on routed (non-bus) interconnects.

The interconnect refactor's acceptance bar: the naive list scheduler,
the scalar fast path (``SchedContext.evaluate``), and the vector batch
engine (``VectorContext.evaluate_batch``) must produce bit-identical
schedules on ring/mesh/p2p machines — multi-hop MOVE chains included.
CI runs this file as the routed smoke cell under both
``REPRO_VECTORPATH=1`` and ``=0`` (the gate changes which engine the
*driver* picks, never what any engine computes, so the file must pass
identically either way).
"""

import random

import pytest

from repro.core.binding import Binding
from repro.datapath.parse import parse_datapath
from repro.dfg.transform import bind_dfg
from repro.kernels import load_kernel
from repro.schedule.fastpath import SchedContext, fast_list_schedule
from repro.schedule.list_scheduler import list_schedule

np = pytest.importorskip("numpy")

from repro.schedule.vectorpath import VectorContext  # noqa: E402

TOPOLOGY_SPECS = (
    "|1,1|1,1|1,1| @ring:cap=1",
    "|1,1|1,1|1,1|1,1| @ring:cap=1",
    "|1,1|1,1|1,1|1,1| @mesh:cap=1",
    "|2,1|1,1|1,2| @p2p:cap=1",
    "|1,1|1,1|1,1|1,1| @ring:cap=2,hop=2",
)


def _random_binding(dfg, dp, seed):
    rng = random.Random(seed)
    return Binding(
        {
            op.name: rng.choice(dp.target_set(op.optype))
            for op in dfg.regular_operations()
        }
    )


class TestTriEngineAgreement:
    @pytest.mark.parametrize("kernel", ["ewf", "fft", "arf"])
    @pytest.mark.parametrize("spec", TOPOLOGY_SPECS)
    def test_three_engines_bit_identical(self, kernel, spec):
        dfg = load_kernel(kernel)
        dp = parse_datapath(spec)
        ctx = SchedContext(dfg, dp)
        vctx = VectorContext(ctx)
        for seed in range(3):
            binding = _random_binding(dfg, dp, seed)
            bound = bind_dfg(
                dfg, binding, interconnect=dp.interconnect
            )
            naive = list_schedule(bound, dp)
            fast = fast_list_schedule(bound, dp)
            assert fast.latency == naive.latency
            assert dict(fast.start) == dict(naive.start)
            assert dict(fast.instance) == dict(naive.instance)

            placement = tuple(binding[n] for n in ctx.names)
            scalar = ctx.evaluate(list(placement))
            vec = vctx.evaluate_batch([placement])[0]
            assert scalar.starts == vec.starts
            assert scalar.units == vec.units
            assert scalar.pairs == vec.pairs
            assert scalar.latency == vec.latency == naive.latency
            sched = scalar.to_schedule()
            assert dict(sched.start) == dict(naive.start)
            assert dict(sched.instance) == dict(naive.instance)


class TestMultiHopStructure:
    def test_ring_distance_two_transfer_is_a_two_leg_chain(self):
        # c0 -> c2 on a 4-ring routes c0>c1, c1>c2: two MOVE legs, one
        # counted transfer (M counts final legs only).
        dp = parse_datapath("|1,1|1,1|1,1|1,1| @ring:cap=1")
        dfg = load_kernel("ewf")
        binding = Binding(
            {
                op.name: (0 if i % 2 else 2)
                for i, op in enumerate(dfg.regular_operations())
            }
        )
        bound = bind_dfg(dfg, binding, interconnect=dp.interconnect)
        legs = [
            name
            for name in bound.graph
            if bound.graph.operation(name).is_transfer
        ]
        finals = [
            name
            for name in legs
            if any(
                not bound.graph.operation(s).is_transfer
                for s in bound.graph.successors(name)
            )
        ]
        assert legs and len(legs) == 2 * len(finals)
        assert bound.num_transfers == len(finals)
        # every leg is pinned to a link of the machine
        assert set(legs) == set(bound.transfer_links)
        for name in legs:
            link = bound.transfer_links[name]
            assert 0 <= link < dp.interconnect.num_links

    def test_schedule_occupies_routed_links_not_a_bus(self):
        from repro.dfg.ops import BUS

        dp = parse_datapath("|1,1|1,1|1,1|1,1| @ring:cap=1")
        dfg = load_kernel("ewf")
        binding = _random_binding(dfg, dp, seed=1)
        bound = bind_dfg(dfg, binding, interconnect=dp.interconnect)
        sched = list_schedule(bound, dp)
        for name in bound.graph:
            if not bound.graph.operation(name).is_transfer:
                continue
            cluster, futype, unit = sched.instance[name]
            assert futype == BUS
            link = -cluster - 1
            assert link == bound.transfer_links[name]
            assert unit < dp.interconnect.links[link].capacity

    def test_hop_latency_stretches_the_chain(self):
        bus = parse_datapath("|1,1|1,1|1,1|1,1|")
        slow = parse_datapath("|1,1|1,1|1,1|1,1| @ring:cap=2,hop=2")
        assert slow.move_latency == 2
        dfg = load_kernel("ewf")
        binding = _random_binding(dfg, bus, seed=3)
        fast_l = list_schedule(
            bind_dfg(dfg, binding, interconnect=bus.interconnect), bus
        ).latency
        slow_l = list_schedule(
            bind_dfg(dfg, binding, interconnect=slow.interconnect), slow
        ).latency
        assert slow_l >= fast_l
