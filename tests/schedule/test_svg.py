"""Unit tests for the SVG schedule renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.dfg.transform import bind_dfg
from repro.schedule.list_scheduler import list_schedule
from repro.schedule.svg import render_svg, save_svg


@pytest.fixture
def schedule(diamond, two_cluster):
    bound = bind_dfg(diamond, {"v1": 0, "v2": 0, "v3": 1, "v4": 0})
    return list_schedule(bound, two_cluster)


class TestSvg:
    def test_is_well_formed_xml(self, schedule):
        ET.fromstring(render_svg(schedule))

    def test_one_rect_per_operation(self, schedule):
        root = ET.fromstring(render_svg(schedule))
        ns = "{http://www.w3.org/2000/svg}"
        rects = root.findall(f"{ns}rect")
        assert len(rects) == len(schedule.bound.graph)

    def test_resource_labels_present(self, schedule):
        svg = render_svg(schedule)
        assert "c0.ALU.0" in svg
        assert "bus.0" in svg

    def test_footer_metrics(self, schedule):
        svg = render_svg(schedule)
        assert f"L = {schedule.latency}" in svg

    def test_title_escaped(self, schedule):
        svg = render_svg(schedule, title="a < b & c")
        assert "a &lt; b &amp; c" in svg
        ET.fromstring(svg)

    def test_save(self, schedule, tmp_path):
        path = tmp_path / "sched.svg"
        save_svg(schedule, path, title="demo")
        assert path.exists()
        ET.fromstring(path.read_text())

    def test_kernel_scale(self, two_cluster):
        from repro.core.driver import bind_initial
        from repro.kernels import load_kernel

        dfg = load_kernel("ewf")
        result = bind_initial(dfg, two_cluster)
        schedule = list_schedule(bind_dfg(dfg, result.binding), two_cluster)
        ET.fromstring(render_svg(schedule, title="EWF"))
