"""Unit tests for the ASCII Gantt renderer."""

from repro.datapath.parse import parse_datapath
from repro.dfg.transform import bind_dfg
from repro.schedule.gantt import render_gantt
from repro.schedule.list_scheduler import list_schedule


class TestGantt:
    def test_contains_all_resources(self, diamond, two_cluster):
        s = list_schedule(
            bind_dfg(diamond, {n: 0 for n in diamond}), two_cluster
        )
        chart = render_gantt(s)
        assert "c0.ALU.0" in chart
        assert "c1.MUL.0" in chart
        assert "bus.0" in chart
        assert "bus.1" in chart

    def test_footer_reports_metrics(self, diamond, two_cluster):
        s = list_schedule(
            bind_dfg(diamond, {"v1": 0, "v2": 0, "v3": 1, "v4": 0}),
            two_cluster,
        )
        chart = render_gantt(s)
        assert f"L = {s.latency}" in chart
        assert f"M = {s.num_transfers}" in chart

    def test_ops_appear_once_per_busy_cycle(self, chain5, two_cluster):
        s = list_schedule(bind_dfg(chain5, {n: 0 for n in chain5}), two_cluster)
        chart = render_gantt(s)
        for n in chain5:
            assert n in chart

    def test_long_names_truncated(self, figure1_dfg, two_cluster):
        s = list_schedule(
            bind_dfg(figure1_dfg, {"v1": 0, "v2": 0, "v3": 1, "v4": 1}),
            two_cluster,
        )
        chart = render_gantt(s, max_name_len=5)
        assert "~" in chart  # transfer name t.v1.c1 gets truncated
