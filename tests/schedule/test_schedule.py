"""Unit tests for the Schedule object and its validity checker."""

import pytest

from repro.datapath.parse import parse_datapath
from repro.dfg.ops import ALU, BUS
from repro.dfg.transform import bind_dfg
from repro.schedule.list_scheduler import list_schedule
from repro.schedule.schedule import Schedule, ScheduleError, validate_schedule


@pytest.fixture
def valid_schedule(diamond, two_cluster):
    bound = bind_dfg(diamond, {"v1": 0, "v2": 0, "v3": 1, "v4": 0})
    return list_schedule(bound, two_cluster)


def rebuild(schedule, **overrides):
    fields = dict(
        bound=schedule.bound,
        datapath=schedule.datapath,
        start=dict(schedule.start),
        instance=dict(schedule.instance),
        latency=schedule.latency,
    )
    fields.update(overrides)
    return Schedule(**fields)


class TestScheduleObject:
    def test_finish(self, valid_schedule):
        assert valid_schedule.finish("v1") == valid_schedule.start["v1"] + 1

    def test_completion_profile_counts_regular_only(self, valid_schedule):
        profile = valid_schedule.completion_profile()
        assert sum(profile) == 4  # transfers excluded
        assert len(profile) == valid_schedule.latency

    def test_ops_at_cycle(self, valid_schedule):
        busy = valid_schedule.ops_at_cycle(0)
        assert "v1" in busy

    def test_repr(self, valid_schedule):
        assert "L=" in repr(valid_schedule)


class TestValidateSchedule:
    def test_accepts_scheduler_output(self, valid_schedule):
        validate_schedule(valid_schedule)

    def test_detects_missing_op(self, valid_schedule):
        start = dict(valid_schedule.start)
        start.pop("v4")
        broken = rebuild(valid_schedule, start=start)
        with pytest.raises(ScheduleError, match="missing"):
            validate_schedule(broken)

    def test_detects_precedence_violation(self, valid_schedule):
        start = dict(valid_schedule.start)
        start["v4"] = 0
        broken = rebuild(valid_schedule, start=start)
        with pytest.raises(ScheduleError, match="precedence"):
            validate_schedule(broken)

    def test_detects_wrong_cluster(self, valid_schedule):
        instance = dict(valid_schedule.instance)
        cluster, futype, unit = instance["v1"]
        wrong = 1 - valid_schedule.bound.placement["v1"]
        instance["v1"] = (wrong, futype, unit)
        broken = rebuild(valid_schedule, instance=instance)
        with pytest.raises(ScheduleError, match="bound to"):
            validate_schedule(broken)

    def test_detects_wrong_futype(self, valid_schedule):
        instance = dict(valid_schedule.instance)
        cluster, _, unit = instance["v3"]  # v3 is a multiply
        instance["v3"] = (cluster, ALU, unit)
        broken = rebuild(valid_schedule, instance=instance)
        with pytest.raises(ScheduleError, match="needs"):
            validate_schedule(broken)

    def test_detects_unit_overflow(self, valid_schedule):
        instance = dict(valid_schedule.instance)
        cluster, futype, _ = instance["v1"]
        instance["v1"] = (cluster, futype, 99)
        broken = rebuild(valid_schedule, instance=instance)
        with pytest.raises(ScheduleError):
            validate_schedule(broken)

    def test_detects_dii_conflict(self, diamond, two_cluster):
        bound = bind_dfg(diamond, {n: 0 for n in diamond})
        s = list_schedule(bound, two_cluster)
        # Force v2 onto v1's unit in the same cycle.
        start = dict(s.start)
        instance = dict(s.instance)
        start["v2"] = start["v1"]
        instance["v2"] = instance["v1"]
        broken = rebuild(s, start=start, instance=instance)
        with pytest.raises(ScheduleError):
            validate_schedule(broken)

    def test_detects_wrong_latency(self, valid_schedule):
        broken = rebuild(valid_schedule, latency=valid_schedule.latency + 3)
        with pytest.raises(ScheduleError, match="recorded latency"):
            validate_schedule(broken)

    def test_detects_transfer_off_bus(self, valid_schedule):
        transfers = valid_schedule.bound.graph.transfer_operations()
        assert transfers, "fixture should produce a transfer"
        name = transfers[0].name
        instance = dict(valid_schedule.instance)
        instance[name] = (0, ALU, 0)
        broken = rebuild(valid_schedule, instance=instance)
        with pytest.raises(ScheduleError):
            validate_schedule(broken)

    def test_detects_bus_slot_overflow(self, valid_schedule):
        transfers = valid_schedule.bound.graph.transfer_operations()
        name = transfers[0].name
        instance = dict(valid_schedule.instance)
        instance[name] = (-1, BUS, 7)
        broken = rebuild(valid_schedule, instance=instance)
        with pytest.raises(ScheduleError, match="bus slot"):
            validate_schedule(broken)
