"""Unit tests for the resource-constrained list scheduler."""

import pytest

from repro.core.binding import Binding
from repro.datapath.parse import parse_datapath
from repro.dfg.graph import Dfg
from repro.dfg.ops import ADD, MULT, default_registry
from repro.dfg.transform import bind_dfg
from repro.schedule.list_scheduler import ResourcePool, list_schedule
from repro.schedule.schedule import validate_schedule


def schedule_of(dfg, binding, spec="|1,1|1,1|", num_buses=2, move_latency=1):
    dp = parse_datapath(spec, num_buses=num_buses, move_latency=move_latency)
    s = list_schedule(bind_dfg(dfg, binding), dp)
    validate_schedule(s)
    return s


class TestResourcePool:
    def test_hands_out_lowest_free_instance(self):
        pool = ResourcePool(2)
        assert pool.issue(0, dii=1) == 0
        assert pool.issue(0, dii=1) == 1
        assert pool.available_at(0) is None

    def test_dii_spacing(self):
        pool = ResourcePool(1)
        pool.issue(0, dii=3)
        assert pool.available_at(1) is None
        assert pool.available_at(2) is None
        assert pool.available_at(3) == 0

    def test_issue_when_full_raises(self):
        pool = ResourcePool(1)
        pool.issue(0, dii=2)
        with pytest.raises(RuntimeError):
            pool.issue(1, dii=1)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            ResourcePool(-1)


class TestBasicScheduling:
    def test_chain_takes_length_cycles(self, chain5):
        s = schedule_of(chain5, {n: 0 for n in chain5})
        assert s.latency == 5

    def test_wide_graph_limited_by_fu_count(self, wide8):
        # 8 independent adds, 1 ALU per cluster, all in cluster 0.
        s = schedule_of(wide8, {n: 0 for n in wide8})
        assert s.latency == 8

    def test_wide_graph_split_across_clusters(self, wide8):
        binding = {f"v{i}": (i - 1) % 2 for i in range(1, 9)}
        s = schedule_of(wide8, binding)
        assert s.latency == 4  # no data flows, no transfers
        assert s.num_transfers == 0

    def test_transfer_adds_latency(self, chain5):
        # Split the chain mid-way: one transfer, one extra cycle.
        binding = {"v1": 0, "v2": 0, "v3": 1, "v4": 1, "v5": 1}
        s = schedule_of(chain5, binding)
        assert s.num_transfers == 1
        assert s.latency == 6

    def test_latency_equals_max_finish(self, diamond):
        s = schedule_of(diamond, {n: 0 for n in diamond})
        assert s.latency == max(s.finish(n) for n in diamond)


class TestBusContention:
    def test_single_bus_serializes_transfers(self, wide8):
        # v1..v4 produce in cluster 0; v5..v8 consume in cluster 1.
        g = Dfg("x")
        for i in range(1, 5):
            g.add_op(f"p{i}", ADD)
        for i in range(1, 5):
            g.add_op(f"c{i}", ADD)
            g.add_edge(f"p{i}", f"c{i}")
        binding = {f"p{i}": 0 for i in range(1, 5)}
        binding.update({f"c{i}": 1 for i in range(1, 5)})

        dp1 = parse_datapath("|4,1|4,1|", num_buses=1)
        dp4 = parse_datapath("|4,1|4,1|", num_buses=4)
        s1 = list_schedule(bind_dfg(g, binding), dp1)
        s4 = list_schedule(bind_dfg(g, binding), dp4)
        validate_schedule(s1)
        validate_schedule(s4)
        # 4 transfers on one bus serialize; on four buses they don't.
        assert s4.latency == 3
        assert s1.latency == 6

    def test_move_latency_two(self, chain5):
        binding = {"v1": 0, "v2": 0, "v3": 1, "v4": 1, "v5": 1}
        s = schedule_of(chain5, binding, move_latency=2)
        assert s.latency == 7


class TestDiiPipelining:
    def test_unpipelined_multiplier_blocks(self):
        g = Dfg("m")
        g.add_op("m1", MULT)
        g.add_op("m2", MULT)
        reg = default_registry().with_overrides(
            latencies={MULT: 2}, diis={MULT: 2}
        )
        dp = parse_datapath("|1,1|", num_buses=1, registry=reg)
        s = list_schedule(bind_dfg(g, {"m1": 0, "m2": 0}), dp)
        validate_schedule(s)
        assert s.latency == 4  # back-to-back blocked by dii=2

    def test_pipelined_multiplier_overlaps(self):
        g = Dfg("m")
        g.add_op("m1", MULT)
        g.add_op("m2", MULT)
        reg = default_registry().with_overrides(latencies={MULT: 2})
        dp = parse_datapath("|1,1|", num_buses=1, registry=reg)
        s = list_schedule(bind_dfg(g, {"m1": 0, "m2": 0}), dp)
        validate_schedule(s)
        assert s.latency == 3  # issue at 0 and 1, finish at 2 and 3


class TestPriorityEffects:
    def test_critical_ops_go_first(self):
        # One long chain and one independent op compete for one ALU;
        # the chain head must win the first slot.
        g = Dfg("p")
        g.add_op("a", ADD)
        g.add_op("b", ADD)
        g.add_op("c", ADD)
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.add_op("loose", ADD)
        dp = parse_datapath("|1,1|", num_buses=1)
        s = list_schedule(bind_dfg(g, {n: 0 for n in g}), dp)
        validate_schedule(s)
        assert s.start["a"] == 0
        assert s.latency == 4

    def test_empty_graph(self):
        dp = parse_datapath("|1,1|")
        s = list_schedule(bind_dfg(Dfg("e"), {}), dp)
        assert s.latency == 0


class TestSafetyRails:
    def test_unbindable_placement_raises(self):
        g = Dfg("bad")
        g.add_op("m", MULT)
        dp = parse_datapath("|1,1|1,0|", num_buses=1)
        bound = bind_dfg(g, {"m": 1})  # cluster 1 has no multiplier
        with pytest.raises(RuntimeError, match="no\\s+MUL"):
            list_schedule(bound, dp)
