"""Failure-injection and degenerate-input tests.

The library should fail loudly and precisely on impossible inputs, and
behave sensibly on degenerate ones (empty graphs, single operations,
extreme latencies, starved machines).
"""

import pytest

from repro import bind, bind_initial, parse_datapath
from repro.baselines import pcc_bind, uas_bind
from repro.core.binding import Binding
from repro.datapath.model import Cluster, Datapath
from repro.dfg.graph import Dfg
from repro.dfg.ops import ADD, ALU, MULT, OpType, default_registry
from repro.dfg.transform import bind_dfg
from repro.schedule.list_scheduler import list_schedule
from repro.schedule.schedule import validate_schedule


class TestDegenerateGraphs:
    def test_empty_dfg(self, two_cluster):
        g = Dfg("empty")
        result = bind(g, two_cluster)
        assert result.latency == 0
        assert result.num_transfers == 0

    def test_single_operation(self, two_cluster):
        g = Dfg("one")
        g.add_op("v1", ADD)
        result = bind(g, two_cluster)
        assert result.latency == 1
        assert result.num_transfers == 0

    def test_single_cluster_machine(self, chain5):
        dp = parse_datapath("|1,1|", num_buses=1)
        result = bind(chain5, dp)
        assert result.latency == 5
        assert result.num_transfers == 0

    def test_all_algorithms_on_single_op(self):
        g = Dfg("one")
        g.add_op("v1", ADD)
        dp = parse_datapath("|1,1|1,1|", num_buses=1)
        assert bind_initial(g, dp).latency == 1
        assert pcc_bind(g, dp).latency == 1
        assert uas_bind(g, dp).latency == 1


class TestStarvedMachines:
    def test_unsupported_optype_fails_fast(self, two_cluster):
        g = Dfg("exotic")
        g.add_op("v1", OpType("sqrt"))
        with pytest.raises(KeyError, match="not registered"):
            bind_initial(g, two_cluster)

    def test_missing_fu_type_fails_fast(self, diamond):
        dp = Datapath([Cluster(0, {ALU: 4})])  # no multipliers anywhere
        with pytest.raises(ValueError, match="MUL"):
            bind_initial(diamond, dp)
        with pytest.raises(ValueError):
            pcc_bind(diamond, dp)
        with pytest.raises(ValueError):
            uas_bind(diamond, dp)

    def test_single_mul_island(self, diamond):
        # Only cluster 2 owns a multiplier; everything must still work.
        dp = parse_datapath("|2,0|2,0|1,1|", num_buses=1)
        result = bind(diamond, dp)
        assert result.binding["v3"] == 2
        validate_schedule(result.schedule)


class TestExtremeLatencies:
    def test_huge_move_latency(self, chain5):
        dp = parse_datapath("|1,1|1,1|", num_buses=1, move_latency=50)
        result = bind(chain5, dp)
        # crossing clusters costs 50 cycles: the binder must refuse to
        # split the chain.
        assert result.num_transfers == 0
        assert result.latency == 5

    def test_slow_unpipelined_multiplier(self):
        g = Dfg("muls")
        for i in range(4):
            g.add_op(f"m{i}", MULT)
        reg = default_registry().with_overrides(
            latencies={MULT: 6}, diis={MULT: 6}
        )
        dp = parse_datapath("|1,1|1,1|", num_buses=2, registry=reg)
        result = bind(g, dp)
        validate_schedule(result.schedule)
        # 4 six-cycle unpipelined muls on 2 units: 12 cycles minimum.
        assert result.latency == 12

    def test_scheduler_budget_message(self):
        # Force the scheduler into an infeasible resource model by
        # corrupting a binding (placement without units).
        g = Dfg("g")
        g.add_op("m", MULT)
        dp = parse_datapath("|1,1|1,0|", num_buses=1)
        bound = bind_dfg(g, {"m": 1})
        with pytest.raises(RuntimeError):
            list_schedule(bound, dp)


class TestRunnerFailureInjection:
    """The experiment engine must contain failures, not propagate them.

    Uses the ``debug-*`` algorithms from :mod:`repro.runner.jobs`: a job
    that always raises, and one that sleeps past its timeout.
    """

    def _jobs(self, dp, bad_algorithm, **bad_config):
        from repro.dfg.generators import random_layered_dfg
        from repro.kernels.registry import load_kernel
        from repro.runner import BindJob

        return [
            BindJob.make(random_layered_dfg(8, seed=0), dp, "b-init"),
            BindJob.make(load_kernel("ewf"), dp, bad_algorithm, **bad_config),
            BindJob.make(random_layered_dfg(8, seed=1), dp, "b-init"),
        ]

    def test_raising_job_retried_to_bound_and_recorded(
        self, two_cluster, tmp_path
    ):
        from repro.runner import RunStore
        from repro.runner.api import run_jobs

        store = RunStore(tmp_path / "runs.jsonl")
        jobs = self._jobs(two_cluster, "debug-fail")
        results = run_jobs(jobs, store=store, retries=2)

        # The batch completes despite the poisoned middle job ...
        assert [r.status for r in results] == ["ok", "failed", "ok"]
        # ... which was retried up to the bound (1 + 2 retries) ...
        assert results[1].attempts == 3
        assert "injected failure" in results[1].error
        # ... and the run store logged the failure in place.
        records = store.records()
        assert [r["status"] for r in records] == ["ok", "failed", "ok"]
        assert records[1]["attempts"] == 3
        assert store.summary().failed == 1

    def test_timing_out_job_recorded_and_batch_continues(
        self, two_cluster, tmp_path
    ):
        from repro.runner import RunStore
        from repro.runner.api import run_jobs

        store = RunStore(tmp_path / "runs.jsonl")
        jobs = self._jobs(two_cluster, "debug-sleep", seconds=30)
        results = run_jobs(jobs, store=store, timeout=0.2, retries=1)

        assert [r.status for r in results] == ["ok", "failed", "ok"]
        assert results[1].attempts == 2
        assert "JobTimeout" in results[1].error
        assert store.summary().failed == 1

    def test_parallel_workers_contain_failures(self, two_cluster):
        from repro.runner.api import run_jobs

        jobs = self._jobs(two_cluster, "debug-fail")
        results = run_jobs(jobs, max_workers=2, retries=1)
        assert [r.status for r in results] == ["ok", "failed", "ok"]
        assert results[1].attempts == 2


class TestAdversarialBindings:
    def test_worst_case_random_binding_still_schedules(self, two_cluster):
        from repro.dfg.generators import random_layered_dfg
        import random

        rng = random.Random(0)
        g = random_layered_dfg(35, seed=1)
        # adversarial: alternate clusters along every chain
        binding = Binding(
            {n: i % 2 for i, n in enumerate(g.topological_order())}
        )
        schedule = list_schedule(bind_dfg(g, binding), two_cluster)
        validate_schedule(schedule)

    def test_binding_every_op_to_last_cluster(self, three_cluster):
        from repro.dfg.generators import random_layered_dfg

        g = random_layered_dfg(20, seed=2)
        binding = Binding({n: 2 for n in g})
        schedule = list_schedule(bind_dfg(g, binding), three_cluster)
        validate_schedule(schedule)
        assert schedule.num_transfers == 0
