"""Modulo scheduling with non-unit latencies and partial pipelining."""

import pytest

from repro.core.binding import Binding
from repro.datapath.parse import parse_datapath
from repro.dfg.graph import Dfg
from repro.dfg.ops import ADD, MULT, default_registry
from repro.modulo import CarriedEdge, LoopDfg, modulo_bind, modulo_schedule, rec_mii


def pipelined_mul_datapath(mul_latency=3, mul_dii=1, spec="|1,1|1,1|"):
    reg = default_registry().with_overrides(
        latencies={MULT: mul_latency}, diis={MULT: mul_dii}
    )
    return parse_datapath(spec, num_buses=2, registry=reg)


class TestLatencyEffects:
    def test_recurrence_with_slow_multiplier(self):
        """acc = acc + x*c with a 3-cycle multiply: the recurrence only
        contains the add, so RecMII stays 1 and II = 1 is reachable on a
        fully pipelined machine."""
        body = Dfg("mac")
        body.add_op("m", MULT)
        body.add_op("acc", ADD)
        body.add_edge("m", "acc")
        loop = LoopDfg(body, [CarriedEdge("acc", "acc", 1)])
        dp = pipelined_mul_datapath(mul_latency=3, mul_dii=1)
        assert rec_mii(loop, dp) == 1
        result = modulo_bind(loop, dp)
        assert result.ii == 1
        result.schedule.validate()

    def test_multiplier_inside_recurrence_raises_rec_mii(self):
        """Putting the slow multiply inside the cycle makes the
        recurrence bound 1 + lat(mul)."""
        body = Dfg("mrec")
        body.add_op("m", MULT)
        body.add_op("a", ADD)
        body.add_edge("m", "a")
        loop = LoopDfg(body, [CarriedEdge("a", "m", 1)])
        dp = pipelined_mul_datapath(mul_latency=3)
        assert rec_mii(loop, dp) == 4
        result = modulo_bind(loop, dp)
        assert result.ii >= 4
        result.schedule.validate()

    def test_unpipelined_multiplier_occupies_mrt_slots(self):
        """With dii = 2, two multiplies on one unit cannot share II = 3
        ... they need 4 reserved slots, so II = 4 is the floor."""
        body = Dfg("two-muls")
        body.add_op("m1", MULT)
        body.add_op("m2", MULT)
        loop = LoopDfg(body)
        dp = pipelined_mul_datapath(mul_latency=2, mul_dii=2, spec="|1,1|")
        binding = Binding({"m1": 0, "m2": 0})
        assert modulo_schedule(loop, dp, binding, ii=3) is None
        schedule = modulo_schedule(loop, dp, binding, ii=4)
        assert schedule is not None
        schedule.validate()

    def test_move_latency_in_cut_recurrence(self):
        """A recurrence whose value crosses clusters pays lat(move)
        inside the cycle: II grows accordingly."""
        body = Dfg("xrec")
        body.add_op("p", ADD)
        body.add_op("q", ADD)
        body.add_edge("p", "q")
        loop = LoopDfg(body, [CarriedEdge("q", "p", 1)])
        dp = parse_datapath("|1,1|1,1|", num_buses=2, move_latency=2)
        split = Binding({"p": 0, "q": 1})
        # in-cluster: cycle latency 2 -> II = 2 reachable
        same = Binding({"p": 0, "q": 0})
        s_same = modulo_schedule(loop, dp, same, ii=2)
        assert s_same is not None
        # split: p -> move(2) -> q -> move(2) -> p: cycle latency 6
        s_split = modulo_schedule(loop, dp, split, ii=2)
        # II=2 may be impossible for the split binding (cycle too long
        # relative to its distance): the scheduler must not produce an
        # invalid schedule either way.
        if s_split is not None:
            s_split.validate()
