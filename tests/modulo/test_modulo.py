"""Tests for the software-pipelining subpackage."""

import pytest

from repro.core.binding import Binding
from repro.datapath.parse import parse_datapath
from repro.dfg.graph import Dfg
from repro.dfg.ops import ADD, MULT
from repro.kernels import load_kernel
from repro.modulo import (
    CarriedEdge,
    LoopDfg,
    bind_loop,
    mii,
    modulo_bind,
    modulo_schedule,
    rec_mii,
    res_mii,
)


@pytest.fixture
def mac_loop():
    """acc += x * c — a 1-cycle recurrence through the accumulator."""
    body = Dfg("mac")
    body.add_op("m", MULT)
    body.add_op("acc", ADD)
    body.add_edge("m", "acc")
    return LoopDfg(body, [CarriedEdge("acc", "acc", 1)])


@pytest.fixture
def deep_recurrence_loop():
    """A 3-op recurrence at distance 1: RecMII = 3."""
    body = Dfg("rec3")
    for n in ("a", "b", "c"):
        body.add_op(n, ADD)
    body.add_edge("a", "b")
    body.add_edge("b", "c")
    return LoopDfg(body, [CarriedEdge("c", "a", 1)])


class TestLoopDfg:
    def test_rejects_bound_body(self, figure1_dfg):
        from repro.dfg.transform import bind_dfg

        bound = bind_dfg(
            figure1_dfg, {"v1": 0, "v2": 0, "v3": 1, "v4": 1}
        )
        with pytest.raises(ValueError, match="original"):
            LoopDfg(bound.graph)

    def test_rejects_unknown_endpoints(self, chain5):
        with pytest.raises(KeyError):
            LoopDfg(chain5, [CarriedEdge("v5", "ghost", 1)])

    def test_carried_edge_needs_positive_omega(self):
        with pytest.raises(ValueError, match="omega"):
            CarriedEdge("a", "b", 0)

    def test_recurrence_sets(self, deep_recurrence_loop):
        sccs = deep_recurrence_loop.recurrence_sets()
        assert sccs == [["a", "b", "c"]]

    def test_self_loop_recurrence(self, mac_loop):
        sccs = mac_loop.recurrence_sets()
        assert ["acc"] in sccs

    def test_no_recurrences(self, chain5):
        assert LoopDfg(chain5).recurrence_sets() == []


class TestMii:
    def test_res_mii_most_loaded_type(self, two_cluster):
        # EWF: 26 ALU ops over 2 ALUs -> 13.
        loop = LoopDfg(load_kernel("ewf"))
        assert res_mii(loop, two_cluster) == 13

    def test_rec_mii_no_carries_is_one(self, chain5, two_cluster):
        assert rec_mii(LoopDfg(chain5), two_cluster) == 1

    def test_rec_mii_simple_recurrence(self, deep_recurrence_loop, two_cluster):
        # cycle latency 3 over distance 1
        assert rec_mii(deep_recurrence_loop, two_cluster) == 3

    def test_rec_mii_scales_with_distance(self, two_cluster):
        body = Dfg("rec")
        for n in ("a", "b", "c"):
            body.add_op(n, ADD)
        body.add_edge("a", "b")
        body.add_edge("b", "c")
        loop = LoopDfg(body, [CarriedEdge("c", "a", 3)])
        assert rec_mii(loop, two_cluster) == 1  # ceil(3/3)

    def test_combined(self, two_cluster):
        loop = LoopDfg(load_kernel("ewf"))
        assert mii(loop, two_cluster) == 13


class TestBindLoop:
    def test_cut_carried_edge_gets_transfer(self, mac_loop, two_cluster):
        binding = Binding({"m": 0, "acc": 1})
        bound = bind_loop(mac_loop, binding)
        assert bound.num_transfers >= 1
        # the carried self-edge of acc stays in-cluster: omega preserved
        omegas = [om for _, _, om in bound.edges]
        assert 1 in omegas

    def test_transfer_shared_between_body_and_carried(self, two_cluster):
        # u feeds v in-iteration AND w at distance 1, both in cluster 1:
        # a single transfer should serve both.
        body = Dfg("share")
        for n in ("u", "v", "w"):
            body.add_op(n, ADD)
        body.add_edge("u", "v")
        loop = LoopDfg(body, [CarriedEdge("u", "w", 1)])
        bound = bind_loop(loop, Binding({"u": 0, "v": 1, "w": 1}))
        assert bound.num_transfers == 1

    def test_no_cut_no_transfers(self, mac_loop):
        bound = bind_loop(mac_loop, Binding({"m": 0, "acc": 0}))
        assert bound.num_transfers == 0


class TestModuloSchedule:
    def test_mac_achieves_ii_one(self, mac_loop, two_cluster):
        schedule = modulo_schedule(
            mac_loop, two_cluster, Binding({"m": 0, "acc": 0}), ii=1
        )
        assert schedule is not None
        schedule.validate()

    def test_infeasible_ii_returns_none(self, two_cluster):
        # 4 adds on 1 ALU per cluster, all in cluster 0: II=1 impossible.
        body = Dfg("wide")
        for i in range(4):
            body.add_op(f"a{i}", ADD)
        loop = LoopDfg(body)
        result = modulo_schedule(
            loop, two_cluster, Binding({f"a{i}": 0 for i in range(4)}), ii=1
        )
        assert result is None

    def test_validate_catches_violations(self, mac_loop, two_cluster):
        schedule = modulo_schedule(
            mac_loop, two_cluster, Binding({"m": 0, "acc": 0}), ii=2
        )
        assert schedule is not None
        from dataclasses import replace

        broken = replace(
            schedule, start={**schedule.start, "acc": 0, "m": 0}
        )
        with pytest.raises(ValueError, match="dependence|MRT"):
            broken.validate()

    def test_rejects_bad_ii(self, mac_loop, two_cluster):
        with pytest.raises(ValueError):
            modulo_schedule(
                mac_loop, two_cluster, Binding({"m": 0, "acc": 0}), ii=0
            )

    def test_empty_loop(self, two_cluster):
        schedule = modulo_schedule(
            LoopDfg(Dfg("empty")), two_cluster, Binding({}), ii=1
        )
        assert schedule is not None
        assert schedule.schedule_length == 0


class TestModuloBind:
    def test_mac_is_throughput_optimal(self, mac_loop, two_cluster):
        result = modulo_bind(mac_loop, two_cluster)
        assert result.ii == result.mii
        assert result.is_throughput_optimal

    def test_recurrence_bound_respected(
        self, deep_recurrence_loop, two_cluster
    ):
        result = modulo_bind(deep_recurrence_loop, two_cluster)
        assert result.ii >= 3
        result.schedule.validate()

    def test_ewf_loop_hits_res_mii(self, two_cluster):
        loop = LoopDfg(load_kernel("ewf"))
        result = modulo_bind(loop, two_cluster)
        assert result.ii == 13  # 26 ALU ops / 2 ALUs
        assert result.is_throughput_optimal

    def test_ii_never_below_mii(self, two_cluster):
        loop = LoopDfg(load_kernel("arf"))
        result = modulo_bind(loop, two_cluster)
        assert result.ii >= result.mii
        result.schedule.validate()

    def test_max_ii_exhaustion_raises(self, two_cluster):
        body = Dfg("wide")
        for i in range(8):
            body.add_op(f"a{i}", ADD)
        with pytest.raises(RuntimeError, match="no schedule"):
            modulo_bind(LoopDfg(body), two_cluster, max_ii=1)

    def test_more_fus_lower_ii(self):
        loop = LoopDfg(load_kernel("fft"))
        small = modulo_bind(loop, parse_datapath("|1,1|1,1|", num_buses=2))
        big = modulo_bind(loop, parse_datapath("|3,2|3,2|", num_buses=2))
        assert big.ii <= small.ii

    def test_schedule_length_and_stages(self, mac_loop, two_cluster):
        result = modulo_bind(mac_loop, two_cluster)
        assert result.schedule.schedule_length >= 2
        assert result.schedule.num_stages >= 1
