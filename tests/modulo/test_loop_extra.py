"""Additional coverage for loop analysis: multiple recurrences, deep
distances, and bound-loop interactions."""

import pytest

from repro.core.binding import Binding
from repro.datapath.parse import parse_datapath
from repro.dfg.graph import Dfg
from repro.dfg.ops import ADD, MULT
from repro.modulo import (
    CarriedEdge,
    LoopDfg,
    bind_loop,
    modulo_bind,
    rec_mii,
)


def loop_with_two_recurrences():
    """Two independent cycles with different latency/distance ratios."""
    body = Dfg("two-rec")
    for n in ("a1", "a2", "b1", "b2", "b3"):
        body.add_op(n, ADD)
    body.add_edge("a1", "a2")
    body.add_edge("b1", "b2")
    body.add_edge("b2", "b3")
    return LoopDfg(
        body,
        [
            CarriedEdge("a2", "a1", 1),  # cycle of latency 2, distance 1
            CarriedEdge("b3", "b1", 2),  # cycle of latency 3, distance 2
        ],
    )


class TestMultipleRecurrences:
    def test_rec_mii_takes_worst_cycle(self, two_cluster):
        loop = loop_with_two_recurrences()
        # cycle A: ceil(2/1) = 2; cycle B: ceil(3/2) = 2 -> RecMII = 2
        assert rec_mii(loop, two_cluster) == 2

    def test_recurrence_sets_found(self):
        loop = loop_with_two_recurrences()
        sccs = loop.recurrence_sets()
        assert ["a1", "a2"] in sccs
        assert ["b1", "b2", "b3"] in sccs

    def test_schedulable_at_mii(self, two_cluster):
        loop = loop_with_two_recurrences()
        # ResMII dominates here: 5 ALU ops over 2 ALUs -> 3.
        result = modulo_bind(loop, two_cluster)
        assert result.ii == 3
        assert result.is_throughput_optimal
        result.schedule.validate()


class TestDeepDistances:
    def test_large_distance_relaxes_bound(self, two_cluster):
        body = Dfg("deep")
        for n in ("x", "y", "z", "w"):
            body.add_op(n, ADD)
        body.add_edge("x", "y")
        body.add_edge("y", "z")
        body.add_edge("z", "w")
        tight = LoopDfg(body, [CarriedEdge("w", "x", 1)])
        loose = LoopDfg(body, [CarriedEdge("w", "x", 4)])
        assert rec_mii(tight, two_cluster) == 4
        assert rec_mii(loose, two_cluster) == 1


class TestBoundLoopEdges:
    def test_all_edges_accounted(self, two_cluster):
        loop = loop_with_two_recurrences()
        binding = Binding({n: 0 for n in loop.body})
        bound = bind_loop(loop, binding)
        # no cuts: edge count = body edges + carried edges
        assert len(bound.edges) == loop.body.num_edges + len(loop.carried)

    def test_cut_carried_adds_two_edges(self, two_cluster):
        body = Dfg("c")
        body.add_op("p", ADD)
        body.add_op("q", ADD)
        loop = LoopDfg(body, [CarriedEdge("p", "q", 1)])
        bound = bind_loop(loop, Binding({"p": 0, "q": 1}))
        # p -(0)-> t and t -(1)-> q
        omegas = sorted(om for _, _, om in bound.edges)
        assert omegas == [0, 1]
        assert bound.num_transfers == 1
