"""Chaos suite with the service in the loop.

The same deterministic ``REPRO_FAULTS`` plans the batch-runner chaos
tests use, but injected under a live service: workers inherit the plan
through the environment (they fork after ``injected()`` is entered),
and cross-process hit counters in a per-test directory make "fault the
first attempt only" deterministic across the pool.  As everywhere in
the chaos suite, recovery must reproduce the exact fault-free numbers.
"""

import pytest

from repro.datapath.parse import parse_datapath
from repro.kernels import load_kernel
from repro.resilience.faults import injected
from repro.runner import BindJob
from repro.runner.api import run_jobs
from repro.service import BindingService


def _spec():
    return {"kernel": "ewf", "datapath": "|2,1|1,1|", "algorithm": "b-init"}


@pytest.fixture(scope="module")
def baseline():
    """Fault-free truth for the spec above, via the batch runner."""
    job = BindJob.make(
        load_kernel("ewf"),
        parse_datapath("|2,1|1,1|", num_buses=2, move_latency=1),
        "b-init",
    )
    result = run_jobs([job])[0]
    assert result.ok
    return result


def _run_under_faults(tmp_path, sites):
    with injected(sites, dir=tmp_path / "faults"):
        with BindingService(
            tmp_path / "svc", workers=2, default_timeout=60.0
        ) as service:
            snapshot = service.submit(_spec())
            if snapshot["state"] != "done":
                snapshot = service.wait(snapshot["id"], timeout=120.0)
            metrics = service.metrics_snapshot()
    return snapshot, metrics


class TestServiceChaos:
    def test_transient_attempt_error_is_retried_away(
        self, baseline, tmp_path
    ):
        snapshot, metrics = _run_under_faults(
            tmp_path, {"executor.attempt": {"kind": "oserror", "hits": [0]}}
        )
        result = snapshot["result"]
        assert result["status"] == "ok"
        assert result["latency"] == baseline.latency
        assert result["transfers"] == baseline.transfers
        assert snapshot["attempts"] == 2  # one burned by the fault
        assert metrics["jobs"]["retries"] == 1
        assert metrics["jobs"]["failed"] == 1

    def test_worker_crash_is_survived_bit_identically(
        self, baseline, tmp_path
    ):
        snapshot, metrics = _run_under_faults(
            tmp_path, {"executor.attempt": {"kind": "crash", "hits": [0]}}
        )
        result = snapshot["result"]
        assert result["status"] == "ok"
        assert result["latency"] == baseline.latency
        assert result["transfers"] == baseline.transfers
        assert metrics["jobs"]["crashes"] == 1
        assert metrics["workers"]["restarts"] >= 1

    def test_torn_store_write_degrades_to_a_skipped_line(
        self, baseline, tmp_path
    ):
        """A torn run-store append never corrupts replay or the result."""
        snapshot, _ = _run_under_faults(
            tmp_path,
            {"store.record.write": {"kind": "torn", "hits": [0]}},
        )
        result = snapshot["result"]
        assert result["status"] == "ok"
        assert result["latency"] == baseline.latency

    def test_crash_mid_descent_salvages_bit_identically(self, tmp_path):
        """Chaos site ``anytime.snapshot``: the worker dies while
        appending its second best-so-far snapshot.  The service must
        salvage the first intact line into a ``salvaged`` result whose
        binding replays to *exactly* the recorded (L, M) — the
        acceptance bar for anytime degradation."""
        from repro.dfg.transform import bind_dfg
        from repro.schedule.list_scheduler import list_schedule

        with injected(
            {"anytime.snapshot": {"kind": "crash", "hits": [1]}},
            dir=tmp_path / "faults",
        ):
            with BindingService(
                tmp_path / "svc", workers=1, default_timeout=60.0
            ) as service:
                spec = dict(_spec(), algorithm="b-iter")
                snapshot = service.submit(spec)
                snapshot = service.wait(snapshot["id"], timeout=120.0)
                metrics = service.metrics_snapshot()

        result = snapshot["result"]
        assert result["status"] == "ok"
        assert result["completion"] == "salvaged"
        assert result["extras"]["salvaged"] is True
        assert metrics["jobs"]["crashes"] == 1
        assert metrics["jobs"]["salvaged"] == 1
        assert metrics["completions"]["salvaged"] == 1

        # Bit-identical replay: schedule the salvaged binding from
        # scratch on the reference engine.
        dfg = load_kernel("ewf")
        dp = parse_datapath("|2,1|1,1|", num_buses=2, move_latency=1)
        schedule = list_schedule(
            bind_dfg(dfg, result["extras"]["binding"], interconnect=dp.interconnect),
            dp,
        )
        assert schedule.latency == result["latency"]
        assert schedule.num_transfers == result["transfers"]

    def test_corrupt_heartbeats_are_harmless(self, baseline, tmp_path):
        """Chaos site ``watchdog.heartbeat``: scribbled heartbeat
        payloads must neither fail the job nor confuse the watchdog
        (liveness is mtime) — the result stays bit-identical."""
        snapshot, metrics = _run_under_faults(
            tmp_path,
            {"watchdog.heartbeat": {"kind": "corrupt", "hits": [0, 1, 2, 3]}},
        )
        result = snapshot["result"]
        assert result["status"] == "ok"
        assert result["completion"] == "complete"
        assert result["latency"] == baseline.latency
        assert result["transfers"] == baseline.transfers
        assert metrics["jobs"]["crashes"] == 0
