"""CLI satellites: strategies --json, one-line errors, submit/watch.

``serve`` itself is exercised over a real socket by the HTTP tests and
the CI smoke step; here we cover the argument surface and the error
paths that must exit with a single-line message instead of a traceback.
"""

import json

import pytest

from repro.cli import main
from repro.search.registry import strategy_names


class TestStrategiesJson:
    def test_json_dump_is_machine_readable(self, capsys):
        assert main(["strategies", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = [entry["name"] for entry in payload]
        assert names == list(strategy_names())
        by_name = {entry["name"]: entry for entry in payload}
        biter = by_name["b-iter"]
        assert biter["hidden"] is False
        assert isinstance(biter["description"], str) and biter["description"]
        fields = {f["name"]: f for f in biter["config"]}
        assert fields["iter_starts"]["type"] == "int"
        assert fields["iter_starts"]["minimum"] == 1

    def test_json_dump_can_include_hidden(self, capsys):
        assert main(["strategies", "--json", "--all"]) == 0
        payload = json.loads(capsys.readouterr().out)
        by_name = {e["name"]: e for e in payload}
        assert "debug-crash" in by_name
        assert by_name["debug-crash"]["hidden"] is True
        assert by_name["debug-crash"]["strict"] is False

    def test_human_listing_still_works(self, capsys):
        assert main(["strategies"]) == 0
        out = capsys.readouterr().out
        assert "b-iter" in out and "debug-crash" not in out


class TestRunErrorHandling:
    def test_unknown_strategy_is_one_line_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "not-a-strategy", "ewf"])
        message = str(excinfo.value.code)
        assert message.startswith("repro-bind: error:")
        assert "unknown algorithm 'not-a-strategy'" in message
        assert "b-iter" in message  # the registry's catalog
        assert "\n" not in message
        assert "Traceback" not in capsys.readouterr().err

    def test_config_schema_violation_is_one_line_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "b-iter", "ewf", "--set", "iter_starts=0"])
        message = str(excinfo.value.code)
        assert message.startswith("repro-bind: error:")
        assert ">= 1" in message

    def test_unknown_config_key_is_one_line_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "b-init", "ewf", "--set", "bogus=1"])
        assert "does not accept config key" in str(excinfo.value.code)

    def test_unknown_kernel_is_one_line_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "b-init", "no-such-kernel.json"])
        message = str(excinfo.value.code)
        assert message.startswith("repro-bind: error:")

    def test_bad_datapath_is_one_line_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "b-init", "ewf", "-d", "|x,y|"])
        assert str(excinfo.value.code).startswith("repro-bind: error:")


class TestSubmitErrorHandling:
    def test_unreachable_service_is_one_line_error(self):
        # Port 1 is never listening; the client must fail fast and the
        # CLI must turn that into a message, not a traceback.
        with pytest.raises(SystemExit) as excinfo:
            main(["submit", "b-init", "ewf", "--port", "1"])
        message = str(excinfo.value.code)
        assert message.startswith("repro-bind: error:")
        assert "cannot reach service" in message

    def test_unknown_local_kernel_fails_before_any_network(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["submit", "b-init", "missing.json", "--port", "1"])
        message = str(excinfo.value.code)
        assert message.startswith("repro-bind: error:")
        assert "cannot reach service" not in message


class TestWatchErrorHandling:
    def test_unreachable_service_is_one_line_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["watch", "job-0001", "--port", "1"])
        assert "cannot reach service" in str(excinfo.value.code)
