"""The HTTP front end: routes, error mapping, streaming, cache dedup.

A real ``ServiceHTTPServer`` on an ephemeral port, driven through the
real ``ServiceClient`` — the same pair ``serve``/``submit`` use — so
these tests cover the wire protocol end to end.
"""

import asyncio
import http.client
import json
import threading
import time

import pytest

from repro.service import (
    BindingService,
    ServiceClient,
    ServiceError,
    ServiceHTTPServer,
)


class _Served:
    """A service + HTTP server on a background event loop."""

    def __init__(self, tmp_path, **service_kwargs):
        service_kwargs.setdefault("workers", 1)
        service_kwargs.setdefault("default_timeout", 60.0)
        self.service = BindingService(tmp_path / "svc", **service_kwargs)
        self.service.start()
        self.server = ServiceHTTPServer(self.service, port=0)
        self.loop = asyncio.new_event_loop()
        started = threading.Event()

        def run():
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(self.server.start())
            started.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()
        assert started.wait(10.0)
        self.client = ServiceClient(port=self.server.port)

    def close(self):
        future = asyncio.run_coroutine_threadsafe(
            self.server.stop(), self.loop
        )
        future.result(10.0)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10.0)
        self.service.close(drain=False)
        self.loop.close()


@pytest.fixture
def served(tmp_path):
    box = _Served(tmp_path)
    yield box
    box.close()


def _spec(algorithm="b-init", **overrides):
    spec = {"kernel": "ewf", "datapath": "|2,1|1,1|", "algorithm": algorithm}
    spec.update(overrides)
    return spec


class TestRoutes:
    def test_healthz(self, served):
        health = served.client.healthz()
        assert health["status"] == "ok"
        assert health["workers"] == 1
        assert "queue_depth" in health and "uptime_seconds" in health

    def test_metrics_shape(self, served):
        metrics = served.client.metrics()
        assert set(metrics["queue"]) == {"depth", "limit", "rejected"}
        assert set(metrics["workers"]) == {
            "size",
            "busy",
            "utilization",
            "restarts",
        }
        assert set(metrics["result_cache"]) == {
            "hits",
            "misses",
            "writes",
            "hit_rate",
        }
        assert set(metrics["eval_cache"]) == {"hits", "misses", "hit_rate"}
        assert "latency" in metrics and "jobs" in metrics

    def test_unknown_route_404(self, served):
        with pytest.raises(ServiceError) as excinfo:
            served.client._request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_unknown_job_404(self, served):
        with pytest.raises(ServiceError) as excinfo:
            served.client.job("job-9999")
        assert excinfo.value.status == 404

    def test_wrong_method_405(self, served):
        with pytest.raises(ServiceError) as excinfo:
            served.client._request("DELETE", "/jobs")
        assert excinfo.value.status == 405

    def test_malformed_body_400(self, served):
        conn = http.client.HTTPConnection(
            "127.0.0.1", served.server.port, timeout=10.0
        )
        try:
            conn.request(
                "POST",
                "/jobs",
                body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            assert response.status == 400
            assert "JSON" in json.loads(response.read())["error"]
        finally:
            conn.close()


class TestSubmitFlow:
    def test_submit_wait_result_and_cache_dedup(self, served):
        """The acceptance E2E: run, then resubmit for a cache hit."""
        first = served.client.submit(_spec())
        assert first["state"] in ("queued", "running")
        done = served.client.wait(first["id"], timeout=120.0)
        assert done["result"]["status"] == "ok"

        again = served.client.submit(_spec())
        assert again["state"] == "done"  # never queued: served from cache
        assert again["result"]["cached"] is True
        assert again["result"]["latency"] == done["result"]["latency"]
        assert again["result"]["transfers"] == done["result"]["transfers"]

        metrics = served.client.metrics()
        assert metrics["jobs"]["cache_hits"] == 1
        assert metrics["result_cache"]["hit_rate"] > 0.0
        assert metrics["latency"]["b-init"]["count"] >= 1
        assert metrics["latency"]["b-init"]["p95"] > 0.0

    def test_jobs_listing(self, served):
        submitted = served.client.submit(_spec())
        listed = served.client.jobs()
        assert submitted["id"] in [j["id"] for j in listed]
        served.client.wait(submitted["id"], timeout=120.0)

    def test_invalid_spec_maps_to_400_with_registry_message(self, served):
        with pytest.raises(ServiceError) as excinfo:
            served.client.submit(_spec("nope"))
        assert excinfo.value.status == 400
        assert "unknown algorithm" in excinfo.value.message
        assert "b-iter" in excinfo.value.message  # the catalog, verbatim

    def test_full_queue_maps_to_429(self, tmp_path):
        box = _Served(tmp_path, queue_limit=1, breaker_threshold=0)
        try:
            box.client.submit(
                _spec("debug-sleep", config={"seconds": 1.0, "tag": "run"})
            )
            box.client.submit(
                _spec("debug-sleep", config={"seconds": 0.0, "tag": "q"})
            )
            with pytest.raises(ServiceError) as excinfo:
                box.client.submit(
                    _spec("debug-sleep", config={"seconds": 0.0, "tag": "x"})
                )
            assert excinfo.value.status == 429
            assert "retry later" in excinfo.value.message
        finally:
            box.close()


class TestEventStream:
    def test_stream_replays_and_ends_with_the_job(self, served):
        snapshot = served.client.submit(_spec())
        events = list(served.client.events(snapshot["id"], timeout=120.0))
        kinds = [e["event"] for e in events]
        assert kinds[0] == "queued"
        assert kinds[-1] == "completed"
        assert "started" in kinds
        assert all(e["job"] == snapshot["id"] for e in events)

    def test_stream_for_unknown_job_404(self, served):
        with pytest.raises(ServiceError) as excinfo:
            list(served.client.events("job-9999"))
        assert excinfo.value.status == 404


class TestOverloadProtocol:
    def test_quota_maps_to_429_with_retry_after(self, tmp_path):
        """A throttled client gets 429, the machine-readable hint in
        both the ``Retry-After`` header and the body, and the quota is
        charged per client identity."""
        box = _Served(tmp_path, client_rate=0.01, client_burst=1.0)
        try:
            box.client.submit(_spec(), client="alice")
            with pytest.raises(ServiceError) as excinfo:
                box.client.submit(
                    _spec("debug-sleep", config={"seconds": 0.0}),
                    client="alice",
                )
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after is not None
            assert excinfo.value.retry_after >= 1
            assert "quota" in excinfo.value.message
            # A different identity is untouched.
            box.client.submit(_spec(), client="bob")
            metrics = box.client.metrics()
            assert metrics["jobs"]["throttled"] == 1
        finally:
            box.close()

    def test_client_retries_honour_retry_after(self, tmp_path):
        """Satellite: ``submit(retries=N)`` absorbs a 429 by sleeping
        the server's hint — deterministic bounded backoff — and then
        succeeds."""
        box = _Served(tmp_path, client_rate=2.0, client_burst=1.0)
        try:
            box.client.submit(_spec(), client="carol")
            t0 = time.monotonic()
            snapshot = box.client.submit(
                _spec("debug-sleep", config={"seconds": 0.0}),
                client="carol",
                retries=3,
            )
            elapsed = time.monotonic() - t0
            assert snapshot["id"]
            # The bucket refills at 2/s: one ~0.5s hint round-trip,
            # bounded well below MAX_RETRY_AFTER.
            assert 0.3 <= elapsed < 10.0
        finally:
            box.close()

    def test_retries_exhausted_raises_the_429(self, tmp_path):
        box = _Served(tmp_path, client_rate=0.01, client_burst=1.0)
        try:
            box.client.submit(_spec(), client="dave")
            with pytest.raises(ServiceError) as excinfo:
                box.client.submit(
                    _spec("debug-sleep", config={"seconds": 0.0}),
                    client="dave",
                    retries=0,
                )
            assert excinfo.value.status == 429
        finally:
            box.close()

    def test_malformed_deadline_header_maps_to_400(self, served):
        with pytest.raises(ServiceError) as excinfo:
            served.client._request(
                "POST",
                "/jobs",
                payload=_spec(),
                headers={"X-Repro-Deadline": "soon"},
            )
        assert excinfo.value.status == 400
        assert "X-Repro-Deadline" in excinfo.value.message

    def test_deadline_and_client_ride_the_headers(self, served):
        snapshot = served.client.submit(
            _spec(), deadline=120.0, client="erin"
        )
        done = served.client.wait(snapshot["id"], timeout=120.0)
        assert done["deadline"] == 120.0
        assert done["client"] == "erin"
        assert done["result"]["status"] == "ok"
        assert done["result"]["completion"] == "complete"

    def test_health_reports_overload_state(self, served):
        health = served.client.healthz()
        assert health["overloaded"] is False
        metrics = served.client.metrics()
        assert metrics["overload"]["overloaded"] is False
        assert "p95" in metrics["queue_delay"]
