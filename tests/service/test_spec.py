"""Spec validation: the wire format admits exactly what ``run`` would."""

import pytest

from repro.datapath.parse import parse_datapath
from repro.dfg.serialize import dfg_to_dict
from repro.kernels import load_kernel
from repro.runner import BindJob
from repro.service import SPEC_FORMAT, SpecError, job_from_spec


def _spec(**overrides):
    spec = {
        "kernel": "ewf",
        "datapath": "|2,1|1,1|",
        "algorithm": "b-init",
    }
    spec.update(overrides)
    return spec


class TestValidSpecs:
    def test_kernel_spec_matches_offline_job(self):
        """A spec keys identically to the BindJob the CLI would build."""
        job, options = job_from_spec(_spec())
        offline = BindJob.make(
            load_kernel("ewf"),
            parse_datapath("|2,1|1,1|", num_buses=2, move_latency=1),
            "b-init",
        )
        assert job == offline
        assert job.cache_key() == offline.cache_key()
        assert options.priority == 0
        assert options.timeout is None

    def test_explicit_format_tag_accepted(self):
        job, _ = job_from_spec(_spec(format=SPEC_FORMAT))
        assert job.algorithm == "b-init"

    def test_inline_dfg_keys_like_its_kernel(self):
        """Shipping the DFG by value round-trips to the same cache key."""
        dfg = load_kernel("ewf")
        by_value, _ = job_from_spec(
            _spec(kernel=None) | {"dfg": dfg_to_dict(dfg)}
        )
        by_name, _ = job_from_spec(_spec())
        assert by_value.cache_key() == by_name.cache_key()

    def test_config_and_options_carried(self):
        job, options = job_from_spec(
            _spec(
                algorithm="b-iter",
                config={"iter_starts": 2},
                priority=7,
                timeout=12,
                buses=3,
                move_latency=2,
            )
        )
        assert dict(job.config) == {"iter_starts": 2}
        assert job.num_buses == 3
        assert job.move_latency == 2
        assert options.priority == 7
        assert options.timeout == 12.0

    def test_options_do_not_change_the_cache_key(self):
        plain, _ = job_from_spec(_spec())
        tuned, _ = job_from_spec(_spec(priority=9, timeout=1.0))
        assert plain.cache_key() == tuned.cache_key()


class TestRejections:
    @pytest.mark.parametrize(
        "spec, needle",
        [
            ("not a dict", "JSON object"),
            (None, "JSON object"),
            (_spec(bogus=1), "unknown key"),
            (_spec(format="repro-bindspec/999"), "unsupported spec format"),
            (_spec(kernel=None), "exactly one of"),
            (_spec(dfg={"ops": []}), "exactly one of"),
            (_spec(kernel="no-such-kernel"), "unknown kernel"),
            (_spec(datapath=None), "datapath"),
            (_spec(datapath="|x|"), "bad datapath"),
            (_spec(buses="two"), "integer"),
            (_spec(algorithm=None), "algorithm"),
            (_spec(algorithm="nope"), "unknown algorithm"),
            (_spec(config="fast"), "object"),
            (_spec(algorithm="b-iter", config={"iter_starts": 0}), ">= 1"),
            (_spec(config={"bogus_key": 1}), "does not accept config"),
            (_spec(priority="high"), "integer"),
            (_spec(timeout=0), "> 0"),
            (_spec(timeout="soon"), "number"),
        ],
    )
    def test_bad_specs_raise_one_line_spec_errors(self, spec, needle):
        with pytest.raises(SpecError) as excinfo:
            job_from_spec(spec)
        message = str(excinfo.value)
        assert needle in message
        assert "\n" not in message  # one line, CLI/HTTP-ready

    def test_unknown_algorithm_message_lists_known_names(self):
        """The registry's own error (with the catalog) surfaces."""
        with pytest.raises(SpecError, match="b-iter"):
            job_from_spec(_spec(algorithm="nope"))

    def test_bad_dfg_payload(self):
        with pytest.raises(SpecError, match="bad DFG payload"):
            job_from_spec(_spec(kernel=None) | {"dfg": {"junk": True}})
