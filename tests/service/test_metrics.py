"""Metrics: percentile math and the /metrics snapshot shape."""

import pytest

from repro.service import Metrics, percentile
from repro.service.metrics import WINDOW


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 95.0) == 0.0

    def test_single_sample_is_itself(self):
        assert percentile([7.0], 0.0) == 7.0
        assert percentile([7.0], 50.0) == 7.0
        assert percentile([7.0], 100.0) == 7.0

    def test_endpoints_and_median(self):
        samples = [4.0, 1.0, 3.0, 2.0]  # order must not matter
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 100.0) == 4.0
        assert percentile(samples, 50.0) == pytest.approx(2.5)

    def test_linear_interpolation(self):
        samples = [0.0, 10.0]
        assert percentile(samples, 95.0) == pytest.approx(9.5)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)
        with pytest.raises(ValueError):
            percentile([1.0], -1.0)


class TestMetrics:
    def test_latency_summary_per_strategy(self):
        m = Metrics()
        for v in (0.1, 0.2, 0.3):
            m.observe_latency("b-iter", v)
        m.observe_latency("pcc", 1.0)
        summary = m.latency_summary()
        assert set(summary) == {"b-iter", "pcc"}
        assert summary["b-iter"]["count"] == 3
        assert summary["b-iter"]["mean"] == pytest.approx(0.2)
        assert summary["b-iter"]["p50"] == pytest.approx(0.2)
        assert summary["pcc"]["p95"] == pytest.approx(1.0)

    def test_window_is_bounded(self):
        m = Metrics()
        for i in range(WINDOW + 100):
            m.observe_latency("s", float(i))
        summary = m.latency_summary()["s"]
        assert summary["count"] == WINDOW
        # Oldest samples fell out: the minimum survivor is sample 100.
        assert summary["p50"] >= 100.0

    def test_snapshot_shape(self):
        m = Metrics()
        m.submitted = 4
        m.ok = 2
        snap = m.snapshot()
        assert snap["jobs"]["submitted"] == 4
        assert snap["jobs"]["ok"] == 2
        for counter in (
            "submitted",
            "completed",
            "ok",
            "failed",
            "quarantined",
            "deduped",
            "cache_hits",
            "rejected",
            "retries",
            "crashes",
        ):
            assert counter in snap["jobs"]
        assert "incidents" in snap
        assert "latency" in snap
        assert snap["uptime_seconds"] >= 0.0
