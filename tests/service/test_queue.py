"""Queue semantics: priority order, stability, backpressure."""

import pytest

from repro.service import JobQueue, QueueFull


class TestOrdering:
    def test_fifo_within_one_priority(self):
        q = JobQueue()
        for jid in ("a", "b", "c"):
            q.push(jid)
        assert [q.pop(), q.pop(), q.pop()] == ["a", "b", "c"]

    def test_higher_priority_drains_first(self):
        q = JobQueue()
        q.push("low", priority=0)
        q.push("high", priority=5)
        q.push("mid", priority=3)
        assert [q.pop(), q.pop(), q.pop()] == ["high", "mid", "low"]

    def test_stable_across_mixed_priorities(self):
        q = JobQueue()
        q.push("a", priority=1)
        q.push("b", priority=2)
        q.push("c", priority=1)
        q.push("d", priority=2)
        assert [q.pop() for _ in range(4)] == ["b", "d", "a", "c"]

    def test_pop_empty_returns_none(self):
        assert JobQueue().pop() is None


class TestBackpressure:
    def test_push_past_limit_raises_queue_full(self):
        q = JobQueue(limit=2)
        q.push("a")
        q.push("b")
        with pytest.raises(QueueFull) as excinfo:
            q.push("c")
        assert excinfo.value.limit == 2
        assert q.rejected == 1
        assert q.depth == 2

    def test_force_bypasses_the_limit_for_retries(self):
        q = JobQueue(limit=1)
        q.push("admitted")
        q.push("retry", force=True)  # recovery of accepted work
        assert q.depth == 2
        assert q.rejected == 0

    def test_zero_limit_means_unbounded(self):
        q = JobQueue(limit=0)
        for i in range(1000):
            q.push(f"j{i}")
        assert q.depth == 1000

    def test_depth_tracks_push_and_pop(self):
        q = JobQueue(limit=3)
        q.push("a")
        q.push("b")
        assert len(q) == q.depth == 2
        q.pop()
        assert q.depth == 1
        q.push("c")
        q.push("d")
        with pytest.raises(QueueFull):
            q.push("e")
