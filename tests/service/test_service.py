"""End-to-end BindingService tests (no HTTP; the facade directly).

The acceptance contract: a job submitted to the service returns a
result bit-identical to the same job through ``run_jobs``; identical
resubmissions are cache hits; a job whose worker dies is retried and
quarantined per the circuit-breaker policy — with the breaker's memory
surviving service restarts via the run store.
"""

import pytest

from repro.datapath.parse import parse_datapath
from repro.kernels import load_kernel
from repro.runner import BindJob
from repro.runner.api import run_jobs
from repro.service import BindingService, QueueFull, SpecError


def _service(tmp_path, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("default_timeout", 60.0)
    return BindingService(tmp_path / "svc", **kwargs)


def _spec(algorithm="b-init", **overrides):
    spec = {"kernel": "ewf", "datapath": "|2,1|1,1|", "algorithm": algorithm}
    spec.update(overrides)
    return spec


def _result(service, spec, timeout=120.0):
    snapshot = service.submit(spec)
    if snapshot["state"] != "done":
        snapshot = service.wait(snapshot["id"], timeout=timeout)
    assert snapshot["state"] == "done"
    return snapshot


class TestBitIdentity:
    @pytest.mark.parametrize(
        "algorithm, config",
        [("b-init", {}), ("b-iter", {"iter_starts": 1}), ("pcc", {})],
    )
    def test_service_result_matches_run_jobs(
        self, tmp_path, algorithm, config
    ):
        """Same job, offline and as-a-service: identical outcome.

        The service's warm contexts and shared eval store may change
        *where* evaluations are answered from, never their number or
        their verdicts — so status, L, M, and the evaluation count must
        all agree with the batch runner's.
        """
        job = BindJob.make(
            load_kernel("ewf"),
            parse_datapath("|2,1|1,1|", num_buses=2, move_latency=1),
            algorithm,
            **config,
        )
        offline = run_jobs([job])[0]

        with _service(tmp_path) as service:
            spec = _spec(algorithm)
            if config:
                spec["config"] = config
            snapshot = _result(service, spec)
        result = snapshot["result"]
        assert snapshot["key"] == job.cache_key()
        assert result["key"] == offline.key
        assert result["status"] == offline.status == "ok"
        assert result["latency"] == offline.latency
        assert result["transfers"] == offline.transfers
        assert result["evaluations"] == offline.evaluations


class TestCacheDedup:
    def test_second_submit_is_a_cache_hit(self, tmp_path):
        with _service(tmp_path) as service:
            first = _result(service, _spec())
            second = service.submit(_spec())
            # Terminal immediately: no queue, no worker, same numbers.
            assert second["state"] == "done"
            assert second["result"]["cached"] is True
            assert second["result"]["worker"] == "cache"
            assert second["result"]["attempts"] == 0
            assert second["result"]["latency"] == first["result"]["latency"]
            assert (
                second["result"]["transfers"] == first["result"]["transfers"]
            )
            metrics = service.metrics_snapshot()
            assert metrics["jobs"]["cache_hits"] == 1
            assert metrics["result_cache"]["hits"] == 1

    def test_inflight_duplicates_coalesce(self, tmp_path):
        """An identical job already running is joined, not re-queued."""
        spec = _spec("debug-sleep", config={"seconds": 0.5})
        with _service(tmp_path, workers=1) as service:
            first = service.submit(spec)
            duplicate = service.submit(spec)
            assert duplicate["id"] == first["id"]
            assert service.metrics_snapshot()["jobs"]["deduped"] == 1
            final = service.wait(first["id"], timeout=30.0)
            assert final["result"]["status"] == "ok"

    def test_failed_results_are_never_cached(self, tmp_path):
        with _service(
            tmp_path, breaker_threshold=0, max_attempts=1
        ) as service:
            snapshot = _result(service, _spec("debug-fail"))
            assert snapshot["result"]["status"] == "failed"
            assert service.metrics_snapshot()["result_cache"]["writes"] == 0


class TestBackpressureAndPriority:
    def test_full_queue_rejects_new_submissions(self, tmp_path):
        with _service(
            tmp_path, workers=1, queue_limit=1, breaker_threshold=0
        ) as service:
            running = service.submit(
                _spec("debug-sleep", config={"seconds": 1.0, "tag": "run"})
            )
            queued = service.submit(
                _spec("debug-sleep", config={"seconds": 0.0, "tag": "q"})
            )
            with pytest.raises(QueueFull):
                service.submit(
                    _spec("debug-sleep", config={"seconds": 0.0, "tag": "x"})
                )
            metrics = service.metrics_snapshot()
            assert metrics["jobs"]["rejected"] == 1
            assert metrics["queue"]["rejected"] == 1
            for job_id in (running["id"], queued["id"]):
                assert service.wait(job_id, 30.0)["state"] == "done"

    def test_higher_priority_starts_first(self, tmp_path):
        with _service(tmp_path, workers=1, breaker_threshold=0) as service:
            filler = _spec("debug-sleep", config={"seconds": 0.4, "tag": "f"})
            low = _spec("debug-sleep", config={"seconds": 0.0, "tag": "lo"})
            high = _spec("debug-sleep", config={"seconds": 0.0, "tag": "hi"})
            ids = {}
            ids["filler"] = service.submit(filler)["id"]
            # Submit low first, then high: drain order must invert it.
            low["priority"] = 0
            high["priority"] = 5
            ids["low"] = service.submit(low)["id"]
            ids["high"] = service.submit(high)["id"]
            for job_id in (ids["filler"], ids["low"], ids["high"]):
                service.wait(job_id, 30.0)
            started = [
                e["job"]
                for e in service.store.events()
                if e["event"] == "started"
            ]
            assert started.index(ids["high"]) < started.index(ids["low"])

    def test_invalid_spec_is_rejected_before_admission(self, tmp_path):
        with _service(tmp_path) as service:
            with pytest.raises(SpecError, match="unknown algorithm"):
                service.submit(_spec("nope"))
            assert service.metrics_snapshot()["jobs"]["submitted"] == 0


class TestFailurePolicy:
    def test_crashed_worker_job_is_retried_then_quarantined(self, tmp_path):
        """A worker death is attributed, retried, and breaker-stopped."""
        with _service(
            tmp_path, workers=2, breaker_threshold=3, max_attempts=5
        ) as service:
            snapshot = _result(service, _spec("debug-crash"), timeout=60.0)
            result = snapshot["result"]
            assert result["status"] == "quarantined"
            assert "circuit breaker" in result["error"]
            assert snapshot["attempts"] == 3  # threshold, not max_attempts
            metrics = service.metrics_snapshot()
            assert metrics["jobs"]["crashes"] == 3
            assert metrics["jobs"]["retries"] == 2
            assert metrics["jobs"]["quarantined"] == 1
            assert metrics["workers"]["restarts"] >= 3
            kinds = [i["kind"] for i in service.store.incidents()]
            assert kinds.count("worker-crash") == 3
            assert "circuit-breaker" in kinds

            # The pool healed: the same service still binds real jobs.
            healthy = _result(service, _spec())
            assert healthy["result"]["status"] == "ok"

    def test_breaker_memory_survives_restart(self, tmp_path):
        with _service(tmp_path, breaker_threshold=2) as service:
            first = _result(service, _spec("debug-crash"), timeout=60.0)
            assert first["result"]["status"] == "quarantined"
        # A new service over the same state dir re-seeds the breaker
        # from the run store: the poisoned spec never reaches a worker.
        with _service(tmp_path, breaker_threshold=2) as reborn:
            snapshot = reborn.submit(_spec("debug-crash"))
            assert snapshot["state"] == "done"
            assert snapshot["result"]["status"] == "quarantined"
            assert snapshot["result"]["worker"] == "breaker"
            assert reborn.pool.restarts == 0

    def test_exhausted_attempts_without_breaker_reports_failed(
        self, tmp_path
    ):
        with _service(
            tmp_path, breaker_threshold=0, max_attempts=2
        ) as service:
            snapshot = _result(service, _spec("debug-fail"))
            assert snapshot["result"]["status"] == "failed"
            assert snapshot["attempts"] == 2
            assert "debug-fail" in snapshot["result"]["error"]

    def test_per_request_timeout_bounds_an_attempt(self, tmp_path):
        with _service(
            tmp_path, breaker_threshold=0, max_attempts=1
        ) as service:
            snapshot = _result(
                service,
                _spec("debug-sleep", config={"seconds": 30.0}, timeout=0.3),
                timeout=30.0,
            )
            assert snapshot["result"]["status"] == "failed"


class TestLifecycle:
    def test_graceful_drain_finishes_admitted_work(self, tmp_path):
        service = _service(tmp_path, workers=1, breaker_threshold=0)
        service.start()
        snapshot = service.submit(
            _spec("debug-sleep", config={"seconds": 0.3})
        )
        service.close(drain=True)
        final = service.status(snapshot["id"])
        assert final["state"] == "done"
        assert final["result"]["status"] == "ok"

    def test_draining_service_rejects_submissions(self, tmp_path):
        from repro.service import ServiceClosed

        service = _service(tmp_path)
        service.start()
        service.close(drain=False)
        with pytest.raises(ServiceClosed):
            service.submit(_spec())

    def test_events_tell_the_jobs_story(self, tmp_path):
        with _service(tmp_path) as service:
            snapshot = _result(service, _spec())
            events = [
                e["event"]
                for e in service.store.events()
                if e["job"] == snapshot["id"]
            ]
            assert events == ["queued", "started", "completed"]
