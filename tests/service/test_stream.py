"""Streaming reads of the run store: tailing, torn tails, concurrency.

Satellite coverage for the service's event streaming: a reader that
follows the JSONL store while writers append must see every complete,
checksum-valid line exactly once — and must never yield a torn tail,
a corrupted line, or a line twice.
"""

import json
import threading

from repro.runner.store import EVENT_FORMAT, RunStore
from repro.service import StoreTailer, follow_store


def _events(path, n, prefix="job"):
    store = RunStore(path)
    for i in range(n):
        store.record_event("step", f"{prefix}-{i}", key=f"k{i}")
    return store


class TestStoreTailer:
    def test_missing_file_yields_nothing(self, tmp_path):
        tailer = StoreTailer(tmp_path / "absent.jsonl")
        assert tailer.poll() == []

    def test_replays_existing_then_tails_new(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = _events(path, 3)
        tailer = StoreTailer(path)
        first = tailer.poll()
        assert [e["job"] for e in first] == ["job-0", "job-1", "job-2"]
        assert tailer.poll() == []  # nothing new
        store.record_event("step", "job-3")
        assert [e["job"] for e in tailer.poll()] == ["job-3"]

    def test_torn_tail_is_buffered_until_completed(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = RunStore(path)
        store.record_event("step", "whole")
        tailer = StoreTailer(path)
        assert len(tailer.poll()) == 1

        # Simulate a crash mid-append: half a line, no newline.
        entry = {"format": EVENT_FORMAT, "event": "step", "job": "torn"}
        line = json.dumps(entry)
        with path.open("a") as f:
            f.write(line[: len(line) // 2])
        assert tailer.poll() == []  # a partial line is not an event

        # The writer finishes the line: the tailer yields it whole.
        with path.open("a") as f:
            f.write(line[len(line) // 2:] + "\n")
        polled = tailer.poll()
        assert [e["job"] for e in polled] == ["torn"]

    def test_garbage_and_checksum_failures_are_skipped(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = RunStore(path)
        store.record_event("step", "good-1")
        with path.open("a") as f:
            f.write("{not json\n")
            bad = {"format": EVENT_FORMAT, "job": "tampered", "sha256": "0" * 64}
            f.write(json.dumps(bad) + "\n")
        store.record_event("step", "good-2")
        tailer = StoreTailer(path)
        assert [e["job"] for e in tailer.poll()] == ["good-1", "good-2"]

    def test_truncation_resets_to_the_new_beginning(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        _events(path, 5)
        tailer = StoreTailer(path)
        assert len(tailer.poll()) == 5
        path.write_text("")  # rotation
        RunStore(path).record_event("step", "fresh")
        assert [e["job"] for e in tailer.poll()] == ["fresh"]

    def test_concurrent_appends_all_observed_exactly_once(self, tmp_path):
        """Writer threads race a polling reader; nothing lost or doubled.

        Appends go through RunStore's own append path (O_APPEND +
        single write), the same discipline the live service uses.
        """
        path = tmp_path / "runs.jsonl"
        store = RunStore(path)
        writers = 4
        per_writer = 50
        seen = []
        done = threading.Event()

        def read():
            tailer = StoreTailer(path)
            while not done.is_set():
                seen.extend(tailer.poll())
            # The flag is set only after every writer joined, so one
            # final sweep deterministically drains whatever is left.
            seen.extend(tailer.poll())

        def write(w):
            for i in range(per_writer):
                store.record_event("step", f"w{w}-{i}")

        reader = threading.Thread(target=read)
        reader.start()
        threads = [
            threading.Thread(target=write, args=(w,)) for w in range(writers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        done.set()
        reader.join(timeout=30)
        assert not reader.is_alive()

        jobs = [e["job"] for e in seen]
        assert len(jobs) == len(set(jobs)) == writers * per_writer
        # And the streamed view equals the bulk replay, byte for byte.
        replay = [e["job"] for e in RunStore(path).events()]
        assert sorted(jobs) == sorted(replay)


class TestFollowStore:
    def test_follow_drains_then_stops_on_predicate(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        _events(path, 4)
        stop = threading.Event()
        collected = []
        for entry in follow_store(path, stop=stop.is_set, timeout=10.0):
            collected.append(entry)
            if len(collected) == 4:
                stop.set()
        assert [e["job"] for e in collected] == [f"job-{i}" for i in range(4)]

    def test_follow_times_out_on_silence(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        entries = list(follow_store(path, timeout=0.2))
        assert entries == []

    def test_follow_sees_live_appends(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = RunStore(path)

        def write_later():
            store.record_event("late", "job-live")

        t = threading.Timer(0.1, write_later)
        t.start()
        got = []
        for entry in follow_store(path, timeout=5.0):
            got.append(entry)
            break
        t.join()
        assert got and got[0]["job"] == "job-live"
