"""Overload control, queue expiry, displacement, and the watchdog.

The admission-control units (token bucket, CoDel-style verdict, queue
expiry/eviction) run on injected clocks — no sleeps, no flakiness.
The service-level tests use the hidden debug strategies to make real
time behave: ``debug-sleep`` occupies a worker, ``debug-cancel``
(heartbeat off) goes silent so the watchdog fires, and its SIGTERM
surfaces as a cooperative ``cancelled`` result.
"""

import time

import pytest

from repro.resilience.faults import injected
from repro.service import BindingService
from repro.service.overload import AdmissionController, RateLimited, TokenBucket
from repro.service.queue import JobQueue


class TestTokenBucket:
    def test_burst_then_refusal_with_exact_wait(self):
        bucket = TokenBucket(rate=1.0, burst=2.0, now=0.0)
        assert bucket.take(0.0) is None
        assert bucket.take(0.0) is None
        wait = bucket.take(0.0)
        assert wait == pytest.approx(1.0)

    def test_refill_restores_capacity(self):
        bucket = TokenBucket(rate=2.0, burst=1.0, now=0.0)
        assert bucket.take(0.0) is None
        assert bucket.take(0.0) is not None
        assert bucket.take(0.6) is None  # 0.6s * 2/s = 1.2 tokens back

    def test_refill_never_exceeds_burst(self):
        bucket = TokenBucket(rate=10.0, burst=2.0, now=0.0)
        for _ in range(2):
            assert bucket.take(100.0) is None
        assert bucket.take(100.0) is not None


class TestAdmissionController:
    def test_short_spikes_do_not_trip_overload(self):
        ctl = AdmissionController(target_delay=0.5, interval=2.0)
        ctl.note_queue_delay(3.0, now=10.0)
        ctl.note_queue_delay(3.0, now=11.9)  # above, but < interval
        assert not ctl.overloaded()

    def test_standing_delay_trips_and_one_good_sojourn_resets(self):
        ctl = AdmissionController(target_delay=0.5, interval=2.0)
        ctl.note_queue_delay(3.0, now=10.0)
        ctl.note_queue_delay(3.0, now=12.5)
        assert ctl.overloaded()
        ctl.note_queue_delay(0.1, now=13.0)  # one good sojourn
        assert not ctl.overloaded()

    def test_check_shed_raises_with_retry_hint(self):
        ctl = AdmissionController(target_delay=0.5, interval=2.0)
        ctl.check_shed(now=0.0)  # not overloaded: a no-op
        ctl.note_queue_delay(3.0, now=10.0)
        ctl.note_queue_delay(3.0, now=12.5)
        with pytest.raises(RateLimited) as err:
            ctl.check_shed(now=13.0)
        assert err.value.retry_after >= ctl.target_delay
        assert ctl.shed == 1

    def test_quota_is_per_client(self):
        ctl = AdmissionController(client_rate=1.0, client_burst=1.0)
        ctl.check_quota("alice", now=0.0)
        with pytest.raises(RateLimited) as err:
            ctl.check_quota("alice", now=0.0)
        assert err.value.retry_after > 0
        ctl.check_quota("bob", now=0.0)  # a fresh bucket
        ctl.check_quota("alice", now=2.0)  # refilled

    def test_no_rate_means_no_quota(self):
        ctl = AdmissionController(client_rate=None)
        for _ in range(100):
            ctl.check_quota("anyone", now=0.0)


class TestQueueExpiryAndEviction:
    def test_pop_expired_removes_only_lapsed_entries(self):
        queue = JobQueue()
        queue.push("a", 0, expires_at=10.0)
        queue.push("b", 0, expires_at=50.0)
        queue.push("c", 0)  # no deadline
        assert queue.pop_expired(now=20.0) == ["a"]
        assert queue.pop_expired(now=20.0) == []
        assert queue.depth == 2
        assert queue.pop() == "b"
        assert queue.pop() == "c"

    def test_evict_lowest_takes_lowest_priority_youngest(self):
        queue = JobQueue()
        queue.push("high", 5)
        queue.push("low-old", 1)
        queue.push("low-new", 1)
        assert queue.evict_lowest() == ("low-new", 1)
        assert queue.evict_lowest() == ("low-old", 1)
        assert queue.evict_lowest() == ("high", 5)
        assert queue.evict_lowest() is None
        # The heap invariant survives the mid-heap removal.
        queue.push("x", 0)
        assert queue.pop() == "x"


def _sleep_spec(seconds, tag=0):
    return {
        "kernel": "ewf",
        "datapath": "|2,1|1,1|",
        "algorithm": "debug-sleep",
        "config": {"seconds": seconds},
        "priority": tag,
    }


def _binit_spec(**extra):
    spec = {"kernel": "ewf", "datapath": "|2,1|1,1|", "algorithm": "b-init"}
    spec.update(extra)
    return spec


class TestQueueDeadlines:
    def test_expired_job_does_not_poison_dedup(self, tmp_path):
        """Satellite: a job that dies of old age *in the queue* must
        release its content-hash in-flight slot — an identical resubmit
        is admitted fresh and completes."""
        with BindingService(
            tmp_path / "svc", workers=1, default_timeout=60.0
        ) as service:
            # Occupy the only worker so the next job queues.
            service.submit(_sleep_spec(1.2))
            first = service.submit(_binit_spec(), deadline=0.3)
            assert first["state"] != "done" or first["status"] == "expired"
            done = service.wait(first["id"], timeout=10.0)
            assert done["result"]["status"] == "expired"
            assert "deadline" in done["result"]["error"]

            second = service.submit(_binit_spec())
            assert second["id"] != first["id"]
            done = service.wait(second["id"], timeout=30.0)
            assert done["result"]["status"] == "ok"
            assert done["result"]["completion"] == "complete"

            metrics = service.metrics_snapshot()
            assert metrics["jobs"]["expired"] == 1
            assert metrics["completions"].get("complete", 0) >= 1

    def test_expiry_fault_still_expires_and_records_incident(self, tmp_path):
        """Chaos site ``queue.expire``: an injected error inside the
        expiry path becomes an incident; the job still expires and an
        identical resubmit is still accepted."""
        with injected(
            {"queue.expire": {"kind": "error", "hits": [0]}},
            dir=tmp_path / "faults",
        ):
            with BindingService(
                tmp_path / "svc", workers=1, default_timeout=60.0
            ) as service:
                service.submit(_sleep_spec(1.2))
                doomed = service.submit(_binit_spec(), deadline=0.3)
                done = service.wait(doomed["id"], timeout=10.0)
                assert done["result"]["status"] == "expired"
                again = service.submit(_binit_spec())
                assert again["id"] != doomed["id"]
                done = service.wait(again["id"], timeout=30.0)
                assert done["result"]["status"] == "ok"
                metrics = service.metrics_snapshot()
                assert metrics["incidents"] >= 1


class TestDisplacement:
    def test_overload_sheds_lowest_and_admits_higher_priority(self, tmp_path):
        service = BindingService(
            tmp_path / "svc", workers=1, default_timeout=60.0
        )
        service.start()
        try:
            # Occupy the worker, then queue a low-priority victim.
            # (Distinct sleep durations = distinct content-hash keys;
            # identical specs would coalesce in dedup before admission
            # control ever saw them.)
            service.submit(_sleep_spec(1.5, tag=0))
            victim = service.submit(_sleep_spec(0.11, tag=1))
            # Trip the CoDel verdict directly: standing queue delay.
            now = time.monotonic()
            service.admission.note_queue_delay(5.0, now - 10.0)
            service.admission.note_queue_delay(5.0, now)
            assert service.admission.overloaded()

            # A higher-priority arrival displaces the queued victim...
            vip = service.submit(_sleep_spec(0.12, tag=5))
            shed = service.status(victim["id"])
            assert shed["state"] == "done"
            assert shed["result"]["status"] == "shed"
            assert service.status(vip["id"])["state"] != "done"

            # ...while an equal-or-lower one is shed with a hint.
            with pytest.raises(RateLimited) as err:
                service.submit(_sleep_spec(0.2, tag=1))
            assert err.value.retry_after > 0

            metrics = service.metrics_snapshot()
            assert metrics["jobs"]["shed"] >= 2
            assert metrics["overload"]["overloaded"] is True
        finally:
            service.close(drain=False)

    def test_shed_victim_does_not_poison_dedup(self, tmp_path):
        service = BindingService(
            tmp_path / "svc", workers=1, default_timeout=60.0
        )
        service.start()
        try:
            service.submit(_sleep_spec(1.5, tag=0))
            victim = service.submit(_sleep_spec(0.1, tag=1))
            now = time.monotonic()
            service.admission.note_queue_delay(5.0, now - 10.0)
            service.admission.note_queue_delay(5.0, now)
            service.submit(_sleep_spec(0.12, tag=5))  # displaces victim
            assert service.status(victim["id"])["result"]["status"] == "shed"
            # Recovery: once the verdict clears, the same spec re-enters.
            service.admission.note_queue_delay(0.0, time.monotonic())
            again = service.submit(_sleep_spec(0.1, tag=1))
            assert again["id"] != victim["id"]
            assert service.status(again["id"])["state"] != "done"
        finally:
            service.close(drain=False)


def _cancel_spec(seconds, heartbeat):
    return {
        "kernel": "ewf",
        "datapath": "|2,1|1,1|",
        "algorithm": "debug-cancel",
        "config": {"seconds": seconds, "heartbeat": heartbeat},
    }


class TestWatchdog:
    def test_sigterm_surfaces_as_cooperative_cancelled_result(self, tmp_path):
        """A silent worker draws a SIGTERM; the strategy honours the
        global cancel token and returns tagged ``cancelled`` — a
        degraded result, not a crash."""
        with BindingService(
            tmp_path / "svc",
            workers=1,
            default_timeout=60.0,
            stall_timeout=0.5,
            term_grace=5.0,
        ) as service:
            snapshot = service.submit(_cancel_spec(30.0, heartbeat=False))
            done = service.wait(snapshot["id"], timeout=20.0)
            assert done["result"]["status"] == "ok"
            assert done["result"]["completion"] == "cancelled"
            metrics = service.metrics_snapshot()
            assert metrics["jobs"]["crashes"] == 0
            assert metrics["incidents"] >= 1

    def test_heartbeating_job_is_left_alone(self, tmp_path):
        """Round-boundary heartbeats are liveness: a slow-but-alive
        job must never be terminated by the watchdog."""
        with BindingService(
            tmp_path / "svc",
            workers=1,
            default_timeout=60.0,
            stall_timeout=0.6,
            term_grace=0.5,
        ) as service:
            snapshot = service.submit(_cancel_spec(1.5, heartbeat=True))
            done = service.wait(snapshot["id"], timeout=20.0)
            assert done["result"]["status"] == "ok"
            assert done["result"]["completion"] == "complete"
            metrics = service.metrics_snapshot()
            assert metrics["jobs"]["crashes"] == 0
            assert metrics["incidents"] == 0

    def test_unresponsive_worker_is_killed_and_reaped(self, tmp_path):
        """``debug-sleep`` ignores SIGTERM (no token polling): the
        watchdog escalates to SIGKILL, the pool reaps and restarts the
        worker, and with no snapshot to salvage the job fails."""
        with BindingService(
            tmp_path / "svc",
            workers=1,
            default_timeout=60.0,
            max_attempts=1,
            stall_timeout=0.4,
            term_grace=0.4,
        ) as service:
            snapshot = service.submit(_sleep_spec(30.0))
            done = service.wait(snapshot["id"], timeout=20.0)
            assert done["result"]["status"] == "failed"
            metrics = service.metrics_snapshot()
            assert metrics["jobs"]["crashes"] >= 1
            assert metrics["workers"]["restarts"] >= 1
            assert metrics["jobs"]["salvaged"] == 0
