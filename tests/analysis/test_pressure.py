"""Unit tests for register-pressure analysis."""

import pytest

from repro.analysis.pressure import centralized_pressure, register_pressure
from repro.core.driver import bind
from repro.datapath.parse import parse_datapath
from repro.dfg.generators import chain_dfg, random_layered_dfg
from repro.dfg.transform import bind_dfg
from repro.kernels import load_kernel
from repro.schedule.list_scheduler import list_schedule


def schedule_of(dfg, binding, spec="|1,1|1,1|", num_buses=2):
    dp = parse_datapath(spec, num_buses=num_buses)
    return list_schedule(bind_dfg(dfg, binding), dp)


class TestRegisterPressure:
    def test_chain_pressure_is_small(self, chain5):
        # A chain keeps at most the current value (plus the final
        # output) live at any time.
        s = schedule_of(chain5, {n: 0 for n in chain5})
        report = register_pressure(s)
        assert report.per_cluster[0] <= 2
        assert report.per_cluster[1] == 0
        assert report.peak == report.per_cluster[0]

    def test_wide_graph_outputs_accumulate(self, wide8):
        # 8 independent ops, all outputs: by the end all 8 values are
        # live in their clusters simultaneously.
        s = schedule_of(wide8, {n: 0 for n in wide8}, spec="|8,1|1,1|")
        report = register_pressure(s)
        assert report.per_cluster[0] == 8

    def test_total_values_counts_transfers(self, diamond):
        s = schedule_of(diamond, {"v1": 0, "v2": 1, "v3": 1, "v4": 1})
        report = register_pressure(s)
        assert report.total_values == 4 + s.num_transfers

    def test_profiles_match_maxima(self, diamond):
        s = schedule_of(diamond, {"v1": 0, "v2": 0, "v3": 1, "v4": 0})
        report = register_pressure(s)
        for c, profile in report.per_cluster_profile.items():
            assert max(profile) == report.per_cluster[c]

    def test_clustering_lowers_per_file_pressure(self):
        """The paper's Section 2 claim: distributing operations lowers
        per-register-file demand relative to the centralized machine."""
        dfg = load_kernel("dct-dit")
        dp = parse_datapath("|2,1|2,1|1,1|", num_buses=2)
        result = bind(dfg, dp, iter_starts=1)
        report = register_pressure(result.schedule)
        central = centralized_pressure(result.schedule)
        assert report.peak <= central

    def test_centralized_pressure_positive(self, diamond):
        s = schedule_of(diamond, {n: 0 for n in diamond})
        assert centralized_pressure(s) >= 1
