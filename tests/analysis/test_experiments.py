"""Integration tests for the experiment harness (small slices only —
the full grids live in benchmarks/)."""

import pytest

from repro.analysis.experiments import run_cell, run_table1, run_table2
from repro.analysis.tables import render_rows, render_table1, render_table2
from repro.datapath.parse import parse_datapath
from repro.kernels import load_kernel


class TestRunCell:
    def test_cell_fields(self):
        dfg = load_kernel("arf")
        dp = parse_datapath("|1,1|1,1|", num_buses=2)
        row = run_cell(dfg, dp, "arf")
        assert row.kernel == "arf"
        assert row.datapath_spec == "|1,1|1,1|"
        assert row.num_buses == 2
        assert row.move_latency == 1
        assert row.pcc.latency >= 8  # L_CP of ARF
        assert row.b_iter is not None
        assert row.b_iter.latency <= row.b_init.latency

    def test_skip_iter(self):
        dfg = load_kernel("arf")
        dp = parse_datapath("|1,1|1,1|", num_buses=2)
        row = run_cell(dfg, dp, "arf", run_iter=False)
        assert row.b_iter is None


class TestTables:
    def test_table1_single_kernel(self):
        rows = run_table1(kernels=["arf"], run_iter=False)
        assert len(rows) == 2  # ARF has two datapath configs
        text = render_table1(rows)
        assert "ARF" in text
        assert "N_V = 28" in text
        assert "|1,2|1,2|" in text

    def test_table2_shape(self):
        rows = run_table2(run_iter=False)
        assert len(rows) == 4
        assert [(r.num_buses, r.move_latency) for r in rows] == [
            (1, 1),
            (2, 1),
            (1, 2),
            (2, 2),
        ]
        text = render_table2(rows)
        assert "N_B=1 lat(move)=2" in text

    def test_render_rows_generic(self):
        rows = run_table1(kernels=["arf"], run_iter=False)
        text = render_rows(rows, title="demo")
        assert text.startswith("demo")
        assert "PCC L/M" in text


class TestRunComparisonOverrides:
    def _cells(self):
        return [("arf", parse_datapath("|1,1|1,1|", num_buses=2))]

    def test_overrides_reach_the_strategy(self):
        from repro.analysis.experiments import run_comparison

        rows = run_comparison(
            self._cells(),
            ["b-init"],
            configs={"b-init": {"direction": "forward"}},
        )
        cells = dict(rows[0].cells)
        assert cells["b-init"] is not None
        # The forward-only sweep visits fewer points than the default
        # both-directions sweep on the same cell.
        both = run_comparison(self._cells(), ["b-init"])
        forward_stats = cells["b-init"].search_stats
        both_stats = dict(both[0].cells)["b-init"].search_stats
        assert (
            forward_stats["evaluations"] < both_stats["evaluations"]
        )

    def test_override_for_unrequested_algorithm(self):
        from repro.analysis.experiments import run_comparison
        from repro.search.registry import ConfigError

        with pytest.raises(ConfigError, match="matches no requested"):
            run_comparison(
                self._cells(), ["pcc"], configs={"b-init": {}}
            )

    def test_bad_override_is_one_line_error(self):
        from repro.analysis.experiments import run_comparison
        from repro.search.registry import ConfigError

        with pytest.raises(ConfigError, match="b-init.*direction"):
            run_comparison(
                self._cells(),
                ["b-init"],
                configs={"b-init": {"direction": "sideways"}},
            )

    def test_portfolio_as_comparison_column(self):
        from repro.analysis.experiments import run_comparison

        rows = run_comparison(
            self._cells(),
            ["pcc", "portfolio"],
            configs={
                "portfolio": {
                    "racers": "pcc,b-init",
                    "max_evals": 200,
                    "seed": 0,
                }
            },
        )
        cells = dict(rows[0].cells)
        race, pcc = cells["portfolio"], cells["pcc"]
        assert race is not None and pcc is not None
        assert (race.latency, race.transfers) <= (
            pcc.latency,
            pcc.transfers,
        )
