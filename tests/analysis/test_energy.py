"""Unit tests for the energy model."""

import pytest

from repro.analysis.energy import EnergyModel, estimate_energy
from repro.core.binding import Binding
from repro.datapath.parse import parse_datapath
from repro.dfg.transform import bind_dfg
from repro.schedule.list_scheduler import list_schedule


def schedule_for(dfg, binding, two_cluster):
    return list_schedule(bind_dfg(dfg, binding), two_cluster)


class TestEnergy:
    def test_breakdown_adds_up(self, diamond, two_cluster):
        s = schedule_for(diamond, {"v1": 0, "v2": 0, "v3": 1, "v4": 0}, two_cluster)
        report = estimate_energy(s)
        assert report.total == pytest.approx(
            report.compute + report.transfers + report.static
        )

    def test_compute_counts_op_mix(self, diamond, two_cluster):
        # diamond: 3 ALU ops + 1 MUL; default weights 1.0 / 4.0
        s = schedule_for(diamond, {n: 0 for n in diamond}, two_cluster)
        report = estimate_energy(s)
        assert report.compute == pytest.approx(3 * 1.0 + 4.0)
        assert report.transfers == 0.0

    def test_transfers_charged(self, diamond, two_cluster):
        split = schedule_for(
            diamond, {"v1": 0, "v2": 1, "v3": 1, "v4": 1}, two_cluster
        )
        report = estimate_energy(split)
        assert report.transfers == pytest.approx(2.0 * split.num_transfers)

    def test_static_scales_with_latency(self, chain5, two_cluster):
        s = schedule_for(chain5, {n: 0 for n in chain5}, two_cluster)
        report = estimate_energy(s, EnergyModel(static_power=1.0))
        assert report.static == pytest.approx(s.latency)

    def test_fewer_moves_less_energy_at_equal_latency(self, two_cluster):
        """The M column as an energy statement: at equal latency, the
        binding with fewer transfers costs less."""
        from repro.kernels import load_kernel
        from repro.core.driver import bind

        dfg = load_kernel("arf")
        good = bind(dfg, two_cluster, iter_starts=1)
        from repro.baselines import random_search

        bad = random_search(dfg, two_cluster, samples=5, seed=1)
        e_good = estimate_energy(good.schedule)
        e_bad = estimate_energy(bad.schedule)
        if good.latency <= bad.latency:
            assert e_good.total <= e_bad.total
