"""Tests for the random-DFG robustness study."""

import pytest

from repro.analysis.random_study import StudyConfig, run_random_study
from repro.analysis.summary import summarize


class TestRandomStudy:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_random_study(
            StudyConfig(num_graphs=6, num_ops=18, run_iter=True)
        )

    def test_population_size(self, rows):
        assert len(rows) == 6
        assert [r.kernel for r in rows] == [f"rnd{i}" for i in range(6)]

    def test_b_iter_never_loses_on_random_graphs(self, rows):
        """The paper's headline property should generalize beyond the
        hand-picked kernels."""
        for r in rows:
            assert r.b_iter.latency <= r.pcc.latency + 1

    def test_summary_aggregation(self, rows):
        s = summarize(rows)
        assert s.cells == 6
        assert s.iter_wins + s.iter_ties + s.iter_losses == 6

    def test_deterministic(self):
        cfg = StudyConfig(num_graphs=3, num_ops=15, run_iter=False)
        r1 = run_random_study(cfg)
        r2 = run_random_study(cfg)
        assert [(x.pcc.latency, x.b_init.latency) for x in r1] == [
            (x.pcc.latency, x.b_init.latency) for x in r2
        ]

    def test_skip_iter(self):
        rows = run_random_study(
            StudyConfig(num_graphs=2, num_ops=12, run_iter=False)
        )
        assert all(r.b_iter is None for r in rows)
