"""Unit tests for experiment-result export."""

import csv
import io
import json

import pytest

from repro.analysis.metrics import AlgoCell, ExperimentRow
from repro.analysis.report import (
    rows_to_dicts,
    save_rows,
    to_csv,
    to_json,
    to_markdown,
)


@pytest.fixture
def rows():
    return [
        ExperimentRow(
            kernel="ewf",
            datapath_spec="|1,1|1,1|",
            num_buses=2,
            move_latency=1,
            pcc=AlgoCell(17, 5, 0.08),
            b_init=AlgoCell(18, 9, 0.11),
            b_iter=AlgoCell(17, 5, 3.2),
        ),
        ExperimentRow(
            kernel="arf",
            datapath_spec="|1,2|1,2|",
            num_buses=2,
            move_latency=1,
            pcc=AlgoCell(10, 3, 0.06),
            b_init=AlgoCell(10, 3, 0.06),
            b_iter=None,
        ),
    ]


class TestDicts:
    def test_fields(self, rows):
        dicts = rows_to_dicts(rows)
        assert dicts[0]["kernel"] == "ewf"
        assert dicts[0]["pcc_L"] == 17
        assert dicts[0]["iter_dL_percent"] == 0.0
        assert dicts[1]["iter_L"] is None


class TestCsv:
    def test_parses_back(self, rows):
        text = to_csv(rows)
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == 2
        assert parsed[0]["kernel"] == "ewf"
        assert parsed[0]["init_L"] == "18"


class TestJson:
    def test_parses_back(self, rows):
        data = json.loads(to_json(rows))
        assert len(data) == 2
        assert data[1]["datapath"] == "|1,2|1,2|"


class TestMarkdown:
    def test_table_shape(self, rows):
        text = to_markdown(rows)
        lines = text.strip().splitlines()
        assert lines[0].startswith("| kernel ")
        assert len(lines) == 4  # header + separator + 2 rows
        assert "17/5" in lines[2]
        assert lines[3].rstrip().endswith("| - | - |")


class TestSave:
    @pytest.mark.parametrize("suffix", ["csv", "json", "md"])
    def test_suffix_dispatch(self, rows, tmp_path, suffix):
        path = tmp_path / f"out.{suffix}"
        save_rows(rows, path)
        assert path.read_text()

    def test_explicit_format(self, rows, tmp_path):
        path = tmp_path / "out.dat"
        save_rows(rows, path, fmt="csv")
        assert "kernel" in path.read_text()

    def test_unknown_format(self, rows, tmp_path):
        with pytest.raises(ValueError, match="unsupported format"):
            save_rows(rows, tmp_path / "out.xlsx")
