"""Unit tests for experiment metrics and rows."""

import pytest

from repro.analysis.metrics import AlgoCell, ExperimentRow, improvement_percent


class TestImprovementPercent:
    def test_positive_improvement(self):
        # paper example: PCC 16, B-INIT 15 -> 6.25% (table rounds to 6.7
        # because theirs was 15 vs 16... ours computes exactly)
        assert improvement_percent(16, 15) == pytest.approx(6.25)

    def test_zero(self):
        assert improvement_percent(10, 10) == 0.0

    def test_negative_when_worse(self):
        assert improvement_percent(15, 16) == pytest.approx(-100 / 15)

    def test_rejects_bad_baseline(self):
        with pytest.raises(ValueError):
            improvement_percent(0, 5)


def make_row(pcc_l=10, init_l=9, iter_l=8):
    return ExperimentRow(
        kernel="ewf",
        datapath_spec="|1,1|1,1|",
        num_buses=2,
        move_latency=1,
        pcc=AlgoCell(pcc_l, 5, 0.1),
        b_init=AlgoCell(init_l, 4, 0.01),
        b_iter=AlgoCell(iter_l, 3, 1.0),
    )


class TestExperimentRow:
    def test_lm_notation(self):
        assert AlgoCell(12, 7, 0.5).lm == "12/7"

    def test_improvements(self):
        row = make_row()
        assert row.init_improvement == pytest.approx(10.0)
        assert row.iter_improvement == pytest.approx(20.0)

    def test_missing_iter(self):
        row = ExperimentRow(
            kernel="ewf",
            datapath_spec="|1,1|1,1|",
            num_buses=2,
            move_latency=1,
            pcc=AlgoCell(10, 5, 0.1),
            b_init=AlgoCell(9, 4, 0.01),
        )
        assert row.iter_improvement is None
