"""Unit tests for experiment-grid summaries."""

import pytest

from repro.analysis.metrics import AlgoCell, ExperimentRow
from repro.analysis.summary import summarize


def row(pcc_l, init_l, iter_l, pcc_s=0.1, init_s=0.01):
    return ExperimentRow(
        kernel="k",
        datapath_spec="|1,1|1,1|",
        num_buses=2,
        move_latency=1,
        pcc=AlgoCell(pcc_l, 5, pcc_s),
        b_init=AlgoCell(init_l, 4, init_s),
        b_iter=AlgoCell(iter_l, 3, 1.0) if iter_l is not None else None,
    )


class TestSummarize:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_outcome_counts(self):
        rows = [row(10, 11, 9), row(10, 10, 10), row(10, 9, 12)]
        s = summarize(rows)
        assert (s.iter_wins, s.iter_ties, s.iter_losses) == (1, 1, 1)
        assert (s.init_wins, s.init_ties, s.init_losses) == (1, 1, 1)
        assert s.cells == 3

    def test_improvement_stats(self):
        rows = [row(10, 10, 8), row(20, 20, 20)]
        s = summarize(rows)
        assert s.max_iter_improvement == pytest.approx(20.0)
        assert s.mean_iter_improvement == pytest.approx(10.0)

    def test_speedup_geomean(self):
        rows = [row(10, 10, 10, pcc_s=1.0, init_s=0.1)]
        s = summarize(rows)
        assert s.mean_speedup_init_vs_pcc == pytest.approx(10.0)

    def test_rows_without_iter(self):
        rows = [row(10, 9, None), row(10, 10, 8)]
        s = summarize(rows)
        assert s.cells == 2
        assert s.iter_wins == 1
        assert s.init_wins == 1

    def test_headline_text(self):
        s = summarize([row(10, 10, 9)])
        text = s.headline()
        assert "B-ITER beats PCC in 1" in text
        assert "faster than PCC" in text

    def test_transfer_totals(self):
        s = summarize([row(10, 10, 10), row(10, 10, 10)])
        assert s.transfers_pcc == 10
        assert s.transfers_iter == 6
