"""Property-based tests (hypothesis) over the core invariants.

Strategy: generate random layered DFGs and random (but valid) datapath
shapes, run the full pipeline, and check the invariants that must hold
for *every* input:

* timing: asap <= alap, mobility >= 0, L_CP consistency;
* transfer insertion: count equals distinct (producer, destination)
  pairs, bound graph stays a DAG, unbinding recovers the original;
* scheduling: every schedule passes the first-principles validator and
  respects L >= L_CP;
* binding algorithms: B-INIT/B-ITER/PCC always emit complete valid
  bindings, and B-ITER never degrades its starting quality.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.binding import Binding, validate_binding
from repro.core.driver import bind_initial
from repro.core.initial import initial_binding
from repro.core.iterative import iterative_improvement
from repro.core.quality import quality_qu
from repro.datapath.parse import parse_datapath
from repro.dfg.generators import random_layered_dfg
from repro.dfg.ops import default_registry
from repro.dfg.serialize import dfg_from_dict, dfg_to_dict
from repro.dfg.timing import compute_timing, critical_path_length
from repro.dfg.transform import bind_dfg
from repro.dfg.validate import validate_dfg
from repro.schedule.list_scheduler import list_schedule
from repro.schedule.schedule import validate_schedule

# -- strategies -------------------------------------------------------------

dfg_strategy = st.builds(
    random_layered_dfg,
    num_ops=st.integers(min_value=1, max_value=40),
    seed=st.integers(min_value=0, max_value=10_000),
    width=st.integers(min_value=1, max_value=8),
    mul_fraction=st.floats(min_value=0.0, max_value=1.0),
)

datapath_strategy = st.builds(
    lambda shape, buses: parse_datapath(
        "|" + "|".join(f"{a},{m}" for a, m in shape) + "|", num_buses=buses
    ),
    shape=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=3),
            st.integers(min_value=1, max_value=3),
        ),
        min_size=1,
        max_size=4,
    ),
    buses=st.integers(min_value=1, max_value=3),
)

relaxed = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# -- timing invariants --------------------------------------------------------


@given(dfg=dfg_strategy, stretch=st.integers(min_value=0, max_value=10))
@relaxed
def test_timing_invariants(dfg, stretch):
    reg = default_registry()
    lcp = critical_path_length(dfg, reg)
    t = compute_timing(dfg, reg, target_latency=lcp + stretch)
    for n in dfg:
        assert 0 <= t.asap[n] <= t.alap[n]
        assert t.mobility(n) >= 0
        # mobility grows exactly with the stretch for critical ops
    assert t.critical_path_length == lcp
    # some operation must be critical at the unstretched target
    t0 = compute_timing(dfg, reg)
    assert any(t0.mobility(n) == 0 for n in dfg)


@given(dfg=dfg_strategy)
@relaxed
def test_generated_graphs_are_valid(dfg):
    validate_dfg(dfg, default_registry())


@given(dfg=dfg_strategy)
@relaxed
def test_serialization_roundtrip(dfg):
    restored = dfg_from_dict(dfg_to_dict(dfg))
    assert list(restored) == list(dfg)
    assert sorted(restored.edges()) == sorted(dfg.edges())


# -- transfer-insertion invariants -------------------------------------------


@given(
    dfg=dfg_strategy,
    datapath=datapath_strategy,
    salt=st.integers(min_value=0, max_value=999),
)
@relaxed
def test_bound_dfg_invariants(dfg, datapath, salt):
    import random

    rng = random.Random(salt)
    binding = Binding(
        {
            op.name: rng.choice(datapath.target_set(op.optype))
            for op in dfg.regular_operations()
        }
    )
    bound = bind_dfg(dfg, binding)
    # transfer count = distinct (producer, destination) cut pairs
    assert bound.num_transfers == binding.num_required_transfers(dfg)
    # bound graph is still a DAG and structurally valid
    validate_dfg(bound.graph, datapath.registry)
    # stripping transfers recovers the original graph
    original = bound.graph.without_transfers()
    assert sorted(original.edges()) == sorted(dfg.edges())


# -- scheduling invariants -----------------------------------------------------


@given(
    dfg=dfg_strategy,
    datapath=datapath_strategy,
    salt=st.integers(min_value=0, max_value=999),
)
@relaxed
def test_schedule_validity_for_random_bindings(dfg, datapath, salt):
    import random

    rng = random.Random(salt)
    binding = Binding(
        {
            op.name: rng.choice(datapath.target_set(op.optype))
            for op in dfg.regular_operations()
        }
    )
    schedule = list_schedule(bind_dfg(dfg, binding), datapath)
    validate_schedule(schedule)
    assert schedule.latency >= critical_path_length(dfg, datapath.registry)


# -- binding-algorithm invariants ----------------------------------------------


@given(dfg=dfg_strategy, datapath=datapath_strategy, reverse=st.booleans())
@relaxed
def test_initial_binding_always_valid(dfg, datapath, reverse):
    result = initial_binding(dfg, datapath, reverse=reverse)
    validate_binding(result.binding, dfg, datapath)
    schedule = list_schedule(bind_dfg(dfg, result.binding), datapath)
    validate_schedule(schedule)


@given(
    dfg=st.builds(
        random_layered_dfg,
        num_ops=st.integers(min_value=2, max_value=18),
        seed=st.integers(min_value=0, max_value=500),
    ),
    datapath=datapath_strategy,
)
@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_iterative_never_degrades(dfg, datapath):
    init = bind_initial(dfg, datapath)
    improved = iterative_improvement(dfg, datapath, init.binding)
    # The guaranteed invariant is on latency: the Q_U pass only commits
    # strict Q_U improvements, and the trailing Q_M pass never gives
    # latency back (L leads Q_M) — but it may reshape the deeper Q_U
    # components while trimming transfers, so the full Q_U vector is
    # not monotone end-to-end.
    assert improved.schedule.latency <= init.latency
    # The pure-Q_U variant, by contrast, is monotone in the full vector.
    qu_only = iterative_improvement(dfg, datapath, init.binding, quality="qu")
    assert quality_qu(qu_only.schedule) <= quality_qu(init.schedule)
    validate_binding(improved.binding, dfg, datapath)
    validate_schedule(improved.schedule)
