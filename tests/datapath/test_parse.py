"""Unit tests for the datapath spec parser."""

import pytest

from repro.datapath.parse import parse_cluster_spec, parse_datapath
from repro.dfg.ops import ALU, MUL


class TestParseClusterSpec:
    def test_basic(self):
        c = parse_cluster_spec("2,1", 0)
        assert c.fu_count(ALU) == 2
        assert c.fu_count(MUL) == 1

    def test_whitespace_tolerated(self):
        c = parse_cluster_spec(" 3 , 2 ", 1)
        assert c.index == 1
        assert c.fu_count(ALU) == 3

    def test_malformed_rejected(self):
        for bad in ("2", "a,b", "2,1,3", ""):
            with pytest.raises(ValueError, match="malformed"):
                parse_cluster_spec(bad, 0)


class TestParseDatapath:
    def test_paper_notation(self):
        dp = parse_datapath("|2,1|1,1|")
        assert dp.num_clusters == 2
        assert dp.spec() == "|2,1|1,1|"

    def test_bars_optional(self):
        assert parse_datapath("2,1|1,1").spec() == "|2,1|1,1|"

    def test_default_buses_match_table1(self):
        assert parse_datapath("|1,1|1,1|").num_buses == 2

    def test_move_latency_override(self):
        dp = parse_datapath("|1,1|1,1|", move_latency=2)
        assert dp.move_latency == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            parse_datapath("||")

    def test_five_cluster_table2_machine(self):
        dp = parse_datapath("|2,2|2,1|2,2|3,1|1,1|", num_buses=1)
        assert dp.num_clusters == 5
        assert dp.total_fu_count(ALU) == 10
        assert dp.total_fu_count(MUL) == 7

    def test_name_defaults_to_spec(self):
        assert parse_datapath("|1,1|").name == "|1,1|"
        assert parse_datapath("|1,1|", name="tiny").name == "tiny"


class TestParseTopologySuffix:
    """Each malformed suffix dies with its own one-line message."""

    def test_ring_round_trips(self):
        dp = parse_datapath("|1,1|1,1|1,1| @ring:cap=2")
        assert dp.interconnect.topology == "ring"
        assert dp.spec() == "|1,1|1,1|1,1| @ring:cap=2"

    def test_hop_is_move_latency_sugar(self):
        assert parse_datapath("|1,1|1,1| @ring:hop=2").move_latency == 2
        # explicit move_latency wins over the suffix parameter
        dp = parse_datapath("|1,1|1,1| @ring:hop=2", move_latency=3)
        assert dp.move_latency == 3

    def test_unknown_topology(self):
        with pytest.raises(
            ValueError,
            match="unknown topology 'star': expected one of "
            "bus, p2p, ring, mesh",
        ):
            parse_datapath("|1,1|1,1| @star")

    def test_malformed_parameter_key(self):
        with pytest.raises(
            ValueError,
            match=r"malformed topology suffix '@ring:caps=2': expected "
            r"'@topology\[:cap=K,hop=H\]' like '@ring:cap=1'",
        ):
            parse_datapath("|1,1|1,1| @ring:caps=2")

    def test_missing_equals(self):
        with pytest.raises(
            ValueError, match="malformed topology suffix '@mesh:cap'"
        ):
            parse_datapath("|1,1|1,1| @mesh:cap")

    def test_non_integer_value(self):
        with pytest.raises(
            ValueError,
            match="malformed topology suffix '@ring:cap=fat': "
            "cap= takes an integer, got 'fat'",
        ):
            parse_datapath("|1,1|1,1| @ring:cap=fat")

    def test_capacity_below_one(self):
        with pytest.raises(
            ValueError, match="topology capacity must be >= 1, got 0"
        ):
            parse_datapath("|1,1|1,1| @p2p:cap=0")

    def test_hop_latency_below_one(self):
        with pytest.raises(
            ValueError, match="topology hop latency must be >= 1, got -1"
        ):
            parse_datapath("|1,1|1,1| @ring:hop=-1")

    def test_empty_cluster_body_with_suffix(self):
        with pytest.raises(ValueError, match="empty datapath spec"):
            parse_datapath("@ring:cap=1")

    def test_cli_reports_parse_errors_one_line(self):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["bind", "ewf", "-d", "|1,1|1,1| @star"])
        message = str(excinfo.value.code)  # sys.exit(str) -> stderr line
        assert message.startswith(
            "repro-bind: error: unknown topology 'star'"
        )
        assert "\n" not in message  # one line, no traceback
