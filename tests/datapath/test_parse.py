"""Unit tests for the datapath spec parser."""

import pytest

from repro.datapath.parse import parse_cluster_spec, parse_datapath
from repro.dfg.ops import ALU, MUL


class TestParseClusterSpec:
    def test_basic(self):
        c = parse_cluster_spec("2,1", 0)
        assert c.fu_count(ALU) == 2
        assert c.fu_count(MUL) == 1

    def test_whitespace_tolerated(self):
        c = parse_cluster_spec(" 3 , 2 ", 1)
        assert c.index == 1
        assert c.fu_count(ALU) == 3

    def test_malformed_rejected(self):
        for bad in ("2", "a,b", "2,1,3", ""):
            with pytest.raises(ValueError, match="malformed"):
                parse_cluster_spec(bad, 0)


class TestParseDatapath:
    def test_paper_notation(self):
        dp = parse_datapath("|2,1|1,1|")
        assert dp.num_clusters == 2
        assert dp.spec() == "|2,1|1,1|"

    def test_bars_optional(self):
        assert parse_datapath("2,1|1,1").spec() == "|2,1|1,1|"

    def test_default_buses_match_table1(self):
        assert parse_datapath("|1,1|1,1|").num_buses == 2

    def test_move_latency_override(self):
        dp = parse_datapath("|1,1|1,1|", move_latency=2)
        assert dp.move_latency == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            parse_datapath("||")

    def test_five_cluster_table2_machine(self):
        dp = parse_datapath("|2,2|2,1|2,2|3,1|1,1|", num_buses=1)
        assert dp.num_clusters == 5
        assert dp.total_fu_count(ALU) == 10
        assert dp.total_fu_count(MUL) == 7

    def test_name_defaults_to_spec(self):
        assert parse_datapath("|1,1|").name == "|1,1|"
        assert parse_datapath("|1,1|", name="tiny").name == "tiny"
