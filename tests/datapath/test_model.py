"""Unit tests for the clustered datapath model."""

import pytest

from repro.datapath.model import Cluster, Datapath
from repro.dfg.ops import ADD, ALU, BUS, MOVE, MUL, MULT, default_registry


class TestCluster:
    def test_counts(self):
        c = Cluster(0, {ALU: 2, MUL: 1})
        assert c.fu_count(ALU) == 2
        assert c.fu_count(MUL) == 1
        assert c.fu_count(BUS) == 0
        assert c.total_fus == 3

    def test_supports(self):
        c = Cluster(0, {ALU: 1, MUL: 0})
        assert c.supports(ALU)
        assert not c.supports(MUL)

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError, match="negative"):
            Cluster(0, {ALU: -1})

    def test_rejects_empty_cluster(self):
        with pytest.raises(ValueError, match="no functional units"):
            Cluster(0, {ALU: 0, MUL: 0})

    def test_spec(self):
        assert Cluster(0, {ALU: 2, MUL: 1}).spec() == "2,1"
        assert str(Cluster(0, {ALU: 2, MUL: 1})) == "[2,1]"


class TestDatapath:
    def test_requires_clusters(self):
        with pytest.raises(ValueError, match="at least one cluster"):
            Datapath([])

    def test_indices_must_be_consecutive(self):
        with pytest.raises(ValueError, match="consecutive"):
            Datapath([Cluster(1, {ALU: 1})])

    def test_bus_width_positive(self):
        with pytest.raises(ValueError, match="num_buses"):
            Datapath([Cluster(0, {ALU: 1})], num_buses=0)

    def test_totals(self, three_cluster):
        assert three_cluster.num_clusters == 3
        assert three_cluster.total_fu_count(ALU) == 4
        assert three_cluster.total_fu_count(MUL) == 4
        assert three_cluster.total_fu_count(BUS) == 2

    def test_fu_count_bus(self, three_cluster):
        assert three_cluster.fu_count(0, BUS) == 2

    def test_homogeneity(self, two_cluster, three_cluster):
        assert two_cluster.is_homogeneous
        assert not three_cluster.is_homogeneous

    def test_target_set_full(self, two_cluster):
        assert two_cluster.target_set(ADD) == (0, 1)
        assert two_cluster.target_set(MULT) == (0, 1)

    def test_target_set_restricted(self):
        dp = Datapath([Cluster(0, {ALU: 1}), Cluster(1, {ALU: 1, MUL: 1})])
        assert dp.target_set(MULT) == (1,)
        assert dp.target_set(ADD) == (0, 1)

    def test_supports_op(self):
        dp = Datapath([Cluster(0, {ALU: 1}), Cluster(1, {MUL: 1})])
        assert dp.supports_op(0, ADD)
        assert not dp.supports_op(0, MULT)
        assert dp.supports_op(1, MULT)

    def test_check_bindable_raises_on_unsupported(self, diamond):
        dp = Datapath([Cluster(0, {ALU: 2})])  # no multiplier anywhere
        with pytest.raises(ValueError, match="no\\s+supporting cluster"):
            dp.check_bindable(diamond)

    def test_fu_types(self, two_cluster):
        assert set(two_cluster.fu_types()) == {ALU, MUL}

    def test_move_latency_shortcuts(self, two_cluster):
        assert two_cluster.move_latency == 1
        assert two_cluster.move_dii == 1

    def test_with_bus_copies(self, two_cluster):
        dp2 = two_cluster.with_bus(num_buses=1, move_latency=2)
        assert dp2.num_buses == 1
        assert dp2.move_latency == 2
        # original untouched
        assert two_cluster.num_buses == 2
        assert two_cluster.move_latency == 1

    def test_spec_roundtrip(self, three_cluster):
        assert three_cluster.spec() == "|2,1|1,1|1,2|"

    def test_repr(self, two_cluster):
        r = repr(two_cluster)
        assert "N_B=2" in r
        assert "lat(move)=1" in r
