"""Unit tests for the paper's datapath configuration library."""

import pytest

from repro.datapath.library import (
    TABLE1_CONFIGS,
    TABLE2_DATAPATH_SPEC,
    TABLE2_SWEEP,
    all_specs,
    table1_datapaths,
    table2_datapaths,
)


class TestTable1Configs:
    def test_every_kernel_present(self):
        assert set(TABLE1_CONFIGS) == {
            "dct-dif",
            "dct-lee",
            "dct-dit",
            "dct-dit-2",
            "fft",
            "ewf",
            "arf",
        }

    def test_row_counts_match_paper(self):
        expected = {
            "dct-dif": 4,
            "dct-lee": 5,
            "dct-dit": 6,
            "dct-dit-2": 5,
            "fft": 6,
            "ewf": 5,
            "arf": 2,
        }
        for kernel, count in expected.items():
            assert len(TABLE1_CONFIGS[kernel]) == count

    def test_datapaths_parse_with_two_buses(self):
        for kernel in TABLE1_CONFIGS:
            for dp in table1_datapaths(kernel):
                assert dp.num_buses == 2
                assert dp.move_latency == 1

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError, match="unknown kernel"):
            table1_datapaths("mp3")


class TestTable2:
    def test_sweep_points(self):
        assert TABLE2_SWEEP == ((1, 1), (2, 1), (1, 2), (2, 2))

    def test_datapaths(self):
        dps = table2_datapaths()
        assert len(dps) == 4
        for dp, (nb, lm) in zip(dps, TABLE2_SWEEP):
            assert dp.num_buses == nb
            assert dp.move_latency == lm
            assert dp.spec() == TABLE2_DATAPATH_SPEC


def test_all_specs_distinct_and_complete():
    specs = all_specs()
    assert len(specs) == len(set(specs))
    assert TABLE2_DATAPATH_SPEC in specs
    for kernel_specs in TABLE1_CONFIGS.values():
        for s in kernel_specs:
            assert s in specs
