"""Edge-case coverage across modules: the corners the main suites skip."""

import pytest

from repro.core.iterative import _perturbations
from repro.core.binding import Binding
from repro.datapath.parse import parse_datapath
from repro.dfg.graph import Dfg
from repro.dfg.ops import ADD, MOVE, MULT, default_registry
from repro.dfg.transform import bind_dfg
from repro.schedule.gantt import render_gantt
from repro.schedule.list_scheduler import list_schedule


class TestWithoutTransfersChains:
    def test_chained_transfers_collapse(self):
        """A value relayed through two hops still maps back to its
        original producer."""
        g = Dfg("relay")
        g.add_op("p", ADD)
        g.add_op("t1", MOVE, is_transfer=True, source="p")
        g.add_op("t2", MOVE, is_transfer=True, source="p")
        g.add_op("c", ADD)
        g.add_edge("p", "t1")
        g.add_edge("t1", "t2")
        g.add_edge("t2", "c")
        original = g.without_transfers()
        assert set(original.edges()) == {("p", "c")}

    def test_malformed_transfer_rejected(self):
        g = Dfg("bad")
        g.add_op("a", ADD)
        g.add_op("b", ADD)
        g.add_op("t", MOVE, is_transfer=True, source="a")
        g.add_edge("a", "t")
        g.add_edge("b", "t")  # two producers: malformed
        g.add_op("c", ADD)
        g.add_edge("t", "c")
        with pytest.raises(ValueError, match="exactly one producer"):
            g.without_transfers()


class TestGanttMultiCycle:
    def test_multicycle_op_spans_cells(self):
        reg = default_registry().with_overrides(latencies={MULT: 3})
        dp = parse_datapath("|1,1|", num_buses=1, registry=reg)
        g = Dfg("m")
        g.add_op("mul", MULT)
        schedule = list_schedule(bind_dfg(g, {"mul": 0}), dp)
        chart = render_gantt(schedule)
        # the op label appears once per busy cycle
        assert chart.count("mul") >= 3

    def test_empty_schedule_renders(self, two_cluster):
        schedule = list_schedule(bind_dfg(Dfg("e"), {}), two_cluster)
        chart = render_gantt(schedule)
        assert "L = 0" in chart


class TestPerturbationGeneration:
    def test_pairs_exclude_identity(self, two_cluster):
        g = Dfg("pair")
        for n in ("a", "b", "c"):
            g.add_op(n, ADD)
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        binding = Binding({"a": 0, "b": 1, "c": 0})
        perturbations = list(_perturbations(g, two_cluster, binding, True))
        for moves in perturbations:
            assert any(binding[name] != c for name, c in moves)

    def test_no_boundary_no_perturbations(self, two_cluster):
        g = Dfg("solo")
        g.add_op("a", ADD)
        binding = Binding({"a": 0})
        assert list(_perturbations(g, two_cluster, binding, True)) == []

    def test_sibling_pairs_generated(self, two_cluster):
        # two producers feeding a common consumer across a boundary
        g = Dfg("sib")
        for n in ("p1", "p2", "c"):
            g.add_op(n, ADD)
        g.add_edge("p1", "c")
        g.add_edge("p2", "c")
        binding = Binding({"p1": 0, "p2": 1, "c": 0})
        perturbations = list(_perturbations(g, two_cluster, binding, True))
        pair_moves = [p for p in perturbations if len(p) == 2]
        assert pair_moves  # p1+p2 moved together


class TestRegistryEdge:
    def test_transfer_name_format(self):
        from repro.dfg.transform import transfer_name

        assert transfer_name("v7", 2) == "t.v7.c2"

    def test_binding_repr_and_mapping_get(self):
        b = Binding({"a": 1})
        assert "a" in repr(b)
        assert b.get("a") == 1
        assert b.get("z") is None


class TestSweepDedup:
    def test_sweep_log_contains_distinct_bindings_only(self, two_cluster):
        from repro.core.driver import bind_initial
        from repro.dfg.generators import chain_dfg

        # a chain converges to the same binding at every L_PR: the
        # deduped log should have very few entries.
        result = bind_initial(chain_dfg(6), two_cluster)
        assert len(result.sweep_log) <= 4


class TestTableRendering:
    def test_render_table1_groups_and_headers(self):
        from repro.analysis.metrics import AlgoCell, ExperimentRow
        from repro.analysis.tables import render_table1

        rows = [
            ExperimentRow(
                kernel="ewf",
                datapath_spec="|1,1|1,1|",
                num_buses=2,
                move_latency=1,
                pcc=AlgoCell(17, 5, 0.1),
                b_init=AlgoCell(18, 9, 0.1),
                b_iter=None,
            )
        ]
        text = render_table1(rows)
        assert "EWF: N_V = 34" in text
        assert "|1,1|1,1|" in text
        assert "17/5" in text
