"""CLI coverage for the tuning layer: ``race`` and ``sweep``."""

import json

import pytest

from repro.cli import main

RACERS = "pcc,b-init"


class TestRace:
    def test_dry_run_prints_plan(self, capsys):
        rc = main([
            "race", "arf", "-d", "|1,1|1,1|",
            "--racers", RACERS, "--budget", "200", "--dry-run",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 racers" in out
        assert "racer pcc" in out
        assert "racer b-init" in out
        assert "rung 0" in out

    def test_dry_run_json(self, capsys):
        rc = main([
            "race", "arf", "--racers", RACERS,
            "--budget", "200", "--dry-run", "--json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["budget"] == 200
        assert [r["strategy"] for r in payload["racers"]] == [
            "pcc", "b-init",
        ]
        assert payload["rungs"][0]["survivors"] == 2
        assert payload["rungs"][-1]["survivors"] == 1

    def test_race_runs_and_reports(self, capsys):
        rc = main([
            "race", "arf", "-d", "|1,1|1,1|",
            "--racers", RACERS, "--budget", "200", "--seed", "0",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "winner" in out
        assert "charged" in out

    def test_race_json_machine_readable(self, capsys):
        rc = main([
            "race", "arf", "-d", "|1,1|1,1|",
            "--racers", RACERS, "--budget", "200", "--seed", "0",
            "--json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kernel"] == "arf"
        assert payload["winner"] in payload["per_racer"]
        assert payload["charged"] <= payload["budget"]
        assert isinstance(payload["rung_log"], list)
        assert set(payload["trajectories"]) == set(payload["per_racer"])
        assert payload["latency"] >= 1
        assert payload["status"] in ("complete", "budget")

    def test_bad_racer_is_one_line_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["race", "arf", "--racers", "nosuch"])
        assert "error" in str(exc.value)
        assert "Traceback" not in str(exc.value)

    def test_self_nesting_is_one_line_error(self):
        with pytest.raises(SystemExit) as exc:
            main(["race", "arf", "--racers", "portfolio"])
        assert "cannot race itself" in str(exc.value)

    def test_bad_budget_is_one_line_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["race", "arf", "--racers", RACERS, "--budget", "0"])
        err = capsys.readouterr().err
        assert "must be >= 1" in err
        assert "Traceback" not in err


class TestSweep:
    def _write_spec(self, tmp_path, data):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(data))
        return str(path)

    def test_dry_run_lists_jobs(self, tmp_path, capsys):
        path = self._write_spec(tmp_path, {
            "kernels": ["arf"],
            "datapaths": ["|1,1|1,1|"],
            "strategies": ["pcc", {"name": "b-init",
                                   "grid": {"gamma": [0.5, 1.1]}}],
        })
        rc = main(["sweep", path, "--dry-run"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "3 jobs: 1 cells x 3 variants" in out
        assert "b-init[gamma=0.5]" in out
        assert "b-init[gamma=1.1]" in out

    def test_sweep_renders_comparison(self, tmp_path, capsys):
        path = self._write_spec(tmp_path, {
            "cells": [["arf", "|1,1|1,1|"]],
            "strategies": ["pcc", "b-init"],
        })
        rc = main(["sweep", path])
        assert rc == 0
        out = capsys.readouterr().out
        assert "arf" in out
        assert "pcc" in out
        assert "b-init" in out

    def test_sweep_out_json(self, tmp_path, capsys):
        path = self._write_spec(tmp_path, {
            "cells": [["arf", "|1,1|1,1|"]],
            "strategies": ["b-init"],
        })
        out_path = tmp_path / "rows.json"
        rc = main(["sweep", path, "--out", str(out_path)])
        assert rc == 0
        rows = json.loads(out_path.read_text())
        assert rows[0]["kernel"] == "arf"
        assert rows[0]["cells"]["b-init"]["L"] >= 1

    def test_sweep_budget_flag_caps_strategies(self, tmp_path, capsys):
        path = self._write_spec(tmp_path, {
            "cells": [["arf", "|1,1|1,1|"]],
            "strategies": [{"name": "b-iter",
                            "config": {"iter_starts": 1}}],
        })
        rc = main(["sweep", path, "--budget", "50", "--dry-run"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "'max_evals': 50" in out

    def test_bad_spec_is_one_line_error(self, tmp_path):
        path = self._write_spec(tmp_path, {"strategies": []})
        with pytest.raises(SystemExit) as exc:
            main(["sweep", path])
        assert "non-empty 'strategies'" in str(exc.value)

    def test_missing_file_is_one_line_error(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["sweep", str(tmp_path / "nope.json")])
        assert "error" in str(exc.value)


class TestStrategiesListing:
    def test_portfolio_listed(self, capsys):
        assert main(["strategies"]) == 0
        assert "portfolio" in capsys.readouterr().out

    def test_portfolio_schema_verbose(self, capsys):
        assert main(["strategies", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "racers=<str>" in out
        assert "eta=<int>" in out

    def test_portfolio_schema_json(self, capsys):
        assert main(["strategies", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        entry = next(s for s in payload if s["name"] == "portfolio")
        fields = {f["name"] for f in entry["config"]}
        assert {"racers", "eta", "max_evals"} <= fields
