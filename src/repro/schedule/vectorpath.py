"""Vectorized batch evaluation: candidates as structure-of-arrays lanes.

The scalar fast path (:mod:`repro.schedule.fastpath`) evaluates one
binding per call — a steepest-descent round trickles ~100 neighbour
candidates through :meth:`SchedContext.evaluate` one Python loop at a
time.  This module evaluates the *whole round at once*: a
:class:`VectorContext` is compiled once per ``(DFG, datapath, dii)``
from the precompiled :class:`~repro.schedule.fastpath.SchedContext`
int-id tables, and :meth:`VectorContext.evaluate_batch` runs one
lock-step list-scheduling sweep over numpy structure-of-arrays state —
per-candidate *lanes* for the op→cluster assignment, derived transfer
slots, priority keys, ready times, and FU/bus pool occupancy — so every
scheduling cycle advances all lanes simultaneously with masked array
updates instead of per-candidate Python loops.

Lane layout.  A batch of ``L`` placements over ``n`` regular operations
becomes ``(L, N)`` arrays with ``N = n + Tmax`` slots: the first ``n``
columns are the regular operations (shared across lanes), the remaining
``Tmax`` columns are each lane's derived transfer MOVE legs in
``bind_dfg`` insertion order (producers by op index, destinations
ascending, route hops in order — on the bus every route is one hop, so
legs == pairs), padded to the widest lane and masked inactive
elsewhere.
Per-cycle issue selection runs in a per-lane ``(pool, priority key)``
sorted domain: a cumulative sum over the ready mask yields each ready
operation's rank within its resource pool in priority order, and the
rank doubles as the unit index — exactly the scalar engine's stamped
``dii == 1`` pool counters, one vector op per cycle instead of a heap.

Bit identity.  The engine reproduces :meth:`SchedContext.evaluate`
outcome for outcome — latencies, start cycles, unit assignments,
transfer pairs, and every lexicographic tie-break — because it computes
the *same packed priority keys* (ALAP, mobility, out-degree, insertion
index) and issues in the same within-cycle order.  The differential
suite (``tests/schedule/test_vectorpath.py``) enforces this against
both the scalar fast path and the naive scheduler.

Scope and fallback.  Only the fully-pipelined case (``dii == 1`` for
every operation type and the bus — the paper's resource model) is
vectorized; :func:`vector_context_for` returns ``None`` for other
timing registries, when numpy is unavailable, or when the
``REPRO_VECTORPATH`` gate is off, and callers fall back to the scalar
engine.  The module imports without numpy; a one-line notice is
emitted once per process when the vector engine is requested but numpy
is missing.
"""

from __future__ import annotations

import os
import sys
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .fastpath import FastOutcome, SchedContext

__all__ = [
    "VECTORPATH_ENV",
    "VECTOR_THRESHOLD_ENV",
    "POLL_CYCLE_MASK",
    "VectorContext",
    "VectorUnsupported",
    "vectorpath_enabled",
    "vector_batch_threshold",
    "vector_context_for",
]

#: Environment gate mirroring ``REPRO_FASTPATH``: set ``0`` to force
#: every batch back onto the scalar fast path.
VECTORPATH_ENV = "REPRO_VECTORPATH"

#: Minimum uncached batch width worth packing into lanes; below it the
#: per-batch numpy setup outweighs the scalar loop it replaces.
VECTOR_THRESHOLD_ENV = "REPRO_VECTOR_THRESHOLD"

#: Default for :func:`vector_batch_threshold`, tuned on the Table 1
#: cells (see docs/PERF.md): the crossover where lane packing beats the
#: scalar loop sits well below 32 candidates, and real descent rounds
#: are 50-150 wide, so 32 keeps tiny tail batches on the cheap path.
DEFAULT_VECTOR_THRESHOLD = 32

#: The sweep loop invokes its cooperative-cancellation ``poll`` on
#: cycles where ``cycle & POLL_CYCLE_MASK == 0`` — every 64 scheduled
#: cycles, frequent enough for sub-second deadline responsiveness and
#: far too cheap to measure against the masked array work per cycle.
POLL_CYCLE_MASK = 63

_FALSEY = ("0", "false", "no", "off")

#: Lazily imported numpy module; ``False`` means "tried and absent".
_numpy_module = None
_numpy_checked = False
_missing_notice_emitted = False


class VectorUnsupported(RuntimeError):
    """The (DFG, datapath, dii) space cannot be vectorized."""


def vectorpath_enabled() -> bool:
    """Whether the vector engine is enabled (``REPRO_VECTORPATH``).

    Defaults to on; set ``REPRO_VECTORPATH=0`` to pin every batch to
    the scalar fast path (e.g. to check a sweep regenerates
    byte-identically either way).  Honored wherever a
    :class:`~repro.search.session.SearchSession` evaluates — the CLI,
    the runner's pool workers, and the service's warm workers all
    inherit it from the environment.
    """
    return os.environ.get(VECTORPATH_ENV, "1").strip().lower() not in _FALSEY


def vector_batch_threshold() -> int:
    """Uncached candidates needed before a batch is packed into lanes.

    ``REPRO_VECTOR_THRESHOLD`` overrides the tuned default; anything
    unparseable falls back to the default rather than failing a sweep.
    """
    raw = os.environ.get(VECTOR_THRESHOLD_ENV, "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return DEFAULT_VECTOR_THRESHOLD


def _numpy():
    """The numpy module, or ``None`` when not installed."""
    global _numpy_module, _numpy_checked
    if not _numpy_checked:
        _numpy_checked = True
        try:
            import numpy  # noqa: PLC0415 — optional dependency

            _numpy_module = numpy
        except ImportError:
            _numpy_module = None
    return _numpy_module


def _notice_numpy_missing() -> None:
    """One line, once per process: why batches are not vectorized."""
    global _missing_notice_emitted
    if not _missing_notice_emitted:
        _missing_notice_emitted = True
        print(
            "repro: numpy unavailable — batched evaluation uses the "
            "scalar fastpath (install the 'fast' extra: "
            "pip install 'repro[fast]')",
            file=sys.stderr,
        )


def vector_context_for(ctx: SchedContext) -> Optional["VectorContext"]:
    """The cached :class:`VectorContext` of ``ctx``, or ``None``.

    Returns ``None`` when the gate is off, numpy is missing (with a
    once-per-process notice), or the timing registry is not fully
    pipelined.  The compiled context is cached on the
    :class:`SchedContext` instance, so warm per-datapath context pools
    (``REPRO_WARM_CONTEXTS``) keep the vector tables warm too.
    """
    if not vectorpath_enabled():
        return None
    if _numpy() is None:
        _notice_numpy_missing()
        return None
    cached = getattr(ctx, "_vector_context", None)
    if cached is None:
        try:
            cached = VectorContext(ctx)
        except VectorUnsupported:
            cached = False
        ctx._vector_context = cached
    return cached or None


class VectorContext:
    """Structure-of-arrays batch evaluator over one ``SchedContext``.

    Construction is one-time per ``(DFG, datapath, dii)`` — it freezes
    the lane-independent tables (edge lists grouped by longest-path
    level for the vectorized ASAP/ALAP sweeps, successor CSR, pool
    layout) as numpy arrays.  :meth:`evaluate_batch` then compiles a
    list of placements into lanes and schedules them all in lock-step.

    Raises :class:`VectorUnsupported` when any operation type (or the
    bus) has ``dii != 1`` — those pools need the scalar engine's busy
    heaps, and batches fall back per :func:`vector_context_for`.
    """

    def __init__(self, ctx: SchedContext) -> None:
        np = _numpy()
        if np is None:  # pragma: no cover — callers gate on _numpy()
            raise VectorUnsupported("numpy is not installed")
        if not ctx.all_dii_one:
            raise VectorUnsupported(
                "vector engine requires a fully pipelined resource model "
                "(dii == 1 for all operation types and the bus)"
            )
        self.np = np
        self.ctx = ctx
        n = ctx.num_regular
        self.n = n
        self.num_clusters = ctx.datapath.num_clusters
        self.move_lat = ctx.move_lat
        self.lat = np.asarray(ctx.lat, dtype=np.int64)
        self.indeg = np.asarray(
            [len(p) for p in ctx.pred], dtype=np.int64
        )
        self.pool_sizes = np.asarray(ctx.pool_sizes, dtype=np.int64)
        self.bus_pool = ctx.bus_pool
        self.link_pool_base = ctx.link_pool_base
        # Routing tables as dense arrays: route_len_np[s, d] is the hop
        # count of the s->d route (0 on the diagonal), route_links_np
        # the per-hop link ids padded to the longest route.  On the bus
        # every off-diagonal entry is one hop over link 0.
        C = self.num_clusters
        self.route_len_np = np.asarray(
            ctx.route_len, dtype=np.int64
        ).reshape(C, C)
        max_hops = max(1, ctx.max_hops)
        route_links_np = np.zeros((C, C, max_hops), dtype=np.int64)
        for s in range(C):
            for d in range(C):
                for j, link in enumerate(ctx.route_links[s][d]):
                    route_links_np[s, d, j] = link
        self.route_links_np = route_links_np
        # Distinct slot latencies (ops + the transfer move), ascending:
        # the scheduling loop's scatter-max runs one pass per value.
        self._lat_vals = sorted(set(self.lat.tolist()) | {ctx.move_lat})
        # op_pool[i][c]: pool of op i in cluster c (-1 = no FU there).
        self.op_pool = np.asarray(ctx.op_pool, dtype=np.int64).reshape(
            n, self.num_clusters
        )

        # Edges in successor-CSR order (u-major, ctx.succ list order).
        succ_deg = np.asarray([len(s) for s in ctx.succ], dtype=np.int64)
        self.succ_deg = succ_deg
        self.succ_off = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(succ_deg)]
        )
        eu: List[int] = []
        ev: List[int] = []
        for u, succs in enumerate(ctx.succ):
            for v in succs:
                eu.append(u)
                ev.append(v)
        self.edge_u = np.asarray(eu, dtype=np.int64)
        self.edge_v = np.asarray(ev, dtype=np.int64)
        self.num_edges = len(eu)

        # Longest-path levels partition the edges so the ASAP (forward)
        # and ALAP (backward) recurrences run one vector op per level
        # instead of one Python iteration per node.
        depth = np.zeros(n, dtype=np.int64)
        for u in ctx.topo:
            for v in ctx.succ[u]:
                if depth[u] + 1 > depth[v]:
                    depth[v] = depth[u] + 1
        self._fwd_groups = self._edge_groups(np, depth, by_target=True)
        self._bwd_groups = self._edge_groups(np, depth, by_target=False)
        self._sum_lat = ctx._sum_lat

    def _edge_groups(self, np, depth, by_target: bool):
        """Edges grouped by endpoint level, segmented for ``reduceat``.

        Forward groups (``by_target``) are keyed by the *target's*
        level, ascending, and segmented by target — every edge into a
        node lands in one group, with all sources finalized by earlier
        groups.  Backward groups are keyed by the *source's* level,
        descending, segmented by source.
        """
        if self.num_edges == 0:
            return []
        anchor = self.edge_v if by_target else self.edge_u
        levels = depth[anchor]
        groups = []
        order = sorted(set(levels.tolist()), reverse=not by_target)
        for level in order:
            eidx = np.nonzero(levels == level)[0]
            eidx = eidx[np.argsort(anchor[eidx], kind="stable")]
            nodes = anchor[eidx]
            starts = np.nonzero(
                np.concatenate(
                    [np.ones(1, dtype=bool), nodes[1:] != nodes[:-1]]
                )
            )[0]
            groups.append((eidx, starts, nodes[starts]))
        return groups

    # ------------------------------------------------------------------
    # Batch evaluation
    # ------------------------------------------------------------------
    def evaluate_batch(
        self,
        placements: Sequence[Tuple[int, ...]],
        poll: Optional[Callable[[], None]] = None,
    ) -> List[FastOutcome]:
        """Evaluate every placement in one lock-step vectorized sweep.

        Returns one :class:`FastOutcome` per placement, in input order,
        bit-identical to ``[ctx.evaluate(p) for p in placements]``.
        Raises :class:`VectorUnsupported` for infeasible placements
        (an operation bound to a cluster with no matching FU) — callers
        degrade to the scalar engine, which reports the precise
        operation.

        ``poll``, when given, is invoked every
        :data:`POLL_CYCLE_MASK` + 1 scheduled cycles inside the sweep;
        it may raise (``SearchCancelled``) to abandon the batch — the
        cooperative-cancellation hook that keeps deadlines responsive
        even when one batch sweep is the unit of work.  The poll never
        alters the computation, so outcomes are unchanged whether or
        not one is installed.
        """
        np = self.np
        L = len(placements)
        if L == 0:
            return []
        n = self.n
        C = self.num_clusters
        move_lat = self.move_lat
        P = np.asarray(placements, dtype=np.int64).reshape(L, n)

        pool_reg = self.op_pool[np.arange(n)[None, :], P]
        if (pool_reg < 0).any():
            raise VectorUnsupported(
                "batch contains an infeasible placement "
                "(operation bound to a cluster with no matching FU)"
            )

        # --- Transfer lanes: each lane's (producer, dest) pairs in
        # bind_dfg insertion order (producer index asc, dest asc).
        E = self.num_edges
        eu, ev = self.edge_u, self.edge_v
        if E:
            pu = P[:, eu]
            pv = P[:, ev]
            cross = pu != pv  # (L, E)
        else:
            cross = np.zeros((L, 0), dtype=bool)
            pv = np.zeros((L, 0), dtype=np.int64)
        # A cut edge marks (producer, consumer cluster); several edges
        # to one cluster share a transfer, so the distinct (lane,
        # producer, dest) codes — sort + adjacent-unique, cheaper than
        # a dense (L, n, C) cube — enumerate each lane's transfers in
        # ascending code order, which IS bind_dfg insertion order
        # (producer index asc, dest asc).
        if E:
            lane_e, ecol = np.nonzero(cross)
            dest_e = pv[lane_e, ecol]
            codes_all = (lane_e * n + eu[ecol]) * C + dest_e
        else:
            codes_all = np.zeros(0, dtype=np.int64)
        codes_t = np.sort(codes_all)
        if codes_t.size:
            km = np.empty(codes_t.size, dtype=bool)
            km[0] = True
            np.not_equal(codes_t[1:], codes_t[:-1], out=km[1:])
            codes_t = codes_t[km]
        tcode = codes_t // C
        dn = codes_t - tcode * C
        ln = tcode // n
        un = tcode - ln * n
        t_cnt = np.bincount(tcode, minlength=L * n).reshape(L, n)
        t_lane = np.bincount(ln, minlength=L)  # (L,) per-lane pairs
        lane_starts = np.cumsum(t_lane) - t_lane
        # Cross edge -> the global index of the transfer pair carrying
        # it: codes_t is strictly ascending, so a binary search maps
        # each cut edge's code to its pair.
        gidx = np.searchsorted(codes_t, codes_all)

        # --- Leg expansion: pair k becomes hops_pair[k] chained MOVE
        # legs (one per link of its lane's src->dest route).  Lane slot
        # columns hold *legs*, pairs in code order with each pair's
        # legs consecutive — bind_dfg insertion order, and the scalar
        # engine's node-id layout.  On the bus hops are all 1, so legs
        # collapse back to pairs and every array below is unchanged.
        npair = len(ln)
        src_pair = P[ln, un]
        hops_pair = self.route_len_np[src_pair, dn]
        legs_lane = np.zeros(L, dtype=np.int64)
        np.add.at(legs_lane, ln, hops_pair)
        leg_starts = np.cumsum(legs_lane) - legs_lane
        tmax = int(legs_lane.max()) if L else 0
        leg_pair = np.repeat(np.arange(npair, dtype=np.int64), hops_pair)
        total_legs = len(leg_pair)
        pair_off = np.cumsum(hops_pair) - hops_pair
        hop_idx = np.arange(total_legs, dtype=np.int64) - pair_off[leg_pair]
        ln_leg = ln[leg_pair]
        # kk: each leg's 0-based column within its lane (legs are
        # lane-major because pairs are code-sorted).
        kk = np.arange(total_legs, dtype=np.int64) - np.repeat(
            leg_starts, legs_lane
        )
        first_kk = kk[pair_off] if npair else kk[:0]

        # --- ASAP over the bound graph, transfer chains collapsed into
        # the edges (a cross edge costs lat(u) + hops * move_lat).
        if E:
            hops_e = self.route_len_np[pu, pv]  # (L, E); 0 off-cut
        else:
            hops_e = np.zeros((L, 0), dtype=np.int64)
        asap = np.zeros((L, n), dtype=np.int64)
        for eidx, starts, nodes in self._fwd_groups:
            contrib = (
                asap[:, eu[eidx]]
                + self.lat[eu[eidx]][None, :]
                + hops_e[:, eidx] * move_lat
            )
            asap[:, nodes] = np.maximum.reduceat(contrib, starts, axis=1)
        finish = asap + self.lat[None, :]
        lcp = finish.max(axis=1)  # (L,) critical-path length

        # --- ALAP: alap(u) = min(lcp, succ alaps via edges) - lat(u).
        alap = lcp[:, None] - self.lat[None, :]  # no-successor default
        for eidx, starts, nodes in self._bwd_groups:
            contrib = alap[:, ev[eidx]] - hops_e[:, eidx] * move_lat
            mins = np.minimum.reduceat(contrib, starts, axis=1)
            alap[:, nodes] = (
                np.minimum(lcp[:, None], mins) - self.lat[nodes][None, :]
            )

        # --- Leg slots: timing, consumers, priority components.  Leg j
        # of pair k starts no earlier than finish(u) + j * move_lat and,
        # walking the chain back from the pair's consumers, no later
        # than min(alap(v)) - (hops - j) * move_lat; only the final leg
        # has regular consumers (deg 1 for intermediate legs, the chain
        # edge).
        big = np.int64(1) << 40
        alap_pair = np.full(npair, big, dtype=np.int64)
        if E and npair:
            np.minimum.at(alap_pair, gidx, alap[lane_e, ev[ecol]])
            deg_pair = np.bincount(gidx, minlength=npair)
        else:
            deg_pair = np.zeros(npair, dtype=np.int64)
        un_leg = un[leg_pair]
        asap_leg = (
            asap[ln_leg, un_leg]
            + self.lat[un_leg]
            + hop_idx * move_lat
        )
        alap_leg = alap_pair[leg_pair] - (
            hops_pair[leg_pair] - hop_idx
        ) * move_lat
        deg_leg = np.where(
            hop_idx == hops_pair[leg_pair] - 1, deg_pair[leg_pair], 1
        )
        active_t = np.zeros((L, tmax), dtype=bool)
        asap_t = np.zeros((L, tmax), dtype=np.int64)
        alap_t = np.zeros((L, tmax), dtype=np.int64)
        deg_t = np.zeros((L, tmax), dtype=np.int64)
        pool_t = np.full((L, tmax), self.bus_pool, dtype=np.int64)
        if tmax:
            link_leg = self.route_links_np[
                src_pair[leg_pair], dn[leg_pair], hop_idx
            ]
            active_t[ln_leg, kk] = True
            asap_t[ln_leg, kk] = asap_leg
            alap_t[ln_leg, kk] = alap_leg
            deg_t[ln_leg, kk] = deg_leg
            pool_t[ln_leg, kk] = self.link_pool_base + link_leg
        if E:
            lane_s, ecol_s = np.nonzero(~cross)
            same_cnt = np.bincount(
                lane_s * n + eu[ecol_s], minlength=L * n
            ).reshape(L, n)
        else:
            same_cnt = np.zeros((L, n), dtype=np.int64)
        # Producer out-degree counts one arming edge per *pair* (the
        # first leg), not per leg — t_cnt stays the pair count.
        deg_reg = same_cnt + t_cnt
        max_deg = np.maximum(
            deg_reg.max(axis=1),
            deg_t.max(axis=1) if tmax else 0,
        )

        # --- Packed priority keys, exactly SchedContext._priority_keys
        # over the leg-expanded bound graph (total = n + legs).
        span = lcp + 1
        deg_span = max_deg + 1
        total = n + legs_lane
        key_reg = (
            (alap * span[:, None] + (alap - asap)) * deg_span[:, None]
            + (max_deg[:, None] - deg_reg)
        ) * total[:, None] + np.arange(n, dtype=np.int64)[None, :]
        if tmax:
            # Inactive padding slots take alap = lcp + 1 / mobility 0:
            # every active alap is <= lcp, so padding sorts after all of
            # a lane's real transfers without a huge sentinel (keeping
            # keys small enough to pack the pool id alongside below).
            alap_t = np.where(active_t, alap_t, (lcp + 1)[:, None])
            mob_t = np.where(active_t, alap_t - asap_t, 0)
            key_t = (
                (alap_t * span[:, None] + mob_t) * deg_span[:, None]
                + (max_deg[:, None] - deg_t)
            ) * total[:, None] + (
                n + np.arange(tmax, dtype=np.int64)[None, :]
            )
        else:
            key_t = np.zeros((L, 0), dtype=np.int64)

        # --- Slot state, (L, N) with N = n + Tmax.
        N = n + tmax
        key = np.concatenate([key_reg, key_t], axis=1)
        pool_slot = np.concatenate([pool_reg, pool_t], axis=1)
        lat_slot = np.concatenate(
            [
                np.broadcast_to(self.lat, (L, n)),
                np.full((L, tmax), move_lat, dtype=np.int64),
            ],
            axis=1,
        )
        active = np.concatenate(
            [np.ones((L, n), dtype=bool), active_t], axis=1
        )
        remaining = np.concatenate(
            [
                np.broadcast_to(self.indeg, (L, n)).copy(),
                np.where(active_t, 1, np.int64(1) << 30),
            ],
            axis=1,
        )

        # --- The (pool, key)-sorted issue domain: per lane, slots are
        # grouped by pool and key-ordered within the group, so a single
        # cumsum over the ready mask yields every ready op's priority
        # rank inside its pool — the scalar engine's per-cycle pool
        # counter, vectorized.  All per-cycle state is kept flat (one
        # (L*N,) array per field, lane-major in the sorted domain) so
        # every scheduling cycle is a handful of cheap 1-D kernels.
        num_pools = int(self.pool_sizes.shape[0])
        LN = L * N
        ar = np.arange(LN, dtype=np.int64)
        kmax = int(key.max())
        # order_flat[j] = flat *slot* id at sorted position j;
        # inv_flat[flat slot id] = its sorted position.
        if kmax < (1 << 62) // max(L * num_pools, 1):
            # Keys are unique within a lane (the insertion-index term),
            # so (lane, pool, key) packs into one int64 and a single
            # flat argsort yields the whole batch's issue domain —
            # about half the work of a per-lane two-key lexsort.
            packed = (
                np.arange(L, dtype=np.int64)[:, None] * num_pools
                + pool_slot
            ) * (kmax + 1) + key
            order_flat = np.argsort(packed.ravel())
        else:  # pragma: no cover — needs a ~2**60-cycle critical path
            order = np.lexsort((key, pool_slot), axis=-1)  # (L, N)
            order_flat = (order + np.arange(L)[:, None] * N).ravel()
        inv_flat = np.empty(LN, dtype=np.int64)
        inv_flat[order_flat] = ar
        pool_f = pool_slot.ravel()[order_flat]
        size_f = self.pool_sizes[pool_f]
        # (lane, pool) group starts: pool changes, plus every lane start
        # (adjacent lanes may begin and end with the same pool id).
        bound_f = np.ones(LN, dtype=bool)
        bound_f[1:] = pool_f[1:] != pool_f[:-1]
        bound_f[0::N] = True
        group_start = np.maximum.accumulate(np.where(bound_f, ar, 0))
        remaining_f = remaining.ravel()[order_flat]
        lat_f = lat_slot.ravel()[order_flat]
        earliest_f = np.zeros(LN, dtype=np.int64)
        # One packed (start * uspan + unit) cell per slot: half the
        # scatter traffic per cycle, unpacked once after the loop.
        uspan = int(self.pool_sizes.max()) + 1
        su_f = np.zeros(LN, dtype=np.int64)

        # Bound-graph successors as one batch CSR over sorted positions:
        # same-cluster edges, producer->first-leg arming edges, chain
        # edges between consecutive legs, and final-leg->consumer edges,
        # all uniform because the finish time any edge propagates is
        # issue cycle + the source slot's latency.
        tslot_leg = ln_leg * N + n + kk  # flat slot id of each leg
        tslot_first = ln * N + n + first_kk
        tslot_last = tslot_first + hops_pair - 1
        e_src = [ln * N + un]  # producer -> its pair's first leg
        e_dst = [tslot_first]
        if total_legs > npair:
            chain = hop_idx + 1 < hops_pair[leg_pair]
            e_src.append(tslot_leg[chain])  # leg j -> leg j+1
            e_dst.append(tslot_leg[chain] + 1)
        if E:
            e_src.append(lane_s * N + eu[ecol_s])  # same-cluster edges
            e_dst.append(lane_s * N + ev[ecol_s])
            if tmax:
                e_src.append(tslot_last[gidx])  # final leg -> consumer
                e_dst.append(lane_e * N + ev[ecol])
        src_all = inv_flat[np.concatenate(e_src)]
        dst_all = inv_flat[np.concatenate(e_dst)]
        out_deg = np.bincount(src_all, minlength=LN)
        out_off = np.cumsum(out_deg) - out_deg
        # Within-source edge order is irrelevant (releases are applied
        # per unique consumer, order-independent), so (src, dst) packs
        # into one key and a plain value sort replaces argsort+gather.
        shift = max(LN - 1, 1).bit_length()
        packed_e = (src_all << shift) | dst_all
        packed_e.sort()
        # Stacked pairs gathered together in the loop: one fancy-index
        # call fetches both rows of a (2, k) result.
        dst_lat = np.stack([packed_e & ((1 << shift) - 1),
                            lat_f[packed_e >> shift]])
        out_do = np.stack([out_deg, out_off + out_deg])
        if src_all.size > LN:
            # The in-loop iota is sliced to the per-cycle fan-out, which
            # can exceed the slot count when the graph has more edges
            # than slots — grow it to cover the worst single cycle.
            ar = np.arange(src_all.size, dtype=np.int64)

        # Event-driven lock-step loop, the scalar engine's ready_at
        # buckets lifted to batch granularity: ``pending`` is the sorted
        # array of positions that are data-ready but deferred on a full
        # pool, and ``buckets[c]`` collects positions that become ready
        # at cycle ``c`` (a slot's earliest time is final once its last
        # predecessor issues, because latencies are >= 1).  The ready
        # set is maintained by sorted merge, so each cycle touches only
        # arrays the size of the ready set — never the full batch width.
        pending = np.nonzero(remaining_f == 0)[0]
        lat_vals = self._lat_vals
        maxlat = lat_vals[-1]
        buckets: Dict[int, List] = {}
        total_left = int(active.sum())
        cycle = 0
        budget = 2 * (self._sum_lat + move_lat * (tmax or 0)) + 64
        while total_left:
            if cycle > budget:
                raise VectorUnsupported(
                    f"vector scheduler exceeded cycle budget {budget} on "
                    f"{self.ctx.dfg.name + '+bound'!r}; resource model "
                    "is likely infeasible"
                )
            if poll is not None and (cycle & POLL_CYCLE_MASK) == 0:
                poll()
            arrivals = buckets.pop(cycle, None)
            if arrivals is not None:
                # Bucket arrays are pairwise disjoint and disjoint from
                # pending (a slot zeroes exactly once), so the merge is
                # one concatenate + sort, no dedup; timsort exploits
                # the pre-sorted runs being concatenated.
                arr = np.concatenate([pending] + arrivals)
                arr.sort(kind="stable")
                ridx = arr  # ascending == issue-priority
            else:
                ridx = pending
            m = ridx.size
            if m == 0:
                if not buckets:
                    raise VectorUnsupported(
                        "vector scheduler deadlocked (cyclic bound graph?)"
                    )
                cycle = min(buckets)
                continue
            # Ranks ascend within a (lane, pool) group, so the issued
            # set is a per-group *prefix*: the first min(len, pool
            # size) ready slots of each group issue, their 0-based
            # offset in the prefix is the unit index (the scalar
            # per-cycle pool counter), and the rest stay pending in
            # order.  Everything below runs on group-count- and
            # issue-count-sized arrays, not the full ready set.
            gs = group_start[ridx]
            newg = np.empty(m, dtype=bool)
            newg[0] = True
            np.not_equal(gs[1:], gs[:-1], out=newg[1:])
            heads = np.nonzero(newg)[0]
            glen = np.diff(heads, append=m)
            take = np.minimum(glen, size_f[ridx[heads]])
            ends_t = np.cumsum(take)
            k = int(ends_t[-1])
            off = ends_t - take
            hit = ridx[ar[:k] + np.repeat(heads - off, take)]
            su_f[hit] = cycle * uspan + (ar[:k] - np.repeat(off, take))
            mk = m - k
            if mk:
                rest = glen - take
                ends_r = np.cumsum(rest)
                pending = ridx[
                    ar[:mk]
                    + np.repeat(heads + take - ends_r + rest, rest)
                ]
            else:
                pending = ridx[:0]
            total_left -= k
            o2 = out_do[:, hit]  # rows: out-degree, CSR end offset
            cnt = o2[0]
            tot = int(cnt.sum())
            if tot:
                ends = np.cumsum(cnt)
                eidx = ar[:tot] + np.repeat(o2[1] - ends, cnt)
                d2 = dst_lat[:, eidx]  # rows: consumer, finish delta
                dst = d2[0]
                latr = d2[1]
                # Scatter-max of finish times runs once per *distinct*
                # latency (a tiny precompiled set; np.unique per cycle
                # costs more than the whole pass) — duplicate-index
                # fancy assignment is safe because every colliding
                # write carries the same value.
                for lv in lat_vals:  # ascending
                    d = dst[latr == lv]
                    if d.size:
                        earliest_f[d] = np.maximum(
                            earliest_f[d], cycle + lv
                        )
                # Unique consumers + release counts by sorted
                # run-length, all on release-sized arrays — no
                # full-width pass anywhere in the loop.
                ds = np.sort(dst)
                nb = np.empty(tot, dtype=bool)
                nb[0] = True
                np.not_equal(ds[1:], ds[:-1], out=nb[1:])
                bidx = np.nonzero(nb)[0]
                uq = ds[bidx]
                remaining_f[uq] -= np.diff(bidx, append=tot)
                zero = uq[remaining_f[uq] == 0]
                if zero.size:
                    # Now-final earliest times bucket the new arrivals;
                    # ``zero`` is sorted and duplicate-free (sliced
                    # from ``uq``), so bucket slices stay mergeable.
                    # Earliest times land in (cycle, cycle + maxlat].
                    es = earliest_f[zero]
                    if maxlat <= 8:
                        for v in range(cycle + 1, cycle + maxlat + 1):
                            d = zero[es == v]
                            if d.size:
                                buckets.setdefault(v, []).append(d)
                    else:  # pragma: no cover — long-latency registries
                        for v in np.unique(es).tolist():
                            buckets.setdefault(v, []).append(
                                zero[es == v]
                            )
            if hit.size < m:
                cycle += 1  # someone deferred on a full pool
            elif total_left:
                # Idle gap: jump to the earliest pending data-ready
                # event across all lanes (cf. the scalar engine's
                # ``cycle = min(ready_at)``); lanes whose next event is
                # later simply see no ready slots at that cycle.
                cycle = min(buckets) if buckets else cycle + 1

        # --- Unpermute and materialize one FastOutcome per lane.
        starts_f = su_f // uspan
        units_f = su_f - starts_f * uspan
        starts_slot = np.empty(LN, dtype=np.int64)
        units_slot = np.empty(LN, dtype=np.int64)
        starts_slot[order_flat] = starts_f
        units_slot[order_flat] = units_f
        starts_slot = starts_slot.reshape(L, N)
        units_slot = units_slot.reshape(L, N)
        latency = np.where(active, starts_slot + lat_slot, 0).max(axis=1)
        starts_l = starts_slot.tolist()
        units_l = units_slot.tolist()
        pairs_flat = list(zip(un.tolist(), dn.tolist()))
        off_l = lane_starts.tolist()
        t_lane_l = t_lane.tolist()
        legs_lane_l = legs_lane.tolist()
        latency_l = latency.tolist()
        ctx = self.ctx
        outs = []
        for i, placement in enumerate(placements):
            # A lane's live columns are exactly the first n + legs: its
            # leg slots fill columns n..n+legs-1, padding sits after.
            # Its (producer, dest) pairs are a contiguous run of the
            # flat pair list (lexicographic == per-lane insertion
            # order); ``starts``/``units`` carry every MOVE leg.
            t = t_lane_l[i]
            g = legs_lane_l[i]
            o = off_l[i]
            outs.append(
                FastOutcome(
                    ctx=ctx,
                    placement=tuple(placement),
                    pairs=tuple(pairs_flat[o : o + t]),
                    starts=tuple(starts_l[i][: n + g]),
                    units=tuple(units_l[i][: n + g]),
                    latency=latency_l[i],
                )
            )
        return outs
