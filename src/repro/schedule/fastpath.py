"""Precompiled fast-path evaluation of bindings.

Every algorithm in this repository that searches over bindings (B-ITER,
the tabu walk, annealing, PCC's cap sweep, branch and bound) pays the
same inner-loop cost: rewrite the DFG with transfer operations, compute
ALAP priorities, and list-schedule the bound graph.  The naive path —
:func:`repro.dfg.transform.bind_dfg` + :func:`~repro.schedule.
list_scheduler.list_schedule` — rebuilds dict-of-list graphs, frozen
``Operation`` dataclasses, and string-keyed priority maps from scratch
for every candidate, which dominates the runtime of the whole search.

This module precompiles everything that does *not* depend on the
binding into an immutable :class:`SchedContext` — integer operation
ids, flat successor/predecessor adjacency, per-op latency / ``dii`` /
pool tables, a topological order — and evaluates a binding entirely
over integer arrays:

* transfer operations are represented as ``(producer, destination
  cluster)`` pairs and numbered in exactly the insertion order
  :func:`bind_dfg` would use, so priorities tie-break identically;
* ready-queue keys are packed into single integers that compare the
  same as the naive ``(alap, mobility, -consumers, index)`` tuples;
* resource pools use O(1) per-cycle counters (the fully-pipelined
  ``dii == 1`` case) or a free-index heap plus a release heap instead
  of the O(size) scan in ``ResourcePool.available_at``, and their state
  arrays are reset, not reallocated, between evaluations;
* successive evaluations of nearby bindings (B-ITER perturbations)
  recompute the transfer-pair sets only for producers incident to the
  moved operations (see :meth:`SchedContext.transfer_dests`), the
  array-level counterpart of :func:`repro.dfg.transform.bind_delta`.

The engine is **bit-equivalent** to the naive path: identical latency,
start cycles, unit assignments, and transfer counts on every input
(``tests/schedule/test_fastpath_equiv.py`` enforces this
differentially).  Custom ``priority`` maps are supported via rank
packing — operations are sorted once by the naive heap's exact
``(priority, name)`` ordering and the unique ranks packed into the
integer comparison keys; only mutually *incomparable* priority values
fall back to the naive scheduler.
"""

from __future__ import annotations

import os
from heapq import heappop, heappush
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..datapath.model import Datapath
from ..dfg.graph import Dfg
from ..dfg.ops import BUS, MOVE, FuType
from ..dfg.transform import BoundDfg, _leg_name, bind_dfg
from .schedule import Schedule

__all__ = [
    "SchedContext",
    "FastOutcome",
    "fast_list_schedule",
    "fastpath_enabled",
]


def fastpath_enabled() -> bool:
    """Whether the fast path is enabled (``REPRO_FASTPATH`` env knob).

    Defaults to on; set ``REPRO_FASTPATH=0`` to force every algorithm
    back onto the naive ``bind_dfg`` + ``list_schedule`` path, e.g. to
    check that a table regenerates byte-identically either way.
    """
    return os.environ.get("REPRO_FASTPATH", "1").strip().lower() not in (
        "0",
        "false",
        "no",
        "off",
    )


class FastOutcome:
    """Result of one fast-path evaluation.

    Duck-types the parts of :class:`~repro.schedule.schedule.Schedule`
    the quality functions read (``latency``, ``num_transfers``,
    ``completion_profile()``) without building any graph or dict, and
    can be materialized into a real, bit-identical ``Schedule`` on
    demand with :meth:`to_schedule`.
    """

    __slots__ = (
        "ctx",
        "placement",
        "pairs",
        "starts",
        "units",
        "latency",
        "_profile",
        "_pressure",
        "_legs",
    )

    def __init__(
        self,
        ctx: "SchedContext",
        placement: Tuple[int, ...],
        pairs: Tuple[Tuple[int, int], ...],
        starts: Tuple[int, ...],
        units: Tuple[int, ...],
        latency: int,
    ) -> None:
        self.ctx = ctx
        self.placement = placement
        self.pairs = pairs
        self.starts = starts
        self.units = units
        self.latency = latency
        self._profile: Optional[List[int]] = None
        self._pressure: Optional[Dict[int, int]] = None
        self._legs: Optional[Tuple[List[int], List[int]]] = None

    @property
    def num_transfers(self) -> int:
        """``M``: number of ``(producer, dest cluster)`` transfer pairs.

        Intermediate legs of routed multi-hop moves do not count — the
        metric stays comparable across topologies (and identical to the
        bus-era value on one-hop routes).
        """
        return len(self.pairs)

    def _leg_layout(self) -> Tuple[List[int], List[int]]:
        """Per-pair ``(first leg node id, hop count)``, derived lazily.

        Re-derivable from the context's routing tables, so persisted
        outcome blobs (pairs/starts/units/latency) need no extra field.
        """
        if self._legs is None:
            route_len = self.ctx.route_len
            placement = self.placement
            base: List[int] = []
            hops: List[int] = []
            total = self.ctx.num_regular
            for u, d in self.pairs:
                base.append(total)
                h = route_len[placement[u]][d]
                hops.append(h)
                total += h
            self._legs = (base, hops)
        return self._legs

    def completion_profile(self) -> List[int]:
        """``U_i`` counts, identical to ``Schedule.completion_profile``."""
        if self._profile is None:
            counts = [0] * self.latency
            lat = self.ctx.lat
            starts = self.starts
            for i in range(self.ctx.num_regular):
                counts[self.latency - starts[i] - lat[i]] += 1
            self._profile = counts
        return self._profile

    def key(self) -> Tuple[int, int]:
        """The ``(L, M)`` ranking key."""
        return (self.latency, len(self.pairs))

    def pressure_per_cluster(self) -> Dict[int, int]:
        """Per-cluster register pressure, without building any graph.

        Bit-identical to ``register_pressure(self.to_schedule())
        .per_cluster`` (the reference liveness model of
        :mod:`repro.analysis.pressure`), computed directly over the
        integer arrays: each regular operation's bound-graph consumers
        are its same-cluster successors plus its own transfers, and
        each transfer's consumers are the producer's successors in the
        destination cluster.  Values with no consumers (block outputs)
        live to the end of the schedule.
        """
        if self._pressure is None:
            ctx = self.ctx
            n = ctx.num_regular
            placement = self.placement
            starts = self.starts
            lat = ctx.lat
            succ = ctx.succ
            pairs = self.pairs
            move_lat = ctx.move_lat
            raw_latency = self.latency
            guard = max(raw_latency, 1)
            profiles = [
                [0] * (guard + 1) for _ in range(ctx.datapath.num_clusters)
            ]
            pair_base, pair_hops = self._leg_layout()
            cluster_path = ctx.cluster_path
            # Transfer ids of each producer, in pair order.
            tidx: List[List[int]] = [[] for _ in range(n)]
            for k, (u, _) in enumerate(pairs):
                tidx[u].append(k)

            def accumulate(cluster: int, birth: int, death: int) -> None:
                profile = profiles[cluster]
                for cycle in range(birth, max(death, birth) + 1):
                    if cycle <= guard:
                        profile[cycle] += 1

            for i in range(n):
                c = placement[i]
                birth = starts[i] + lat[i]
                death = -1
                have_consumer = False
                for v in succ[i]:
                    if placement[v] == c:
                        have_consumer = True
                        if starts[v] > death:
                            death = starts[v]
                for k in tidx[i]:
                    have_consumer = True
                    t_start = starts[pair_base[k]]  # first leg reads it
                    if t_start > death:
                        death = t_start
                if not have_consumer:
                    death = raw_latency
                accumulate(c, birth, max(death, birth))
            for k, (u, d) in enumerate(pairs):
                b, h = pair_base[k], pair_hops[k]
                path = cluster_path[placement[u]][d]
                # Intermediate legs: the value waits in the hop cluster
                # until the next leg picks it up.
                for j in range(h - 1):
                    birth = starts[b + j] + move_lat
                    accumulate(
                        path[j + 1], birth, max(starts[b + j + 1], birth)
                    )
                birth = starts[b + h - 1] + move_lat
                death = -1
                have_consumer = False
                for v in succ[u]:
                    if placement[v] == d:
                        have_consumer = True
                        if starts[v] > death:
                            death = starts[v]
                if not have_consumer:
                    death = raw_latency
                accumulate(d, birth, max(death, birth))
            self._pressure = {
                c: max(profile) for c, profile in enumerate(profiles)
            }
        return self._pressure

    def to_schedule(self) -> Schedule:
        """Materialize the full :class:`Schedule` (graph included).

        The bound DFG is rebuilt canonically via :func:`bind_dfg`, so
        the result is indistinguishable from the naive path's output.
        """
        ctx = self.ctx
        names = ctx.names
        binding = {names[i]: self.placement[i] for i in range(len(names))}
        bound = bind_dfg(ctx.dfg, binding, interconnect=ctx.interconnect)
        start: Dict[str, int] = {}
        instance: Dict[str, Tuple[int, FuType, int]] = {}
        for i, name in enumerate(names):
            start[name] = self.starts[i]
            instance[name] = (self.placement[i], ctx.futypes[i], self.units[i])
        pair_base, pair_hops = self._leg_layout()
        for k, (u, dest) in enumerate(self.pairs):
            b, h = pair_base[k], pair_hops[k]
            route = ctx.route_links[self.placement[u]][dest]
            for j in range(h):
                t = _leg_name(names[u], dest, j, h)
                start[t] = self.starts[b + j]
                instance[t] = (-(route[j] + 1), BUS, self.units[b + j])
        return Schedule(
            bound=bound,
            datapath=ctx.datapath,
            start=start,
            instance=instance,
            latency=self.latency,
        )


class SchedContext:
    """Immutable precompiled scheduling context for one (DFG, datapath).

    Building the context is O(V + E) and done once; every subsequent
    :meth:`evaluate` call reuses the integer tables and the pool
    scratch arrays.  The DFG must be the *original* graph (no
    transfers) — transfers are derived per binding.
    """

    def __init__(self, dfg: Dfg, datapath: Datapath) -> None:
        if dfg.num_transfers:
            raise ValueError(
                "SchedContext expects the original DFG; it already "
                f"contains {dfg.num_transfers} transfer operations"
            )
        self.dfg = dfg
        self.datapath = datapath
        reg = datapath.registry

        ops = dfg.operations()
        self.names: Tuple[str, ...] = tuple(op.name for op in ops)
        self.index: Dict[str, int] = {n: i for i, n in enumerate(self.names)}
        self.num_regular = len(ops)
        self.lat: List[int] = [reg.latency(op.optype) for op in ops]
        self.dii: List[int] = [reg.dii(op.optype) for op in ops]
        self.futypes: List[FuType] = [reg.futype(op.optype) for op in ops]
        idx = self.index
        self.succ: List[List[int]] = [
            [idx[s] for s in dfg.successors(n)] for n in self.names
        ]
        self.pred: List[List[int]] = [
            [idx[p] for p in dfg.predecessors(n)] for n in self.names
        ]
        self.topo: List[int] = [idx[n] for n in dfg.topological_order()]
        self.move_lat = reg.latency(MOVE)
        self.move_dii = reg.dii(MOVE)
        self._sum_lat = sum(self.lat)

        # Pool layout: one pool per (cluster, FU type) with units, then
        # one per interconnect link (the paper's bus is the single link
        # 0, so ``bus_pool`` keeps naming the first link pool).
        # ``op_pool[i][c]`` is op i's pool in cluster c (-1 if that
        # cluster lacks the FU type).
        pool_ids: Dict[Tuple[int, FuType], int] = {}
        sizes: List[int] = []
        for c in datapath.clusters:
            for futype, count in c.fu_counts.items():
                if count > 0:
                    pool_ids[(c.index, futype)] = len(sizes)
                    sizes.append(count)
        interconnect = datapath.interconnect
        self.interconnect = interconnect
        self.link_pool_base = len(sizes)
        self.bus_pool = self.link_pool_base
        if interconnect.links:
            for link in interconnect.links:
                sizes.append(link.capacity)
        else:
            # One-cluster machines have no links and no transfers; keep
            # a degenerate slot so pool ids stay well-formed.
            sizes.append(datapath.num_buses)
        self.num_links = max(1, interconnect.num_links)
        self.pool_sizes: List[int] = sizes
        # Routing tables, indexed [src][dst]: link ids of the route,
        # hop count, and the cluster sequence (endpoints included).
        # For the bus every route is the one shared link.
        num_clusters_ic = datapath.num_clusters
        self.route_links: List[List[Tuple[int, ...]]] = [
            [
                interconnect.route(s, d) if s != d else ()
                for d in range(num_clusters_ic)
            ]
            for s in range(num_clusters_ic)
        ]
        self.route_len: List[List[int]] = [
            [len(r) for r in row] for row in self.route_links
        ]
        self.cluster_path: List[List[Tuple[int, ...]]] = [
            [
                interconnect.cluster_path(s, d) if s != d else (s,)
                for d in range(num_clusters_ic)
            ]
            for s in range(num_clusters_ic)
        ]
        self.max_hops = interconnect.max_route_len
        num_clusters = datapath.num_clusters
        self.op_pool: List[List[int]] = [
            [pool_ids.get((c, self.futypes[i]), -1) for c in range(num_clusters)]
            for i in range(self.num_regular)
        ]
        self.all_dii_one = self.move_dii == 1 and all(
            d == 1 for d in self.dii
        )

        # Reusable per-evaluation pool scratch (reset, not reallocated).
        n_pools = len(sizes)
        self._stamp = [-1] * n_pools
        self._count = [0] * n_pools
        self._free: List[List[int]] = [[] for _ in range(n_pools)]
        self._busy: List[List[Tuple[int, int]]] = [[] for _ in range(n_pools)]

    # ------------------------------------------------------------------
    # Transfer-pair derivation (the binding-dependent part of bind_dfg)
    # ------------------------------------------------------------------
    def _dests_of(self, placement: Sequence[int], u: int) -> Tuple[int, ...]:
        c = placement[u]
        dests = {placement[v] for v in self.succ[u]}
        dests.discard(c)
        return tuple(sorted(dests))

    def transfer_dests(
        self,
        placement: Sequence[int],
        prev: Optional[Tuple[Sequence[int], List[Tuple[int, ...]]]] = None,
    ) -> List[Tuple[int, ...]]:
        """Ascending destination clusters per producer.

        With ``prev = (previous placement, its dests)``, only producers
        whose cut-set can have changed — the moved operations and their
        predecessors — are recomputed; everything else is reused.  This
        is the incremental re-binding step: a B-ITER perturbation moves
        one or two operations, so the patch is O(moved neighbourhood)
        instead of O(V + E).
        """
        n = self.num_regular
        if prev is not None:
            prev_placement, prev_dests = prev
            moved = [i for i in range(n) if placement[i] != prev_placement[i]]
            dests = list(prev_dests)
            affected = set(moved)
            for v in moved:
                affected.update(self.pred[v])
            for u in affected:
                dests[u] = self._dests_of(placement, u)
            return dests
        return [self._dests_of(placement, u) for u in range(n)]

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        placement: Sequence[int],
        dests: Optional[List[Tuple[int, ...]]] = None,
    ) -> FastOutcome:
        """Bind + ALAP-prioritize + list-schedule, all over int arrays.

        Args:
            placement: cluster per regular operation, in ``names`` order.
            dests: optional precomputed :meth:`transfer_dests` output.

        Returns:
            A :class:`FastOutcome` bit-equivalent to scheduling
            ``bind_dfg(dfg, placement)`` with the naive scheduler.
        """
        num_regular = self.num_regular
        if dests is None:
            dests = self.transfer_dests(placement)

        # Transfer leg ids continue after the regular ops: producers in
        # insertion order, destinations ascending, hops in route order —
        # exactly bind_dfg's insertion order, so priority index
        # tie-breaks agree.  ``pairs`` stays pair-level (the paper's
        # ``M``); pair ``k`` expands to ``pair_hops[k]`` chained MOVE
        # legs starting at node id ``pair_base[k]``.  On the bus every
        # route is one hop, so legs == pairs and ids are unchanged.
        route_len = self.route_len
        route_links = self.route_links
        pairs: List[Tuple[int, int]] = []
        pair_base: List[int] = []
        pair_hops: List[int] = []
        upair: List[int] = [0] * num_regular
        total = num_regular
        for u in range(num_regular):
            upair[u] = len(pairs)
            cu = placement[u]
            for d in dests[u]:
                pairs.append((u, d))
                pair_base.append(total)
                h = route_len[cu][d]
                pair_hops.append(h)
                total += h
        num_legs = total - num_regular

        lat = self.lat + [self.move_lat] * num_legs
        dii = self.dii + [self.move_dii] * num_legs

        pool = [0] * total
        for i in range(num_regular):
            p = self.op_pool[i][placement[i]]
            if p < 0:
                raise RuntimeError(
                    f"{self.names[i]!r} bound to cluster {placement[i]} "
                    f"with no {self.futypes[i]} units"
                )
            pool[i] = p
        link_base = self.link_pool_base
        for k in range(len(pairs)):
            u, d = pairs[k]
            route = route_links[placement[u]][d]
            b = pair_base[k]
            for j, link in enumerate(route):
                pool[b + j] = link_base + link

        # Bound-graph adjacency: a cut edge reroutes through the LAST
        # leg of the producer's pair to the consumer; the producer arms
        # the FIRST leg; legs chain in route order.
        bsucc: List[List[int]] = [[] for _ in range(total)]
        indeg = [0] * total
        for u in range(num_regular):
            du = dests[u]
            cu = placement[u]
            out = bsucc[u]
            up = upair[u]
            for v in self.succ[u]:
                cv = placement[v]
                if cv == cu:
                    out.append(v)
                else:
                    k = up + du.index(cv)
                    bsucc[pair_base[k] + pair_hops[k] - 1].append(v)
                indeg[v] += 1
            for k in range(up, up + len(du)):
                b = pair_base[k]
                out.append(b)
                indeg[b] += 1
                for j in range(1, pair_hops[k]):
                    bsucc[b + j - 1].append(b + j)
                    indeg[b + j] += 1

        # Topological order of the bound graph: each pair's leg chain
        # right after its producer (valid: consumers always follow).
        btopo: List[int] = []
        for u in self.topo:
            btopo.append(u)
            up = upair[u]
            for k in range(up, up + len(dests[u])):
                b = pair_base[k]
                for j in range(pair_hops[k]):
                    btopo.append(b + j)

        keys = self._priority_keys(total, btopo, bsucc, lat)
        budget = 2 * (self._sum_lat + self.move_lat * num_legs) + 64
        starts, units, latency = self._run(
            total, lat, dii, pool, bsucc, indeg, keys, budget
        )
        return FastOutcome(
            ctx=self,
            placement=tuple(placement),
            pairs=tuple(pairs),
            starts=tuple(starts),
            units=tuple(units),
            latency=latency,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _priority_keys(
        self,
        total: int,
        btopo: List[int],
        bsucc: List[List[int]],
        lat: List[int],
    ) -> List[int]:
        """Packed ALAP priorities, ordered like the naive tuples.

        The naive key is ``(alap, mobility, -out_degree, index)`` with
        the index making it unique; packing into a single integer keeps
        heap comparisons O(1).
        """
        asap = [0] * total
        lcp = 0
        for n in btopo:
            f = asap[n] + lat[n]
            if f > lcp:
                lcp = f
            for s in bsucc[n]:
                if f > asap[s]:
                    asap[s] = f
        alap = [0] * total
        for n in reversed(btopo):
            m = lcp
            for s in bsucc[n]:
                if alap[s] < m:
                    m = alap[s]
            alap[n] = m - lat[n]
        max_deg = 0
        for out in bsucc:
            if len(out) > max_deg:
                max_deg = len(out)
        span = lcp + 1
        deg_span = max_deg + 1
        return [
            (
                (alap[n] * span + (alap[n] - asap[n])) * deg_span
                + (max_deg - len(bsucc[n]))
            )
            * total
            + n
            for n in range(total)
        ]

    def _run(
        self,
        total: int,
        lat: List[int],
        dii: List[int],
        pool: List[int],
        bsucc: List[List[int]],
        indeg: List[int],
        keys: List[int],
        budget: int,
    ) -> Tuple[List[int], List[int], int]:
        """The scheduling loop; mirrors ``list_schedule`` cycle by cycle."""
        sizes = self.pool_sizes
        starts = [0] * total
        units = [0] * total
        remaining = indeg  # consumed in place; caller-local array
        earliest = [0] * total
        ready_at: Dict[int, List[int]] = {}
        first = [n for n in range(total) if remaining[n] == 0]
        if first:
            ready_at[0] = first
        heap: List[int] = []
        unscheduled = total
        latency = 0
        cycle = 0
        fast_pools = self.all_dii_one
        if fast_pools:
            stamp = self._stamp
            count = self._count
            for p in range(len(sizes)):
                stamp[p] = -1
        else:
            free = self._free
            busy = self._busy
            for p, size in enumerate(sizes):
                fp = free[p]
                fp.clear()
                fp.extend(range(size))  # ascending == a valid min-heap
                busy[p].clear()

        while unscheduled:
            if cycle > budget:
                raise RuntimeError(
                    f"list scheduler exceeded cycle budget {budget} on "
                    f"{self.dfg.name + '+bound'!r}; resource model is "
                    "likely infeasible"
                )
            arrivals = ready_at.pop(cycle, None)
            if arrivals is not None:
                for n in arrivals:
                    heappush(heap, keys[n])
            deferred: List[int] = []
            while heap:
                k = heappop(heap)
                n = k % total
                p = pool[n]
                if fast_pools:
                    if stamp[p] != cycle:
                        stamp[p] = cycle
                        count[p] = 0
                    unit = count[p]
                    if unit >= sizes[p]:
                        deferred.append(k)
                        continue
                    count[p] = unit + 1
                else:
                    fp = free[p]
                    bp = busy[p]
                    while bp and bp[0][0] <= cycle:
                        heappush(fp, heappop(bp)[1])
                    if not fp:
                        deferred.append(k)
                        continue
                    unit = heappop(fp)
                    heappush(bp, (cycle + dii[n], unit))
                starts[n] = cycle
                units[n] = unit
                unscheduled -= 1
                finish = cycle + lat[n]
                if finish > latency:
                    latency = finish
                for s in bsucc[n]:
                    remaining[s] -= 1
                    if finish > earliest[s]:
                        earliest[s] = finish
                    if remaining[s] == 0:
                        es = earliest[s]
                        bucket = ready_at.get(es)
                        if bucket is None:
                            ready_at[es] = [s]
                        else:
                            bucket.append(s)
            for k in deferred:
                heappush(heap, k)
            if heap or not ready_at:
                cycle += 1
            else:
                # Idle gap: jump to the next data-ready event.  The
                # naive scheduler walks these cycles one by one; no
                # operation can issue in between, so the schedule is
                # unchanged.
                cycle = min(ready_at)
        return starts, units, latency


def fast_list_schedule(
    bound: BoundDfg,
    datapath: Datapath,
    priority=None,
) -> Schedule:
    """Drop-in fast replacement for :func:`list_schedule`.

    Accepts an already-bound DFG, schedules it over integer arrays, and
    returns a bit-identical :class:`Schedule`.  A custom ``priority``
    map is supported by *rank packing*: operations are sorted once by
    the naive heap's exact ordering — ``(priority[name], name)``, i.e.
    non-unique keys tie-break on operation names — and the unique ranks
    are packed into the integer keys the fast loop compares.  Priority
    values whose comparison raises ``TypeError`` (mutually incomparable
    keys) fall back to the naive scheduler, which resolves comparisons
    lazily pair by pair.
    """
    from .list_scheduler import list_schedule

    graph = bound.graph
    reg = datapath.registry
    names = list(graph)
    index = {n: i for i, n in enumerate(names)}
    total = len(names)

    custom_keys: Optional[List[int]] = None
    if priority is not None:
        try:
            order = sorted(names, key=lambda nm: (priority[nm], nm))
        except TypeError:
            return list_schedule(bound, datapath, priority)
        rank = {nm: r for r, nm in enumerate(order)}
        custom_keys = [rank[nm] * total + i for i, nm in enumerate(names)]
    lat = [0] * total
    dii = [0] * total
    pool: List[int] = [0] * total

    pool_ids: Dict[Tuple[int, FuType], int] = {}
    sizes: List[int] = []
    for c in datapath.clusters:
        for futype, cnt in c.fu_counts.items():
            if cnt > 0:
                pool_ids[(c.index, futype)] = len(sizes)
                sizes.append(cnt)
    link_base = len(sizes)
    interconnect = datapath.interconnect
    if interconnect.links:
        for link in interconnect.links:
            sizes.append(link.capacity)
    else:
        sizes.append(datapath.num_buses)
    transfer_links = bound.transfer_links
    if not transfer_links and interconnect.num_links > 1:
        if any(op.is_transfer for op in graph.operations()):
            raise RuntimeError(
                f"bound DFG {graph.name!r} carries no link assignments "
                f"but datapath {datapath.name!r} has "
                f"{interconnect.num_links} links; bind with "
                "bind_dfg(..., interconnect=datapath.interconnect)"
            )

    futypes: List[FuType] = []
    clusters: List[int] = []
    for i, n in enumerate(names):
        op = graph.operation(n)
        lat[i] = reg.latency(op.optype)
        dii[i] = reg.dii(op.optype)
        if op.is_transfer:
            link = transfer_links.get(n, 0)
            pool[i] = link_base + link
            futypes.append(BUS)
            clusters.append(-(link + 1))
        else:
            cluster = bound.placement[n]
            futype = reg.futype(op.optype)
            p = pool_ids.get((cluster, futype), -1)
            if p < 0:
                raise RuntimeError(
                    f"{n!r} bound to cluster {cluster} with no "
                    f"{futype} units"
                )
            pool[i] = p
            futypes.append(futype)
            clusters.append(cluster)

    bsucc = [[index[s] for s in graph.successors(n)] for n in names]
    indeg = [graph.in_degree(n) for n in names]
    btopo = [index[n] for n in graph.topological_order()]

    # Borrow SchedContext's loop via a minimal shim context that only
    # carries the pool layout, scratch arrays, and dfg name.
    shim = SchedContext.__new__(SchedContext)
    shim.pool_sizes = sizes
    shim.all_dii_one = all(d == 1 for d in dii)
    shim._sum_lat = sum(lat)
    shim._stamp = [-1] * len(sizes)
    shim._count = [0] * len(sizes)
    shim._free = [[] for _ in sizes]
    shim._busy = [[] for _ in sizes]
    # _run's budget message appends "+bound" to the dfg name; the bound
    # graph here is already named "...+bound"-style, so strip nothing —
    # message fidelity only matters for the SchedContext path.
    shim.dfg = _NameShim(graph.name)

    if custom_keys is not None:
        keys = custom_keys
    else:
        keys = SchedContext._priority_keys(shim, total, btopo, bsucc, lat)
    budget = 2 * shim._sum_lat + 64
    starts, units, latency = SchedContext._run(
        shim, total, lat, dii, pool, bsucc, indeg, keys, budget
    )
    start = {n: starts[i] for i, n in enumerate(names)}
    instance = {
        n: (clusters[i], futypes[i], units[i]) for i, n in enumerate(names)
    }
    return Schedule(
        bound=bound,
        datapath=datapath,
        start=start,
        instance=instance,
        latency=latency,
    )


class _NameShim:
    """Carries a graph name for _run's error message without the graph."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        # _run appends "+bound"; the graph passed to fast_list_schedule
        # is already the bound one, so present the base name.
        self.name = name[: -len("+bound")] if name.endswith("+bound") else name
