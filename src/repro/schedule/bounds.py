"""Lower bounds on schedule latency.

Used in three places:

* the driver sizes its ``L_PR`` stretch range from the resource bound
  (Section 3.1.3 — stretching matters exactly when resources, not
  dependences, dictate the schedule);
* the branch-and-bound binder prunes with these bounds;
* the analysis layer reports optimality gaps (``L / max(bounds)``)
  without needing an exact solve.

All bounds are valid for *any* binding on the given datapath, so
``L >= latency_lower_bound(dfg, dp)`` holds for every schedule this
library can produce.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping

from ..datapath.model import Datapath
from ..dfg.graph import Dfg
from ..dfg.ops import FuType
from ..dfg.timing import critical_path_length

__all__ = ["LatencyBounds", "latency_bounds", "latency_lower_bound"]


@dataclass(frozen=True)
class LatencyBounds:
    """The individual lower bounds and their maximum.

    Attributes:
        critical_path: ``L_CP`` — the dependence bound.
        resource: per-FU-type work bound, max over types of
            ``ceil(total dii-work of type t / N(t))``.
        per_type: the resource bound per FU type (for diagnosis).
        combined: ``max(critical_path, resource)``.
    """

    critical_path: int
    resource: int
    per_type: Mapping[FuType, int]
    combined: int


def latency_bounds(dfg: Dfg, datapath: Datapath) -> LatencyBounds:
    """Compute all latency lower bounds for ``dfg`` on ``datapath``.

    The resource bound assumes perfect load balance across all clusters
    (the best any binding could do), so it never excludes a feasible
    schedule.
    """
    reg = datapath.registry
    lcp = critical_path_length(dfg, reg)

    work: Dict[FuType, int] = {}
    for op in dfg.regular_operations():
        futype = reg.futype(op.optype)
        work[futype] = work.get(futype, 0) + reg.dii(op.optype)

    per_type: Dict[FuType, int] = {}
    for futype, total in work.items():
        units = datapath.total_fu_count(futype)
        if units <= 0:
            raise ValueError(
                f"datapath {datapath.spec()} has no {futype} units but the "
                "DFG needs them"
            )
        per_type[futype] = math.ceil(total / units)

    resource = max(per_type.values(), default=0)
    return LatencyBounds(
        critical_path=lcp,
        resource=resource,
        per_type=per_type,
        combined=max(lcp, resource),
    )


def latency_lower_bound(dfg: Dfg, datapath: Datapath) -> int:
    """``max(L_CP, resource bound)`` — the strongest cheap bound."""
    return latency_bounds(dfg, datapath).combined
