"""Resource-constrained list scheduling of bound DFGs."""

from .bounds import LatencyBounds, latency_bounds, latency_lower_bound
from .fastpath import FastOutcome, SchedContext, fast_list_schedule, fastpath_enabled
from .gantt import render_gantt
from .list_scheduler import ResourcePool, list_schedule
from .priorities import alap_priority, asap_priority
from .schedule import Schedule, ScheduleError, validate_schedule
from .svg import render_svg, save_svg

__all__ = [
    "Schedule",
    "ScheduleError",
    "validate_schedule",
    "list_schedule",
    "fast_list_schedule",
    "fastpath_enabled",
    "SchedContext",
    "FastOutcome",
    "ResourcePool",
    "alap_priority",
    "asap_priority",
    "render_gantt",
    "LatencyBounds",
    "latency_bounds",
    "latency_lower_bound",
    "render_svg",
    "save_svg",
]
