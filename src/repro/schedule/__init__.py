"""Resource-constrained list scheduling of bound DFGs."""

from .bounds import LatencyBounds, latency_bounds, latency_lower_bound
from .fastpath import FastOutcome, SchedContext, fast_list_schedule, fastpath_enabled
from .gantt import render_gantt
from .list_scheduler import ResourcePool, list_schedule
from .priorities import alap_priority, asap_priority
from .schedule import Schedule, ScheduleError, validate_schedule
from .svg import render_svg, save_svg
from .vectorpath import (
    VectorContext,
    VectorUnsupported,
    vector_batch_threshold,
    vector_context_for,
    vectorpath_enabled,
)

__all__ = [
    "Schedule",
    "ScheduleError",
    "validate_schedule",
    "list_schedule",
    "fast_list_schedule",
    "fastpath_enabled",
    "SchedContext",
    "FastOutcome",
    "VectorContext",
    "VectorUnsupported",
    "vectorpath_enabled",
    "vector_batch_threshold",
    "vector_context_for",
    "ResourcePool",
    "alap_priority",
    "asap_priority",
    "render_gantt",
    "LatencyBounds",
    "latency_bounds",
    "latency_lower_bound",
    "render_svg",
    "save_svg",
]
