"""ASCII Gantt-chart rendering of schedules.

Produces a per-resource timeline like::

    cycle        0    1    2    3
    c0.ALU.0     v1   v4   .    v9
    c0.MUL.0     v2   v2   .    .
    bus.0        .    t.v2.c1  .

Useful for debugging bindings and for the example scripts; the format is
purely informational and carries no API guarantees.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..dfg.ops import BUS, FuType
from .schedule import Schedule

__all__ = ["render_gantt"]


def render_gantt(schedule: Schedule, max_name_len: int = 12) -> str:
    """Render ``schedule`` as an ASCII table (rows = resource instances)."""
    reg = schedule.datapath.registry
    graph = schedule.bound.graph

    rows: Dict[Tuple[int, FuType, int], List[str]] = {}
    latency = max(schedule.latency, 1)
    for c in schedule.datapath.clusters:
        for futype, count in sorted(c.fu_counts.items(), key=lambda kv: kv[0].name):
            for unit in range(count):
                rows[(c.index, futype, unit)] = ["."] * latency
    interconnect = schedule.datapath.interconnect
    links = interconnect.links
    if links:
        for link in links:
            for unit in range(link.capacity):
                rows[(-(link.index + 1), BUS, unit)] = ["."] * latency
    else:  # single-cluster routed machine: no links, no transfers
        for b in range(schedule.datapath.num_buses):
            rows[(-1, BUS, b)] = ["."] * latency

    for name in graph:
        s = schedule.start[name]
        lat = reg.latency(graph.operation(name).optype)
        key = schedule.instance[name]
        label = name if len(name) <= max_name_len else name[: max_name_len - 1] + "~"
        for cycle in range(s, s + lat):
            rows[key][cycle] = label

    col_width = max(
        [5] + [len(cell) for cells in rows.values() for cell in cells]
    ) + 1

    def row_label(key: Tuple[int, FuType, int]) -> str:
        cluster, futype, unit = key
        if futype == BUS:
            link = -cluster - 1
            if links and links[link].name != "bus":
                return f"{links[link].name}.{unit}"
            return f"bus.{unit}"
        return f"c{cluster}.{futype.name}.{unit}"

    label_width = max(len(row_label(k)) for k in rows) + 2
    lines = [
        "cycle".ljust(label_width)
        + "".join(str(t).ljust(col_width) for t in range(latency))
    ]
    for key in rows:
        lines.append(
            row_label(key).ljust(label_width)
            + "".join(cell.ljust(col_width) for cell in rows[key])
        )
    lines.append(f"L = {schedule.latency}, M = {schedule.num_transfers}")
    return "\n".join(lines)
