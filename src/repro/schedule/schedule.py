"""Schedule representation and validity checking.

A :class:`Schedule` assigns a start cycle and a concrete resource instance
to every operation of a bound DFG.  The *schedule latency* ``L`` — the
paper's primary figure of merit — is the number of clock cycles needed to
complete every operation, i.e. ``max(start(v) + lat(v))`` with 0-based
start cycles.

:func:`validate_schedule` re-checks a schedule from first principles
(precedence, target sets, FU counts, bus width, ``dii`` issue spacing); it
is used by the test suite and by the property-based tests to certify every
scheduler output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from ..datapath.model import Datapath
from ..dfg.ops import BUS, FuType
from ..dfg.transform import BoundDfg

__all__ = ["Schedule", "ScheduleError", "validate_schedule"]


class ScheduleError(ValueError):
    """Raised when a schedule violates precedence or resource limits."""


@dataclass(frozen=True)
class Schedule:
    """A complete schedule of a bound DFG on a datapath.

    Attributes:
        bound: the bound DFG that was scheduled.
        datapath: the machine it was scheduled on.
        start: 0-based start cycle per operation name.
        instance: resource instance per operation: ``(cluster, futype,
            unit_index)``; a transfer on interconnect link ``l`` uses
            ``(-(l+1), BUS, slot)`` — the bus is link 0, so bus
            machines keep the historical ``(-1, BUS, bus_index)``.
        latency: ``L`` — completion time of the whole block.
    """

    bound: BoundDfg
    datapath: Datapath
    start: Mapping[str, int]
    instance: Mapping[str, Tuple[int, FuType, int]]
    latency: int

    @property
    def num_transfers(self) -> int:
        """``M``: number of data-transfer operations."""
        return self.bound.num_transfers

    def finish(self, name: str) -> int:
        """First cycle at which ``name``'s result is available."""
        op = self.bound.graph.operation(name)
        return self.start[name] + self.datapath.registry.latency(op.optype)

    def completion_profile(self) -> List[int]:
        """``U_i`` counts: regular operations completing at step ``L - i``.

        Element ``i`` of the returned list is the number of *regular*
        (non-transfer) operations whose completion cycle equals ``L - i``
        (the paper's Figure 6 quantity, used by the ``Q_U`` vector).  The
        list has ``L`` entries, covering completion cycles ``L`` down to 1.
        """
        counts = [0] * self.latency
        for op in self.bound.graph.regular_operations():
            i = self.latency - self.finish(op.name)
            counts[i] += 1
        return counts

    def ops_at_cycle(self, cycle: int) -> Tuple[str, ...]:
        """Operations whose execution occupies ``cycle`` (0-based)."""
        reg = self.datapath.registry
        out = []
        for name, s in self.start.items():
            lat = reg.latency(self.bound.graph.operation(name).optype)
            if s <= cycle < s + lat:
                out.append(name)
        return tuple(out)

    def __repr__(self) -> str:
        return (
            f"Schedule(L={self.latency}, M={self.num_transfers}, "
            f"ops={len(self.start)}, datapath={self.datapath.spec()})"
        )


def validate_schedule(schedule: Schedule) -> None:
    """Re-verify a schedule from first principles.

    Checks, in order:

    1. every operation of the bound DFG is scheduled exactly once;
    2. precedence: no consumer starts before each producer finishes;
    3. placement: every regular operation runs on an FU instance of its
       cluster/FU type; every transfer runs on the bus;
    4. resource capacity and ``dii``: two operations on the same resource
       instance are issued at least ``dii`` cycles apart;
    5. the recorded latency matches the max completion time.

    Raises:
        ScheduleError: on the first violated property.
    """
    bound, dp = schedule.bound, schedule.datapath
    reg = dp.registry
    graph = bound.graph

    scheduled = set(schedule.start)
    all_ops = set(graph)
    if scheduled != all_ops:
        missing = sorted(all_ops - scheduled)[:5]
        extra = sorted(scheduled - all_ops)[:5]
        raise ScheduleError(f"missing={missing} extra={extra}")

    for u, v in graph.edges():
        u_lat = reg.latency(graph.operation(u).optype)
        if schedule.start[v] < schedule.start[u] + u_lat:
            raise ScheduleError(
                f"precedence violated: {v!r} starts at {schedule.start[v]} "
                f"but {u!r} finishes at {schedule.start[u] + u_lat}"
            )

    per_instance: Dict[Tuple[int, FuType, int], List[Tuple[int, str]]] = {}
    for name in graph:
        op = graph.operation(name)
        cluster, futype, unit = schedule.instance[name]
        expected_futype = reg.futype(op.optype)
        if futype != expected_futype:
            raise ScheduleError(
                f"{name!r} assigned to {futype} unit, needs {expected_futype}"
            )
        if op.is_transfer:
            if futype != BUS:
                raise ScheduleError(f"transfer {name!r} not on the bus")
            link = -cluster - 1
            links = dp.interconnect.links
            if not 0 <= link < len(links):
                raise ScheduleError(
                    f"transfer {name!r} on link {link}, datapath has "
                    f"{len(links)} links"
                )
            expected_link = bound.transfer_links.get(name, 0)
            if link != expected_link:
                raise ScheduleError(
                    f"transfer {name!r} on link {link}, routed over "
                    f"link {expected_link}"
                )
            if not 0 <= unit < links[link].capacity:
                raise ScheduleError(
                    f"transfer {name!r} on bus slot {unit} of link "
                    f"{links[link].name}, capacity={links[link].capacity}"
                )
        else:
            placed = bound.placement[name]
            if cluster != placed:
                raise ScheduleError(
                    f"{name!r} runs in cluster {cluster}, bound to {placed}"
                )
            if not 0 <= unit < dp.fu_count(cluster, futype):
                raise ScheduleError(
                    f"{name!r} on unit {unit}, cluster {cluster} has "
                    f"{dp.fu_count(cluster, futype)} {futype} units"
                )
        per_instance.setdefault((cluster, futype, unit), []).append(
            (schedule.start[name], name)
        )

    for key, issues in per_instance.items():
        issues.sort()
        for (s1, n1), (s2, n2) in zip(issues, issues[1:]):
            dii = reg.dii(graph.operation(n1).optype)
            if s2 - s1 < dii:
                raise ScheduleError(
                    f"resource {key} issues {n1!r}@{s1} and {n2!r}@{s2}: "
                    f"violates dii={dii}"
                )

    real_latency = max(
        (schedule.start[n] + reg.latency(graph.operation(n).optype) for n in graph),
        default=0,
    )
    if real_latency != schedule.latency:
        raise ScheduleError(
            f"recorded latency {schedule.latency} != actual {real_latency}"
        )
