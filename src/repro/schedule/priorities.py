"""Priority functions for list scheduling.

The list scheduler picks among ready operations by a static priority.  We
use the same lexicographic ranking the binding phase uses for its
traversal order (paper Section 3.1.1): ALAP level first (urgent operations
first), then mobility, then consumer count — computed on the *bound* DFG,
since that is the graph actually being scheduled.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

from ..dfg.graph import Dfg
from ..dfg.ops import OpTypeRegistry
from ..dfg.timing import compute_timing

__all__ = ["PriorityKey", "alap_priority", "asap_priority"]

#: Sort key per operation name; smaller keys schedule first.
PriorityKey = Mapping[str, Tuple[int, ...]]


def alap_priority(dfg: Dfg, registry: OpTypeRegistry) -> PriorityKey:
    """ALAP-driven priority: (alap, mobility, -consumers, insertion index).

    Operations with the earliest deadline go first; within a deadline the
    least mobile go first; then those whose result feeds more consumers.
    The insertion index makes the ordering total and deterministic.
    """
    timing = compute_timing(dfg, registry)
    keys: Dict[str, Tuple[int, ...]] = {}
    for idx, name in enumerate(dfg):
        keys[name] = (
            timing.alap[name],
            timing.mobility(name),
            -dfg.out_degree(name),
            idx,
        )
    return keys


def asap_priority(dfg: Dfg, registry: OpTypeRegistry) -> PriorityKey:
    """ASAP-driven priority, used by the reversed-order experiments."""
    timing = compute_timing(dfg, registry)
    keys: Dict[str, Tuple[int, ...]] = {}
    for idx, name in enumerate(dfg):
        keys[name] = (
            -timing.asap[name],
            timing.mobility(name),
            -dfg.in_degree(name),
            idx,
        )
    return keys
