"""SVG rendering of schedules (dependency-free).

A graphical companion to the ASCII Gantt chart: one row per resource
instance (FUs grouped and tinted per cluster, bus rows at the bottom),
one rectangle per operation spanning its latency, transfers hatched in
the bus rows.  The output is a standalone ``.svg`` viewable in any
browser — handy for inspecting bindings and for documentation.
"""

from __future__ import annotations

import html
from typing import List, Tuple

from ..dfg.ops import BUS, FuType
from .schedule import Schedule

__all__ = ["render_svg", "save_svg"]

_CLUSTER_FILLS = (
    "#aecbfa",
    "#b5e3c9",
    "#ffe2a8",
    "#f5b7b1",
    "#d7bde2",
    "#aef0e0",
)
_BUS_FILL = "#e6e6e6"
_CELL_W = 46
_CELL_H = 26
_LABEL_W = 110
_PAD = 10


def render_svg(schedule: Schedule, title: str = "") -> str:
    """Render ``schedule`` as SVG source."""
    dp = schedule.datapath
    reg = dp.registry
    graph = schedule.bound.graph

    rows: List[Tuple[str, Tuple[int, FuType, int], str]] = []
    for cluster in dp.clusters:
        fill = _CLUSTER_FILLS[cluster.index % len(_CLUSTER_FILLS)]
        for futype, count in sorted(
            cluster.fu_counts.items(), key=lambda kv: kv[0].name
        ):
            for unit in range(count):
                label = f"c{cluster.index}.{futype.name}.{unit}"
                rows.append((label, (cluster.index, futype, unit), fill))
    links = dp.interconnect.links
    if links:
        for link in links:
            prefix = link.name if link.name != "bus" else "bus"
            for unit in range(link.capacity):
                rows.append(
                    (
                        f"{prefix}.{unit}",
                        (-(link.index + 1), BUS, unit),
                        _BUS_FILL,
                    )
                )
    else:  # single-cluster routed machine: no links, no transfers
        for b in range(dp.num_buses):
            rows.append((f"bus.{b}", (-1, BUS, b), _BUS_FILL))

    row_index = {key: i for i, (_, key, _) in enumerate(rows)}
    latency = max(schedule.latency, 1)
    width = _LABEL_W + latency * _CELL_W + 2 * _PAD
    height = (len(rows) + 1) * _CELL_H + 2 * _PAD + (24 if title else 0)
    top = _PAD + (24 if title else 0)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="monospace" font-size="11">'
    ]
    if title:
        parts.append(
            f'<text x="{_PAD}" y="{_PAD + 12}" font-size="14">'
            f"{html.escape(title)}</text>"
        )

    # grid: cycle headers and row labels
    for t in range(latency):
        x = _LABEL_W + t * _CELL_W + _CELL_W // 2
        parts.append(
            f'<text x="{x}" y="{top + 14}" text-anchor="middle" '
            f'fill="#555">{t}</text>'
        )
    for i, (label, _, _) in enumerate(rows):
        y = top + (i + 1) * _CELL_H + 17
        parts.append(
            f'<text x="{_PAD}" y="{y}" fill="#333">{html.escape(label)}</text>'
        )
        line_y = top + (i + 1) * _CELL_H
        parts.append(
            f'<line x1="{_LABEL_W}" y1="{line_y}" '
            f'x2="{_LABEL_W + latency * _CELL_W}" y2="{line_y}" '
            f'stroke="#ddd"/>'
        )

    # operation rectangles
    for name in graph:
        op = graph.operation(name)
        start = schedule.start[name]
        span = reg.latency(op.optype)
        i = row_index[schedule.instance[name]]
        x = _LABEL_W + start * _CELL_W + 1
        y = top + (i + 1) * _CELL_H + 2
        w = span * _CELL_W - 2
        h = _CELL_H - 4
        fill = "#c8c8c8" if op.is_transfer else rows[i][2]
        parts.append(
            f'<rect x="{x}" y="{y}" width="{w}" height="{h}" rx="3" '
            f'fill="{fill}" stroke="#666"/>'
        )
        text = html.escape(name if len(name) <= 9 else name[:8] + "~")
        parts.append(
            f'<text x="{x + w / 2:.0f}" y="{y + h - 7}" '
            f'text-anchor="middle">{text}</text>'
        )

    footer_y = top + (len(rows) + 1) * _CELL_H - 6
    parts.append(
        f'<text x="{_LABEL_W}" y="{footer_y + _CELL_H}" fill="#333">'
        f"L = {schedule.latency}, M = {schedule.num_transfers}</text>"
    )
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def save_svg(schedule: Schedule, path, title: str = "") -> None:
    """Write :func:`render_svg` output to ``path``."""
    from pathlib import Path

    Path(path).write_text(render_svg(schedule, title=title))
