"""Resource-constrained list scheduler for bound DFGs.

The paper evaluates every binding by list scheduling the bound DFG
(Section 3.2: "we use a list scheduling algorithm for quality
estimation").  This module implements that scheduler:

* per-cluster, per-FU-type resource pools of ``N(c, t)`` units;
* one pool per interconnect link executing transfer operations — for
  the paper's shared bus that is a single pool of ``N_B`` slots;
* ``dii`` pipelining — a unit accepts a new operation every ``dii``
  cycles, independent of latency;
* cycle-by-cycle greedy issue of ready operations in priority order
  (ALAP / mobility / consumer count by default).

Because only resource contention and transfer insertion can delay an
operation beyond its unconstrained level, the resulting latency directly
reflects binding quality, which is the property the ``Q_U`` quality vector
relies on.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from ..datapath.model import Datapath
from ..dfg.ops import BUS, FuType
from ..dfg.transform import BoundDfg
from .priorities import PriorityKey, alap_priority
from .schedule import Schedule

__all__ = ["list_schedule", "ResourcePool"]


class ResourcePool:
    """A pool of identical resource instances with ``dii`` issue spacing.

    Each instance remembers when it can next *issue*; an instance that
    issued at cycle ``s`` becomes available again at ``s + dii``.  The
    pool hands out the lowest-numbered free instance, which keeps unit
    assignments deterministic and compact.
    """

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ValueError(f"pool size must be >= 0, got {size}")
        self.size = size
        self._next_issue: List[int] = [0] * size

    def available_at(self, cycle: int) -> Optional[int]:
        """Index of a free instance at ``cycle``, or None if all busy."""
        for i, t in enumerate(self._next_issue):
            if t <= cycle:
                return i
        return None

    def issue(self, cycle: int, dii: int) -> int:
        """Claim a free instance at ``cycle``; returns its index."""
        i = self.available_at(cycle)
        if i is None:
            raise RuntimeError(f"no free instance at cycle {cycle}")
        self._next_issue[i] = cycle + dii
        return i


def list_schedule(
    bound: BoundDfg,
    datapath: Datapath,
    priority: Optional[PriorityKey] = None,
) -> Schedule:
    """Schedule a bound DFG on a clustered datapath.

    Args:
        bound: the binding-rewritten DFG (see :func:`repro.dfg.bind_dfg`).
        datapath: the machine; FU counts, bus width, and the timing
            registry all come from here.
        priority: optional static priority (smaller = sooner).  Defaults
            to :func:`~repro.schedule.priorities.alap_priority` on the
            bound graph.

    Returns:
        A :class:`~repro.schedule.schedule.Schedule`; its ``latency`` is
        the paper's ``L`` and ``num_transfers`` the paper's ``M``.
    """
    graph = bound.graph
    reg = datapath.registry
    if priority is None:
        priority = alap_priority(graph, reg)

    # Resource pools: one per (cluster, futype) that has units, plus one
    # per interconnect link (the paper's single bus pool is the one-link
    # degenerate case).
    pools: Dict[Tuple[int, FuType], ResourcePool] = {}
    for c in datapath.clusters:
        for futype, count in c.fu_counts.items():
            if count > 0:
                pools[(c.index, futype)] = ResourcePool(count)
    interconnect = datapath.interconnect
    link_pools = [
        ResourcePool(link.capacity) for link in interconnect.links
    ] or [ResourcePool(datapath.num_buses)]
    transfer_links = bound.transfer_links
    if not transfer_links and interconnect.num_links > 1:
        if any(op.is_transfer for op in bound.graph.operations()):
            raise RuntimeError(
                f"bound DFG {bound.graph.name!r} carries no link "
                f"assignments but datapath {datapath.name!r} has "
                f"{interconnect.num_links} links; bind with "
                "bind_dfg(..., interconnect=datapath.interconnect)"
            )

    start: Dict[str, int] = {}
    instance: Dict[str, Tuple[int, FuType, int]] = {}

    # ready_heap holds (priority, name) of operations whose predecessors
    # have all completed; earliest_start tracks when data is available.
    remaining_preds = {n: graph.in_degree(n) for n in graph}
    earliest_start = {n: 0 for n in graph}
    # Events: operations become ready at their data-ready cycle.
    ready_at: Dict[int, List[str]] = {}
    for n in graph:
        if remaining_preds[n] == 0:
            ready_at.setdefault(0, []).append(n)

    ready_heap: List[Tuple[Tuple[int, ...], str]] = []
    unscheduled = len(graph)
    cycle = 0
    max_cycles = _cycle_budget(bound, datapath)
    while unscheduled > 0:
        if cycle > max_cycles:
            raise RuntimeError(
                f"list scheduler exceeded cycle budget {max_cycles} on "
                f"{graph.name!r}; resource model is likely infeasible"
            )
        for n in ready_at.pop(cycle, ()):
            heapq.heappush(ready_heap, (priority[n], n))

        deferred: List[Tuple[Tuple[int, ...], str]] = []
        while ready_heap:
            prio, n = heapq.heappop(ready_heap)
            op = graph.operation(n)
            if op.is_transfer:
                link = transfer_links.get(n, 0)
                pool = link_pools[link]
                # Transfers encode their link in the instance cluster
                # slot as ``-(link+1)`` — link 0 is the historical -1.
                cluster = -(link + 1)
                futype = BUS
            else:
                cluster = bound.placement[n]
                futype = reg.futype(op.optype)
                pool = pools.get((cluster, futype))
                if pool is None:
                    raise RuntimeError(
                        f"{n!r} bound to cluster {cluster} with no "
                        f"{futype} units"
                    )
            unit = pool.available_at(cycle)
            if unit is None:
                deferred.append((prio, n))
                continue
            pool.issue(cycle, reg.dii(op.optype))
            start[n] = cycle
            instance[n] = (cluster, futype, unit)
            unscheduled -= 1
            finish = cycle + reg.latency(op.optype)
            for s in graph.successors(n):
                remaining_preds[s] -= 1
                earliest_start[s] = max(earliest_start[s], finish)
                if remaining_preds[s] == 0:
                    ready_at.setdefault(earliest_start[s], []).append(s)
        for item in deferred:
            heapq.heappush(ready_heap, item)
        cycle += 1

    latency = max(
        (start[n] + reg.latency(graph.operation(n).optype) for n in graph),
        default=0,
    )
    return Schedule(
        bound=bound,
        datapath=datapath,
        start=start,
        instance=instance,
        latency=latency,
    )


def _cycle_budget(bound: BoundDfg, datapath: Datapath) -> int:
    """Upper bound on schedule length: serialize everything, plus slack."""
    reg = datapath.registry
    total = sum(
        reg.latency(bound.graph.operation(n).optype) for n in bound.graph
    )
    return 2 * total + 64
