"""Symbolic VLIW code emission from schedules.

Turns a schedule into the instruction stream a clustered VLIW core
would execute: one instruction word per cycle, one slot per functional
unit and bus, each slot holding either a ``nop`` or an operation with
symbolic register operands.  Virtual registers are allocated per
cluster (`c<k>.r<n>`), consistent with the paper's unbounded-register-
file abstraction; transfers read a remote register and write a local
one.

This is the tail end of the flow the paper's binder feeds in a real
compiler; it is also a readable way to inspect what a binding does::

    from repro.codegen import emit_vliw
    print(emit_vliw(result.schedule).assembly())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..dfg.ops import BUS, FuType
from ..schedule.schedule import Schedule

__all__ = ["Slot", "InstructionWord", "VliwProgram", "emit_vliw"]


@dataclass(frozen=True)
class Slot:
    """One issue slot of one instruction word.

    Attributes:
        resource: label of the unit (``c0.ALU.0`` or ``bus.1``).
        opcode: operation mnemonic or ``nop``.
        dest: destination register, if any.
        sources: source registers (cross-cluster for transfers).
        comment: the DFG operation name, for traceability.
    """

    resource: str
    opcode: str = "nop"
    dest: Optional[str] = None
    sources: Tuple[str, ...] = ()
    comment: str = ""

    def render(self) -> str:
        if self.opcode == "nop":
            return f"{self.resource}: nop"
        srcs = ", ".join(self.sources)
        arrow = f" -> {self.dest}" if self.dest else ""
        note = f"    ; {self.comment}" if self.comment else ""
        return f"{self.resource}: {self.opcode} {srcs}{arrow}{note}"


@dataclass(frozen=True)
class InstructionWord:
    """All slots issued in one cycle."""

    cycle: int
    slots: Tuple[Slot, ...]

    def render(self) -> str:
        lines = [f"[{self.cycle:3d}]"]
        lines += [f"  {slot.render()}" for slot in self.slots]
        return "\n".join(lines)


@dataclass(frozen=True)
class VliwProgram:
    """The emitted program plus its register assignment."""

    words: Tuple[InstructionWord, ...]
    registers: Mapping[str, str]  # DFG value name -> register
    num_registers_per_cluster: Mapping[int, int]

    def assembly(self) -> str:
        """Full textual listing."""
        header = "; " + ", ".join(
            f"cluster {c}: {n} regs"
            for c, n in sorted(self.num_registers_per_cluster.items())
        )
        return "\n".join([header] + [w.render() for w in self.words]) + "\n"

    @property
    def num_cycles(self) -> int:
        return len(self.words)

    def utilization(self) -> float:
        """Fraction of non-nop slots (a common VLIW quality metric)."""
        total = sum(len(w.slots) for w in self.words)
        busy = sum(
            1 for w in self.words for s in w.slots if s.opcode != "nop"
        )
        return busy / total if total else 0.0


def _resource_label(cluster: int, futype: FuType, unit: int) -> str:
    if futype == BUS:
        link = -cluster - 1
        if link > 0:
            return f"link{link}.{unit}"
        return f"bus.{unit}"
    return f"c{cluster}.{futype.name}.{unit}"


def emit_vliw(schedule: Schedule) -> VliwProgram:
    """Emit the VLIW instruction stream for ``schedule``.

    Registers are virtual and per-cluster; each produced value gets a
    fresh register in the cluster where it materializes (its producing
    cluster for regular operations, the destination cluster for
    transfers).  Live-in operands render as ``c<k>.in<j>``.
    """
    graph = schedule.bound.graph
    dp = schedule.datapath
    reg = dp.registry

    # Register allocation: sequential per cluster, in issue order.
    counters: Dict[int, int] = {}
    registers: Dict[str, str] = {}
    livein_counters: Dict[int, int] = {}
    by_start = sorted(graph, key=lambda n: (schedule.start[n], n))
    for name in by_start:
        cluster = schedule.bound.placement[name]
        index = counters.get(cluster, 0)
        counters[cluster] = index + 1
        registers[name] = f"c{cluster}.r{index}"

    def source_regs(name: str) -> Tuple[str, ...]:
        cluster = schedule.bound.placement[name]
        preds = graph.predecessors(name)
        if preds:
            return tuple(registers[p] for p in preds)
        # operands are live-ins: synthesize stable placeholder names
        index = livein_counters.get(cluster, 0)
        livein_counters[cluster] = index + 1
        return (f"c{cluster}.in{index}",)

    # Fixed slot layout per cycle: every FU and bus slot, in order.
    layout: List[Tuple[int, FuType, int]] = []
    for cluster in dp.clusters:
        for futype, count in sorted(
            cluster.fu_counts.items(), key=lambda kv: kv[0].name
        ):
            for unit in range(count):
                layout.append((cluster.index, futype, unit))
    links = dp.interconnect.links
    if links:
        for link in links:
            for unit in range(link.capacity):
                layout.append((-(link.index + 1), BUS, unit))
    else:  # single-cluster routed machine: no links, no transfers
        for b in range(dp.num_buses):
            layout.append((-1, BUS, b))

    issue_map: Dict[Tuple[int, Tuple[int, FuType, int]], Slot] = {}
    for name in graph:
        op = graph.operation(name)
        cycle = schedule.start[name]
        key = schedule.instance[name]
        if op.is_transfer:
            # A routed chain's leg reads the upstream leg's register;
            # on the bus the upstream IS the producer.
            upstream = schedule.bound.transfer_sources[name][0]
            slot = Slot(
                resource=_resource_label(*key),
                opcode="move",
                dest=registers[name],
                sources=(registers[upstream],),
                comment=name,
            )
        else:
            slot = Slot(
                resource=_resource_label(*key),
                opcode=op.optype.name,
                dest=registers[name],
                sources=source_regs(name),
                comment=name,
            )
        issue_map[(cycle, key)] = slot

    words: List[InstructionWord] = []
    for cycle in range(schedule.latency):
        slots = tuple(
            issue_map.get(
                (cycle, key), Slot(resource=_resource_label(*key))
            )
            for key in layout
        )
        words.append(InstructionWord(cycle=cycle, slots=slots))

    return VliwProgram(
        words=tuple(words),
        registers=registers,
        num_registers_per_cluster=dict(counters),
    )
