"""Symbolic VLIW code emission from schedules."""

from .vliw import InstructionWord, Slot, VliwProgram, emit_vliw

__all__ = ["emit_vliw", "VliwProgram", "InstructionWord", "Slot"]
