"""Command-line interface: ``repro-bind`` / ``python -m repro``.

Subcommands:

* ``bind`` — bind a kernel (or a DFG JSON file) to a datapath with any
  registered strategy and print the resulting latency, transfer count,
  and optionally a Gantt chart or DOT dump;
* ``run`` — run one registered strategy as an experiment job through
  the runner (caching, run store, budgets, search telemetry);
* ``strategies`` — list every registered strategy and its config schema;
* ``topologies`` — list the interconnect topology presets and their
  datapath-spec suffixes (see docs/TOPOLOGY.md);
* ``kernels`` — list the built-in kernels and their characteristics;
* ``table1`` / ``table2`` — regenerate the paper's tables (optionally
  exporting CSV/JSON/Markdown via ``--out``);
* ``pressure`` — per-cluster register-pressure report for a binding;
  with ``--budget R`` it also runs the pressure-aware ``Q_P`` descent
  and reports the before/after pressure plus evaluation-memo counters;
* ``dse`` — design-space exploration: Pareto-optimal datapaths for a
  set of kernels under an FU budget;
* ``serve`` — run the binding service (async job queue + warm worker
  pool behind a stdlib HTTP JSON API; see :mod:`repro.service`);
* ``submit`` — send one binding job to a running service (same flags,
  same registry validation, and the same content-hash cache key as
  ``run``);
* ``watch`` — stream a submitted job's lifecycle events.

The algorithm layer is declarative: ``bind -a``, ``run``, and
``submit`` accept any name from the strategy registry
(:mod:`repro.search.registry`), so a newly registered strategy is
immediately drivable from here with no CLI change.  Invalid strategy
names and config-schema violations exit with a one-line error (the
registry's message, listing the known names), never a traceback.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .analysis.experiments import run_table1, run_table2
from .analysis.tables import render_table1, render_table2
from .datapath.parse import parse_datapath
from .dfg.dot import to_dot
from .dfg.serialize import load_dfg
from .dfg.transform import bind_dfg
from .kernels.registry import KERNELS, kernel_summary, load_kernel
from .schedule.gantt import render_gantt
from .search.registry import get_strategy, iter_strategies, strategy_names

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-bind",
        description=(
            "Operation binding for clustered VLIW datapaths "
            "(DAC 2001 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_bind = sub.add_parser("bind", help="bind a kernel to a datapath")
    p_bind.add_argument(
        "kernel",
        help="kernel name (see 'kernels') or a path to a DFG JSON file",
    )
    p_bind.add_argument(
        "--datapath",
        "-d",
        default="|1,1|1,1|",
        help="cluster spec, e.g. '|2,1|1,1|' (default: %(default)s)",
    )
    p_bind.add_argument("--buses", type=int, default=2, help="N_B (default 2)")
    p_bind.add_argument(
        "--move-latency", type=int, default=1, help="lat(move) (default 1)"
    )
    p_bind.add_argument(
        "--algorithm",
        "-a",
        choices=strategy_names(),
        default="b-iter",
        metavar="STRATEGY",
        help="binding strategy (any registered name; see 'strategies'; "
        "default: %(default)s)",
    )
    p_bind.add_argument(
        "--quality",
        metavar="SPEC",
        help="quality spec for descent-based strategies "
        "(qu+qm | qu | qm | qp:<B>, '+'-joined)",
    )
    p_bind.add_argument(
        "--gantt", action="store_true", help="print the schedule Gantt chart"
    )
    p_bind.add_argument(
        "--asm", action="store_true", help="print the VLIW instruction stream"
    )
    p_bind.add_argument(
        "--dot", metavar="FILE", help="write the bound DFG as Graphviz DOT"
    )
    p_bind.add_argument(
        "--svg", metavar="FILE", help="write the schedule as an SVG chart"
    )

    p_run = sub.add_parser(
        "run",
        help="run one registered strategy as an experiment job "
        "(caching, run store, budgets, telemetry)",
    )
    # No argparse choices= here: the registry itself validates the name
    # (via BindJob.make) and its error message lists every known
    # strategy, hidden debug ones included — argparse would reject
    # those before the registry could accept them.
    p_run.add_argument(
        "strategy",
        metavar="STRATEGY",
        help="registered strategy name (see 'strategies')",
    )
    p_run.add_argument(
        "kernel", help="kernel name (see 'kernels') or a DFG JSON path"
    )
    p_run.add_argument(
        "--datapath",
        "-d",
        default="|1,1|1,1|",
        help="cluster spec (default: %(default)s)",
    )
    p_run.add_argument("--buses", type=int, default=2, help="N_B (default 2)")
    p_run.add_argument(
        "--move-latency", type=int, default=1, help="lat(move) (default 1)"
    )
    p_run.add_argument(
        "--quality",
        metavar="SPEC",
        help="quality spec (strategies with a 'quality' config key)",
    )
    p_run.add_argument(
        "--seed",
        type=int,
        metavar="N",
        help="RNG seed (stochastic strategies)",
    )
    p_run.add_argument(
        "--set",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        dest="config",
        help="extra strategy config (JSON-typed value; repeatable), "
        "validated against the strategy's schema",
    )
    _add_runner_args(p_run)
    _add_budget_args(p_run)

    p_strategies = sub.add_parser(
        "strategies", help="list registered binding strategies"
    )
    p_strategies.add_argument(
        "--verbose",
        "-v",
        action="store_true",
        help="include each strategy's config schema",
    )
    p_strategies.add_argument(
        "--all",
        action="store_true",
        help="include hidden debug strategies",
    )
    p_strategies.add_argument(
        "--json",
        action="store_true",
        help="machine-readable dump: names, descriptions, and typed "
        "config schemas as JSON",
    )

    p_topologies = sub.add_parser(
        "topologies", help="list interconnect topology presets"
    )
    p_topologies.add_argument(
        "--verbose",
        "-v",
        action="store_true",
        help="include link structure on an example 4-cluster machine",
    )
    p_topologies.add_argument(
        "--json",
        action="store_true",
        help="machine-readable dump: names, spec suffixes, descriptions, "
        "and example link structure as JSON",
    )

    p_kernels = sub.add_parser("kernels", help="list built-in kernels")
    p_kernels.add_argument(
        "--verbose",
        "-v",
        action="store_true",
        help="include structural statistics (inputs, outputs, width)",
    )

    p_t1 = sub.add_parser("table1", help="regenerate the paper's Table 1")
    p_t1.add_argument(
        "--kernel", action="append", help="restrict to specific kernel(s)"
    )
    p_t1.add_argument(
        "--no-iter", action="store_true", help="skip the B-ITER column"
    )
    p_t1.add_argument(
        "--out", metavar="FILE", help="also export rows (.csv/.json/.md)"
    )
    p_t1.add_argument(
        "--quality",
        metavar="SPEC",
        help="quality spec for the B-ITER column (default qu+qm; "
        "qu / qm give the A4/A5 ablations, qu+qm+qp:<B> adds Q_P)",
    )
    _add_runner_args(p_t1)
    _add_budget_args(p_t1)

    p_t2 = sub.add_parser("table2", help="regenerate the paper's Table 2")
    p_t2.add_argument(
        "--no-iter", action="store_true", help="skip the B-ITER column"
    )
    p_t2.add_argument(
        "--out", metavar="FILE", help="also export rows (.csv/.json/.md)"
    )
    p_t2.add_argument(
        "--quality",
        metavar="SPEC",
        help="quality spec for the B-ITER column (default qu+qm)",
    )
    _add_runner_args(p_t2)
    _add_budget_args(p_t2)

    p_pr = sub.add_parser(
        "pressure", help="register-pressure report for a bound kernel"
    )
    p_pr.add_argument("kernel", help="kernel name or DFG JSON path")
    p_pr.add_argument("--datapath", "-d", default="|2,1|2,1|1,1|")
    p_pr.add_argument("--buses", type=int, default=2)
    p_pr.add_argument(
        "--budget",
        type=int,
        metavar="R",
        help="per-cluster register budget: run the pressure-aware Q_P "
        "pass after B-ITER and report both bindings",
    )

    p_dse = sub.add_parser(
        "dse", help="explore clustered datapaths for a kernel set"
    )
    p_dse.add_argument("kernels", nargs="+", help="kernel names")
    p_dse.add_argument("--max-clusters", type=int, default=3)
    p_dse.add_argument("--max-fus", type=int, default=10)
    p_dse.add_argument("--buses", type=int, default=2)
    _add_runner_args(p_dse)

    p_race = sub.add_parser(
        "race",
        help="race strategies under one shared budget "
        "(successive halving on one evaluation memo)",
    )
    p_race.add_argument(
        "kernel", help="kernel name (see 'kernels') or a DFG JSON path"
    )
    p_race.add_argument(
        "--datapath",
        "-d",
        default="|1,1|1,1|",
        help="cluster spec (default: %(default)s)",
    )
    p_race.add_argument("--buses", type=int, default=2, help="N_B (default 2)")
    p_race.add_argument(
        "--move-latency", type=int, default=1, help="lat(move) (default 1)"
    )
    p_race.add_argument(
        "--racers",
        "-r",
        required=True,
        metavar="LIST",
        help="comma-separated strategy names, or a JSON array of "
        '{"name": ..., "config": {...}} objects',
    )
    p_race.add_argument(
        "--budget",
        type=_positive_int,
        metavar="N",
        help="total evaluation budget shared by every racer "
        "(default: 2000)",
    )
    p_race.add_argument(
        "--deadline",
        type=float,
        metavar="S",
        help="wall-clock budget for the whole race, in seconds",
    )
    p_race.add_argument(
        "--eta",
        type=int,
        default=2,
        metavar="K",
        help="halving factor between rungs (default: %(default)s)",
    )
    p_race.add_argument(
        "--rung-evals",
        type=_positive_int,
        metavar="N",
        help="per-racer allotment of the first rung (default: split "
        "the budget evenly across rungs)",
    )
    p_race.add_argument(
        "--seed", type=int, metavar="N", help="RNG seed for the racers"
    )
    p_race.add_argument(
        "--dry-run",
        action="store_true",
        help="print the racer list and rung plan without running",
    )
    p_race.add_argument(
        "--json",
        action="store_true",
        help="machine-readable result: winner, per-racer evals, rung log",
    )

    p_sweep = sub.add_parser(
        "sweep",
        help="run a declarative sweep spec (repro.tune SweepSpec JSON)",
    )
    p_sweep.add_argument(
        "spec",
        metavar="SPEC",
        help="path to a SweepSpec JSON file, or '-' for stdin",
    )
    p_sweep.add_argument(
        "--dry-run",
        action="store_true",
        help="list the compiled jobs without running them",
    )
    p_sweep.add_argument(
        "--budget",
        type=_positive_int,
        metavar="N",
        help="inject max_evals=N into every variant whose strategy "
        "takes an evaluation budget",
    )
    p_sweep.add_argument(
        "--deadline",
        type=float,
        metavar="S",
        help="inject deadline=S into every variant whose strategy "
        "takes a wall-clock budget",
    )
    p_sweep.add_argument(
        "--baseline",
        metavar="LABEL",
        help="variant label to compute dL%% against (default: first)",
    )
    p_sweep.add_argument(
        "--out",
        metavar="FILE",
        help="also export the summarized rows as JSON",
    )
    _add_runner_args(p_sweep)

    p_serve = sub.add_parser(
        "serve",
        help="run the binding service (job queue + warm workers + "
        "HTTP JSON API)",
    )
    p_serve.add_argument(
        "--state-dir",
        default=".repro-service",
        metavar="DIR",
        help="service home: run store, result cache, eval cache "
        "(default: %(default)s)",
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: %(default)s)"
    )
    p_serve.add_argument(
        "--port",
        type=int,
        default=8731,
        help="bind port; 0 picks an ephemeral one (default: %(default)s)",
    )
    p_serve.add_argument(
        "--port-file",
        metavar="FILE",
        help="write the bound port here once listening (for scripts "
        "using --port 0)",
    )
    p_serve.add_argument(
        "--workers",
        type=_positive_int,
        default=2,
        metavar="N",
        help="warm worker processes (default: %(default)s)",
    )
    p_serve.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        metavar="N",
        help="queued-job bound before submits get 429 "
        "(<= 0 disables; default: %(default)s)",
    )
    p_serve.add_argument(
        "--breaker-threshold",
        type=int,
        default=3,
        metavar="N",
        help="failed attempts per job key before quarantine "
        "(<= 0 disables; default: %(default)s)",
    )
    p_serve.add_argument(
        "--max-attempts",
        type=_positive_int,
        default=2,
        metavar="N",
        help="attempt budget per submission (default: %(default)s)",
    )
    p_serve.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        metavar="S",
        help="default per-attempt wall-clock budget in seconds "
        "(default: %(default)s)",
    )
    p_serve.add_argument(
        "--target-delay",
        type=float,
        default=0.75,
        metavar="S",
        help="acceptable standing queue delay before overload "
        "shedding kicks in (default: %(default)s)",
    )
    p_serve.add_argument(
        "--overload-interval",
        type=float,
        default=2.0,
        metavar="S",
        help="how long queue delay must stay above --target-delay "
        "before shedding starts (default: %(default)s)",
    )
    p_serve.add_argument(
        "--client-rate",
        type=float,
        metavar="R",
        help="per-client submissions/second quota "
        "(default: no quotas)",
    )
    p_serve.add_argument(
        "--client-burst",
        type=float,
        default=10.0,
        metavar="N",
        help="per-client burst allowance (default: %(default)s)",
    )
    p_serve.add_argument(
        "--stall-timeout",
        type=float,
        default=30.0,
        metavar="S",
        help="watchdog: seconds a worker may run without heartbeat "
        "progress before SIGTERM (<= 0 disables; default: %(default)s)",
    )
    p_serve.add_argument(
        "--term-grace",
        type=float,
        default=2.0,
        metavar="S",
        help="watchdog: grace between SIGTERM and SIGKILL "
        "(default: %(default)s)",
    )

    p_submit = sub.add_parser(
        "submit",
        help="submit one binding job to a running service "
        "(same flags and validation as 'run')",
    )
    p_submit.add_argument(
        "strategy",
        metavar="STRATEGY",
        help="registered strategy name (see 'strategies')",
    )
    p_submit.add_argument(
        "kernel", help="kernel name (see 'kernels') or a DFG JSON path"
    )
    p_submit.add_argument(
        "--datapath",
        "-d",
        default="|1,1|1,1|",
        help="cluster spec (default: %(default)s)",
    )
    p_submit.add_argument("--buses", type=int, default=2, help="N_B (default 2)")
    p_submit.add_argument(
        "--move-latency", type=int, default=1, help="lat(move) (default 1)"
    )
    p_submit.add_argument(
        "--quality",
        metavar="SPEC",
        help="quality spec (strategies with a 'quality' config key)",
    )
    p_submit.add_argument(
        "--seed", type=int, metavar="N", help="RNG seed (stochastic strategies)"
    )
    p_submit.add_argument(
        "--set",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        dest="config",
        help="extra strategy config (JSON-typed value; repeatable)",
    )
    p_submit.add_argument(
        "--priority",
        type=int,
        default=0,
        metavar="N",
        help="queue priority; higher runs sooner (default: %(default)s)",
    )
    p_submit.add_argument(
        "--timeout",
        type=float,
        metavar="S",
        help="per-attempt wall-clock budget (default: the server's)",
    )
    p_submit.add_argument(
        "--deadline",
        type=float,
        metavar="S",
        help="end-to-end budget in seconds (queue wait included); the "
        "service returns the legal best-so-far binding found within it",
    )
    p_submit.add_argument(
        "--client",
        metavar="NAME",
        help="quota identity sent as X-Repro-Client "
        "(default: anonymous)",
    )
    p_submit.add_argument(
        "--retries",
        type=int,
        default=3,
        metavar="N",
        help="rounds of 429 Retry-After backoff to absorb before "
        "giving up (default: %(default)s)",
    )
    p_submit.add_argument(
        "--no-wait",
        action="store_true",
        help="print the job id and return instead of waiting for the "
        "result",
    )
    p_submit.add_argument(
        "--json",
        action="store_true",
        help="print the job snapshot as JSON",
    )
    _add_service_endpoint_args(p_submit)

    p_watch = sub.add_parser(
        "watch", help="stream a submitted job's lifecycle events"
    )
    p_watch.add_argument("job_id", metavar="JOB", help="job id from 'submit'")
    _add_service_endpoint_args(p_watch)
    return parser


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_runner_args(parser: argparse.ArgumentParser) -> None:
    """Experiment-engine flags shared by the sweep subcommands."""
    parser.add_argument(
        "--jobs",
        "-j",
        type=_positive_int,
        default=1,
        metavar="N",
        help="worker processes for the binding jobs (default: 1 = serial)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="content-addressed result cache; repeat runs reuse results",
    )
    parser.add_argument(
        "--store",
        metavar="FILE",
        help="append every job record to this JSONL run store",
    )


def _add_service_endpoint_args(parser: argparse.ArgumentParser) -> None:
    """Where-is-the-service flags shared by ``submit`` and ``watch``."""
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="service host (default: %(default)s)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8731,
        help="service port (default: %(default)s)",
    )


def _add_budget_args(parser: argparse.ArgumentParser) -> None:
    """Search-budget flags shared by the table subcommands."""
    parser.add_argument(
        "--max-evals",
        type=_positive_int,
        metavar="N",
        help="budget each B-ITER search to N candidate evaluations "
        "(prints the convergence table)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        metavar="S",
        help="wall-clock budget per B-ITER search, in seconds "
        "(prints the convergence table)",
    )
    parser.add_argument(
        "--convergence",
        action="store_true",
        help="print the B-ITER convergence table even without a budget",
    )


def _budget_kwargs(args: argparse.Namespace) -> dict:
    """Translate the budget flags into ``run_table*`` keyword arguments."""
    return {"max_evals": args.max_evals, "deadline": args.deadline}


def _print_convergence(args: argparse.Namespace, rows) -> None:
    if args.convergence or args.max_evals or args.deadline:
        from .analysis.tables import render_convergence

        print()
        print(render_convergence(rows))


def _runner_kwargs(args: argparse.Namespace) -> dict:
    """Translate the shared flags into ``run_jobs`` keyword arguments."""
    from .runner import ResultCache, RunStore

    try:
        cache = ResultCache(args.cache_dir) if args.cache_dir else None
    except OSError as exc:
        sys.exit(f"repro-bind: error: {exc}")
    store = RunStore(args.store) if args.store else None
    progress = None
    if sys.stderr.isatty():

        def progress(tracker):  # pragma: no cover - needs a tty
            end = "\n" if tracker.done == tracker.total else ""
            sys.stderr.write(f"\r{tracker.line()}{end}")
            sys.stderr.flush()

    return {
        "max_workers": args.jobs,
        "cache": cache,
        "store": store,
        "progress": progress,
    }


def _load(name_or_path: str):
    if name_or_path.lower() in KERNELS:
        return load_kernel(name_or_path)
    return load_dfg(name_or_path)


def _cmd_bind(args: argparse.Namespace) -> int:
    from .core.binding import Binding

    dfg = _load(args.kernel)
    try:
        dp = parse_datapath(
            args.datapath, num_buses=args.buses, move_latency=args.move_latency
        )
    except ValueError as exc:
        sys.exit(f"repro-bind: error: {exc}")
    strategy = get_strategy(args.algorithm)
    config = {}
    if args.quality is not None:
        config["quality"] = args.quality
    try:
        result = strategy(dfg, dp, **config)
    except (ValueError, TypeError) as exc:
        sys.exit(f"repro-bind: error: {exc}")
    print(
        f"{dfg.name} on {dp.spec()} (N_B={dp.num_buses}, "
        f"lat(move)={dp.move_latency}) via {args.algorithm}:"
    )
    print(
        f"  L = {result.latency}, M = {result.transfers}, "
        f"time = {result.seconds:.3f}s"
    )
    if result.binding is None:
        # Reference points (centralized) carry no clustered binding, so
        # there is nothing to break down or draw.
        return 0
    binding = Binding(dict(result.binding))
    for cluster in range(dp.num_clusters):
        members = binding.cluster_members(cluster)
        print(f"  cluster {cluster}: {len(members)} ops")
    needs_schedule = args.gantt or args.asm or args.svg
    if needs_schedule:
        from .search import SearchSession

        schedule = SearchSession(dfg, dp).schedule(binding)
    if args.gantt:
        print(render_gantt(schedule))
    if args.asm:
        from .codegen import emit_vliw

        program = emit_vliw(schedule)
        print(program.assembly())
        print(f"; slot utilization: {program.utilization():.0%}")
    if args.dot:
        bound = bind_dfg(dfg, binding, interconnect=dp.interconnect)
        with open(args.dot, "w") as f:
            f.write(to_dot(bound.graph, bound.placement, title=dfg.name))
        print(f"  wrote {args.dot}")
    if args.svg:
        from .schedule.svg import save_svg

        save_svg(schedule, args.svg, title=f"{dfg.name} on {dp.spec()}")
        print(f"  wrote {args.svg}")
    return 0


def _parse_config_sets(pairs: List[str]) -> dict:
    """Parse repeated ``--set key=value`` flags into a config dict.

    Values are JSON-typed when they parse (``--set max_nodes=5000``
    gives an int, ``--set improve=false`` a bool) and fall back to the
    literal string otherwise (``--set quality=qu+qm``).
    """
    config = {}
    for pair in pairs:
        key, sep, text = pair.partition("=")
        if not sep or not key:
            sys.exit(
                f"repro-bind: error: --set expects KEY=VALUE, got {pair!r}"
            )
        try:
            value = json.loads(text)
        except ValueError:
            value = text
        config[key] = value
    return config


def _cmd_run(args: argparse.Namespace) -> int:
    from .runner import BindJob
    from .runner.api import run_jobs

    # Every user-input failure — unknown kernel/file, malformed
    # datapath spec, unknown strategy, config-schema violation — exits
    # with a one-line message, never a traceback.
    try:
        dfg = _load(args.kernel)
        dp = parse_datapath(
            args.datapath, num_buses=args.buses, move_latency=args.move_latency
        )
    except (OSError, KeyError, ValueError) as exc:
        sys.exit(f"repro-bind: error: {exc}")
    config = _parse_config_sets(args.config)
    if args.quality is not None:
        config["quality"] = args.quality
    if args.seed is not None:
        config["seed"] = args.seed
    if args.max_evals is not None:
        config["max_evals"] = args.max_evals
    if args.deadline is not None:
        config["deadline"] = args.deadline
    try:
        job = BindJob.make(dfg, dp, args.strategy, **config)
    except (ValueError, TypeError) as exc:
        sys.exit(f"repro-bind: error: {exc}")
    result = run_jobs([job], **_runner_kwargs(args))[0]
    print(
        f"{dfg.name} on {dp.spec()} (N_B={dp.num_buses}, "
        f"lat(move)={dp.move_latency}) via {args.strategy}:"
    )
    if not result.ok:
        print(f"  status = {result.status}: {result.error}")
        return 1
    provenance = " (cached)" if result.cached else ""
    print(
        f"  L = {result.latency}, M = {result.transfers}, "
        f"time = {result.seconds:.3f}s{provenance}"
    )
    if result.evaluations is not None:
        print(
            f"  evaluations {result.evaluations}, "
            f"memo hits {result.eval_hits}, misses {result.eval_misses}"
        )
    stats = result.search_stats or {}
    if stats.get("budget_exhausted"):
        print("  evaluation budget exhausted")
    if stats.get("deadline_exceeded"):
        print("  deadline exceeded")
    for key in sorted(result.extras):
        print(f"  {key} = {result.extras[key]}")
    return 0


def _cmd_strategies(args: argparse.Namespace) -> int:
    if args.json:
        payload = [
            {
                "name": strategy.name,
                "description": strategy.description,
                "hidden": strategy.hidden,
                "strict": strategy.strict,
                "homogeneous_only": strategy.homogeneous_only,
                "config": [
                    {
                        "name": field.name,
                        "type": field.type.__name__,
                        "default": field.default,
                        "minimum": field.minimum,
                        "help": field.help,
                    }
                    for field in strategy.schema
                ],
            }
            for strategy in iter_strategies(include_hidden=args.all)
        ]
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    for strategy in iter_strategies(include_hidden=args.all):
        tags = []
        if strategy.homogeneous_only:
            tags.append("homogeneous-only")
        if strategy.hidden:
            tags.append("debug")
        suffix = f"  [{', '.join(tags)}]" if tags else ""
        print(f"{strategy.name:18s} {strategy.description}{suffix}")
        if args.verbose:
            for field in strategy.schema:
                default = (
                    "" if field.default is None
                    else f" (default {field.default!r})"
                )
                print(
                    f"{'':18s}   --set {field.name}=<"
                    f"{field.type.__name__}>{default}: {field.help}"
                )
    return 0


def _cmd_topologies(args: argparse.Namespace) -> int:
    from .datapath.library import TOPOLOGY_PRESETS
    from .datapath.parse import parse_datapath

    example_spec = "|1,1|1,1|1,1|1,1|"  # 4 clusters: every preset differs
    if args.json:
        payload = []
        for name, (suffix, description) in TOPOLOGY_PRESETS.items():
            ic = parse_datapath(example_spec + suffix).interconnect
            payload.append(
                {
                    "name": name,
                    "suffix": suffix.strip(),
                    "description": description,
                    "example": {
                        "spec": example_spec + suffix,
                        "num_links": len(ic.links),
                        "total_capacity": ic.total_capacity,
                        "max_route_len": ic.max_route_len,
                        "links": [
                            {
                                "name": link.name,
                                "src": link.src,
                                "dst": link.dst,
                                "capacity": link.capacity,
                            }
                            for link in ic.links
                        ],
                    },
                }
            )
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    for name, (suffix, description) in TOPOLOGY_PRESETS.items():
        shown = suffix.strip() or "(no suffix)"
        print(f"{name:10s} {shown:14s} {description}")
        if args.verbose:
            ic = parse_datapath(example_spec + suffix).interconnect
            names = ", ".join(link.name for link in ic.links) or "bus"
            print(
                f"{'':10s} {'':14s} on {example_spec}: "
                f"{len(ic.links)} link(s), total capacity "
                f"{ic.total_capacity}, longest route {ic.max_route_len} "
                f"hop(s): {names}"
            )
    return 0


def _cmd_kernels(verbose: bool = False) -> int:
    header = (
        f"{'kernel':12s} {'N_V':>4s} {'N_CC':>5s} {'L_CP':>5s} "
        f"{'ALU':>4s} {'MUL':>4s}"
    )
    if verbose:
        header += f" {'in':>4s} {'out':>4s} {'width':>6s} {'fanout':>7s}"
    print(header)
    for name in KERNELS:
        info = kernel_summary(name)
        line = (
            f"{name:12s} {info.num_operations:4d} {info.num_components:5d} "
            f"{info.critical_path:5d} {info.num_alu_ops:4d} "
            f"{info.num_mul_ops:4d}"
        )
        if verbose:
            from .dfg.ops import default_registry
            from .dfg.stats import dfg_stats

            stats = dfg_stats(load_kernel(name), default_registry())
            line += (
                f" {stats.num_inputs:4d} {stats.num_outputs:4d} "
                f"{stats.avg_width:6.1f} {stats.max_fanout:7d}"
            )
        print(line)
    return 0


def _cmd_pressure(args: argparse.Namespace) -> int:
    from .analysis.pressure import centralized_pressure, register_pressure
    from .core.driver import bind

    dfg = _load(args.kernel)
    try:
        dp = parse_datapath(args.datapath, num_buses=args.buses)
    except ValueError as exc:
        sys.exit(f"repro-bind: error: {exc}")
    if args.budget is None:
        result = bind(dfg, dp, iter_starts=1)
        report = register_pressure(result.schedule)
        print(
            f"{dfg.name} on {dp.spec()}: L = {result.latency}, "
            f"M = {result.num_transfers}"
        )
        for cluster in range(dp.num_clusters):
            print(f"  cluster {cluster}: peak pressure {report.per_cluster[cluster]}")
        print(f"  centralized equivalent would need {centralized_pressure(result.schedule)}")
        return 0

    from .core.pressure_aware import pressure_aware_improvement
    from .search import SearchSession

    session = SearchSession(dfg, dp)
    result = bind(dfg, dp, iter_starts=1, session=session)
    refined = pressure_aware_improvement(
        dfg, dp, result.binding, budget=args.budget, session=session
    )
    before = register_pressure(result.schedule)
    after = register_pressure(refined.schedule)
    print(
        f"{dfg.name} on {dp.spec()}: L = {result.latency}, "
        f"M = {result.num_transfers}, register budget {args.budget}"
    )
    for cluster in range(dp.num_clusters):
        print(
            f"  cluster {cluster}: peak pressure "
            f"{before.per_cluster[cluster]} -> {after.per_cluster[cluster]}"
        )
    print(
        f"  after Q_P pass: L = {refined.schedule.latency}, "
        f"M = {refined.schedule.num_transfers} "
        f"({refined.iterations} committed moves)"
    )
    stats = session.eval_stats
    print(
        f"  evaluations {stats.evaluations}, memo hits {stats.hits}, "
        f"misses {stats.misses}"
    )
    print(f"  centralized equivalent would need {centralized_pressure(refined.schedule)}")
    return 0


def _cmd_dse(args: argparse.Namespace) -> int:
    from .explore import enumerate_datapaths, explore, pareto_front

    kernels = {name: load_kernel(name) for name in args.kernels}
    candidates = enumerate_datapaths(
        max_clusters=args.max_clusters,
        max_total_fus=args.max_fus,
        num_buses=args.buses,
    )
    points = explore(kernels, candidates, **_runner_kwargs(args))
    print(
        f"evaluated {len(points)} feasible datapaths "
        f"({len(candidates)} candidates)"
    )
    print("Pareto-optimal (area, latency):")
    for p in pareto_front(points):
        print(f"  {p.datapath_spec:22s} area={p.area:7.1f}  L={p.latency}")
    return 0


def _cmd_race(args: argparse.Namespace) -> int:
    from .search.portfolio import (
        DEFAULT_BUDGET,
        parse_racers,
        plan_rungs,
        run_portfolio,
    )

    try:
        dfg = _load(args.kernel)
        dp = parse_datapath(
            args.datapath, num_buses=args.buses, move_latency=args.move_latency
        )
        racers = parse_racers(args.racers)
    except (OSError, KeyError, ValueError) as exc:
        sys.exit(f"repro-bind: error: {exc}")
    budget = args.budget if args.budget is not None else DEFAULT_BUDGET
    try:
        plan = plan_rungs(
            len(racers), budget, eta=args.eta, rung_evals=args.rung_evals
        )
    except ValueError as exc:
        sys.exit(f"repro-bind: error: {exc}")

    if args.dry_run:
        if args.json:
            print(json.dumps({
                "kernel": dfg.name,
                "datapath": dp.spec(),
                "budget": budget,
                "eta": args.eta,
                "racers": [
                    {"label": r.label, "strategy": r.name,
                     "config": r.config_dict()}
                    for r in racers
                ],
                "rungs": [
                    {"rung": rung.index, "survivors": rung.survivors,
                     "increment": rung.increment}
                    for rung in plan
                ],
            }, indent=2))
            return 0
        print(
            f"race on {dfg.name} / {dp.spec()}: {len(racers)} racers, "
            f"budget {budget}, eta {args.eta}"
        )
        for r in racers:
            config = r.config_dict()
            suffix = f"  {config}" if config else ""
            print(f"  racer {r.label}: {r.name}{suffix}")
        for rung in plan:
            print(
                f"  rung {rung.index}: {rung.survivors} survivor(s), "
                f"+{rung.increment} evals each"
            )
        return 0

    config = {"racers": args.racers, "max_evals": budget, "eta": args.eta}
    if args.rung_evals is not None:
        config["rung_evals"] = args.rung_evals
    if args.seed is not None:
        config["seed"] = args.seed
    if args.deadline is not None:
        config["deadline"] = args.deadline
    try:
        result = run_portfolio(dfg, dp, config)
    except (ValueError, TypeError, RuntimeError) as exc:
        sys.exit(f"repro-bind: error: {exc}")

    per_racer = json.loads(result.extras["per_racer"])
    rung_log = json.loads(result.extras["rung_log"])
    if args.json:
        print(json.dumps({
            "kernel": dfg.name,
            "datapath": dp.spec(),
            "status": result.status,
            "winner": result.extras["winner"],
            "winner_strategy": result.extras["winner_strategy"],
            "latency": result.latency,
            "transfers": result.transfers,
            "seconds": round(result.seconds, 4),
            "budget": result.extras["budget"],
            "charged": result.extras["charged"],
            "per_racer": per_racer,
            "rung_log": rung_log,
            "trajectories": json.loads(result.extras["trajectories"]),
        }, indent=2))
        return 0
    print(
        f"{dfg.name} on {dp.spec()} (N_B={dp.num_buses}, "
        f"lat(move)={dp.move_latency}): raced {len(per_racer)} strategies"
    )
    print(
        f"  winner {result.extras['winner']}: L = {result.latency}, "
        f"M = {result.transfers}, time = {result.seconds:.3f}s "
        f"[{result.status}]"
    )
    print(
        f"  budget {result.extras['budget']}, "
        f"charged {result.extras['charged']} evaluations, "
        f"{result.extras['rungs']} rung(s)"
    )
    for label in sorted(per_racer):
        entry = per_racer[label]
        best = entry["best"]
        lm = f"{best[0]}/{best[1]}" if best else "-"
        fate = (
            "winner" if label == result.extras["winner"]
            else entry["error"] or (
                f"out at rung {entry['eliminated_at']}"
                if entry["eliminated_at"] is not None else entry["status"]
            )
        )
        print(
            f"    {label:28s} {lm:>9s}  evals {entry['evaluations']:>6d}"
            f"  rungs {entry['rungs']}  {fate}"
        )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .analysis.tables import render_comparison
    from .search.registry import get_strategy
    from .tune import (
        StrategyVariant,
        SweepSpec,
        run_sweep,
        summarize_sweep,
    )

    try:
        if args.spec == "-":
            data = json.load(sys.stdin)
        else:
            with open(args.spec) as f:
                data = json.load(f)
        spec = SweepSpec.from_dict(data)
    except (OSError, KeyError, ValueError) as exc:
        sys.exit(f"repro-bind: error: {exc}")

    if args.budget is not None or args.deadline is not None:
        variants = []
        for variant in spec.variants:
            fields = get_strategy(variant.name).field_names()
            config = variant.config_dict()
            if args.budget is not None and "max_evals" in fields:
                config.setdefault("max_evals", args.budget)
            if args.deadline is not None and "deadline" in fields:
                config.setdefault("deadline", args.deadline)
            variants.append(
                StrategyVariant(
                    label=variant.label,
                    name=variant.name,
                    config=tuple(sorted(config.items())),
                )
            )
        spec = SweepSpec(cells=spec.cells, variants=tuple(variants))

    jobs = spec.compile()
    if args.dry_run:
        print(
            f"{len(jobs)} jobs: {len(spec.cells)} cells x "
            f"{len(spec.variants)} variants"
        )
        for job, (kernel, machine), variant in zip(
            jobs,
            (c for c in spec.cells for _ in spec.variants),
            (v for _ in spec.cells for v in spec.variants),
        ):
            config = dict(job.config)
            suffix = f"  {config}" if config else ""
            print(
                f"  {job.cache_key()[:12]}  {kernel:12s} "
                f"{machine.spec:20s} {variant.label:32s} "
                f"{job.algorithm}{suffix}"
            )
        return 0

    results = run_sweep(spec, **_runner_kwargs(args))
    rows = summarize_sweep(spec, results)
    try:
        print(render_comparison(rows, baseline=args.baseline))
    except ValueError as exc:
        sys.exit(f"repro-bind: error: {exc}")
    failed = [r for r in results if not r.ok]
    if failed:
        print(f"{len(failed)} job(s) failed:")
        for r in failed:
            print(f"  {r.kernel} / {r.algorithm}: {r.error}")
    if args.out:
        payload = [
            {
                "kernel": row.kernel,
                "datapath": row.datapath_spec,
                "num_buses": row.num_buses,
                "move_latency": row.move_latency,
                "cells": {
                    label: (
                        {
                            "L": cell.latency,
                            "M": cell.transfers,
                            "seconds": round(cell.seconds, 4),
                        }
                        if cell is not None
                        else None
                    )
                    for label, cell in row.cells
                },
            }
            for row in rows
        ]
        with open(args.out, "w") as f:
            json.dump(payload, f, indent=2)
            f.write("\n")
        print(f"wrote {args.out}")
    return 1 if failed else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal
    from pathlib import Path

    from .service import BindingService, ServiceHTTPServer

    service = BindingService(
        args.state_dir,
        workers=args.workers,
        queue_limit=args.queue_limit,
        breaker_threshold=args.breaker_threshold,
        max_attempts=args.max_attempts,
        default_timeout=args.timeout,
        target_delay=args.target_delay,
        overload_interval=args.overload_interval,
        client_rate=args.client_rate,
        client_burst=args.client_burst,
        stall_timeout=(
            args.stall_timeout if args.stall_timeout > 0 else None
        ),
        term_grace=args.term_grace,
    )
    service.start()

    async def _serve() -> None:
        server = ServiceHTTPServer(service, host=args.host, port=args.port)
        await server.start()
        if args.port_file:
            Path(args.port_file).write_text(f"{server.port}\n")
        print(
            f"repro-bind service on http://{args.host}:{server.port} "
            f"(state: {service.state_dir}, workers: {args.workers})",
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        await stop.wait()
        print("repro-bind service draining...", flush=True)
        await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:  # pragma: no cover - signal-handler race
        pass
    finally:
        service.close(drain=True)
    return 0


def _print_submit_result(snapshot: dict) -> int:
    result = snapshot.get("result") or {}
    status = result.get("status")
    cached = " (cached)" if result.get("cached") else ""
    print(
        f"job {snapshot['id']} [{snapshot['state']}] "
        f"{snapshot['kernel']} via {snapshot['algorithm']}"
    )
    if snapshot["state"] != "done":
        return 0
    if status == "ok":
        completion = result.get("completion", "complete")
        tag = f" [{completion}]" if completion != "complete" else ""
        print(
            f"  L = {result['latency']}, M = {result['transfers']}, "
            f"time = {result.get('seconds', 0.0):.3f}s{cached}{tag}"
        )
        return 0
    print(f"  status = {status}: {result.get('error')}")
    return 1


def _cmd_submit(args: argparse.Namespace) -> int:
    from .service import SPEC_FORMAT, ServiceClient, ServiceError

    spec: dict = {
        "format": SPEC_FORMAT,
        "datapath": args.datapath,
        "buses": args.buses,
        "move_latency": args.move_latency,
        "algorithm": args.strategy,
    }
    if args.kernel.lower() in KERNELS:
        spec["kernel"] = args.kernel.lower()
    else:
        from .dfg.serialize import dfg_to_dict

        try:
            spec["dfg"] = dfg_to_dict(load_dfg(args.kernel))
        except (OSError, KeyError, ValueError) as exc:
            sys.exit(f"repro-bind: error: {exc}")
    config = _parse_config_sets(args.config)
    if args.quality is not None:
        config["quality"] = args.quality
    if args.seed is not None:
        config["seed"] = args.seed
    if config:
        spec["config"] = config
    if args.priority:
        spec["priority"] = args.priority
    if args.timeout is not None:
        spec["timeout"] = args.timeout

    client = ServiceClient(args.host, args.port)
    try:
        snapshot = client.submit(
            spec,
            deadline=args.deadline,
            client=args.client,
            retries=max(0, args.retries),
        )
        if not args.no_wait and snapshot.get("state") != "done":
            snapshot = client.wait(snapshot["id"])
    except ServiceError as exc:
        # The server validated the spec with the same registry schema
        # 'run' uses; relay its one-line message (unknown strategy,
        # config violation, full queue, draining) without a traceback.
        sys.exit(f"repro-bind: error: {exc.message}")
    except TimeoutError as exc:
        sys.exit(f"repro-bind: error: {exc}")
    except OSError as exc:
        sys.exit(
            f"repro-bind: error: cannot reach service at "
            f"{args.host}:{args.port}: {exc}"
        )
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return 0 if (snapshot.get("result") or {}).get("status") in (
            "ok",
            None,
        ) else 1
    return _print_submit_result(snapshot)


def _cmd_watch(args: argparse.Namespace) -> int:
    from .service import ServiceClient, ServiceError

    client = ServiceClient(args.host, args.port)
    try:
        for event in client.events(args.job_id):
            detail = event.get("detail")
            suffix = f"  {json.dumps(detail, sort_keys=True)}" if detail else ""
            print(f"{event.get('event', '?'):12s} {event.get('job')}{suffix}")
        snapshot = client.job(args.job_id)
    except ServiceError as exc:
        sys.exit(f"repro-bind: error: {exc.message}")
    except OSError as exc:
        sys.exit(
            f"repro-bind: error: cannot reach service at "
            f"{args.host}:{args.port}: {exc}"
        )
    return _print_submit_result(snapshot)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "bind":
        return _cmd_bind(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "strategies":
        return _cmd_strategies(args)
    if args.command == "topologies":
        return _cmd_topologies(args)
    if args.command == "kernels":
        return _cmd_kernels(verbose=args.verbose)
    if args.command == "table1":
        rows = run_table1(
            kernels=args.kernel,
            run_iter=not args.no_iter,
            quality=args.quality,
            **_runner_kwargs(args),
            **_budget_kwargs(args),
        )
        print(render_table1(rows))
        _print_convergence(args, rows)
        if args.out:
            from .analysis.report import save_rows

            save_rows(rows, args.out)
            print(f"wrote {args.out}")
        return 0
    if args.command == "table2":
        rows = run_table2(
            run_iter=not args.no_iter,
            quality=args.quality,
            **_runner_kwargs(args),
            **_budget_kwargs(args),
        )
        print(render_table2(rows))
        _print_convergence(args, rows)
        if args.out:
            from .analysis.report import save_rows

            save_rows(rows, args.out)
            print(f"wrote {args.out}")
        return 0
    if args.command == "pressure":
        return _cmd_pressure(args)
    if args.command == "dse":
        return _cmd_dse(args)
    if args.command == "race":
        return _cmd_race(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "watch":
        return _cmd_watch(args)
    return 2


if __name__ == "__main__":
    sys.exit(main())
