"""Cyclic dataflow graphs for software-pipelined loops.

The paper binds acyclic basic blocks and argues (Section 4) that for
loops, binding should be applied to the *transformed* body a modulo
scheduler produces.  This subpackage closes that loop: it models loop
bodies with loop-carried dependencies and software-pipelines them with a
cluster-aware modulo scheduler built on the same binder.

A :class:`LoopDfg` wraps an ordinary :class:`~repro.dfg.graph.Dfg` (the
loop body, acyclic by construction) and adds *carried* edges annotated
with a dependence distance ``omega >= 1``: the consumer reads the value
the producer computed ``omega`` iterations earlier.  Intra-iteration
edges are exactly the body DFG's edges (``omega = 0``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..dfg.graph import Dfg

__all__ = ["CarriedEdge", "LoopDfg"]


@dataclass(frozen=True)
class CarriedEdge:
    """A loop-carried dependency ``producer -> consumer`` at distance
    ``omega`` iterations."""

    producer: str
    consumer: str
    omega: int

    def __post_init__(self) -> None:
        if self.omega < 1:
            raise ValueError(
                f"carried edge {self.producer}->{self.consumer} needs "
                f"omega >= 1, got {self.omega} (use a body edge for 0)"
            )


class LoopDfg:
    """A loop body plus its loop-carried dependencies.

    Args:
        body: the acyclic intra-iteration DFG.
        carried: loop-carried edges.  Endpoints must exist in the body;
            carried self-edges (an operation depending on its own
            previous value — accumulators) are allowed and common.
    """

    def __init__(
        self, body: Dfg, carried: Optional[List[CarriedEdge]] = None
    ) -> None:
        if body.num_transfers:
            raise ValueError("loop body must be an original (unbound) DFG")
        self.body = body
        self.carried: Tuple[CarriedEdge, ...] = tuple(carried or ())
        for edge in self.carried:
            if edge.producer not in body:
                raise KeyError(f"unknown carried producer {edge.producer!r}")
            if edge.consumer not in body:
                raise KeyError(f"unknown carried consumer {edge.consumer!r}")

    @property
    def name(self) -> str:
        return self.body.name

    def all_edges(self) -> Iterator[Tuple[str, str, int]]:
        """Every dependency as ``(producer, consumer, omega)``."""
        for u, v in self.body.edges():
            yield (u, v, 0)
        for edge in self.carried:
            yield (edge.producer, edge.consumer, edge.omega)

    def recurrence_sets(self) -> List[List[str]]:
        """Strongly connected components with more than one dependency.

        Tarjan's algorithm over the full (cyclic) dependence graph;
        returns only non-trivial SCCs (size > 1, or a self-carried
        operation) — the recurrences that bound the initiation interval.
        """
        adjacency: Dict[str, List[str]] = {n: [] for n in self.body}
        self_loops = set()
        for u, v, omega in self.all_edges():
            if u == v:
                self_loops.add(u)
            else:
                adjacency[u].append(v)

        index: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Dict[str, bool] = {}
        stack: List[str] = []
        counter = [0]
        out: List[List[str]] = []

        def strongconnect(root: str) -> None:
            # Iterative Tarjan (explicit stack) to survive deep graphs.
            work = [(root, 0)]
            while work:
                node, pi = work[-1]
                if pi == 0:
                    index[node] = low[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack[node] = True
                recurse = False
                for i in range(pi, len(adjacency[node])):
                    nxt = adjacency[node][i]
                    if nxt not in index:
                        work[-1] = (node, i + 1)
                        work.append((nxt, 0))
                        recurse = True
                        break
                    if on_stack.get(nxt):
                        low[node] = min(low[node], index[nxt])
                if recurse:
                    continue
                if low[node] == index[node]:
                    scc = []
                    while True:
                        w = stack.pop()
                        on_stack[w] = False
                        scc.append(w)
                        if w == node:
                            break
                    if len(scc) > 1:
                        out.append(sorted(scc))
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])

        for n in self.body:
            if n not in index:
                strongconnect(n)
        for n in sorted(self_loops):
            if not any(n in scc for scc in out):
                out.append([n])
        return out

    def __repr__(self) -> str:
        return (
            f"LoopDfg({self.body.name!r}, ops={self.body.num_operations}, "
            f"carried={len(self.carried)})"
        )
