"""Minimum initiation interval (MII) bounds for modulo scheduling.

Two classic lower bounds on the initiation interval ``II`` of a
software-pipelined loop (Rau, MICRO-27):

* **ResMII** — resource-constrained: the most loaded resource class
  must issue all its operations once per iteration, so
  ``II >= ceil(work(t) / N(t))`` for every FU type (and the bus, once a
  binding determines the transfer count);
* **RecMII** — recurrence-constrained: every dependence cycle ``C``
  needs ``II >= ceil(sum lat(C) / sum omega(C))``.

``rec_mii`` computes the exact bound by testing candidate IIs with a
longest-path positive-cycle check on the constraint graph (edge weight
``lat(u) - II * omega``), which is both simple and exact for the loop
sizes this library targets.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from ..datapath.model import Datapath
from .loop import LoopDfg

__all__ = ["res_mii", "rec_mii", "mii"]


def res_mii(loop: LoopDfg, datapath: Datapath) -> int:
    """Resource-constrained MII over FU types (bus excluded — the
    transfer count depends on the binding, which does not exist yet)."""
    reg = datapath.registry
    work: Dict = {}
    for op in loop.body.regular_operations():
        futype = reg.futype(op.optype)
        work[futype] = work.get(futype, 0) + reg.dii(op.optype)
    bound = 1
    for futype, total in work.items():
        units = datapath.total_fu_count(futype)
        if units <= 0:
            raise ValueError(
                f"datapath {datapath.spec()} has no {futype} units"
            )
        bound = max(bound, math.ceil(total / units))
    return bound


def _has_positive_cycle(
    nodes: List[str],
    edges: List[Tuple[str, str, int, int]],
    ii: int,
) -> bool:
    """Bellman-Ford-style check for a positive cycle in the constraint
    graph with weights ``lat(u) - ii * omega``."""
    dist = {n: 0 for n in nodes}
    for _ in range(len(nodes)):
        changed = False
        for u, v, lat_u, omega in edges:
            w = lat_u - ii * omega
            if dist[u] + w > dist[v]:
                dist[v] = dist[u] + w
                changed = True
        if not changed:
            return False
    return True  # still relaxing after |V| passes -> positive cycle


def rec_mii(loop: LoopDfg, datapath: Datapath, max_ii: int = 4096) -> int:
    """Exact recurrence-constrained MII.

    Returns the smallest ``II`` for which no dependence cycle demands
    more; 1 when the loop has no recurrences.
    """
    reg = datapath.registry
    nodes = list(loop.body)
    edges = [
        (u, v, reg.latency(loop.body.operation(u).optype), omega)
        for u, v, omega in loop.all_edges()
    ]
    if not any(omega > 0 for _, _, _, omega in edges):
        return 1
    lo, hi = 1, max_ii
    # The bound is monotone: larger II only loosens constraints.
    while lo < hi:
        mid = (lo + hi) // 2
        if _has_positive_cycle(nodes, edges, mid):
            lo = mid + 1
        else:
            hi = mid
    if lo >= max_ii and _has_positive_cycle(nodes, edges, max_ii):
        raise ValueError(f"no feasible II below {max_ii}; malformed loop?")
    return lo


def mii(loop: LoopDfg, datapath: Datapath) -> int:
    """``max(ResMII, RecMII)`` — the classic combined lower bound."""
    return max(res_mii(loop, datapath), rec_mii(loop, datapath))
