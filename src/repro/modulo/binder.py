"""Cluster-aware modulo binding: minimize the initiation interval.

The driver for software-pipelined loops: starting at the
``max(ResMII, RecMII)`` lower bound, each candidate ``II`` is attempted
with several cluster bindings — the B-INIT sweep candidates computed on
the (acyclic) loop body, exactly the reuse the paper advocates ("a
final, high quality binding and scheduling solution should always be
generated for the selected retiming function").  The first ``II`` where
some binding modulo-schedules wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.binding import Binding
from ..core.driver import default_lpr_values
from ..core.initial import initial_binding
from ..datapath.model import Datapath
from ..runner.progress import timed
from .loop import LoopDfg
from .mii import mii, rec_mii, res_mii
from .scheduler import ModuloSchedule, modulo_schedule

__all__ = ["ModuloBindResult", "modulo_bind"]


@dataclass(frozen=True)
class ModuloBindResult:
    """Outcome of modulo binding.

    Attributes:
        binding: the winning cluster assignment.
        schedule: the modulo schedule achieving ``ii``.
        ii: the initiation interval found.
        mii: the ``max(ResMII, RecMII)`` lower bound (``ii == mii`` means
            provably optimal throughput).
        res_mii / rec_mii: the individual bounds, for diagnosis.
        candidates_tried: (ii, binding-index) attempts made.
        seconds: wall-clock time.
    """

    binding: Binding
    schedule: ModuloSchedule
    ii: int
    mii: int
    res_mii: int
    rec_mii: int
    candidates_tried: int
    seconds: float

    @property
    def is_throughput_optimal(self) -> bool:
        """Whether the achieved ``II`` meets the lower bound."""
        return self.ii == self.mii


def _balanced_binding(loop: LoopDfg, datapath: Datapath) -> Binding:
    """A throughput-oriented candidate: balance per-cluster FU load.

    Operations are assigned (in topological order, to keep producer
    affinity as a tie-break) to the supporting cluster with the lowest
    normalized load of their FU type.  This directly minimizes the
    per-binding resource bound ``max ceil(work(c,t)/N(c,t))``, which is
    what limits the initiation interval — the latency-oriented B-INIT
    candidates often trade that balance away for fewer transfers.
    """
    reg = datapath.registry
    load: dict = {}
    bn: dict = {}
    for name in loop.body.topological_order():
        op = loop.body.operation(name)
        futype = reg.futype(op.optype)
        best, best_key = None, None
        for c in datapath.target_set(op.optype):
            units = datapath.fu_count(c, futype)
            ratio = (load.get((c, futype), 0) + reg.dii(op.optype)) / units
            # prefer clusters already holding a predecessor on ties
            affinity = sum(
                1 for p in loop.body.predecessors(name) if bn.get(p) == c
            )
            key = (ratio, -affinity, c)
            if best_key is None or key < best_key:
                best, best_key = c, key
        bn[name] = best
        load[(best, futype)] = load.get((best, futype), 0) + reg.dii(op.optype)
    return Binding(bn)


def binding_res_bound(
    loop: LoopDfg, datapath: Datapath, binding: Binding
) -> int:
    """The resource-bound II of one specific binding: per-(cluster, FU
    type) work plus the bus work of the transfers it implies."""
    import math

    from .scheduler import bind_loop

    reg = datapath.registry
    bound_loop = bind_loop(loop, binding)
    work: dict = {}
    for op in bound_loop.body.operations():
        futype = reg.futype(op.optype)
        cluster = -1 if op.is_transfer else bound_loop.placement[op.name]
        work[(cluster, futype)] = (
            work.get((cluster, futype), 0) + reg.dii(op.optype)
        )
    out = 1
    for (cluster, futype), total in work.items():
        units = (
            datapath.num_buses
            if cluster == -1
            else datapath.fu_count(cluster, futype)
        )
        out = max(out, math.ceil(total / units))
    return out


def _candidate_bindings(
    loop: LoopDfg, datapath: Datapath, max_candidates: int
) -> List[Binding]:
    """Binding candidates: the balanced binding plus distinct B-INIT
    sweep candidates over the acyclic body, ordered by their per-binding
    resource bound (most II-friendly first)."""
    seen = {}
    out: List[Binding] = [_balanced_binding(loop, datapath)]
    seen[out[0]] = None
    for reverse in (False, True):
        for lpr in default_lpr_values(loop.body, datapath):
            result = initial_binding(
                loop.body, datapath, lpr=lpr, reverse=reverse
            )
            if result.binding in seen:
                continue
            seen[result.binding] = None
            out.append(result.binding)
            if len(out) >= max_candidates:
                break
        if len(out) >= max_candidates:
            break
    out.sort(key=lambda b: binding_res_bound(loop, datapath, b))
    return out


def modulo_bind(
    loop: LoopDfg,
    datapath: Datapath,
    max_ii: Optional[int] = None,
    max_candidates: int = 6,
) -> ModuloBindResult:
    """Software-pipeline ``loop`` onto ``datapath`` with minimal ``II``.

    Args:
        loop: the cyclic dataflow.
        datapath: the clustered machine.
        max_ii: give up beyond this ``II``; defaults to the fully
            serialized bound (total work), which always succeeds.
        max_candidates: binding candidates to try per ``II``.

    Returns:
        A :class:`ModuloBindResult`.

    Raises:
        RuntimeError: if no ``II`` up to ``max_ii`` schedules (only
            possible with an explicit, too-small ``max_ii``).
    """
    with timed() as timer:
        datapath.check_bindable(loop.body)
        resource_bound = res_mii(loop, datapath)
        recurrence_bound = rec_mii(loop, datapath)
        lower = max(resource_bound, recurrence_bound)
        if max_ii is None:
            reg = datapath.registry
            max_ii = max(
                lower,
                sum(
                    reg.latency(op.optype)
                    for op in loop.body.regular_operations()
                ),
            ) + 1

        bindings = _candidate_bindings(loop, datapath, max_candidates)
        res_bounds = [binding_res_bound(loop, datapath, b) for b in bindings]
        tried = 0
        for ii in range(lower, max_ii + 1):
            for binding, bound in zip(bindings, res_bounds):
                if bound > ii:
                    continue  # this binding provably cannot meet ii
                tried += 1
                schedule = modulo_schedule(loop, datapath, binding, ii)
                if schedule is not None:
                    return ModuloBindResult(
                        binding=binding,
                        schedule=schedule,
                        ii=ii,
                        mii=lower,
                        res_mii=resource_bound,
                        rec_mii=recurrence_bound,
                        candidates_tried=tried,
                        seconds=timer.seconds,
                    )
        raise RuntimeError(
            f"no schedule found for {loop.name!r} up to II = {max_ii}"
        )
