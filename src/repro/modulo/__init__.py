"""Software pipelining: modulo scheduling with cluster-aware binding."""

from .binder import ModuloBindResult, modulo_bind
from .loop import CarriedEdge, LoopDfg
from .mii import mii, rec_mii, res_mii
from .scheduler import BoundLoop, ModuloSchedule, bind_loop, modulo_schedule

__all__ = [
    "LoopDfg",
    "CarriedEdge",
    "res_mii",
    "rec_mii",
    "mii",
    "BoundLoop",
    "bind_loop",
    "ModuloSchedule",
    "modulo_schedule",
    "ModuloBindResult",
    "modulo_bind",
]
