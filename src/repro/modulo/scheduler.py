"""Iterative modulo scheduling of a bound loop (Rau-style IMS).

Given a loop, a cluster binding, and a candidate initiation interval
``II``, this module software-pipelines the loop body: every operation
gets a start time ``sigma(v)`` such that

* dependences hold across iterations:
  ``sigma(v) >= sigma(u) + lat(u) - II * omega(u, v)``;
* the modulo reservation table (MRT) holds: a resource class never has
  more operations in a ``slot mod II`` than it has units — per-cluster
  per-FU-type for regular operations, the ``N_B``-slot bus for the
  transfers the binding implies.

The scheduler is the classic iterative variant: operations are placed
highest-priority-first in a window of ``II`` slots from their earliest
start; when no slot fits, the operation is *forced* and conflicting or
dependence-violated operations are evicted and retried, within a budget.
Returns ``None`` when the budget is exhausted — the caller then tries
the next ``II``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Set, Tuple

from ..core.binding import Binding
from ..datapath.model import Datapath
from ..dfg.graph import Dfg
from ..dfg.ops import BUS, MOVE, FuType
from ..dfg.transform import transfer_name
from .loop import LoopDfg

__all__ = ["BoundLoop", "ModuloSchedule", "bind_loop", "modulo_schedule"]


@dataclass(frozen=True)
class BoundLoop:
    """A loop body rewritten with the transfers a binding implies.

    Attributes:
        body: the rewritten intra-iteration DFG (with MOVE operations).
        edges: every dependency ``(producer, consumer, omega)`` including
            the carried ones, over the rewritten names.
        placement: cluster per operation (transfers live in their
            destination cluster, as in the acyclic flow).
        num_transfers: MOVE operations per iteration.
    """

    body: Dfg
    edges: Tuple[Tuple[str, str, int], ...]
    placement: Mapping[str, int]

    @property
    def num_transfers(self) -> int:
        return self.body.num_transfers


def bind_loop(loop: LoopDfg, binding: Binding) -> BoundLoop:
    """Insert inter-cluster transfers on every cut dependency.

    Transfers are shared per (producer, destination cluster) across
    intra-iteration *and* carried consumers: the value is moved once per
    iteration and each consumer reads the copy of the iteration it
    needs.  A carried cut edge ``u -(omega)-> v`` becomes
    ``u -(0)-> t -(omega)-> v``.
    """
    body = Dfg(name=f"{loop.body.name}+bound")
    placement: Dict[str, int] = {}
    for op in loop.body.operations():
        body.add_operation(op)
        placement[op.name] = binding[op.name]

    edges: List[Tuple[str, str, int]] = []
    created: Set[str] = set()

    def via_transfer(u: str, v: str, omega: int) -> None:
        dest = binding[v]
        t = transfer_name(u, dest)
        if t not in created:
            body.add_op(t, MOVE, is_transfer=True, source=u)
            body.add_edge(u, t)
            placement[t] = dest
            created.add(t)
            edges.append((u, t, 0))
        edges.append((t, v, omega))
        if omega == 0:
            body.add_edge(t, v)

    for u, v in loop.body.edges():
        if binding[u] == binding[v]:
            body.add_edge(u, v)
            edges.append((u, v, 0))
        else:
            via_transfer(u, v, 0)
    for edge in loop.carried:
        if binding[edge.producer] == binding[edge.consumer]:
            edges.append((edge.producer, edge.consumer, edge.omega))
        else:
            via_transfer(edge.producer, edge.consumer, edge.omega)

    return BoundLoop(body=body, edges=tuple(edges), placement=placement)


@dataclass(frozen=True)
class ModuloSchedule:
    """A software-pipelined schedule at initiation interval ``ii``.

    Attributes:
        bound: the bound loop that was scheduled.
        datapath: the machine.
        ii: the initiation interval achieved.
        start: ``sigma(v)`` per operation (absolute cycles; the kernel
            repeats every ``ii``).
    """

    bound: BoundLoop
    datapath: Datapath
    ii: int
    start: Mapping[str, int]

    @property
    def schedule_length(self) -> int:
        """Span of one iteration's schedule (prologue+kernel length)."""
        reg = self.datapath.registry
        if not self.start:
            return 0
        finish = max(
            self.start[n] + reg.latency(self.bound.body.operation(n).optype)
            for n in self.bound.body
        )
        return finish - min(self.start.values())

    @property
    def num_stages(self) -> int:
        """Pipeline stages: ``ceil(schedule_length / ii)``."""
        if not self.start:
            return 0
        return -(-self.schedule_length // self.ii)

    def validate(self) -> None:
        """Re-check dependences and MRT capacity from first principles.

        Raises:
            ValueError: on the first violated constraint.
        """
        reg = self.datapath.registry
        for u, v, omega in self.bound.edges:
            lat_u = reg.latency(self.bound.body.operation(u).optype)
            if self.start[v] < self.start[u] + lat_u - self.ii * omega:
                raise ValueError(
                    f"dependence violated: {u}->{v} (omega={omega}): "
                    f"{self.start[v]} < {self.start[u]} + {lat_u} - "
                    f"{self.ii}*{omega}"
                )
        usage: Dict[Tuple[int, FuType, int], int] = {}
        for n in self.bound.body:
            op = self.bound.body.operation(n)
            futype = reg.futype(op.optype)
            cluster = -1 if op.is_transfer else self.bound.placement[n]
            for k in range(reg.dii(op.optype)):
                slot = (self.start[n] + k) % self.ii
                key = (cluster, futype, slot)
                usage[key] = usage.get(key, 0) + 1
        for (cluster, futype, slot), used in usage.items():
            capacity = (
                self.datapath.num_buses
                if futype == BUS
                else self.datapath.fu_count(cluster, futype)
            )
            if used > capacity:
                raise ValueError(
                    f"MRT overflow: {used} ops on ({cluster}, {futype}) "
                    f"slot {slot} (capacity {capacity})"
                )


def _priorities(bound: BoundLoop, datapath: Datapath, ii: int) -> Dict[str, int]:
    """Height-based priority: longest (lat - II*omega)-weighted path out
    of each operation, computed by relaxation (cycles have non-positive
    weight at a feasible II, so this converges)."""
    reg = datapath.registry
    height = {n: 0 for n in bound.body}
    for _ in range(len(height)):
        changed = False
        for u, v, omega in bound.edges:
            lat_u = reg.latency(bound.body.operation(u).optype)
            cand = height[v] + lat_u - ii * omega
            if cand > height[u]:
                height[u] = cand
                changed = True
        if not changed:
            break
    return height


def modulo_schedule(
    loop: LoopDfg,
    datapath: Datapath,
    binding: Binding,
    ii: int,
    budget_factor: int = 16,
) -> Optional[ModuloSchedule]:
    """Attempt to modulo-schedule ``loop`` at initiation interval ``ii``.

    Args:
        loop: the cyclic dataflow.
        datapath: the machine.
        binding: cluster per body operation.
        ii: candidate initiation interval.
        budget_factor: scheduling attempts allowed per operation before
            giving up.

    Returns:
        A validated :class:`ModuloSchedule`, or ``None`` if the budget
        was exhausted (caller should retry with a larger ``ii``).
    """
    if ii < 1:
        raise ValueError(f"ii must be >= 1, got {ii}")
    bound = bind_loop(loop, binding)
    reg = datapath.registry
    ops = list(bound.body)
    if not ops:
        return ModuloSchedule(bound=bound, datapath=datapath, ii=ii, start={})
    height = _priorities(bound, datapath, ii)

    preds: Dict[str, List[Tuple[str, int, int]]] = {n: [] for n in ops}
    succs: Dict[str, List[Tuple[str, int, int]]] = {n: [] for n in ops}
    for u, v, omega in bound.edges:
        lat_u = reg.latency(bound.body.operation(u).optype)
        preds[v].append((u, lat_u, omega))
        succs[u].append((v, lat_u, omega))

    def resource_key(n: str) -> Tuple[int, FuType]:
        op = bound.body.operation(n)
        futype = reg.futype(op.optype)
        cluster = -1 if op.is_transfer else bound.placement[n]
        return (cluster, futype)

    def capacity(key: Tuple[int, FuType]) -> int:
        cluster, futype = key
        if futype == BUS:
            return datapath.num_buses
        return datapath.fu_count(cluster, futype)

    sigma: Dict[str, int] = {}
    mrt: Dict[Tuple[int, FuType, int], List[str]] = {}
    never_scheduled = {n: True for n in ops}
    last_slot: Dict[str, int] = {}

    def occupy(n: str, t: int) -> None:
        sigma[n] = t
        for k in range(reg.dii(bound.body.operation(n).optype)):
            key = (*resource_key(n), (t + k) % ii)
            mrt.setdefault(key, []).append(n)

    def release(n: str) -> None:
        t = sigma.pop(n)
        for k in range(reg.dii(bound.body.operation(n).optype)):
            key = (*resource_key(n), (t + k) % ii)
            mrt[key].remove(n)

    def slot_free(n: str, t: int) -> bool:
        for k in range(reg.dii(bound.body.operation(n).optype)):
            key = (*resource_key(n), (t + k) % ii)
            if len(mrt.get(key, [])) >= capacity(key[:2]) and n not in mrt.get(key, []):
                return False
        return True

    # Max-heap by (height, degree); deterministic tiebreak by name index.
    order_index = {n: i for i, n in enumerate(ops)}
    ready = [(-height[n], order_index[n], n) for n in ops]
    heapq.heapify(ready)
    in_queue = {n: True for n in ops}

    budget = budget_factor * len(ops)
    attempts = 0
    while ready:
        attempts += 1
        if attempts > budget:
            return None
        _, _, v = heapq.heappop(ready)
        if not in_queue.get(v):
            continue
        in_queue[v] = False

        earliest = 0
        for u, lat_u, omega in preds[v]:
            if u in sigma:
                earliest = max(earliest, sigma[u] + lat_u - ii * omega)
        if not never_scheduled[v]:
            # Re-scheduling after an eviction: move forward to escape
            # the previous conflict.
            earliest = max(earliest, last_slot[v] + 1)
        earliest = max(earliest, 0)

        placed = False
        for t in range(earliest, earliest + ii):
            if slot_free(v, t):
                occupy(v, t)
                placed = True
                break
        if not placed:
            # Force at `earliest`: evict resource conflicts.
            t = earliest
            for k in range(reg.dii(bound.body.operation(v).optype)):
                key = (*resource_key(v), (t + k) % ii)
                while len(mrt.get(key, [])) >= capacity(key[:2]):
                    victim = mrt[key][-1]
                    release(victim)
                    if not in_queue.get(victim):
                        in_queue[victim] = True
                        heapq.heappush(
                            ready,
                            (-height[victim], order_index[victim], victim),
                        )
            occupy(v, t)
        never_scheduled[v] = False
        last_slot[v] = sigma[v]

        # Evict any scheduled neighbour whose dependence broke.
        for u, lat_u, omega in preds[v]:
            if u in sigma and sigma[v] < sigma[u] + lat_u - ii * omega:
                release(u)
                if not in_queue.get(u):
                    in_queue[u] = True
                    heapq.heappush(
                        ready, (-height[u], order_index[u], u)
                    )
        for w, lat_v, omega in succs[v]:
            if w in sigma and sigma[w] < sigma[v] + lat_v - ii * omega:
                release(w)
                if not in_queue.get(w):
                    in_queue[w] = True
                    heapq.heappush(
                        ready, (-height[w], order_index[w], w)
                    )

    schedule = ModuloSchedule(
        bound=bound, datapath=datapath, ii=ii, start=dict(sigma)
    )
    schedule.validate()
    return schedule
