"""On-disk evaluation-outcome store shared across worker processes.

The in-memory :class:`~repro.core.evalcache.EvalCache` is per process;
the runner's process-pool workers each rebuild their own, so a sweep
re-run (or two jobs over the same ``(DFG, datapath)``) re-schedules
bindings another worker already evaluated.  This store externalizes the
memo: one JSON blob per ``(DFG, datapath)`` content hash, holding the
raw integer arrays of every :class:`~repro.schedule.fastpath.
FastOutcome` (placement, transfer pairs, start cycles, unit
assignments, latency).

Protocol — deliberately last-writer-wins and crash-tolerant:

* a :class:`~repro.search.session.SearchSession` *warm-starts* its
  evaluator from the blob at construction (pure ``cache.put``; hit/miss
  counters untouched, and the memo never changes search trajectories —
  ``tests/schedule/test_fastpath_equiv.py`` proves that invariant);
* at job end the session *merges* its outcomes back: read-modify-write
  through an atomic rename, so concurrent workers can only lose each
  other's additions, never corrupt the file.

Activation is environment-based (``REPRO_EVAL_CACHE=<dir>``) so the
setting crosses ``ProcessPoolExecutor`` boundaries for free;
:func:`repro.runner.api.run_jobs` points it inside the job result
cache's directory when one is configured.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Tuple, Union

from ..datapath.model import Datapath
from ..dfg.graph import Dfg

__all__ = ["EVAL_CACHE_ENV", "OUTCOME_FORMAT", "OutcomeStore", "outcome_cache_key"]

#: Environment variable naming the shared outcome-store directory.
EVAL_CACHE_ENV = "REPRO_EVAL_CACHE"

#: Blob schema tag; bump on any change to the entry layout.
OUTCOME_FORMAT = "repro-evalcache/1"

#: placement -> (pairs, starts, units, latency), all plain tuples/ints.
_Entries = Dict[
    Tuple[int, ...],
    Tuple[Tuple[Tuple[int, int], ...], Tuple[int, ...], Tuple[int, ...], int],
]


def outcome_cache_key(dfg: Dfg, datapath: Datapath) -> str:
    """Content hash identifying one ``(DFG, datapath)`` evaluation space.

    Includes the full timing registry — outcomes depend on latencies
    and initiation intervals, not just the cluster spec — so a
    ``lat(move)`` sweep never aliases blobs.
    """
    from ..dfg.serialize import dfg_to_dict

    reg = datapath.registry
    registry = sorted(
        (
            str(info.optype),
            reg.latency(info.optype),
            reg.dii(info.optype),
            str(reg.futype(info.optype)),
        )
        for info in reg
    )
    envelope = json.dumps(
        {
            "format": OUTCOME_FORMAT,
            "dfg": dfg_to_dict(dfg),
            "datapath": datapath.spec(),
            "num_buses": datapath.num_buses,
            "registry": registry,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(envelope.encode("utf-8")).hexdigest()


class OutcomeStore:
    """A directory of per-``(DFG, datapath)`` outcome blobs."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    # ------------------------------------------------------------------
    # Raw blob I/O
    # ------------------------------------------------------------------
    def load(self, key: str) -> _Entries:
        """All stored outcomes for ``key`` (empty on any read problem)."""
        try:
            data = json.loads(self.path_for(key).read_text())
        except (OSError, ValueError):
            return {}
        if data.get("format") != OUTCOME_FORMAT:
            return {}
        entries: _Entries = {}
        try:
            for placement, pairs, starts, units, latency in data["entries"]:
                entries[tuple(placement)] = (
                    tuple((u, d) for u, d in pairs),
                    tuple(starts),
                    tuple(units),
                    int(latency),
                )
        except (TypeError, ValueError, KeyError):
            return {}
        return entries

    def _write(self, key: str, entries: _Entries) -> None:
        payload = {
            "format": OUTCOME_FORMAT,
            "key": key,
            "entries": [
                [
                    list(placement),
                    [list(p) for p in pairs],
                    list(starts),
                    list(units),
                    latency,
                ]
                for placement, (pairs, starts, units, latency) in entries.items()
            ],
        }
        fd, tmp = tempfile.mkstemp(
            dir=str(self.root), prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(payload, f, separators=(",", ":"))
            os.replace(tmp, self.path_for(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # Evaluator integration
    # ------------------------------------------------------------------
    def warm(self, evaluator, key: str) -> int:
        """Seed ``evaluator``'s memo from the stored blob.

        Rehydrates each entry into a
        :class:`~repro.schedule.fastpath.FastOutcome` over the
        evaluator's own precompiled context.  Counters are untouched —
        warmed entries surface as ordinary memo hits later.  Returns
        the number of entries loaded.
        """
        from ..schedule.fastpath import FastOutcome

        loaded = 0
        for placement, (pairs, starts, units, latency) in self.load(
            key
        ).items():
            if len(placement) != evaluator.ctx.num_regular:
                continue  # defensive: foreign/corrupt blob
            evaluator.cache.put(
                placement,
                FastOutcome(
                    ctx=evaluator.ctx,
                    placement=placement,
                    pairs=pairs,
                    starts=starts,
                    units=units,
                    latency=latency,
                ),
            )
            loaded += 1
        return loaded

    def merge(self, evaluator, key: str) -> int:
        """Union the evaluator's memo into the stored blob (atomic).

        Concurrent writers race benignly: each merges with the state it
        read, and the rename is atomic, so the blob always parses; a
        lost update only costs a future re-evaluation.
        """
        entries = self.load(key)
        for placement, out in evaluator.cache.items():
            entries[placement] = (
                out.pairs,
                out.starts,
                out.units,
                out.latency,
            )
        if not entries:
            return 0
        self._write(key, entries)
        return len(entries)
