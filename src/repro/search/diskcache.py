"""On-disk evaluation-outcome store shared across worker processes.

The in-memory :class:`~repro.core.evalcache.EvalCache` is per process;
the runner's process-pool workers each rebuild their own, so a sweep
re-run (or two jobs over the same ``(DFG, datapath)``) re-schedules
bindings another worker already evaluated.  This store externalizes the
memo: one JSON blob per ``(DFG, datapath)`` content hash, holding the
raw integer arrays of every :class:`~repro.schedule.fastpath.
FastOutcome` (placement, transfer pairs, start cycles, unit
assignments, latency).

Self-healing layout (``repro-evalcache/2``):

* blobs live under a two-level fan-out (``<root>/<key[:2]>/<key>.json``)
  so a long-lived store never piles thousands of files into one
  directory; legacy flat-path blobs are still read;
* every blob carries a SHA-256 checksum over its canonical entry list;
  a blob that fails the checksum, the parse, or the structural decode
  is *quarantined* — renamed to ``*.corrupt`` for post-mortem — and
  treated as empty, so corruption costs re-evaluation, never a wrong
  answer;
* parsed blobs are memoized per process keyed by ``(path, mtime_ns,
  size)``: a batch constructing many :class:`~repro.search.session.
  SearchSession` objects over one cell parses identical JSON once,
  not once per session;
* the store is size-bounded (``max_bytes`` argument or the
  ``REPRO_EVAL_CACHE_MAX_MB`` environment knob): after each merge the
  least-recently-modified blobs are evicted until the store fits —
  outcome blobs are a pure cache, so eviction is always safe;
* concurrent mergers serialize through an advisory ``fcntl`` file lock
  per blob (best-effort: platforms without ``fcntl`` fall back to the
  previous benign read-modify-write race), so parallel workers stop
  losing each other's merged entries;
* writes remain atomic (tmp file + rename), so readers never observe
  a half-written blob even when a writer is killed mid-merge.

Activation is environment-based (``REPRO_EVAL_CACHE=<dir>``) so the
setting crosses ``ProcessPoolExecutor`` boundaries for free;
:func:`repro.runner.api.run_jobs` points it inside the job result
cache's directory when one is configured.

Named fault-injection sites (see :mod:`repro.resilience.faults`):
``evalstore.load``, ``evalstore.write``, ``evalstore.write.data``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

from ..datapath.model import Datapath
from ..dfg.graph import Dfg
from ..resilience import faults

__all__ = [
    "EVAL_CACHE_ENV",
    "EVAL_CACHE_MAX_ENV",
    "OUTCOME_FORMAT",
    "OutcomeStore",
    "outcome_cache_key",
]

#: Environment variable naming the shared outcome-store directory.
EVAL_CACHE_ENV = "REPRO_EVAL_CACHE"

#: Environment variable bounding the store size, in megabytes.
EVAL_CACHE_MAX_ENV = "REPRO_EVAL_CACHE_MAX_MB"

#: Blob schema tag; bump on any change to the entry layout.
OUTCOME_FORMAT = "repro-evalcache/2"

#: placement -> (pairs, starts, units, latency), all plain tuples/ints.
_Entries = Dict[
    Tuple[int, ...],
    Tuple[Tuple[Tuple[int, int], ...], Tuple[int, ...], Tuple[int, ...], int],
]

#: Per-process parsed-blob memo: path -> ((mtime_ns, size), entries).
_parse_memo: Dict[Path, Tuple[Tuple[int, int], _Entries]] = {}


def outcome_cache_key(dfg: Dfg, datapath: Datapath) -> str:
    """Content hash identifying one ``(DFG, datapath)`` evaluation space.

    Includes the full timing registry — outcomes depend on latencies
    and initiation intervals, not just the cluster spec — so a
    ``lat(move)`` sweep never aliases blobs.
    """
    from ..dfg.serialize import dfg_to_dict

    reg = datapath.registry
    registry = sorted(
        (
            str(info.optype),
            reg.latency(info.optype),
            reg.dii(info.optype),
            str(reg.futype(info.optype)),
        )
        for info in reg
    )
    envelope = json.dumps(
        {
            "format": OUTCOME_FORMAT,
            "dfg": dfg_to_dict(dfg),
            "datapath": datapath.spec(),
            "num_buses": datapath.num_buses,
            "registry": registry,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(envelope.encode("utf-8")).hexdigest()


def _entries_payload(entries: _Entries) -> list:
    return [
        [
            list(placement),
            [list(p) for p in pairs],
            list(starts),
            list(units),
            latency,
        ]
        for placement, (pairs, starts, units, latency) in entries.items()
    ]


def _payload_checksum(payload: list) -> str:
    canonical = json.dumps(payload, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@contextmanager
def _advisory_lock(path: Path) -> Iterator[None]:
    """Best-effort exclusive advisory lock on ``<path>.lock``.

    Serializes concurrent read-modify-write mergers on POSIX; a
    platform without ``fcntl`` (or a filesystem refusing locks) falls
    back to the benign last-writer-wins race the store always
    tolerated.
    """
    try:
        import fcntl
    except ImportError:  # pragma: no cover - non-POSIX fallback
        yield
        return
    lock_path = path.with_suffix(path.suffix + ".lock")
    try:
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(str(lock_path), os.O_CREAT | os.O_RDWR)
    except OSError:  # pragma: no cover - unlockable filesystem
        yield
        return
    try:
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
        except OSError:  # pragma: no cover - locks unsupported
            pass
        yield
    finally:
        try:
            fcntl.flock(fd, fcntl.LOCK_UN)
        except OSError:  # pragma: no cover
            pass
        os.close(fd)


class OutcomeStore:
    """A directory of per-``(DFG, datapath)`` outcome blobs.

    Args:
        root: store directory (created if missing).
        max_bytes: size bound; when the store grows past it after a
            merge, least-recently-modified blobs are evicted until it
            fits.  Defaults to the ``REPRO_EVAL_CACHE_MAX_MB``
            environment knob (unbounded when unset).
    """

    def __init__(
        self,
        root: Union[str, Path],
        max_bytes: Optional[int] = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        if max_bytes is None:
            raw = os.environ.get(EVAL_CACHE_MAX_ENV, "").strip()
            if raw:
                try:
                    max_bytes = int(float(raw) * 1024 * 1024)
                except ValueError:
                    max_bytes = None
        self.max_bytes = max_bytes

    def path_for(self, key: str) -> Path:
        """Sharded blob path of ``key`` (two-level fan-out)."""
        return self.root / key[:2] / f"{key}.json"

    def _legacy_path(self, key: str) -> Path:
        """The flat pre-sharding path (read-compatibility only)."""
        return self.root / f"{key}.json"

    def _read_path(self, key: str) -> Path:
        sharded = self.path_for(key)
        if sharded.exists():
            return sharded
        legacy = self._legacy_path(key)
        return legacy if legacy.exists() else sharded

    # ------------------------------------------------------------------
    # Raw blob I/O
    # ------------------------------------------------------------------
    def _quarantine(self, path: Path) -> None:
        """Set a damaged blob aside as ``*.corrupt`` (never re-read)."""
        try:
            os.replace(path, path.with_suffix(path.suffix + ".corrupt"))
        except OSError:
            pass
        _parse_memo.pop(path, None)

    def load(self, key: str) -> _Entries:
        """All stored outcomes for ``key``.

        Empty on a missing blob; a blob that fails its checksum or its
        structural decode is quarantined (renamed ``*.corrupt``) and
        reported empty — corruption degrades the store to cold, it
        never feeds garbage into an evaluator.  Parsed blobs are
        memoized per process keyed by ``(path, mtime, size)``.
        """
        path = self._read_path(key)
        try:
            faults.fire("evalstore.load")
            stat = path.stat()
            signature = (stat.st_mtime_ns, stat.st_size)
            memo = _parse_memo.get(path)
            if memo is not None and memo[0] == signature:
                # Shallow copy: values are immutable tuples, but merge()
                # mutates the mapping it gets back.
                return dict(memo[1])
            data = json.loads(path.read_text())
        except OSError:
            return {}
        except ValueError:
            self._quarantine(path)
            return {}
        if data.get("format") not in (OUTCOME_FORMAT, "repro-evalcache/1"):
            self._quarantine(path)
            return {}
        checksum = data.get("sha256")
        if checksum is not None and checksum != _payload_checksum(
            data.get("entries", [])
        ):
            self._quarantine(path)
            return {}
        entries: _Entries = {}
        try:
            for placement, pairs, starts, units, latency in data["entries"]:
                entries[tuple(placement)] = (
                    tuple((u, d) for u, d in pairs),
                    tuple(starts),
                    tuple(units),
                    int(latency),
                )
        except (TypeError, ValueError, KeyError):
            self._quarantine(path)
            return {}
        _parse_memo[path] = (signature, entries)
        return dict(entries)

    def _write(self, key: str, entries: _Entries) -> None:
        payload = _entries_payload(entries)
        blob = {
            "format": OUTCOME_FORMAT,
            "key": key,
            "sha256": _payload_checksum(payload),
            "entries": payload,
        }
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        faults.fire("evalstore.write")
        data = faults.perturb(
            "evalstore.write.data", json.dumps(blob, separators=(",", ":"))
        )
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as f:
                f.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        _parse_memo.pop(path, None)

    # ------------------------------------------------------------------
    # Size bounding
    # ------------------------------------------------------------------
    def blob_paths(self) -> list:
        """Every live blob path (sharded and legacy), unsorted."""
        flat = [p for p in self.root.glob("*.json")]
        sharded = [p for p in self.root.glob("??/*.json")]
        return flat + sharded

    def total_bytes(self) -> int:
        """Current on-disk size of all live blobs."""
        total = 0
        for path in self.blob_paths():
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def evict(self, keep: Optional[Path] = None) -> int:
        """Evict least-recently-modified blobs until under ``max_bytes``.

        ``keep`` (typically the blob just written) is never evicted.
        Returns the number of blobs removed; a no-op when the store is
        unbounded or already fits.
        """
        if self.max_bytes is None:
            return 0
        stamped = []
        for path in self.blob_paths():
            try:
                stat = path.stat()
            except OSError:
                continue
            stamped.append((stat.st_mtime_ns, stat.st_size, path))
        total = sum(size for _, size, _ in stamped)
        if total <= self.max_bytes:
            return 0
        removed = 0
        for _, size, path in sorted(stamped, key=lambda e: e[0]):
            if total <= self.max_bytes:
                break
            if keep is not None and path == keep:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            _parse_memo.pop(path, None)
            total -= size
            removed += 1
        return removed

    # ------------------------------------------------------------------
    # Evaluator integration
    # ------------------------------------------------------------------
    def warm(self, evaluator, key: str) -> int:
        """Seed ``evaluator``'s memo from the stored blob.

        Rehydrates each entry into a
        :class:`~repro.schedule.fastpath.FastOutcome` over the
        evaluator's own precompiled context.  Counters are untouched —
        warmed entries surface as ordinary memo hits later.  Returns
        the number of entries loaded.
        """
        from ..schedule.fastpath import FastOutcome

        loaded = 0
        for placement, (pairs, starts, units, latency) in self.load(
            key
        ).items():
            if len(placement) != evaluator.ctx.num_regular:
                continue  # defensive: foreign/corrupt blob
            evaluator.cache.put(
                placement,
                FastOutcome(
                    ctx=evaluator.ctx,
                    placement=placement,
                    pairs=pairs,
                    starts=starts,
                    units=units,
                    latency=latency,
                ),
            )
            loaded += 1
        return loaded

    def merge(self, evaluator, key: str) -> int:
        """Union the evaluator's memo into the stored blob.

        The read-modify-write runs under a per-blob advisory file lock
        (where supported), so concurrent mergers no longer lose each
        other's additions; the write itself stays atomic, so even a
        writer killed mid-merge leaves a parseable blob.  Afterwards
        the store is trimmed back under its size bound (LRU by
        modification time), sparing the blob just written.
        """
        path = self.path_for(key)
        with _advisory_lock(path):
            entries = self.load(key)
            for placement, out in evaluator.cache.items():
                entries[placement] = (
                    out.pairs,
                    out.starts,
                    out.units,
                    out.latency,
                )
            if not entries:
                return 0
            self._write(key, entries)
        self.evict(keep=path)
        return len(entries)
