"""The shared steepest-descent loop (paper Section 3.2).

One round: enumerate every perturbation of the current binding's
boundary neighbourhood, evaluate each exactly, commit the single best
strictly-improving candidate; terminate when a round finds none.  This
is the engine under B-ITER's Q_U and Q_M passes and the pressure-aware
Q_P pass — only the quality vector differs.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..core.binding import Binding
from ..core.quality import QualityVector
from ..resilience.anytime import SearchCancelled
from .neighborhood import Neighborhood
from .session import SearchSession

__all__ = ["steepest_descent"]


def steepest_descent(
    session: SearchSession,
    neighborhood: Neighborhood,
    binding: Binding,
    quality: Callable[[object], QualityVector],
    max_iterations: int,
    history: List[QualityVector],
) -> Tuple[Binding, QualityVector, object, int]:
    """Descend from ``binding`` under one quality vector.

    Appends the quality after each committed perturbation to
    ``history`` and records it on the session's best-so-far
    trajectory.  The session's budget/deadline is polled once per
    round, so an unbudgeted session (the default) reproduces the
    historical descent bit for bit.

    Returns the improved binding, its quality, the evaluation outcome
    of the final binding (a ``Schedule`` on the naive path, a
    ``FastOutcome`` on the fast path), and the number of committed
    perturbations.
    """
    session.stats.begin_segment()
    best_out = session.evaluate(binding)
    best_q = quality(best_out)
    session.note_best(binding, best_q, best_out)
    committed = 0
    while committed < max_iterations and not session.exhausted():
        round_best: Optional[Tuple[QualityVector, Binding, object]] = None
        threshold = best_q
        # The whole round is materialized as one batch — wide enough,
        # the session packs it into vector lanes; otherwise it reorders
        # execution by placement-delta to amortize incremental
        # re-derivation — and selection walks the outcomes in original
        # perturbation order, so the committed candidate (ties broken
        # by first strict improvement) is unchanged.
        candidates = [
            binding.rebind(*perturbation)
            for perturbation in neighborhood.round_batch(binding)
        ]
        try:
            outcomes = session.evaluate_many(candidates)
        except SearchCancelled:
            # A cooperative cancel (or in-sweep deadline) cut the
            # round; the binding committed so far is legal — keep it.
            break
        for candidate, out in zip(candidates, outcomes):
            q = quality(out)
            if q < threshold:
                round_best = (q, candidate, out)
                threshold = q
        if round_best is None:
            break
        best_q, binding, best_out = round_best
        history.append(best_q)
        session.stats.record_best(best_q)
        session.note_best(binding, best_q, best_out)
        committed += 1
    return binding, best_q, best_out, committed
