"""The boundary-perturbation neighbourhood (paper Section 3.2).

B-ITER, the tabu walk, and annealing all perturb bindings; B-ITER and
tabu share the exact *boundary* structure (operations with a producer
or consumer in another cluster, moved to the clusters where their
operands/results live, alone or in pairs), and annealing draws random
single-operation reassignments.  This class owns both generators so a
strategy never re-implements move generation, and so *frozen*
operations (pinned by a :class:`~repro.search.problem.BindingProblem`)
are excluded uniformly.
"""

from __future__ import annotations

import itertools
import random
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from ..core.binding import Binding
from ..datapath.model import Datapath
from ..dfg.graph import Dfg

__all__ = ["Neighborhood", "Perturbation"]

#: One candidate re-binding: ``((op, new cluster), ...)`` — a single
#: move or a simultaneous pair move.
Perturbation = Tuple[Tuple[str, int], ...]


class Neighborhood:
    """Move generation over one ``(DFG, datapath)`` search space.

    Args:
        dfg: the original DFG (no transfers).
        datapath: the clustered machine.  May be omitted when only
            :meth:`boundary` is needed (boundary discovery reads the
            graph alone).
        use_pairs: also generate simultaneous pair re-bindings (paper
            default for B-ITER).
        frozen: operation names that must not move (excluded from the
            boundary and from random reassignment).
    """

    def __init__(
        self,
        dfg: Dfg,
        datapath: Optional[Datapath] = None,
        use_pairs: bool = True,
        frozen: Iterable[str] = (),
    ) -> None:
        self.dfg = dfg
        self.datapath = datapath
        self.use_pairs = use_pairs
        self.frozen: FrozenSet[str] = frozenset(frozen)
        self._op_names: Tuple[str, ...] = tuple(
            op.name
            for op in dfg.regular_operations()
            if op.name not in self.frozen
        )

    # ------------------------------------------------------------------
    # B-ITER / tabu: the boundary structure
    # ------------------------------------------------------------------
    def boundary(self, binding: Binding) -> Tuple[str, ...]:
        """Operations with a producer or consumer in a different cluster."""
        dfg = self.dfg
        out = []
        for name in self._op_names:
            c = binding[name]
            neighbours = itertools.chain(
                dfg.predecessors(name), dfg.successors(name)
            )
            if any(binding[n] != c for n in neighbours):
                out.append(name)
        return tuple(out)

    def moves(self, binding: Binding, v: str) -> Tuple[int, ...]:
        """Clusters where an operand or result of ``v`` resides.

        Only clusters in ``TS(v)`` that differ from the current binding
        are returned (Section 3.2).
        """
        if self.datapath is None:
            raise ValueError("Neighborhood needs a datapath to generate moves")
        dfg = self.dfg
        current = binding[v]
        ts = set(self.datapath.target_set(dfg.operation(v).optype))
        clusters = {
            binding[n]
            for n in itertools.chain(
                dfg.predecessors(v), dfg.successors(v)
            )
        }
        return tuple(sorted(c for c in clusters if c != current and c in ts))

    def perturbations(
        self,
        binding: Binding,
        boundary: Optional[Tuple[str, ...]] = None,
        moves: Optional[Dict[str, Tuple[int, ...]]] = None,
    ) -> Iterator[Perturbation]:
        """Yield candidate re-bindings, singles then pairs.

        Singles: each boundary operation to each neighbour cluster.
        Pairs: boundary operations connected by an edge or sharing a
        consumer, moved simultaneously — the "move a producer together
        with its consumer" and "merge two producers of a common
        consumer" corrections single moves cannot express without
        passing through a worse state.  Pair moves already covered by a
        single move are skipped.

        ``boundary``/``moves`` accept a precomputed neighbourhood so a
        steepest-descent round hoists discovery out of the generator.
        """
        dfg = self.dfg
        if boundary is None:
            boundary = self.boundary(binding)
        if moves is None:
            moves = {v: self.moves(binding, v) for v in boundary}
        for v in boundary:
            for c in moves[v]:
                yield ((v, c),)
        if not self.use_pairs:
            return
        boundary_set = set(boundary)
        pairs: Set[Tuple[str, str]] = set()
        for v in boundary:
            for u in dfg.successors(v):
                if u in boundary_set:
                    pairs.add((v, u))
            # Siblings: two boundary producers feeding a common consumer.
            for u in dfg.successors(v):
                for w in dfg.predecessors(u):
                    if w != v and w in boundary_set:
                        pairs.add(tuple(sorted((v, w))))  # type: ignore[arg-type]
        for v, w in sorted(pairs):
            v_opts = moves[v] + (binding[v],)
            w_opts = moves[w] + (binding[w],)
            for cv in v_opts:
                for cw in w_opts:
                    if cv == binding[v] and cw == binding[w]:
                        continue
                    if cv == binding[v] or cw == binding[w]:
                        # Covered by single moves.
                        continue
                    yield ((v, cv), (w, cw))

    def round_batch(
        self,
        binding: Binding,
        boundary: Optional[Tuple[str, ...]] = None,
        moves: Optional[Dict[str, Tuple[int, ...]]] = None,
    ) -> Tuple[Perturbation, ...]:
        """One descent round's full candidate batch, materialized.

        The singles-then-pairs perturbations of :meth:`perturbations`,
        collected into a tuple of delta arrays against the base
        binding — the shape ``SearchSession.evaluate_many`` wants so a
        round can be packed into vector lanes (or delta-ordered on the
        scalar path) instead of trickling candidates one at a time.
        Order is exactly the generator's, so first-strict-improvement
        tie-breaks are unaffected.
        """
        if boundary is None:
            boundary = self.boundary(binding)
        if moves is None:
            moves = {v: self.moves(binding, v) for v in boundary}
        return tuple(self.perturbations(binding, boundary, moves))

    # ------------------------------------------------------------------
    # Annealing: random single-operation reassignment
    # ------------------------------------------------------------------
    def random_reassignment(
        self, binding: Binding, rng: random.Random
    ) -> Optional[Tuple[str, int]]:
        """Draw one uniform random single-operation move, or None.

        Consumes the RNG exactly like the historical annealing loop
        (one ``choice`` over operations, then one over the other target
        clusters), so seeded walks are reproducible across the port.
        Returns None when the drawn operation has nowhere else to go.
        """
        if self.datapath is None:
            raise ValueError("Neighborhood needs a datapath to generate moves")
        name = rng.choice(self._op_names)
        targets = [
            c
            for c in self.datapath.target_set(self.dfg.operation(name).optype)
            if c != binding[name]
        ]
        if not targets:
            return None
        return (name, rng.choice(targets))

    def random_batch(
        self, binding: Binding, rng: random.Random, width: int
    ) -> Tuple[Perturbation, ...]:
        """``width`` random single-move lanes, materialized.

        Draws exactly like ``width`` sequential
        :meth:`random_reassignment` calls (drawn operations with no
        alternative cluster consume RNG but emit no lane), so a seeded
        caller is reproducible.  Sequential accept/reject walks
        (annealing) must keep drawing one move at a time — their RNG
        trajectory depends on each outcome — but population-style
        strategies and multi-start batches use this to fill vector
        lanes in one call.
        """
        if width < 0:
            raise ValueError(f"width must be >= 0, got {width}")
        out: List[Perturbation] = []
        for _ in range(width):
            move = self.random_reassignment(binding, rng)
            if move is not None:
                out.append((move,))
        return tuple(out)
