"""The strategy registry: every binding algorithm as declarative data.

The paper's contribution is a *family* of binders — B-INIT, B-ITER, the
pressure-aware Q_P pass — evaluated against a spread of baselines (PCC,
min-cut, UAS, annealing, branch and bound, exhaustive search, random
sampling).  Before this module, only four of them were reachable from
the experiment engine, each through a hand-written ``_run_*`` shim
returning an ad-hoc tuple; adding an algorithm meant touching the
runner, the CLI's ``choices=``, and every analysis script separately.

Now an algorithm registers **once** as a :class:`Strategy`:

* a unique ``name`` (the ``BindJob.algorithm`` string, the CLI
  argument, the analysis column key);
* a typed, validated config ``schema`` — shared keys like ``quality``,
  ``max_evals``, ``deadline``, ``iter_starts``, and ``seed`` are
  declared through the reusable :data:`QUALITY_FIELD` /
  :data:`BUDGET_FIELDS` / :data:`SEED_FIELD` fragments so every
  session-backed strategy spells budgets the same way;
* a ``run`` callable returning a uniform :class:`StrategyResult`
  (latency, transfers, seconds, the placement map, evaluation/search
  stats, and strategy-specific ``extras``).

Everything downstream — :func:`repro.runner.jobs.execute_job`, the
``repro-bind run``/``bind`` CLI, table generation, caching, budget
knobs, resilience, and telemetry — dispatches through the registry, so
"add an algorithm" is a single registration here.

The built-in strategies import their algorithm modules lazily inside
``run`` (the baselines import ``runner.progress``, and the runner
dispatches strategies; a module-level import would close that cycle).
Results are **bit-identical** to calling the library entry points
directly: the golden differential suite and the registry smoke tests
pin that.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

from ..datapath.model import Datapath
from ..dfg.graph import Dfg

__all__ = [
    "ConfigField",
    "ConfigError",
    "Strategy",
    "StrategyResult",
    "register_strategy",
    "get_strategy",
    "strategy_names",
    "iter_strategies",
    "run_strategy",
    "session_stats",
    "substrate_scope",
    "QUALITY_FIELD",
    "BUDGET_FIELDS",
    "SEED_FIELD",
]

#: JSON-scalar types a config value may take (``None`` is always legal
#: and means "unset, use the strategy default").
_SCALARS = (str, int, float, bool, type(None))


class ConfigError(ValueError):
    """A config mapping violates a strategy's schema."""


@dataclass(frozen=True)
class ConfigField:
    """One typed key of a strategy's config schema.

    Attributes:
        name: the config key (``BindJob`` config entry, CLI ``--set``).
        type: expected scalar type; ``int`` values are accepted for
            ``float`` fields, ``bool`` is *not* accepted for ``int``
            (a schedule budget of ``True`` is a bug, not a 1).
        default: documented default the strategy applies when the key
            is absent — informational; validation never injects it, so
            explicitly-set and absent keys cache under different job
            keys only when the caller actually set them.
        help: one-line description (rendered by ``repro-bind
            strategies``).
        minimum: optional inclusive lower bound for numeric fields.
        check: optional extra validator; raises ``ValueError`` to
            reject (used for quality-spec strings).
    """

    name: str
    type: type
    default: Any = None
    help: str = ""
    minimum: Optional[float] = None
    check: Optional[Callable[[Any], Any]] = None

    def validate(self, value: Any) -> None:
        """Raise :class:`ConfigError` unless ``value`` fits this field."""
        if value is None:
            return
        if self.type is float:
            ok = isinstance(value, (int, float)) and not isinstance(
                value, bool
            )
        elif self.type is int:
            ok = isinstance(value, int) and not isinstance(value, bool)
        else:
            ok = isinstance(value, self.type)
        if not ok:
            raise ConfigError(
                f"config key {self.name!r} expects {self.type.__name__}, "
                f"got {value!r}"
            )
        if self.minimum is not None and value < self.minimum:
            raise ConfigError(
                f"config key {self.name!r} must be >= {self.minimum}, "
                f"got {value!r}"
            )
        if self.check is not None:
            try:
                self.check(value)
            except ValueError as exc:
                raise ConfigError(
                    f"config key {self.name!r} rejected {value!r}: {exc}"
                ) from exc


def _check_quality_spec(value: str) -> None:
    from .quality import QualitySpec

    QualitySpec.parse(value)


#: Shared schema fragments — declare budgets/quality/seeds once so every
#: strategy spells them identically (and the CLI can map flags 1:1).
QUALITY_FIELD = ConfigField(
    "quality",
    str,
    default="qu+qm",
    help="QualitySpec string driving the descent passes "
    "(qu+qm | qu | qm | latency | lm | qp:<B>, '+'-joined)",
    check=_check_quality_spec,
)

BUDGET_FIELDS: Tuple[ConfigField, ...] = (
    ConfigField(
        "max_evals",
        int,
        minimum=1,
        help="evaluation budget on the search session",
    ),
    ConfigField(
        "deadline",
        float,
        minimum=0.0,
        help="wall-clock budget on the search session, in seconds",
    ),
)

SEED_FIELD = ConfigField(
    "seed", int, default=0, help="RNG seed (stochastic strategies)"
)


@dataclass(frozen=True)
class StrategyResult:
    """The uniform outcome every strategy returns.

    Attributes:
        latency: schedule length ``L`` of the final binding.
        transfers: data-transfer count ``M``.
        seconds: the strategy's own wall-clock measurement.
        binding: the operation-to-cluster placement map (``None`` for
            reference points without one, e.g. ``centralized``).
        stats: evaluation/search counters in the one canonical shape —
            ``eval_hits``/``eval_misses``/``evaluations`` plus an
            optional ``search_stats`` dict (``SearchStats.as_dict()``).
            Empty for strategies that bypass the session layer.
        extras: strategy-specific JSON scalars (``nodes_explored``,
            ``proven_optimal``, ``cut_size``, ``component_cap``, ...),
            surfaced on ``JobResult.extras`` and the run store.
        status: how the search ended — ``complete`` (natural
            termination), ``deadline`` (an evaluation budget or
            wall-clock deadline cut it; the result is the legal
            best-so-far), ``cancelled`` (a cooperative cancel cut it,
            same guarantee), or ``salvaged`` (rebuilt from a dead
            worker's snapshot sidecar; never produced by a strategy
            itself).  Budget exhaustion is a *tag*, not an exception.
    """

    latency: int
    transfers: int
    seconds: float
    binding: Optional[Dict[str, int]] = None
    stats: Dict[str, Any] = field(default_factory=dict)
    extras: Dict[str, Any] = field(default_factory=dict)
    status: str = "complete"


#: A strategy's run callable: ``(dfg, datapath, config) -> result``.
RunFn = Callable[[Dfg, Datapath, Dict[str, Any]], StrategyResult]


@dataclass(frozen=True)
class Strategy:
    """One registered binding algorithm.

    Attributes:
        name: unique registry key (also the job/CLI algorithm string).
        run: the run callable.
        schema: typed config fields; with ``strict`` (default) any
            config key outside the schema is rejected at
            ``BindJob.make``/CLI time.
        description: one-line summary for listings.
        hidden: exclude from public listings and parity checks (the
            ``debug-*`` failure-injection hooks); still dispatchable.
        strict: reject unknown config keys (debug hooks accept any).
        homogeneous_only: the strategy raises on heterogeneous
            datapaths (min-cut); informational, surfaced in listings.
    """

    name: str
    run: RunFn
    schema: Tuple[ConfigField, ...] = ()
    description: str = ""
    hidden: bool = False
    strict: bool = True
    homogeneous_only: bool = False

    def field_names(self) -> Tuple[str, ...]:
        return tuple(f.name for f in self.schema)

    def validate_config(self, config: Mapping[str, Any]) -> Dict[str, Any]:
        """Check ``config`` against the schema; return it as a dict.

        Values must be JSON scalars; unknown keys are rejected for
        strict strategies; ``None`` is always accepted (meaning "use
        the default").  Defaults are *not* injected — job cache keys
        contain exactly what the caller set.
        """
        fields = {f.name: f for f in self.schema}
        out: Dict[str, Any] = {}
        for key, value in config.items():
            if not isinstance(value, _SCALARS):
                raise TypeError(
                    f"config value {key}={value!r} is not a JSON scalar"
                )
            spec = fields.get(key)
            if spec is None:
                if self.strict:
                    raise ConfigError(
                        f"strategy {self.name!r} does not accept config "
                        f"key {key!r}; known keys: "
                        f"{sorted(fields) or 'none'}"
                    )
            else:
                spec.validate(value)
            out[key] = value
        return out

    def __call__(
        self, dfg: Dfg, datapath: Datapath, **config: Any
    ) -> StrategyResult:
        """Validate ``config`` and run the strategy in-process."""
        return self.run(dfg, datapath, self.validate_config(config))


# ----------------------------------------------------------------------
# The registry proper.
# ----------------------------------------------------------------------

_REGISTRY: Dict[str, Strategy] = {}


def register_strategy(strategy: Strategy, replace: bool = False) -> Strategy:
    """Register ``strategy`` under its name.

    Args:
        strategy: the strategy to add.
        replace: allow overwriting an existing registration (tests and
            downstream experiments re-binding a name); without it a
            duplicate name raises.
    """
    if not replace and strategy.name in _REGISTRY:
        raise ValueError(f"strategy {strategy.name!r} already registered")
    _REGISTRY[strategy.name] = strategy
    return strategy


def get_strategy(name: str) -> Strategy:
    """Look up a strategy; raises ``ValueError`` with the known names."""
    strategy = _REGISTRY.get(name)
    if strategy is None:
        raise ValueError(
            f"unknown algorithm {name!r}; "
            f"known: {sorted(_REGISTRY)}"
        )
    return strategy


def strategy_names(include_hidden: bool = False) -> Tuple[str, ...]:
    """Registered names, sorted; debug hooks only on request."""
    return tuple(
        sorted(
            name
            for name, s in _REGISTRY.items()
            if include_hidden or not s.hidden
        )
    )


def iter_strategies(include_hidden: bool = False) -> Iterator[Strategy]:
    """Iterate registered strategies in name order."""
    for name in strategy_names(include_hidden=include_hidden):
        yield _REGISTRY[name]


def run_strategy(
    name: str, dfg: Dfg, datapath: Datapath, **config: Any
) -> StrategyResult:
    """Convenience: resolve ``name`` and run it with ``config``."""
    return get_strategy(name)(dfg, datapath, **config)


# ----------------------------------------------------------------------
# Session plumbing shared by the built-in strategies.
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class _Substrate:
    """A shared evaluation substrate imposed on nested strategy runs."""

    evaluator: Any = None
    cancel: Any = None


#: Stack of active substrates; the portfolio meta-strategy pushes one so
#: every racer's internally-built session shares its evaluator memo and
#: cancel token.  Sessions are only shareable across runs on the *same*
#: ``(dfg, datapath)`` cell — the scope holder guarantees that.
_SUBSTRATE: List[_Substrate] = []


@contextmanager
def substrate_scope(evaluator: Any = None, cancel: Any = None):
    """Share ``evaluator``/``cancel`` with sessions built in this scope.

    Every :func:`_make_session` call (and the tabu shim's explicit
    session construction) inside the ``with`` block adopts the given
    evaluator and cancel token instead of building fresh ones.  This is
    how ``portfolio`` races N strategies on one memo under one budget
    without threading a session parameter through every run callable.
    """
    _SUBSTRATE.append(_Substrate(evaluator=evaluator, cancel=cancel))
    try:
        yield
    finally:
        _SUBSTRATE.pop()


def _make_session(
    dfg: Dfg,
    datapath: Datapath,
    config: Mapping[str, Any],
    evaluator: Any = None,
):
    """One budgeted :class:`SearchSession` from a job config.

    ``max_evals``/``deadline`` map to the session's ``max_evaluations``
    / ``deadline_seconds``; absent (or None) keys leave the session
    unbudgeted, which is bit-identical to the historical unbudgeted
    runs.  An active :func:`substrate_scope` supplies the evaluator and
    cancel token; an explicit ``evaluator`` argument wins over both.
    """
    from .session import SearchSession

    kwargs: Dict[str, Any] = {}
    if config.get("max_evals") is not None:
        kwargs["max_evaluations"] = int(config["max_evals"])
    if config.get("deadline") is not None:
        kwargs["deadline_seconds"] = float(config["deadline"])
    if _SUBSTRATE:
        substrate = _SUBSTRATE[-1]
        if substrate.evaluator is not None:
            kwargs["evaluator"] = substrate.evaluator
        if substrate.cancel is not None:
            kwargs["cancel"] = substrate.cancel
    if evaluator is not None:
        kwargs["evaluator"] = evaluator
    return SearchSession(dfg, datapath, **kwargs)


def session_stats(session) -> Dict[str, Any]:
    """The one canonical stats shape for ``StrategyResult.stats``.

    Every session-backed strategy reports through this function —
    previously ``_run_pressure`` shaped its own dict next to the
    runner's ``_eval_stats``, and the two could (and did) drift.
    """
    stats = session.eval_stats
    return {
        "eval_hits": stats.hits,
        "eval_misses": stats.misses,
        "evaluations": stats.evaluations,
        "search_stats": session.stats.as_dict(),
    }


# ----------------------------------------------------------------------
# Built-in strategies.  Algorithm modules are imported lazily inside
# each run function (see the module docstring for why).
# ----------------------------------------------------------------------

def _run_pcc(dfg: Dfg, datapath: Datapath, config: Dict[str, Any]):
    from ..baselines.pcc import pcc_bind

    session = _make_session(dfg, datapath, config)
    result = pcc_bind(
        dfg,
        datapath,
        improve=bool(config.get("improve", True)),
        session=session,
    )
    return StrategyResult(
        latency=result.latency,
        transfers=result.num_transfers,
        seconds=result.seconds,
        binding=dict(result.binding),
        stats=session_stats(session),
        extras={"component_cap": result.component_cap},
        status=session.result_status(),
    )


#: ``direction`` config value -> the driver's ``directions`` sequence.
_DIRECTIONS = {
    "both": (False, True),
    "forward": (False,),
    "reverse": (True,),
}


def _sweep_kwargs(
    dfg: Dfg, datapath: Datapath, config: Mapping[str, Any]
) -> Dict[str, Any]:
    """Map declarative B-INIT sweep knobs onto driver keyword arguments.

    Absent keys produce no kwargs, so a knob-less config is bit-identical
    to the historical ``bind``/``bind_initial`` defaults.  The ``lpr``
    key accepts ``"sweep"`` (the default full sweep), ``"lcp"`` (pin to
    the critical-path length), or a positive integer rendered as a
    string.
    """
    kwargs: Dict[str, Any] = {}
    lpr = config.get("lpr")
    if lpr is not None and lpr != "sweep":
        if lpr == "lcp":
            from ..schedule.bounds import latency_bounds

            kwargs["lpr_values"] = [
                latency_bounds(dfg, datapath).critical_path
            ]
        else:
            kwargs["lpr_values"] = [int(lpr)]
    direction = config.get("direction")
    if direction is not None:
        kwargs["directions"] = _DIRECTIONS[direction]
    if (
        config.get("gamma") is not None
        or config.get("share_aware") is not None
    ):
        from ..core.cost import CostParams

        defaults = CostParams()
        kwargs["params"] = CostParams(
            gamma=(
                float(config["gamma"])
                if config.get("gamma") is not None
                else defaults.gamma
            ),
            share_aware=(
                bool(config["share_aware"])
                if config.get("share_aware") is not None
                else defaults.share_aware
            ),
        )
    if config.get("ordering") is not None:
        from ..core.ordering import make_ordering

        kwargs["ordering"] = make_ordering(
            config["ordering"], seed=int(config.get("ordering_seed") or 0)
        )
    return kwargs


def _run_b_init(dfg: Dfg, datapath: Datapath, config: Dict[str, Any]):
    from ..core.driver import bind_initial, default_lpr_values

    session = _make_session(dfg, datapath, config)
    sweep = _sweep_kwargs(dfg, datapath, config)
    result = bind_initial(dfg, datapath, session=session, **sweep)
    lpr_values = sweep.get("lpr_values")
    if lpr_values is None:
        lpr_values = default_lpr_values(dfg, datapath)
    return StrategyResult(
        latency=result.latency,
        transfers=result.num_transfers,
        seconds=result.init_seconds,
        binding=dict(result.binding),
        stats=session_stats(session),
        extras={
            "lpr": result.lpr,
            "reverse": result.reverse,
            "sweep_points": len(lpr_values),
        },
        status=session.result_status(),
    )


def _run_b_iter(dfg: Dfg, datapath: Datapath, config: Dict[str, Any]):
    from ..core.driver import bind

    session = _make_session(dfg, datapath, config)
    result = bind(
        dfg,
        datapath,
        iter_starts=config.get("iter_starts"),
        quality=config.get("quality") or "qu+qm",
        session=session,
        **_sweep_kwargs(dfg, datapath, config),
    )
    extras: Dict[str, Any] = {}
    if result.iter_result is not None:
        extras["iterations"] = result.iter_result.iterations
    return StrategyResult(
        latency=result.latency,
        transfers=result.num_transfers,
        seconds=result.init_seconds + result.iter_seconds,
        binding=dict(result.binding),
        stats=session_stats(session),
        extras=extras,
        status=session.result_status(),
    )


def _run_pressure(dfg: Dfg, datapath: Datapath, config: Dict[str, Any]):
    """B-ITER followed by the pressure-aware Q_P pass, one shared session.

    The whole pipeline — B-INIT sweep, Q_U/Q_M descent, Q_P descent —
    shares a single session, so the pressure pass starts with the
    descent's evaluation memo warm and the reported counters cover the
    complete run.
    """
    from ..core.driver import bind
    from ..core.pressure_aware import pressure_aware_improvement

    budget = int(config.get("budget", 4))
    session = _make_session(dfg, datapath, config)
    t0 = time.perf_counter()
    base = bind(
        dfg,
        datapath,
        iter_starts=config.get("iter_starts"),
        quality=config.get("quality") or "qu+qm",
        session=session,
    )
    refined = pressure_aware_improvement(
        dfg, datapath, base.binding, budget=budget, session=session
    )
    return StrategyResult(
        latency=refined.schedule.latency,
        transfers=refined.schedule.num_transfers,
        seconds=time.perf_counter() - t0,
        binding=dict(refined.binding),
        stats=session_stats(session),
        extras={"budget": budget, "qp_iterations": refined.iterations},
        status=session.result_status(),
    )


def _run_tabu(dfg: Dfg, datapath: Datapath, config: Dict[str, Any]):
    """B-INIT seed, then the tabu walk on a (possibly budgeted) session.

    The seed sweep runs unbudgeted — the budget governs the *walk*, as
    in the golden budgeted capture — but the walk's session adopts the
    seed session's evaluator so the memo carries over.
    """
    from ..core.driver import bind_initial
    from ..core.tabu import tabu_improvement

    t0 = time.perf_counter()
    seed_session = _make_session(dfg, datapath, {})
    seed = bind_initial(dfg, datapath, session=seed_session)
    session = _make_session(
        dfg, datapath, config, evaluator=seed_session.evaluator
    )
    result = tabu_improvement(
        dfg,
        datapath,
        seed.binding,
        sideways_budget=int(config.get("sideways_budget", 20)),
        max_steps=int(config.get("max_steps", 2000)),
        session=session,
    )
    return StrategyResult(
        latency=result.schedule.latency,
        transfers=result.schedule.num_transfers,
        seconds=time.perf_counter() - t0,
        binding=dict(result.binding),
        stats=session_stats(session),
        extras={"steps": result.iterations},
        status=session.result_status(),
    )


def _run_annealing(dfg: Dfg, datapath: Datapath, config: Dict[str, Any]):
    from ..baselines.annealing import annealing_bind

    session = _make_session(dfg, datapath, config)
    result = annealing_bind(
        dfg,
        datapath,
        seed=int(config.get("seed") or 0),
        session=session,
    )
    return StrategyResult(
        latency=result.latency,
        transfers=result.num_transfers,
        seconds=result.seconds,
        binding=dict(result.binding),
        stats=session_stats(session),
        extras={
            "moves_tried": result.moves_tried,
            "moves_accepted": result.moves_accepted,
        },
        status=session.result_status(),
    )


def _run_branch_and_bound(
    dfg: Dfg, datapath: Datapath, config: Dict[str, Any]
):
    from ..baselines.branch_and_bound import branch_and_bound_bind

    session = _make_session(dfg, datapath, config)
    result = branch_and_bound_bind(
        dfg,
        datapath,
        max_nodes=int(config.get("max_nodes") or 2_000_000),
        session=session,
    )
    return StrategyResult(
        latency=result.latency,
        transfers=result.num_transfers,
        seconds=result.seconds,
        binding=dict(result.binding),
        stats=session_stats(session),
        extras={
            "nodes_explored": result.nodes_explored,
            "proven_optimal": result.proven_optimal,
        },
        status=session.result_status(),
    )


def _run_mincut(dfg: Dfg, datapath: Datapath, config: Dict[str, Any]):
    from ..baselines.mincut import mincut_bind

    result = mincut_bind(
        dfg,
        datapath,
        balance_tolerance=float(config.get("balance_tolerance") or 0.25),
        max_rounds=int(config.get("max_rounds") or 500),
    )
    return StrategyResult(
        latency=result.latency,
        transfers=result.num_transfers,
        seconds=result.seconds,
        binding=dict(result.binding),
        extras={"cut_size": result.cut_size},
    )


def _run_uas(dfg: Dfg, datapath: Datapath, config: Dict[str, Any]):
    from ..baselines.uas import uas_bind

    result = uas_bind(dfg, datapath)
    return StrategyResult(
        latency=result.latency,
        transfers=result.num_transfers,
        seconds=result.seconds,
        binding=dict(result.binding),
        extras={"native_latency": result.native_latency},
    )


def _run_centralized(dfg: Dfg, datapath: Datapath, config: Dict[str, Any]):
    from ..baselines.centralized import centralized_latency

    t0 = time.perf_counter()
    schedule = centralized_latency(dfg, datapath)
    return StrategyResult(
        latency=schedule.latency,
        transfers=schedule.num_transfers,
        seconds=time.perf_counter() - t0,
        binding=None,  # the reference point has no clustered binding
    )


def _run_exhaustive(dfg: Dfg, datapath: Datapath, config: Dict[str, Any]):
    from ..baselines.exhaustive import exhaustive_bind

    result = exhaustive_bind(
        dfg,
        datapath,
        max_space=int(config.get("max_space") or 2_000_000),
    )
    return StrategyResult(
        latency=result.latency,
        transfers=result.num_transfers,
        seconds=result.seconds,
        binding=dict(result.binding),
        extras={"evaluated": result.evaluated},
    )


def _run_random(dfg: Dfg, datapath: Datapath, config: Dict[str, Any]):
    from ..baselines.random_binding import random_search

    result = random_search(
        dfg,
        datapath,
        samples=int(config.get("samples") or 100),
        seed=int(config.get("seed") or 0),
    )
    return StrategyResult(
        latency=result.latency,
        transfers=result.num_transfers,
        seconds=result.seconds,
        binding=dict(result.binding),
        extras={"samples": result.samples},
    )


# Failure-injection hooks for the executor tests (an always-raising
# job, a sleeper for timeout tests, a hard crash for worker-loss
# tests).  Registered here — hidden — so worker processes know them
# without test-side setup, and so the runner has no dispatch table of
# its own.

def _run_debug_fail(dfg: Dfg, datapath: Datapath, config: Dict[str, Any]):
    raise RuntimeError("injected failure (debug-fail job)")


def _run_debug_sleep(dfg: Dfg, datapath: Datapath, config: Dict[str, Any]):
    time.sleep(float(config.get("seconds", 60.0)))
    return StrategyResult(latency=0, transfers=0, seconds=0.0)


def _run_debug_crash(dfg: Dfg, datapath: Datapath, config: Dict[str, Any]):
    # Simulates a worker dying mid-job (segfault, OOM kill): exit the
    # process without cleanup so ProcessPoolExecutor sees a lost worker.
    import os

    os._exit(17)


def _run_debug_cancel(dfg: Dfg, datapath: Datapath, config: Dict[str, Any]):
    # A cooperative waiter: spins until the process-global cancel token
    # fires (watchdog SIGTERM, client abort) or ``seconds`` elapse,
    # then reports how it ended.  With ``heartbeat=False`` it also goes
    # silent, so watchdog stall detection and the TERM -> cooperative
    # return path are testable without a real slow search.
    from ..resilience.anytime import global_token, maybe_heartbeat

    deadline = time.monotonic() + float(config.get("seconds", 30.0))
    beat = bool(config.get("heartbeat", True))
    token = global_token()
    while time.monotonic() < deadline and not token.cancelled:
        if beat:
            maybe_heartbeat("debug-cancel")
        time.sleep(0.02)
    return StrategyResult(
        latency=0,
        transfers=0,
        seconds=0.0,
        status="cancelled" if token.cancelled else "complete",
    )


_ITER_STARTS_FIELD = ConfigField(
    "iter_starts",
    int,
    minimum=1,
    help="B-INIT sweep candidates to seed descents from "
    "(absent/None = all distinct candidates)",
)


def _check_choice(*choices: str) -> Callable[[str], None]:
    def check(value: str) -> None:
        if value not in choices:
            raise ValueError(f"expected one of {', '.join(choices)}")

    return check


def _check_lpr(value: str) -> None:
    if value in ("sweep", "lcp"):
        return
    if not value.isdigit() or int(value) < 1:
        raise ValueError("expected 'sweep', 'lcp', or a positive integer")


#: The declarative B-INIT sweep knobs shared by ``b-init``/``b-iter`` —
#: what the A1/A2/A3/A5/A6 ablations vary, now expressible as plain job
#: config instead of direct ``repro.core`` imports.
SWEEP_FIELDS: Tuple[ConfigField, ...] = (
    ConfigField(
        "lpr",
        str,
        default="sweep",
        help="L_PR stretch: 'sweep' (full §3.1.3 sweep), 'lcp' (pin to "
        "the critical path), or a positive integer",
        check=_check_lpr,
    ),
    ConfigField(
        "direction",
        str,
        default="both",
        help="binding direction(s) to sweep: both | forward | reverse",
        check=_check_choice("both", "forward", "reverse"),
    ),
    ConfigField(
        "ordering",
        str,
        help="greedy visit order override: paper | reverse | mobility "
        "| random (default: the paper's per-direction order)",
        check=_check_choice("paper", "reverse", "mobility", "random"),
    ),
    ConfigField(
        "ordering_seed",
        int,
        default=0,
        help="seed for ordering=random",
    ),
    ConfigField(
        "gamma",
        float,
        default=1.1,
        minimum=0.0,
        help="transfer-cost overweight in the greedy cost function",
    ),
    ConfigField(
        "share_aware",
        bool,
        default=True,
        help="share-aware transfer-cost accounting (ablation A6)",
    ),
)


def _check_racers(value: str) -> None:
    from .portfolio import parse_racers

    parse_racers(value)


def _run_portfolio(dfg: Dfg, datapath: Datapath, config: Dict[str, Any]):
    from .portfolio import run_portfolio

    return run_portfolio(dfg, datapath, config)

register_strategy(Strategy(
    name="pcc",
    run=_run_pcc,
    schema=(
        ConfigField("improve", bool, default=True,
                    help="run PCC's iterative-improvement phase"),
    ),
    description="Partial Component Clustering (Desoli; the paper's "
    "baseline): component formation, placement, approximate descent",
))

register_strategy(Strategy(
    name="b-init",
    run=_run_b_init,
    schema=SWEEP_FIELDS,
    description="the driver's initial-binding sweep over L_PR stretch "
    "values and binding directions (paper §3.1)",
))

register_strategy(Strategy(
    name="b-iter",
    run=_run_b_iter,
    schema=(_ITER_STARTS_FIELD, QUALITY_FIELD) + SWEEP_FIELDS
    + BUDGET_FIELDS,
    description="B-INIT sweep plus multi-start boundary-perturbation "
    "descent under a declarative quality spec (paper §3.2)",
))

register_strategy(Strategy(
    name="portfolio",
    run=_run_portfolio,
    schema=(
        ConfigField(
            "racers",
            str,
            help="strategies to race: comma-separated names, or a JSON "
            'array of names / {"name": ..., "config": {...}} objects',
            check=_check_racers,
        ),
        ConfigField(
            "eta", int, default=2, minimum=2,
            help="halving factor: survivors per rung = ceil(n / eta)",
        ),
        ConfigField(
            "rung_evals", int, minimum=1,
            help="per-racer evaluation allotment of the first rung "
            "(default: max_evals split evenly across rungs)",
        ),
        SEED_FIELD,
    ) + BUDGET_FIELDS,
    description="races registered strategy configs on one shared "
    "evaluation substrate with successive halving, returning the best "
    "racer's binding (meta-strategy)",
))

register_strategy(Strategy(
    name="pressure",
    run=_run_pressure,
    schema=(
        ConfigField("budget", int, default=4, minimum=1,
                    help="per-cluster register budget for Q_P"),
        _ITER_STARTS_FIELD,
        QUALITY_FIELD,
    ) + BUDGET_FIELDS,
    description="B-ITER followed by the pressure-aware Q_P descent on "
    "one shared session (extension)",
))

register_strategy(Strategy(
    name="tabu",
    run=_run_tabu,
    schema=(
        ConfigField("sideways_budget", int, default=20, minimum=0,
                    help="non-improving steps before the walk stops"),
        ConfigField("max_steps", int, default=2000, minimum=1,
                    help="hard cap on committed steps"),
    ) + BUDGET_FIELDS,
    description="tabu walk over the boundary neighbourhood from the "
    "B-INIT seed (footnote 4 variant)",
))

register_strategy(Strategy(
    name="annealing",
    run=_run_annealing,
    schema=(SEED_FIELD,) + BUDGET_FIELDS,
    description="Leupers-style simulated annealing over random "
    "single-op reassignments (seeded, deterministic)",
))

register_strategy(Strategy(
    name="branch-and-bound",
    run=_run_branch_and_bound,
    schema=(
        ConfigField("max_nodes", int, default=2_000_000, minimum=1,
                    help="search-tree node budget"),
    ) + BUDGET_FIELDS,
    description="exact depth-first search with admissible lower-bound "
    "pruning, seeded by the B-INIT incumbent",
))

register_strategy(Strategy(
    name="mincut",
    run=_run_mincut,
    schema=(
        ConfigField("balance_tolerance", float, default=0.25, minimum=0.0,
                    help="allowed relative load imbalance"),
        ConfigField("max_rounds", int, default=500, minimum=1,
                    help="cap on committed improvement moves"),
    ),
    description="Capitanio-style balanced min-cut partitioning "
    "(homogeneous clusters only)",
    homogeneous_only=True,
))

register_strategy(Strategy(
    name="uas",
    run=_run_uas,
    schema=(),
    description="Özer-style Unified Assign-and-Schedule: one greedy "
    "cycle-by-cycle binding+scheduling pass",
))

register_strategy(Strategy(
    name="centralized",
    run=_run_centralized,
    schema=(),
    description="latency of the equivalent one-cluster machine (lower "
    "reference point; produces no clustered binding)",
))

register_strategy(Strategy(
    name="exhaustive",
    run=_run_exhaustive,
    schema=(
        ConfigField("max_space", int, default=2_000_000, minimum=1,
                    help="refuse search spaces larger than this"),
    ),
    description="enumerate every binding in the target-set cross "
    "product (small DFGs; optimality oracle)",
))

register_strategy(Strategy(
    name="random",
    run=_run_random,
    schema=(
        ConfigField("samples", int, default=100, minimum=1,
                    help="random bindings to draw"),
        SEED_FIELD,
    ),
    description="best-of-N uniformly random bindings (sanity floor)",
))

register_strategy(Strategy(
    name="debug-fail", run=_run_debug_fail, hidden=True, strict=False,
    description="failure injection: always raises",
))
register_strategy(Strategy(
    name="debug-sleep", run=_run_debug_sleep, hidden=True, strict=False,
    description="failure injection: sleeps (timeout tests)",
))
register_strategy(Strategy(
    name="debug-crash", run=_run_debug_crash, hidden=True, strict=False,
    description="failure injection: kills the worker process",
))
register_strategy(Strategy(
    name="debug-cancel", run=_run_debug_cancel, hidden=True, strict=False,
    description="failure injection: waits for a cooperative cancel "
    "(optionally without heartbeats, to trip the watchdog)",
))
