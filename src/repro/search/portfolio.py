"""Portfolio racing: successive halving over registered strategies.

The paper's B-ITER is one point in a family of search configurations
(orderings, quality weights, multistart widths, tabu tenures).  This
module races N of them — any registered strategy config — under **one**
budget on **one** shared evaluation substrate, hyperband-style:

* the race runs in *rungs*; every surviving racer's cumulative
  evaluation allotment grows at each rung;
* at each rung boundary survivors are ranked by best-so-far ``(L, M)``
  lexicographically and the losing ``1 - 1/eta`` fraction is killed;
* the budget freed by the kills flows to the leaders — the final
  survivor's last rung receives the whole remaining ledger.

One :func:`~repro.search.registry.substrate_scope` spans the race, so
every racer's internally-built :class:`~repro.search.session.
SearchSession` adopts the portfolio's evaluator memo and cancel token.
A racer "continued" at a higher rung is re-run from scratch with a
larger ``max_evals``: the searches are deterministic, so the re-run
replays its previous trajectory as a prefix — answered by the shared
memo, at memo-lookup cost — and only the tail does new scheduling work.
The budget ledger therefore charges each racer its *cumulative decision
count*, not the sum over re-runs.

Budget conservation is at the same granularity as the underlying
sessions: a racer polls its budget at descent-round boundaries, so one
rung can overshoot its allotment by at most one round.  Racers that
finish a rung without exhausting it (natural convergence) are not
re-run — their result cannot change.

Cancellation (:class:`~repro.resilience.anytime.CancelToken`, PR 9) is
honoured at every racer-run boundary *and* inside each racer via the
shared token: a cut portfolio returns the best racer so far with an
honest ``cancelled`` tag.
"""

from __future__ import annotations

import json
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..datapath.model import Datapath
from ..dfg.graph import Dfg
from .registry import (
    ConfigError,
    StrategyResult,
    get_strategy,
    session_stats,
    substrate_scope,
)

__all__ = [
    "RacerSpec",
    "Rung",
    "parse_racers",
    "plan_rungs",
    "run_portfolio",
    "DEFAULT_BUDGET",
]

#: Total evaluation-decision budget when the job config sets none.
DEFAULT_BUDGET = 2000


@dataclass(frozen=True)
class RacerSpec:
    """One entrant: a registered strategy name plus a fixed config."""

    label: str
    name: str
    config: Tuple[Tuple[str, Any], ...] = ()

    def config_dict(self) -> Dict[str, Any]:
        return dict(self.config)


@dataclass(frozen=True)
class Rung:
    """One successive-halving rung of the race plan.

    Attributes:
        index: 0-based rung number.
        survivors: racers entering this rung.
        increment: per-survivor cumulative evaluation allotment *added*
            at this rung (the execution clamps it to the remaining
            ledger, and replaces the final rung's increment with the
            whole remaining ledger — the reinvestment step).
    """

    index: int
    survivors: int
    increment: int


def parse_racers(value: Any) -> Tuple[RacerSpec, ...]:
    """Parse the ``racers`` config value into validated specs.

    Accepts a comma-separated list of strategy names
    (``"b-iter,tabu"``) or a JSON array whose items are names or
    ``{"name": ..., "config": {...}, "label": ...}`` objects.  Every
    name is resolved against the registry and every config validated
    against its strategy's schema; duplicate labels are disambiguated
    with ``#1``/``#2`` ordinals.  Raises ``ValueError`` on anything
    malformed.
    """
    if isinstance(value, str):
        text = value.strip()
        if not text:
            raise ValueError("portfolio needs a non-empty 'racers' list")
        if text.startswith("["):
            try:
                items = json.loads(text)
            except json.JSONDecodeError as exc:
                raise ValueError(f"racers is not valid JSON: {exc}")
        else:
            items = [part.strip() for part in text.split(",") if part.strip()]
    elif value is None:
        raise ValueError("portfolio needs a non-empty 'racers' list")
    else:
        items = list(value)
    if not isinstance(items, list) or not items:
        raise ValueError("portfolio needs a non-empty 'racers' list")

    parsed: List[Tuple[Optional[str], str, Dict[str, Any]]] = []
    for item in items:
        if isinstance(item, str):
            label, name, config = None, item, {}
        elif isinstance(item, dict):
            unknown = set(item) - {"name", "config", "label"}
            if unknown:
                raise ValueError(
                    f"racer entry has unknown keys {sorted(unknown)}; "
                    "allowed: name, config, label"
                )
            name = item.get("name")
            if not isinstance(name, str) or not name:
                raise ValueError(f"racer entry {item!r} has no 'name'")
            label = item.get("label")
            config = item.get("config") or {}
            if not isinstance(config, dict):
                raise ValueError(f"racer {name!r}: config must be an object")
        else:
            raise ValueError(
                f"racer entry {item!r} is neither a name nor an object"
            )
        if name == "portfolio":
            raise ValueError("a portfolio cannot race itself")
        strategy = get_strategy(name)  # raises with the known names
        parsed.append((label, name, strategy.validate_config(config)))

    bases = [label or name for label, name, _ in parsed]
    total = Counter(bases)
    seen: Counter = Counter()
    specs = []
    for base, (_, name, config) in zip(bases, parsed):
        if total[base] > 1:
            seen[base] += 1
            base = f"{base}#{seen[base]}"
        specs.append(
            RacerSpec(
                label=base,
                name=name,
                config=tuple(sorted(config.items())),
            )
        )
    return tuple(specs)


def plan_rungs(
    n_racers: int,
    budget: int,
    eta: int = 2,
    rung_evals: Optional[int] = None,
) -> Tuple[Rung, ...]:
    """The successive-halving schedule for ``n_racers`` under ``budget``.

    Survivor counts follow ``n_{i+1} = ceil(n_i / eta)`` down to one.
    With ``rung_evals`` set, rung *i* adds ``rung_evals * eta**i``
    evaluations per survivor (the classic geometric ramp); otherwise
    the budget is split evenly across rungs, each rung's share split
    across its survivors.  Pure function — the CLI's ``--dry-run``
    prints exactly this plan.
    """
    if n_racers < 1:
        raise ValueError("need at least one racer")
    if eta < 2:
        raise ValueError("eta must be >= 2")
    if budget < 1:
        raise ValueError("budget must be >= 1")
    counts = [n_racers]
    while counts[-1] > 1:
        counts.append(-(-counts[-1] // eta))
    rungs = []
    for i, n in enumerate(counts):
        if rung_evals is not None:
            increment = rung_evals * eta**i
        else:
            increment = max(1, budget // (len(counts) * n))
        rungs.append(Rung(index=i, survivors=n, increment=increment))
    return tuple(rungs)


@dataclass
class _RacerState:
    """Mutable per-racer bookkeeping across rungs."""

    index: int
    spec: RacerSpec
    alive: bool = True
    oneshot: bool = False
    converged: bool = False
    spent: int = 0  # cumulative decisions charged to the ledger
    allocation: int = 0  # cumulative max_evals granted
    rungs: int = 0  # rungs actually run
    eliminated_at: Optional[int] = None
    best: Optional[Tuple[int, int]] = None
    binding: Optional[Dict[str, int]] = None
    status: str = "pending"
    error: Optional[str] = None
    last: Optional[StrategyResult] = None
    trajectory: List[List[int]] = field(default_factory=list)


def _rank(states: List[_RacerState]) -> List[_RacerState]:
    """Scored racers, best first: lexicographic ``(L, M)``, stable."""
    scored = [s for s in states if s.best is not None]
    return sorted(scored, key=lambda s: (s.best[0], s.best[1], s.index))


def run_portfolio(
    dfg: Dfg,
    datapath: Datapath,
    config: Dict[str, Any],
    *,
    cancel: Any = None,
) -> StrategyResult:
    """Race the configured strategies; return the winner's result.

    See the module docstring for the algorithm.  ``cancel`` overrides
    the process-global token (tests inject a
    :class:`~repro.resilience.anytime.CountdownToken` here).
    """
    from ..resilience.anytime import Budget
    from .session import SearchSession

    try:
        racers = parse_racers(config.get("racers"))
    except ValueError as exc:
        raise ConfigError(f"portfolio: {exc}") from None
    eta = int(config.get("eta") or 2)
    budget = int(config.get("max_evals") or DEFAULT_BUDGET)
    rung_evals = config.get("rung_evals")
    seed = config.get("seed")
    deadline = config.get("deadline")

    t0 = time.perf_counter()
    env = Budget.from_env()
    token = cancel if cancel is not None else env.token
    bounds = [
        b
        for b in (deadline, env.remaining_seconds())
        if b is not None
    ]
    deadline_at = time.perf_counter() + min(bounds) if bounds else None

    # The parent session owns the shared evaluator (and the
    # REPRO_EVAL_CACHE warm/persist hooks); racers adopt it through the
    # substrate scope below.
    parent = SearchSession(dfg, datapath, cancel=token)
    plan = plan_rungs(
        len(racers),
        budget,
        eta=eta,
        rung_evals=int(rung_evals) if rung_evals is not None else None,
    )
    states = [_RacerState(index=i, spec=r) for i, r in enumerate(racers)]
    charged = 0
    stopped: Optional[str] = None
    rung_log: List[Dict[str, Any]] = []

    def advance(state: _RacerState, increment: int) -> int:
        """Run one racer at its next allotment; return the ledger charge."""
        strategy = get_strategy(state.spec.name)
        fields = strategy.field_names()
        child = state.spec.config_dict()
        if "max_evals" in fields:
            state.allocation += increment
            child["max_evals"] = state.allocation
        else:
            state.oneshot = True
            if state.rungs > 0:
                return 0  # deterministic: a re-run cannot change
        if state.rungs > 0 and state.converged:
            return 0  # finished under its previous cap; ditto
        if seed is not None and "seed" in fields and "seed" not in child:
            child["seed"] = int(seed)
        if deadline_at is not None and "deadline" in fields:
            child["deadline"] = max(
                0.0, deadline_at - time.perf_counter()
            )
        before = (
            parent.evaluator.stats.evaluations
            if parent.evaluator is not None
            else None
        )
        run_t0 = time.perf_counter()
        try:
            result = strategy.run(
                dfg, datapath, strategy.validate_config(child)
            )
        except Exception as exc:  # one dead racer must not kill the race
            state.alive = False
            state.status = "error"
            state.error = f"{type(exc).__name__}: {exc}"
            return 0
        finally:
            parent.stats.add_phase_seconds(
                f"racer:{state.spec.label}",
                time.perf_counter() - run_t0,
            )
        state.rungs += 1
        state.last = result
        state.status = result.status
        search = (
            (result.stats.get("search_stats") or {}) if result.stats else {}
        )
        decisions = search.get("evaluations")
        if decisions is not None:
            charge = max(0, int(decisions) - state.spent)
            state.spent = max(state.spent, int(decisions))
        elif before is not None:
            charge = max(0, parent.evaluator.stats.evaluations - before)
            state.spent += charge
        else:
            charge = 0
        state.converged = (
            result.status == "complete"
            and not search.get("budget_exhausted")
            and not search.get("deadline_exceeded")
        )
        key = (result.latency, result.transfers)
        if state.best is None or key < state.best:
            state.best = key
            state.binding = (
                dict(result.binding) if result.binding is not None else None
            )
        state.trajectory.append([state.spent, state.best[0], state.best[1]])
        return charge

    with substrate_scope(evaluator=parent.evaluator, cancel=token):
        for i, rung in enumerate(plan):
            runners = [s for s in states if s.alive]
            if not runners:
                break
            final_rung = i + 1 == len(plan)
            for state in runners:
                # Salvageability: a stop signal only halts the race once
                # some racer has produced a best-so-far.  Before that,
                # the first racer runs anyway — its session shares the
                # (already fired) token, so it is cut almost immediately
                # and still returns a legal result to salvage.
                have_result = any(s.best is not None for s in states)
                if token is not None and token.cancelled and have_result:
                    stopped = "cancelled"
                    break
                if (
                    deadline_at is not None
                    and time.perf_counter() >= deadline_at
                    and have_result
                ):
                    stopped = "deadline"
                    break
                remaining = budget - charged
                if remaining <= 0:
                    stopped = "budget"
                    break
                increment = (
                    remaining
                    if final_rung
                    else min(rung.increment, remaining)
                )
                charged += advance(state, increment)
                if token is not None and token.cancelled:
                    stopped = "cancelled"
                    break
            if stopped is not None:
                break
            ranked = _rank(states)
            if not ranked:
                break  # every racer errored out
            survivors = plan[i + 1].survivors if not final_rung else 1
            for loser in ranked[survivors:]:
                if loser.alive:
                    loser.alive = False
                    loser.eliminated_at = i
            rung_log.append({
                "rung": i,
                "increment": rung.increment,
                "ranking": [
                    [s.spec.label, s.best[0], s.best[1], s.spent]
                    for s in ranked
                ],
                "eliminated": [
                    s.spec.label
                    for s in ranked[survivors:]
                    if s.eliminated_at == i
                ],
            })

    ranked = _rank(states)
    if not ranked:
        details = "; ".join(
            f"{s.spec.label}: {s.error or s.status}" for s in states
        )
        raise RuntimeError(f"every portfolio racer failed ({details})")
    winner = ranked[0]

    # Snapshot/persist first: the salvage sidecar and the on-disk
    # outcome store see the winner before the counters are rewritten
    # (parent.evaluate below touches the parent's own counters).
    if winner.binding is not None and winner.best is not None:
        parent.note_best(
            winner.binding,
            winner.best,
            parent.evaluate(winner.binding),
        )
    parent.persist()

    # Fold the race into the parent session's telemetry: summed charged
    # decisions, the winner's trajectory (so trajectory validation sees
    # one legal search curve), per-racer accounting for /metrics.
    stats = parent.stats
    stats.evaluations = sum(s.spent for s in states)
    if parent.evaluator is not None:
        eval_totals = parent.evaluator.stats
        stats.cache_hits = eval_totals.hits
        stats.cache_misses = eval_totals.misses
    winner_search = (
        (winner.last.stats.get("search_stats") or {})
        if winner.last is not None and winner.last.stats
        else {}
    )
    stats.best_trajectory = [
        (n, tuple(q)) for n, q in winner_search.get("best_trajectory", [])
    ]
    stats.segments = list(winner_search.get("segments", []))
    for s in states:
        stats.record_racer(
            s.spec.label,
            strategy=s.spec.name,
            evaluations=s.spent,
            rungs=s.rungs,
            best_latency=s.best[0] if s.best is not None else None,
            best_transfers=s.best[1] if s.best is not None else None,
        )
    stats.cancelled = stopped == "cancelled" or (
        token is not None and token.cancelled
    )
    stats.deadline_exceeded = stopped == "deadline" or bool(
        winner_search.get("deadline_exceeded")
    )
    stats.budget_exhausted = stopped == "budget" or bool(
        winner_search.get("budget_exhausted")
    )

    per_racer = {
        s.spec.label: {
            "strategy": s.spec.name,
            "evaluations": s.spent,
            "allocation": s.allocation,
            "rungs": s.rungs,
            "best": list(s.best) if s.best is not None else None,
            "status": s.status,
            "error": s.error,
            "eliminated_at": s.eliminated_at,
        }
        for s in states
    }
    trajectories = {s.spec.label: s.trajectory for s in states}
    extras = {
        "winner": winner.spec.label,
        "winner_strategy": winner.spec.name,
        "racers": len(states),
        "rungs": len(rung_log),
        "budget": budget,
        "eta": eta,
        "charged": charged,
        "stopped": stopped,
        "rung_log": json.dumps(
            rung_log, sort_keys=True, separators=(",", ":")
        ),
        "per_racer": json.dumps(
            per_racer, sort_keys=True, separators=(",", ":")
        ),
        "trajectories": json.dumps(
            trajectories, sort_keys=True, separators=(",", ":")
        ),
    }
    return StrategyResult(
        latency=winner.best[0],
        transfers=winner.best[1],
        seconds=time.perf_counter() - t0,
        binding=winner.binding,
        stats=session_stats(parent),
        extras=extras,
        status=parent.result_status(),
    )
