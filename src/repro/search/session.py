"""The :class:`SearchSession`: one evaluation engine per search job.

Before this substrate existed, every algorithm module hand-wired the
same stack: check ``fastpath_enabled()``, build an ``Evaluator`` (or
fall back to ``bind_dfg`` + ``list_schedule``), thread hit/miss
counters out, and invent its own seed/budget handling.  A session does
all of it once:

* resolves the fast/naive decision (``fast`` argument overrides the
  ``REPRO_FASTPATH`` environment gate) and builds a single shared
  :class:`~repro.core.evalcache.Evaluator` for the fast path;
* counts every candidate evaluation and memo hit/miss into one
  :class:`~repro.search.stats.SearchStats`;
* owns the RNG (seeded, for reproducible stochastic strategies);
* enforces optional evaluation budgets and wall-clock deadlines —
  strategies poll :meth:`exhausted` at round boundaries, so with no
  budget configured trajectories are bit-identical to the unbudgeted
  originals;
* warm-starts and persists the evaluation memo through an on-disk
  :class:`~repro.search.diskcache.OutcomeStore` when the
  ``REPRO_EVAL_CACHE`` environment variable names a directory (the
  runner sets it so process-pool workers share outcomes across
  repeated sweeps of one ``(DFG, datapath)``).

A session is bound to one ``(DFG, datapath)`` pair; sharing one across
the sweep, every multi-start descent, and a pressure pass is what makes
the memo effective.  Sharing across *different* DFGs or datapaths is an
error (the memo key is the placement tuple alone).
"""

from __future__ import annotations

import os
import random
import time
from contextlib import contextmanager
from typing import Iterator, Mapping, Optional, Sequence, Tuple

from ..core.binding import Binding
from ..core.evalcache import EvalStats, Evaluator
from ..datapath.model import Datapath
from ..dfg.graph import Dfg
from ..dfg.transform import bind_dfg
from ..resilience.anytime import (
    SNAPSHOT_ENV,
    AnytimeSnapshot,
    Budget,
    CancelToken,
    SearchCancelled,
    SnapshotWriter,
    maybe_heartbeat,
)
from ..resilience.faults import perturb
from ..resilience.validate import (
    InvariantViolation,
    validate_outcome,
    validation_enabled,
)
from ..schedule.fastpath import fastpath_enabled
from ..schedule.vectorpath import (
    vector_batch_threshold,
    vector_context_for,
    vectorpath_enabled,
)
from ..schedule.list_scheduler import list_schedule
from ..schedule.schedule import Schedule
from .diskcache import EVAL_CACHE_ENV, OutcomeStore, outcome_cache_key
from .stats import SearchStats

__all__ = ["SearchSession"]


class SearchSession:
    """Shared evaluation engine, RNG, budget, and telemetry for one job.

    Args:
        dfg: the original DFG (no transfers).
        datapath: the clustered machine.
        fast: use the fast evaluation engine (default: on, unless
            ``REPRO_FASTPATH=0``).  Bit-equivalent either way.
        evaluator: adopt an existing evaluator (implies ``fast``); the
            legacy ``evaluator=`` arguments of the algorithm entry
            points route here.
        seed: seed for :attr:`rng` (stochastic strategies draw from the
            session RNG so one seed pins the whole job).
        max_evaluations: optional budget on candidate evaluations;
            checked by strategies at round boundaries via
            :meth:`exhausted`.
        deadline_seconds: optional wall-clock budget, measured from
            session construction.
        stats: adopt an existing stats object (rarely needed; tests).
        validate: re-check every unique outcome against the checked
            invariants of :mod:`repro.resilience.validate` (default:
            the ``REPRO_VALIDATE`` environment gate, off).  A fast-path
            violation records a structured incident on :attr:`stats`,
            evicts the poisoned memo entry, and degrades that
            evaluation to the naive engine instead of crashing the
            sweep.
    """

    def __init__(
        self,
        dfg: Dfg,
        datapath: Datapath,
        fast: Optional[bool] = None,
        evaluator: Optional[Evaluator] = None,
        seed: Optional[int] = None,
        max_evaluations: Optional[int] = None,
        deadline_seconds: Optional[float] = None,
        stats: Optional[SearchStats] = None,
        validate: Optional[bool] = None,
        budget: Optional[Budget] = None,
        cancel: Optional[CancelToken] = None,
    ) -> None:
        self.dfg = dfg
        self.datapath = datapath
        if evaluator is not None:
            self.evaluator: Optional[Evaluator] = evaluator
        elif fast if fast is not None else fastpath_enabled():
            self.evaluator = Evaluator(dfg, datapath)
        else:
            self.evaluator = None
        self.stats = stats if stats is not None else SearchStats()
        self.rng = random.Random(seed)
        # One end-to-end Budget: explicit arguments are merged with the
        # environment's (``REPRO_DEADLINE_AT``, set by service workers
        # from the client deadline), tightest bound wins, and the
        # cancel token defaults to the process-global one so a SIGTERM
        # cooperatively cancels every in-flight session.
        if budget is None:
            budget = Budget.from_env()
        if max_evaluations is None:
            max_evaluations = budget.max_evaluations
        self.max_evaluations = max_evaluations
        remaining = budget.remaining_seconds()
        bounds = [
            b
            for b in (deadline_seconds, remaining)
            if b is not None
        ]
        self._deadline: Optional[float] = (
            time.perf_counter() + min(bounds) if bounds else None
        )
        self._cancel: Optional[CancelToken] = (
            cancel if cancel is not None else budget.token
        )
        self.best_snapshot: Optional[AnytimeSnapshot] = None
        snapshot_path = os.environ.get(SNAPSHOT_ENV, "").strip()
        self._snapshot_writer: Optional[SnapshotWriter] = (
            SnapshotWriter(snapshot_path) if snapshot_path else None
        )
        self.validate = (
            validation_enabled() if validate is None else validate
        )
        self._validated: set = set()
        self._vector_disabled = False
        self._names: Optional[Tuple[str, ...]] = None
        self._store: Optional[OutcomeStore] = None
        self._store_key: Optional[str] = None
        if self.evaluator is not None:
            root = os.environ.get(EVAL_CACHE_ENV, "").strip()
            if root:
                self._store = OutcomeStore(root)
                self._store_key = outcome_cache_key(dfg, datapath)
                self._store.warm(self.evaluator, self._store_key)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    @property
    def fast(self) -> bool:
        """Whether this session evaluates through the fast engine."""
        return self.evaluator is not None

    def evaluate(self, binding: Mapping[str, int]) -> object:
        """Evaluate one candidate binding.

        Returns a :class:`~repro.schedule.fastpath.FastOutcome` on the
        fast path, a full :class:`Schedule` on the naive path — both
        expose ``latency``, ``num_transfers``, and
        ``completion_profile()``, which is all the quality vectors
        read.

        With :attr:`validate` on, each unique outcome is re-checked
        against the invariants of :func:`repro.resilience.validate.
        validate_outcome`; a fast-path violation is recorded as a
        structured incident and that evaluation silently degrades to
        the naive engine (whose :class:`Schedule` is quality-vector
        compatible), so a poisoned memo entry or fastpath bug costs
        one slow evaluation, not a wrong sweep.
        """
        stats = self.stats
        stats.evaluations += 1
        evaluator = self.evaluator
        if evaluator is not None:
            hits_before = evaluator.cache.hits
            out = evaluator.evaluate(binding)
            if evaluator.cache.hits > hits_before:
                stats.cache_hits += 1
            else:
                stats.cache_misses += 1
            if self.validate:
                placement = evaluator.placement_of(binding)
                if placement not in self._validated:
                    try:
                        validate_outcome(
                            self.dfg, self.datapath, binding, out
                        )
                    except InvariantViolation as exc:
                        stats.record_incident(
                            "session.evaluate",
                            "invariant-violation",
                            f"{exc}; degraded to naive engine",
                        )
                        evaluator.cache.discard(placement)
                        return self._naive_evaluate(binding)
                    self._validated.add(placement)
            return out
        out = self._naive_evaluate(binding)
        if self.validate:
            key = tuple(binding[n] for n in self._op_names())
            if key not in self._validated:
                try:
                    validate_outcome(self.dfg, self.datapath, binding, out)
                except InvariantViolation as exc:
                    # The naive engine is the reference — there is
                    # nothing to degrade to.  Record and raise.
                    stats.record_incident(
                        "session.evaluate",
                        "invariant-violation",
                        str(exc),
                    )
                    raise
                self._validated.add(key)
        return out

    def evaluate_many(self, bindings: Sequence[Mapping[str, int]]) -> list:
        """Evaluate a batch of candidates; outcomes in input order.

        Large batches are served by the vectorized engine
        (:mod:`repro.schedule.vectorpath`) when available: the memo is
        probed first, only uncached placements are packed into lanes,
        and one structure-of-arrays sweep schedules them all, inserting
        the outcomes back into the memo.  The vector engine is
        bit-identical to the scalar fast path, and the accounting —
        evaluation count, memo hit/miss split — matches the sequential
        loop exactly.  A vector-engine error records an incident and
        degrades the session to the scalar path for good.

        Otherwise (numpy absent, ``REPRO_VECTORPATH=0``, validation on,
        or too few uncached candidates to be worth packing) the batch
        is *executed* in placement-delta order on the scalar fast path:
        candidates are sorted by their difference from the batch's
        first placement, so moves of the same operation(s) run back to
        back and the evaluator's incremental transfer re-derivation
        (which patches from the previously missed placement) touches
        the smallest possible neighbourhood on each step, instead of
        ping-ponging across the whole binding.

        Evaluation is pure and memoized per placement, so the execution
        order and engine are unobservable: outcomes, the evaluation
        count, and the memo hit/miss split are bit-identical to a
        sequential loop — only the wall-clock changes.  The returned
        list always matches the input order, so selection loops
        (first-strict-improvement tie-breaks included) are unaffected.
        """
        bindings = list(bindings)
        evaluator = self.evaluator
        if evaluator is None or len(bindings) < 2:
            results = [self.evaluate(b) for b in bindings]
            if bindings:
                self.stats.record_engine_batch(
                    "naive" if evaluator is None else "scalar",
                    len(bindings),
                )
            return results
        vectorized = self._evaluate_batch_vector(bindings)
        if vectorized is not None:
            return vectorized
        self.stats.record_engine_batch("scalar", len(bindings))
        placements = [evaluator.placement_of(b) for b in bindings]
        base = placements[0]

        def delta(i: int) -> Tuple[Tuple[int, int], ...]:
            return tuple(
                (pos, cluster)
                for pos, cluster in enumerate(placements[i])
                if cluster != base[pos]
            )

        order = sorted(range(len(bindings)), key=delta)
        results: list = [None] * len(bindings)
        cancel = self._cancel
        for i in order:
            if cancel is not None and cancel.cancelled:
                self.stats.cancelled = True
                raise SearchCancelled(
                    "cooperative cancel during scalar batch"
                )
            results[i] = self.evaluate(bindings[i])
        return results

    def _evaluate_batch_vector(
        self, bindings: Sequence[Mapping[str, int]]
    ) -> Optional[list]:
        """Serve one batch through the vector engine, or ``None``.

        ``None`` means "use the scalar path": the gate is off, numpy or
        a pipelined resource model is missing, validation is on (the
        validator wants per-candidate degrade semantics), a previous
        vector error disabled the engine for this session, or too few
        of the batch's placements miss the memo to be worth packing.

        Accounting is identical to the scalar loop: the memo is probed
        without counting while planning the batch, then every input
        binding is booked as one evaluation — a memo hit unless it is
        the first occurrence of an uncached placement — and the
        evaluator's own counters advance by the same amounts.  Freshly
        scheduled outcomes enter the memo (and therefore any on-disk
        :class:`OutcomeStore` merged at :meth:`persist` time) exactly
        as scalar misses would.
        """
        if self._vector_disabled or self.validate or not vectorpath_enabled():
            return None
        evaluator = self.evaluator
        assert evaluator is not None
        cache = evaluator.cache
        placements = [evaluator.placement_of(b) for b in bindings]
        memo: dict = {}
        missing: list = []
        for placement in placements:
            if placement in memo:
                continue
            out = cache.peek(placement)
            memo[placement] = out
            if out is None:
                missing.append(placement)
        if len(missing) < vector_batch_threshold():
            return None
        vctx = vector_context_for(evaluator.ctx)
        if vctx is None:
            return None
        try:
            perturb("vectorpath.evaluate")
            outcomes = vctx.evaluate_batch(missing, poll=self._poll_cancel)
        except SearchCancelled:
            # A cooperative cancel or in-sweep deadline is not an
            # engine error: surface it so the descent loop keeps its
            # best-so-far instead of degrading the session to scalar.
            raise
        except Exception as exc:  # noqa: BLE001 — degrade, never crash
            self._vector_disabled = True
            self.stats.record_incident(
                "session.evaluate_many",
                "vector-engine-error",
                f"{type(exc).__name__}: {exc}; "
                "batch degraded to the scalar engine",
            )
            return None
        for placement, out in zip(missing, outcomes):
            memo[placement] = out
            cache.put(placement, out)
        evaluator.evaluations += len(missing)
        stats = self.stats
        stats.record_engine_batch("vector", len(missing))
        first_miss = set(missing)
        results = []
        for placement in placements:
            stats.evaluations += 1
            if placement in first_miss:
                first_miss.discard(placement)
                stats.cache_misses += 1
                cache.misses += 1
            else:
                stats.cache_hits += 1
                cache.hits += 1
            results.append(memo[placement])
        return results

    def _naive_evaluate(self, binding: Mapping[str, int]) -> Schedule:
        """Reference evaluation through ``bind_dfg`` + list scheduling."""
        return list_schedule(
            bind_dfg(
                self.dfg, binding, interconnect=self.datapath.interconnect
            ),
            self.datapath,
        )

    def _op_names(self) -> Tuple[str, ...]:
        """Regular-operation names in DFG order (naive-path memo key)."""
        if self._names is None:
            self._names = tuple(op.name for op in self.dfg.operations())
        return self._names

    def schedule(self, binding: Mapping[str, int]) -> Schedule:
        """Full, bit-identical :class:`Schedule` of a committed binding."""
        if self.evaluator is not None:
            return self.evaluator.schedule(binding)
        if not isinstance(binding, Binding):
            binding = Binding(dict(binding))
        return list_schedule(
            bind_dfg(
                self.dfg, binding, interconnect=self.datapath.interconnect
            ),
            self.datapath,
        )

    # ------------------------------------------------------------------
    # Budgets and telemetry
    # ------------------------------------------------------------------
    def exhausted(self) -> bool:
        """True when the budget, deadline, or cancel token cut the search.

        Strategies poll this at loop boundaries only — with no budget
        configured and no cancellation (the default) it is always False
        and the search trajectory is untouched.  Each poll also
        refreshes the worker heartbeat (``REPRO_HEARTBEAT``, throttled,
        no-op when unset), so round boundaries double as liveness
        proof for the service watchdog.
        """
        maybe_heartbeat("round")
        if self._cancel is not None and self._cancel.cancelled:
            self.stats.cancelled = True
            return True
        if (
            self.max_evaluations is not None
            and self.stats.evaluations >= self.max_evaluations
        ):
            self.stats.budget_exhausted = True
            return True
        if (
            self._deadline is not None
            and time.perf_counter() > self._deadline
        ):
            self.stats.deadline_exceeded = True
            return True
        return False

    def _poll_cancel(self) -> None:
        """In-sweep cancellation probe (vector engine cycle loop).

        Unlike :meth:`exhausted` this is called *inside* one batch
        sweep, where "stop" cannot mean "return a result" — it raises
        :class:`SearchCancelled`, the descent loop catches it, and the
        session's best-so-far stands.
        """
        if self._cancel is not None and self._cancel.cancelled:
            self.stats.cancelled = True
            raise SearchCancelled("cooperative cancel during batch sweep")
        if (
            self._deadline is not None
            and time.perf_counter() > self._deadline
        ):
            self.stats.deadline_exceeded = True
            raise SearchCancelled("deadline during batch sweep")

    def result_status(self) -> str:
        """How this session's search ended: the result-status tag.

        ``cancelled`` when a cooperative cancel cut it, ``deadline``
        when an evaluation budget or wall-clock deadline did, else
        ``complete``.  Strategies stamp this onto their
        ``StrategyResult`` — budget exhaustion is a *tag* on a legal
        best-so-far result, never an exception.
        """
        if self.stats.cancelled:
            return "cancelled"
        if self.stats.deadline_exceeded or self.stats.budget_exhausted:
            return "deadline"
        return "complete"

    def note_best(
        self,
        binding: Mapping[str, int],
        quality: Sequence[int],
        out: object,
    ) -> None:
        """Refresh the best-so-far snapshot from a committed binding.

        Called by the descent loop at round boundaries (seed + every
        commit).  The session keeps the best across *all* its descents
        by ``(latency, transfers)`` — quality vectors from different
        passes are not mutually comparable, ``(L, M)`` is — and appends
        each improvement to the checksummed snapshot sidecar when
        ``REPRO_SNAPSHOT`` names one, so a crash at any point leaves a
        salvageable last-known-good placement.
        """
        latency = int(out.latency)
        transfers = int(out.num_transfers)
        prev = self.best_snapshot
        if prev is not None and (latency, transfers) >= (
            prev.latency,
            prev.transfers,
        ):
            return
        snapshot = AnytimeSnapshot(
            binding=dict(binding),
            quality=tuple(int(q) for q in quality),
            latency=latency,
            transfers=transfers,
            evaluations=self.stats.evaluations,
            stats={
                "cache_hits": self.stats.cache_hits,
                "cache_misses": self.stats.cache_misses,
            },
        )
        self.best_snapshot = snapshot
        if self._snapshot_writer is not None:
            self._snapshot_writer.write(snapshot)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Accumulate the wall-clock of a named phase into the stats."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.stats.add_phase_seconds(name, time.perf_counter() - t0)

    @property
    def eval_stats(self) -> EvalStats:
        """The underlying evaluator's counters (zeros on the naive path)."""
        if self.evaluator is not None:
            return self.evaluator.stats
        return EvalStats()

    # ------------------------------------------------------------------
    # Cross-process outcome sharing
    # ------------------------------------------------------------------
    def persist(self) -> int:
        """Merge this session's evaluation outcomes into the on-disk
        store (no-op unless ``REPRO_EVAL_CACHE`` was set at
        construction).  Returns the number of entries written."""
        if self._store is None or self.evaluator is None:
            return 0
        assert self._store_key is not None
        return self._store.merge(self.evaluator, self._store_key)
