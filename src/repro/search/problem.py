"""The immutable search instance: :class:`BindingProblem`.

Bundles what every strategy needs to agree on — the DFG, the machine,
operations pinned to fixed clusters, and the quality spec — so a
problem can be handed to any strategy (or several, for comparison)
without re-plumbing arguments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from ..core.binding import Binding
from ..datapath.model import Datapath
from ..dfg.graph import Dfg
from .neighborhood import Neighborhood
from .quality import QualitySpec
from .session import SearchSession

__all__ = ["BindingProblem"]


@dataclass(frozen=True)
class BindingProblem:
    """One binding-search instance.

    Attributes:
        dfg: the original DFG (no transfers).
        datapath: the clustered machine.
        frozen: operations pinned to their current cluster — excluded
            from every neighbourhood (incremental re-binding of a
            partially fixed block).
        quality: the lexicographic quality spec driving improvement
            passes (B-ITER's paper default: ``"qu+qm"``).
    """

    dfg: Dfg
    datapath: Datapath
    frozen: FrozenSet[str] = field(default_factory=frozenset)
    quality: QualitySpec = field(
        default_factory=lambda: QualitySpec.parse("qu+qm")
    )

    def __post_init__(self) -> None:
        known = {op.name for op in self.dfg.regular_operations()}
        unknown = self.frozen - known
        if unknown:
            raise ValueError(
                f"frozen names not in the DFG: {sorted(unknown)}"
            )

    def session(self, **kwargs) -> SearchSession:
        """Build a :class:`SearchSession` for this problem."""
        return SearchSession(self.dfg, self.datapath, **kwargs)

    def neighborhood(self, use_pairs: bool = True) -> Neighborhood:
        """Build the move generator honouring the frozen set."""
        return Neighborhood(
            self.dfg, self.datapath, use_pairs=use_pairs, frozen=self.frozen
        )

    def validate(self, binding: Binding) -> None:
        """Check a binding is complete and valid for this problem."""
        from ..core.binding import validate_binding

        validate_binding(binding, self.dfg, self.datapath)
