"""Declarative quality vectors: the :class:`QualitySpec` registry.

The paper's central plug-in point is the quality function (Section
3.2): B-ITER's two passes, the latency-only ablation, and our Q_P
extension are the *same* descent under different lexicographic vectors.
This module names those vectors, so strategies take a spec string
(``"qu+qm"``, ``"qp"``) instead of each wiring its own callables.

Every registered vector evaluates a generic *outcome* — either a
:class:`~repro.schedule.fastpath.FastOutcome` (fast path) or a full
:class:`~repro.schedule.schedule.Schedule` (naive path).  Both expose
``latency``, ``num_transfers``, and ``completion_profile()``; the
pressure vector additionally dispatches on ``pressure_per_cluster()``
(fast) vs :func:`repro.analysis.pressure.register_pressure` (naive),
which is what lets the pressure-aware descent ride the memoized fast
path.  Both dispatch arms are bit-identical by construction (enforced
differentially in ``tests/search/test_pressure_fastpath.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from ..core.quality import QualityVector, quality_qm, quality_qu

__all__ = [
    "QualityFn",
    "QualitySpec",
    "register_quality",
    "register_parametric_quality",
    "pressure_vector",
]

#: outcome (FastOutcome or Schedule) -> lexicographic vector.
QualityFn = Callable[[object], QualityVector]

#: name -> zero-arg factory producing the vector function.
_REGISTRY: Dict[str, Callable[[], QualityFn]] = {}

#: base name -> factory taking the ``name:arg`` string argument.
_PARAMETRIC: Dict[str, Callable[[str], QualityFn]] = {}


def register_quality(name: str, factory: Callable[[], QualityFn]) -> None:
    """Register a quality vector under ``name``.

    ``factory`` is called each time a spec resolves, so stateful
    vectors get a fresh closure per search.
    """
    _REGISTRY[name] = factory


def register_parametric_quality(
    name: str, factory: Callable[[str], QualityFn]
) -> None:
    """Register a parameterized vector addressed as ``name:arg`` in
    specs (e.g. ``"qp:4"`` — Q_P with a register budget of 4)."""
    _PARAMETRIC[name] = factory


def pressure_vector(budget: int) -> QualityFn:
    """``Q_P = (L, pressure excess over budget, N_MV)``.

    Works on both evaluation outcome types: a ``FastOutcome`` computes
    per-cluster liveness directly from its integer arrays; a naive
    ``Schedule`` goes through the reference
    :func:`~repro.analysis.pressure.register_pressure` analysis.
    """
    if budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")

    def quality(outcome: object) -> QualityVector:
        fast = getattr(outcome, "pressure_per_cluster", None)
        if fast is not None:
            per_cluster = fast()
        else:
            from ..analysis.pressure import register_pressure

            per_cluster = register_pressure(outcome).per_cluster
        excess = sum(
            max(0, peak - budget) for peak in per_cluster.values()
        )
        return (outcome.latency, excess, outcome.num_transfers)

    return quality


register_quality("qu", lambda: quality_qu)
register_quality("qm", lambda: quality_qm)
register_quality("latency", lambda: (lambda s: (s.latency,)))
register_quality("lm", lambda: (lambda s: (s.latency, s.num_transfers)))
register_parametric_quality("qp", lambda arg: pressure_vector(int(arg)))


@dataclass(frozen=True)
class QualitySpec:
    """A sequence of quality passes, by registered name.

    ``"qu+qm"`` is the paper's B-ITER (Q_U to convergence, then Q_M);
    single names run one pass.  Resolution happens at :meth:`functions`
    time so registrations made after parsing are visible.
    """

    passes: Tuple[str, ...]

    @classmethod
    def parse(cls, spec: str) -> "QualitySpec":
        names = tuple(p.strip() for p in spec.split("+") if p.strip())
        if not names:
            raise ValueError(f"unknown quality spec {spec!r}")
        for name in names:
            if name in _REGISTRY:
                continue
            base, sep, _ = name.partition(":")
            if not (sep and base in _PARAMETRIC):
                raise ValueError(f"unknown quality spec {spec!r}")
        return cls(passes=names)

    def functions(self) -> Tuple[QualityFn, ...]:
        """Resolve every pass to its vector function."""
        out = []
        for name in self.passes:
            if name in _REGISTRY:
                out.append(_REGISTRY[name]())
            else:
                base, _, arg = name.partition(":")
                out.append(_PARAMETRIC[base](arg))
        return tuple(out)
