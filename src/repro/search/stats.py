"""Unified search telemetry: the :class:`SearchStats` object.

Every strategy running through a :class:`~repro.search.session.
SearchSession` feeds the same counters — candidate evaluations,
evaluation-memo hits and misses, the best-so-far quality trajectory,
and per-phase wall-clock timings.  One object per session means a
driver call (sweep + multi-start descents) or a runner job reports one
coherent stats record instead of each algorithm forwarding its own
ad-hoc counter subset.

The counters are cumulative over the session.  Strategies that report
per-call numbers (``IterativeResult.evaluations`` is *this descent's*
count even when the session is shared) take a :meth:`snapshot` at
entry and report :meth:`since` deltas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

__all__ = ["SearchStats", "StatsSnapshot"]

#: (evaluations, cache_hits, cache_misses) at some point in time.
StatsSnapshot = Tuple[int, int, int]


@dataclass
class SearchStats:
    """Counters and trajectories of one search session.

    Attributes:
        evaluations: candidate bindings evaluated (memo hits included —
            this counts *decisions*, not schedules computed).
        cache_hits: evaluations answered by the evaluation memo
            (always 0 on the naive path, which has no memo).
        cache_misses: evaluations that had to schedule.
        best_trajectory: ``(evaluations-so-far, quality vector)`` at
            every point a strategy committed a new best — the search's
            convergence curve.
        segments: indices into ``best_trajectory`` where a new descent
            run began (a multi-start descent or a fresh quality pass
            legitimately restarts from a worse quality; within one
            segment the trajectory is strictly decreasing — the
            invariant ``repro.resilience.validate.validate_trajectory``
            checks).
        phase_seconds: accumulated wall-clock per named phase
            (``"b-init"``, ``"descend:qu"``, ...).
        budget_exhausted: an evaluation budget stopped the search.
        deadline_exceeded: a wall-clock deadline stopped the search.
        cancelled: a cooperative cancel (SIGTERM, client abort) stopped
            the search; the result is the legal best-so-far.
        incidents: structured records of caught invariant violations
            and degradations (see :mod:`repro.resilience.validate`);
            empty on a healthy run.
        engine_batches: batches served per evaluation engine
            (``"vector"``, ``"scalar"``, ``"naive"``) by
            ``SearchSession.evaluate_many`` — which engine actually ran
            each round.
        engine_candidates: candidates those batches carried, per
            engine; for ``"vector"`` this counts lanes actually
            scheduled (memo hits are planned out before packing).
        racers: per-racer accounting of a portfolio race, keyed by
            racer label; each value carries the racer's charged
            evaluation decisions, rungs survived, and best ``(L, M)``.
            Empty for every non-portfolio session, and omitted from
            :meth:`as_dict` in that case so the historical stats shape
            is untouched.
    """

    evaluations: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    best_trajectory: List[Tuple[int, Tuple[int, ...]]] = field(
        default_factory=list
    )
    segments: List[int] = field(default_factory=list)
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    budget_exhausted: bool = False
    deadline_exceeded: bool = False
    cancelled: bool = False
    incidents: List[Dict[str, str]] = field(default_factory=list)
    engine_batches: Dict[str, int] = field(default_factory=dict)
    engine_candidates: Dict[str, int] = field(default_factory=dict)
    racers: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def record_engine_batch(self, engine: str, candidates: int) -> None:
        """Book one ``evaluate_many`` batch against its serving engine."""
        self.engine_batches[engine] = self.engine_batches.get(engine, 0) + 1
        self.engine_candidates[engine] = (
            self.engine_candidates.get(engine, 0) + candidates
        )

    def snapshot(self) -> StatsSnapshot:
        """Current counter values, for later :meth:`since` deltas."""
        return (self.evaluations, self.cache_hits, self.cache_misses)

    def since(self, snap: StatsSnapshot) -> StatsSnapshot:
        """``(evaluations, hits, misses)`` accumulated since ``snap``."""
        return (
            self.evaluations - snap[0],
            self.cache_hits - snap[1],
            self.cache_misses - snap[2],
        )

    def record_best(self, quality: Tuple[int, ...]) -> None:
        """Append a committed improvement to the trajectory."""
        self.best_trajectory.append((self.evaluations, tuple(quality)))

    def begin_segment(self) -> None:
        """Mark the start of a new descent run on the trajectory.

        Strategies call this at entry (and at each quality-pass or
        multi-start restart), so validation knows where the strictly-
        decreasing runs of ``best_trajectory`` legitimately reset.
        """
        self.segments.append(len(self.best_trajectory))

    def record_incident(self, site: str, kind: str, detail: str) -> None:
        """Append a structured incident record (caught violation)."""
        self.incidents.append(
            {"site": site, "kind": kind, "detail": detail}
        )

    def add_phase_seconds(self, phase: str, seconds: float) -> None:
        self.phase_seconds[phase] = (
            self.phase_seconds.get(phase, 0.0) + seconds
        )

    def record_racer(self, label: str, **counters: Any) -> None:
        """Merge per-racer portfolio counters under ``label``."""
        self.racers.setdefault(label, {}).update(counters)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (runner store, CLI reporting)."""
        out = {
            "evaluations": self.evaluations,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "best_trajectory": [
                [n, list(q)] for n, q in self.best_trajectory
            ],
            "segments": list(self.segments),
            "phase_seconds": {
                k: round(v, 6) for k, v in self.phase_seconds.items()
            },
            "budget_exhausted": self.budget_exhausted,
            "deadline_exceeded": self.deadline_exceeded,
            "cancelled": self.cancelled,
            "incidents": [dict(i) for i in self.incidents],
            "engines": {
                name: {
                    "batches": self.engine_batches[name],
                    "candidates": self.engine_candidates.get(name, 0),
                }
                for name in sorted(self.engine_batches)
            },
        }
        if self.racers:
            out["racers"] = {
                label: dict(counters)
                for label, counters in sorted(self.racers.items())
            }
        return out
