"""repro.search — the strategy-independent binding-search substrate.

Every search algorithm in this repository — B-ITER's Q_U/Q_M descent,
the tabu walk, simulated annealing, PCC's cap sweep, branch and bound,
and the pressure-aware Q_P descent — explores the same space (complete
operation-to-cluster bindings) with the same exact evaluation (transfer
derivation + list scheduling).  This package owns everything that is
*not* a strategy decision:

* :class:`BindingProblem` — the immutable search instance: DFG,
  datapath, frozen operations, and a declarative quality spec;
* :class:`SearchSession` — builds and shares the fast-path
  ``SchedContext``/``Evaluator``/``EvalCache`` once per job, manages
  RNG seeding, evaluation budgets and wall-clock deadlines, and emits
  structured telemetry through one :class:`SearchStats` object;
* :class:`Neighborhood` — the boundary/candidate-move generation that
  B-ITER, tabu, and annealing previously re-implemented;
* :class:`QualitySpec` — registered lexicographic quality vectors
  (Q_U, Q_M, Q_P, latency, (L, M)) evaluated from either a
  :class:`~repro.schedule.fastpath.FastOutcome` or a naive
  :class:`~repro.schedule.schedule.Schedule`;
* :func:`steepest_descent` — the shared steepest-descent loop;
* :class:`OutcomeStore` — on-disk evaluation-outcome sharing across
  runner worker processes (``REPRO_EVAL_CACHE``);
* the **strategy registry** — every binding algorithm registered once
  as a :class:`Strategy` (name, typed config schema, uniform
  :class:`StrategyResult`), dispatched by the runner, the CLI, and the
  analysis layer (:mod:`repro.search.registry`).

See ``docs/SEARCH.md`` for the porting guide.
"""

from .descent import steepest_descent
from .diskcache import EVAL_CACHE_ENV, OutcomeStore, outcome_cache_key
from .neighborhood import Neighborhood
from .problem import BindingProblem
from .quality import (
    QualitySpec,
    pressure_vector,
    register_parametric_quality,
    register_quality,
)
from .registry import (
    ConfigError,
    ConfigField,
    Strategy,
    StrategyResult,
    get_strategy,
    iter_strategies,
    register_strategy,
    run_strategy,
    strategy_names,
)
from .session import SearchSession
from .stats import SearchStats

__all__ = [
    "BindingProblem",
    "SearchSession",
    "SearchStats",
    "Neighborhood",
    "QualitySpec",
    "register_quality",
    "register_parametric_quality",
    "pressure_vector",
    "steepest_descent",
    "OutcomeStore",
    "outcome_cache_key",
    "EVAL_CACHE_ENV",
    "ConfigError",
    "ConfigField",
    "Strategy",
    "StrategyResult",
    "register_strategy",
    "get_strategy",
    "strategy_names",
    "iter_strategies",
    "run_strategy",
]
