"""Min-cut partitioning binding (Capitanio-style baseline).

Capitanio, Dutt & Nicolau [MICRO-25] bind by classical balanced network
partitioning: minimize the number of DFG edges cut by the partition,
under a load-balance constraint, on *homogeneous* clusters.  The paper's
Section 4 critique — a minimum cut does not imply minimum latency — is
exactly what the Table 1 comparison demonstrates, so this baseline is
kept deliberately faithful to the cut-size objective:

1. seed partitions round-robin over a topological order (balanced);
2. Kernighan–Lin-style improvement: repeatedly apply the single best
   op move or pair swap that reduces cut size without violating the
   balance tolerance.

Raises on non-homogeneous datapaths, mirroring the original's
restriction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.binding import Binding, validate_binding
from ..datapath.model import Datapath
from ..dfg.graph import Dfg
from ..dfg.transform import bind_dfg
from ..runner.progress import timed
from ..schedule.list_scheduler import list_schedule
from ..schedule.schedule import Schedule

__all__ = ["MinCutResult", "mincut_bind"]


@dataclass(frozen=True)
class MinCutResult:
    """Outcome of the min-cut baseline."""

    binding: Binding
    schedule: Schedule
    cut_size: int
    seconds: float

    @property
    def latency(self) -> int:
        return self.schedule.latency

    @property
    def num_transfers(self) -> int:
        return self.schedule.num_transfers


def _cut_size(dfg: Dfg, bn: Dict[str, int]) -> int:
    return sum(1 for u, v in dfg.edges() if bn[u] != bn[v])


def mincut_bind(
    dfg: Dfg,
    datapath: Datapath,
    balance_tolerance: float = 0.25,
    max_rounds: int = 500,
) -> MinCutResult:
    """Bind by balanced min-cut partitioning.

    Args:
        dfg: the original DFG.
        datapath: must be homogeneous (all clusters identical), as in the
            original algorithm.
        balance_tolerance: allowed relative deviation of a cluster's
            operation count from the perfect balance.
        max_rounds: cap on committed improvement moves.

    Returns:
        A :class:`MinCutResult`; the schedule is produced afterwards by
        the standard list scheduler so ``L``/``M`` are comparable with
        the other algorithms.

    Raises:
        ValueError: if the datapath is not homogeneous.
    """
    if not datapath.is_homogeneous:
        raise ValueError(
            "min-cut binding requires homogeneous clusters (as in "
            "Capitanio et al.); use PCC or B-INIT for heterogeneous "
            "datapaths"
        )
    datapath.check_bindable(dfg)
    with timed() as timer:
        k = datapath.num_clusters
        names = list(dfg.topological_order())
        regular = [n for n in names if not dfg.operation(n).is_transfer]

        # Balanced seed: consecutive topological slices per cluster keeps
        # dependence chains together (better seed than round-robin).
        bn: Dict[str, int] = {}
        slice_size = (len(regular) + k - 1) // k
        for i, n in enumerate(regular):
            bn[n] = min(i // slice_size, k - 1)

        target = len(regular) / k
        hi = target * (1 + balance_tolerance)
        lo = target * (1 - balance_tolerance)
        counts = [0] * k
        for c in bn.values():
            counts[c] += 1

        def gain_of_move(n: str, c: int) -> int:
            """Cut-size reduction of moving ``n`` to cluster ``c``."""
            old = bn[n]
            delta = 0
            for m in dfg.predecessors(n) + dfg.successors(n):
                was_cut = bn[m] != old
                now_cut = bn[m] != c
                delta += was_cut - now_cut
            return delta

        for _ in range(max_rounds):
            best: Optional[Tuple[int, str, int]] = None
            for n in regular:
                for c in range(k):
                    if c == bn[n]:
                        continue
                    if counts[c] + 1 > hi or counts[bn[n]] - 1 < lo:
                        continue
                    gain = gain_of_move(n, c)
                    if gain > 0 and (best is None or gain > best[0]):
                        best = (gain, n, c)
            if best is None:
                break
            _, n, c = best
            counts[bn[n]] -= 1
            counts[c] += 1
            bn[n] = c

        binding = Binding(bn)
        validate_binding(binding, dfg, datapath)
        schedule = list_schedule(
            bind_dfg(dfg, binding, interconnect=datapath.interconnect),
            datapath,
        )
        return MinCutResult(
            binding=binding,
            schedule=schedule,
            cut_size=_cut_size(dfg, bn),
            seconds=timer.seconds,
        )
