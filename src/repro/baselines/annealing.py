"""Simulated-annealing binding (Leupers-style baseline).

Leupers [PACT 2000] binds by simulated annealing over random single-op
reassignments, with a detailed schedule latency as the energy.  We keep
the same skeleton: a seeded random initial binding, geometric cooling,
single-operation moves, and the exact list-schedule latency (with the
transfer count as a fractional tiebreak) as energy.  Deterministic for a
given seed.

Move generation and energy evaluation run through the
:mod:`repro.search` substrate: random reassignments come from
:meth:`~repro.search.neighborhood.Neighborhood.random_reassignment`
(which consumes the RNG exactly like the historical loop) and every
energy evaluation goes through a
:class:`~repro.search.session.SearchSession`, so the walk shares the
placement-keyed memo and shows up in the session's
:class:`~repro.search.stats.SearchStats`.  The walk revisits bindings
often (rejected moves leave the state unchanged, so the next proposal
perturbs the same base), which the memo absorbs.  The accept/reject
trajectory is unchanged — the fast path is bit-equivalent, so the RNG
consumption and therefore the whole walk are identical to the naive
path.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.binding import Binding, validate_binding
from ..core.evalcache import Evaluator
from ..datapath.model import Datapath
from ..dfg.graph import Dfg
from ..runner.progress import timed
from ..search.neighborhood import Neighborhood
from ..search.session import SearchSession
from ..schedule.schedule import Schedule

__all__ = ["AnnealingResult", "annealing_bind", "random_binding_seeded"]


@dataclass(frozen=True)
class AnnealingResult:
    """Outcome of the annealing baseline."""

    binding: Binding
    schedule: Schedule
    seconds: float
    moves_tried: int
    moves_accepted: int

    @property
    def latency(self) -> int:
        return self.schedule.latency

    @property
    def num_transfers(self) -> int:
        return self.schedule.num_transfers


def random_binding_seeded(dfg: Dfg, datapath: Datapath, rng: random.Random) -> Binding:
    """A uniformly random valid binding."""
    bn = {}
    for op in dfg.regular_operations():
        bn[op.name] = rng.choice(datapath.target_set(op.optype))
    return Binding(bn)


def _energy_of(outcome) -> float:
    # Latency dominates; the transfer count breaks ties smoothly.
    return outcome.latency + 0.001 * outcome.num_transfers


def annealing_bind(
    dfg: Dfg,
    datapath: Datapath,
    seed: int = 0,
    initial_temperature: float = 2.0,
    cooling: float = 0.95,
    steps_per_temperature: int = 30,
    min_temperature: float = 0.01,
    fast: Optional[bool] = None,
    evaluator: Optional[Evaluator] = None,
    session: Optional[SearchSession] = None,
) -> AnnealingResult:
    """Bind by simulated annealing.

    Args:
        dfg: the original DFG.
        datapath: the clustered machine.
        seed: RNG seed (results are deterministic per seed).  The walk
            always draws from its own ``random.Random(seed)`` — never
            from a shared session's RNG — so results stay reproducible
            per seed regardless of session sharing.
        initial_temperature / cooling / steps_per_temperature /
            min_temperature: the annealing schedule; the defaults are
            sized for the paper's kernels (tens of operations).
        fast: use the memo-backed fast evaluation engine (default: on,
            unless ``REPRO_FASTPATH=0``).  The walk is identical either
            way.
        evaluator: a shared :class:`~repro.core.evalcache.Evaluator`.
            Implies ``fast``.
        session: a shared :class:`~repro.search.session.SearchSession`;
            supersedes ``fast``/``evaluator``.

    Returns:
        An :class:`AnnealingResult` holding the best binding ever seen
        (not merely the final state).
    """
    datapath.check_bindable(dfg)
    if session is None:
        session = SearchSession(dfg, datapath, fast=fast, evaluator=evaluator)
    neighborhood = Neighborhood(dfg, datapath)

    def energy(b: Binding) -> float:
        return _energy_of(session.evaluate(b))

    with timed() as timer:
        rng = random.Random(seed)

        binding = random_binding_seeded(dfg, datapath, rng)
        session.stats.begin_segment()
        e = energy(binding)
        best: Tuple[float, Binding] = (e, binding)
        session.stats.record_best((e,))

        tried = accepted = 0
        temperature = initial_temperature
        while temperature > min_temperature and not session.exhausted():
            for _ in range(steps_per_temperature):
                move = neighborhood.random_reassignment(binding, rng)
                if move is None:
                    continue
                tried += 1
                candidate = binding.rebind(move)
                cand_energy = energy(candidate)
                delta = cand_energy - e
                if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                    binding, e = candidate, cand_energy
                    accepted += 1
                    if e < best[0]:
                        best = (e, binding)
                        session.stats.record_best((e,))
            temperature *= cooling

        _, binding = best
        validate_binding(binding, dfg, datapath)
        schedule = session.schedule(binding)
        return AnnealingResult(
            binding=binding,
            schedule=schedule,
            seconds=timer.seconds,
            moves_tried=tried,
            moves_accepted=accepted,
        )
