"""Simulated-annealing binding (Leupers-style baseline).

Leupers [PACT 2000] binds by simulated annealing over random single-op
reassignments, with a detailed schedule latency as the energy.  We keep
the same skeleton: a seeded random initial binding, geometric cooling,
single-operation moves, and the exact list-schedule latency (with the
transfer count as a fractional tiebreak) as energy.  Deterministic for a
given seed.

Energy evaluation runs through the fast engine by default
(``fast=True``): the walk revisits bindings often (rejected moves leave
the state unchanged, so the next proposal perturbs the same base), which
the placement-keyed memo absorbs.  The accept/reject trajectory is
unchanged — the fast path is bit-equivalent, so the RNG consumption and
therefore the whole walk are identical to the naive path.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.binding import Binding, validate_binding
from ..core.evalcache import Evaluator
from ..datapath.model import Datapath
from ..dfg.graph import Dfg
from ..dfg.transform import bind_dfg
from ..runner.progress import timed
from ..schedule.fastpath import fastpath_enabled
from ..schedule.list_scheduler import list_schedule
from ..schedule.schedule import Schedule

__all__ = ["AnnealingResult", "annealing_bind", "random_binding_seeded"]


@dataclass(frozen=True)
class AnnealingResult:
    """Outcome of the annealing baseline."""

    binding: Binding
    schedule: Schedule
    seconds: float
    moves_tried: int
    moves_accepted: int

    @property
    def latency(self) -> int:
        return self.schedule.latency

    @property
    def num_transfers(self) -> int:
        return self.schedule.num_transfers


def random_binding_seeded(dfg: Dfg, datapath: Datapath, rng: random.Random) -> Binding:
    """A uniformly random valid binding."""
    bn = {}
    for op in dfg.regular_operations():
        bn[op.name] = rng.choice(datapath.target_set(op.optype))
    return Binding(bn)


def _energy_of(outcome) -> float:
    # Latency dominates; the transfer count breaks ties smoothly.
    return outcome.latency + 0.001 * outcome.num_transfers


def annealing_bind(
    dfg: Dfg,
    datapath: Datapath,
    seed: int = 0,
    initial_temperature: float = 2.0,
    cooling: float = 0.95,
    steps_per_temperature: int = 30,
    min_temperature: float = 0.01,
    fast: Optional[bool] = None,
) -> AnnealingResult:
    """Bind by simulated annealing.

    Args:
        dfg: the original DFG.
        datapath: the clustered machine.
        seed: RNG seed (results are deterministic per seed).
        initial_temperature / cooling / steps_per_temperature /
            min_temperature: the annealing schedule; the defaults are
            sized for the paper's kernels (tens of operations).
        fast: use the memo-backed fast evaluation engine (default: on,
            unless ``REPRO_FASTPATH=0``).  The walk is identical either
            way.

    Returns:
        An :class:`AnnealingResult` holding the best binding ever seen
        (not merely the final state).
    """
    datapath.check_bindable(dfg)
    evaluator: Optional[Evaluator] = None
    if fast if fast is not None else fastpath_enabled():
        evaluator = Evaluator(dfg, datapath)

    def energy(b: Binding) -> float:
        if evaluator is not None:
            return _energy_of(evaluator.evaluate(b))
        return _energy_of(list_schedule(bind_dfg(dfg, b), datapath))

    with timed() as timer:
        rng = random.Random(seed)
        ops = [op.name for op in dfg.regular_operations()]

        binding = random_binding_seeded(dfg, datapath, rng)
        e = energy(binding)
        best: Tuple[float, Binding] = (e, binding)

        tried = accepted = 0
        temperature = initial_temperature
        while temperature > min_temperature:
            for _ in range(steps_per_temperature):
                name = rng.choice(ops)
                targets = [
                    c
                    for c in datapath.target_set(dfg.operation(name).optype)
                    if c != binding[name]
                ]
                if not targets:
                    continue
                tried += 1
                candidate = binding.rebind((name, rng.choice(targets)))
                cand_energy = energy(candidate)
                delta = cand_energy - e
                if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                    binding, e = candidate, cand_energy
                    accepted += 1
                    if e < best[0]:
                        best = (e, binding)
            temperature *= cooling

        _, binding = best
        validate_binding(binding, dfg, datapath)
        if evaluator is not None:
            schedule = evaluator.schedule(binding)
        else:
            schedule = list_schedule(bind_dfg(dfg, binding), datapath)
        return AnnealingResult(
            binding=binding,
            schedule=schedule,
            seconds=timer.seconds,
            moves_tried=tried,
            moves_accepted=accepted,
        )
