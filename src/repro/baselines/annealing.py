"""Simulated-annealing binding (Leupers-style baseline).

Leupers [PACT 2000] binds by simulated annealing over random single-op
reassignments, with a detailed schedule latency as the energy.  We keep
the same skeleton: a seeded random initial binding, geometric cooling,
single-operation moves, and the exact list-schedule latency (with the
transfer count as a fractional tiebreak) as energy.  Deterministic for a
given seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Tuple

from ..core.binding import Binding, validate_binding
from ..datapath.model import Datapath
from ..dfg.graph import Dfg
from ..dfg.transform import bind_dfg
from ..runner.progress import timed
from ..schedule.list_scheduler import list_schedule
from ..schedule.schedule import Schedule

__all__ = ["AnnealingResult", "annealing_bind", "random_binding_seeded"]


@dataclass(frozen=True)
class AnnealingResult:
    """Outcome of the annealing baseline."""

    binding: Binding
    schedule: Schedule
    seconds: float
    moves_tried: int
    moves_accepted: int

    @property
    def latency(self) -> int:
        return self.schedule.latency

    @property
    def num_transfers(self) -> int:
        return self.schedule.num_transfers


def random_binding_seeded(dfg: Dfg, datapath: Datapath, rng: random.Random) -> Binding:
    """A uniformly random valid binding."""
    bn = {}
    for op in dfg.regular_operations():
        bn[op.name] = rng.choice(datapath.target_set(op.optype))
    return Binding(bn)


def _energy(dfg: Dfg, datapath: Datapath, binding: Binding) -> Tuple[float, Schedule]:
    schedule = list_schedule(bind_dfg(dfg, binding), datapath)
    # Latency dominates; the transfer count breaks ties smoothly.
    return schedule.latency + 0.001 * schedule.num_transfers, schedule


def annealing_bind(
    dfg: Dfg,
    datapath: Datapath,
    seed: int = 0,
    initial_temperature: float = 2.0,
    cooling: float = 0.95,
    steps_per_temperature: int = 30,
    min_temperature: float = 0.01,
) -> AnnealingResult:
    """Bind by simulated annealing.

    Args:
        dfg: the original DFG.
        datapath: the clustered machine.
        seed: RNG seed (results are deterministic per seed).
        initial_temperature / cooling / steps_per_temperature /
            min_temperature: the annealing schedule; the defaults are
            sized for the paper's kernels (tens of operations).

    Returns:
        An :class:`AnnealingResult` holding the best binding ever seen
        (not merely the final state).
    """
    datapath.check_bindable(dfg)
    with timed() as timer:
        rng = random.Random(seed)
        ops = [op.name for op in dfg.regular_operations()]

        binding = random_binding_seeded(dfg, datapath, rng)
        energy, schedule = _energy(dfg, datapath, binding)
        best: Tuple[float, Binding, Schedule] = (energy, binding, schedule)

        tried = accepted = 0
        temperature = initial_temperature
        while temperature > min_temperature:
            for _ in range(steps_per_temperature):
                name = rng.choice(ops)
                targets = [
                    c
                    for c in datapath.target_set(dfg.operation(name).optype)
                    if c != binding[name]
                ]
                if not targets:
                    continue
                tried += 1
                candidate = binding.rebind((name, rng.choice(targets)))
                cand_energy, cand_schedule = _energy(dfg, datapath, candidate)
                delta = cand_energy - energy
                if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                    binding, energy = candidate, cand_energy
                    schedule = cand_schedule
                    accepted += 1
                    if energy < best[0]:
                        best = (energy, binding, schedule)
            temperature *= cooling

        _, binding, schedule = best
        validate_binding(binding, dfg, datapath)
        return AnnealingResult(
            binding=binding,
            schedule=schedule,
            seconds=timer.seconds,
            moves_tried=tried,
            moves_accepted=accepted,
        )
