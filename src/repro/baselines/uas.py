"""UAS — Unified Assign-and-Schedule (Özer-style baseline).

Özer, Banerjia & Conte [MICRO-31] interleave binding and scheduling: a
single cycle-by-cycle list-scheduling pass that, for each ready
operation, picks the cluster where it can start earliest (accounting for
the transfers its operands would need), reserves the FU and bus slots,
and moves on.  The schedule produced during the pass *is* the result.

Our implementation keeps that structure.  For cross-algorithm
comparability, the resulting binding is also re-evaluated through the
standard ``bind_dfg`` + list scheduler; the UAS-native latency is kept in
``native_latency``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.binding import Binding, validate_binding
from ..datapath.model import Datapath
from ..dfg.graph import Dfg
from ..dfg.transform import bind_dfg
from ..runner.progress import timed
from ..schedule.list_scheduler import ResourcePool, list_schedule
from ..schedule.priorities import alap_priority
from ..schedule.schedule import Schedule

__all__ = ["UasResult", "uas_bind"]


@dataclass(frozen=True)
class UasResult:
    """Outcome of the UAS baseline."""

    binding: Binding
    schedule: Schedule
    native_latency: int
    seconds: float

    @property
    def latency(self) -> int:
        return self.schedule.latency

    @property
    def num_transfers(self) -> int:
        return self.schedule.num_transfers


def uas_bind(dfg: Dfg, datapath: Datapath) -> UasResult:
    """Bind and schedule in one unified greedy pass.

    Operations are visited in priority order (ALAP first) as they become
    data-ready; each picks the cluster minimizing ``(start cycle, number
    of operand transfers, cluster index)``, where the start cycle accounts
    for shipping operands over the bus from the clusters where earlier
    decisions produced them.

    Returns:
        A :class:`UasResult` whose ``binding`` is complete and valid.
    """
    datapath.check_bindable(dfg)
    with timed() as timer:
        reg = datapath.registry
        move_lat = reg.move_latency
        priority = alap_priority(dfg, reg)

        pools: Dict[Tuple[int, object], ResourcePool] = {}
        for cl in datapath.clusters:
            for futype, count in cl.fu_counts.items():
                if count > 0:
                    pools[(cl.index, futype)] = ResourcePool(count)
        bus = ResourcePool(datapath.num_buses)

        bn: Dict[str, int] = {}
        finish: Dict[str, int] = {}  # cycle a value is ready in its cluster
        # (producer, dest cluster) -> cycle the transferred copy is ready
        copies: Dict[Tuple[str, int], int] = {}
        native_latency = 0

        order = sorted(
            (op.name for op in dfg.regular_operations()),
            key=lambda n: priority[n],
        )
        # Process in dependence-respecting priority order: repeatedly take
        # the highest-priority operation whose producers are all placed.
        placed: set = set()
        pending = list(order)
        while pending:
            name = next(
                n
                for n in pending
                if all(p in placed for p in dfg.predecessors(n))
            )
            pending.remove(name)
            op = dfg.operation(name)
            futype = reg.futype(op.optype)

            best: Optional[Tuple[int, int, int]] = None  # (start, transfers, c)
            for c in datapath.target_set(op.optype):
                ready = 0
                transfers = 0
                for p in dfg.predecessors(name):
                    if bn[p] == c:
                        ready = max(ready, finish[p])
                    elif (p, c) in copies:
                        ready = max(ready, copies[(p, c)])
                    else:
                        transfers += 1
                        ready = max(ready, finish[p] + move_lat)
                pool = pools[(c, futype)]
                start = ready
                while pool.available_at(start) is None:
                    start += 1
                key = (start, transfers, c)
                if best is None or key < best:
                    best = key
            assert best is not None
            start, _, c = best
            pool = pools[(c, futype)]
            while pool.available_at(start) is None:  # re-check after choice
                start += 1
            # Reserve bus slots for the operand transfers (earliest slot at
            # or after the producer's finish, completing before `start`; if
            # the bus is congested the operation slips later).
            for p in dfg.predecessors(name):
                if bn[p] != c and (p, c) not in copies:
                    t = finish[p]
                    while bus.available_at(t) is None:
                        t += 1
                    bus.issue(t, reg.move_dii)
                    copies[(p, c)] = t + move_lat
                    start = max(start, t + move_lat)
            while pool.available_at(start) is None:
                start += 1
            pool.issue(start, reg.dii(op.optype))
            bn[name] = c
            finish[name] = start + reg.latency(op.optype)
            native_latency = max(native_latency, finish[name])
            placed.add(name)

        binding = Binding(bn)
        validate_binding(binding, dfg, datapath)
        schedule = list_schedule(
            bind_dfg(dfg, binding, interconnect=datapath.interconnect),
            datapath,
        )
        return UasResult(
            binding=binding,
            schedule=schedule,
            native_latency=native_latency,
            seconds=timer.seconds,
        )
