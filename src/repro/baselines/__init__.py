"""Baseline binding algorithms: PCC and the other Section 4 approaches."""

from .annealing import AnnealingResult, annealing_bind
from .branch_and_bound import BnBResult, branch_and_bound_bind
from .centralized import (
    centralized_equivalent,
    centralized_latency,
    clustering_overhead,
)
from .exhaustive import ExhaustiveResult, exhaustive_bind, search_space_size
from .mincut import MinCutResult, mincut_bind
from .pcc import PccResult, form_partial_components, pcc_bind
from .random_binding import RandomSearchResult, random_bind, random_search
from .uas import UasResult, uas_bind

__all__ = [
    "pcc_bind",
    "PccResult",
    "form_partial_components",
    "annealing_bind",
    "AnnealingResult",
    "mincut_bind",
    "MinCutResult",
    "uas_bind",
    "UasResult",
    "random_bind",
    "random_search",
    "RandomSearchResult",
    "exhaustive_bind",
    "ExhaustiveResult",
    "search_space_size",
    "branch_and_bound_bind",
    "BnBResult",
    "centralized_equivalent",
    "centralized_latency",
    "clustering_overhead",
]
