"""Branch-and-bound exact binding.

A stronger optimality oracle than :mod:`repro.baselines.exhaustive`:
depth-first search over operations (in the paper's binding order) with
admissible lower-bound pruning, so mid-size instances (~15-25 ops on 2-3
clusters) solve exactly in reasonable time.  Used by the test suite to
certify B-ITER's near-optimality on instances brute force cannot reach.

Lower bound for a partial assignment (all admissible, so the result is
provably optimal):

* the DFG's critical-path length;
* per-(cluster, FU type) work already committed: ``ceil(work / units)``
  — operations bound to a cluster cannot finish faster than its FUs
  allow;
* committed transfers: ``ceil(moves * dii(move) / N_B)`` can't beat the
  bus, and the transfer count so far only grows.

Branching order follows the paper's ranking (most-constrained first),
and children are explored cheapest-``icost``-first, which finds strong
incumbents early and makes the bound effective.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.binding import Binding, validate_binding
from ..core.driver import bind_initial
from ..core.evalcache import Evaluator
from ..datapath.model import Datapath
from ..dfg.graph import Dfg
from ..dfg.ops import FuType
from ..dfg.timing import compute_timing
from ..runner.progress import timed
from ..search.session import SearchSession
from ..schedule.schedule import Schedule

__all__ = ["BnBResult", "branch_and_bound_bind"]


@dataclass(frozen=True)
class BnBResult:
    """Outcome of the exact branch-and-bound search.

    Attributes:
        binding: the optimal binding found (optimal under the list
            scheduler used for evaluation, like everything else here).
        schedule: its schedule.
        nodes_explored: search-tree nodes visited.
        proven_optimal: False when the node budget was exhausted before
            the search space was (the incumbent is then just a bound).
    """

    binding: Binding
    schedule: Schedule
    nodes_explored: int
    proven_optimal: bool
    seconds: float

    @property
    def latency(self) -> int:
        return self.schedule.latency

    @property
    def num_transfers(self) -> int:
        return self.schedule.num_transfers


def branch_and_bound_bind(
    dfg: Dfg,
    datapath: Datapath,
    max_nodes: int = 2_000_000,
    fast: Optional[bool] = None,
    evaluator: Optional[Evaluator] = None,
    session: Optional[SearchSession] = None,
) -> BnBResult:
    """Find the latency-optimal binding by branch and bound.

    Args:
        dfg: the original DFG.
        datapath: the clustered machine.
        max_nodes: search budget; when exceeded the incumbent is
            returned with ``proven_optimal = False``.
        fast: use the memo-backed fast engine for leaf evaluation
            (default: on, unless ``REPRO_FASTPATH=0``).  Leaves are where
            nearly all of the search's time goes; the pruned tree visits
            permutation-equivalent bindings repeatedly on symmetric
            machines, which the memo absorbs.
        evaluator: a shared :class:`~repro.core.evalcache.Evaluator`.
            Implies ``fast``.
        session: a shared :class:`~repro.search.session.SearchSession`;
            supersedes ``fast``/``evaluator``.  The B-INIT incumbent is
            seeded through the same session, so its evaluations warm the
            leaf memo.

    Returns:
        A :class:`BnBResult`; the incumbent starts from the driver's
        B-INIT result, so the answer is never worse than B-INIT.
    """
    datapath.check_bindable(dfg)
    if session is None:
        session = SearchSession(dfg, datapath, fast=fast, evaluator=evaluator)
    with timed() as timer:
        reg = datapath.registry
        timing = compute_timing(dfg, reg)
        lcp = timing.critical_path_length

        # Incumbent: the heuristic solution (gives the bound real teeth).
        seed = bind_initial(dfg, datapath, session=session)
        best_key: Tuple[int, int] = (seed.latency, seed.num_transfers)
        best_binding: Binding = seed.binding

        # Paper binding order: most-constrained operations first.
        index = {n: i for i, n in enumerate(dfg)}
        order = sorted(
            (op.name for op in dfg.regular_operations()),
            key=lambda n: (
                timing.alap[n],
                timing.mobility(n),
                -dfg.out_degree(n),
                index[n],
            ),
        )
        names = order
        n_ops = len(names)

        # Static per-op data.
        target_sets = {
            n: datapath.target_set(dfg.operation(n).optype) for n in names
        }
        futypes = {n: reg.futype(dfg.operation(n).optype) for n in names}
        diis = {n: reg.dii(dfg.operation(n).optype) for n in names}

        # Mutable search state.
        bn: Dict[str, int] = {}
        work: Dict[Tuple[int, FuType], int] = {}
        transfer_pairs: set = set()
        nodes = [0]
        exhausted = [False]
        symmetric = datapath.is_homogeneous

        def lower_bound() -> int:
            lb = lcp
            for (cluster, futype), committed in work.items():
                units = datapath.fu_count(cluster, futype)
                lb = max(lb, math.ceil(committed / units))
            if transfer_pairs:
                bus_work = len(transfer_pairs) * reg.move_dii
                lb = max(lb, math.ceil(bus_work / datapath.num_buses))
            return lb

        def new_transfers(v: str, c: int) -> List[Tuple[str, int]]:
            added = []
            for p in dfg.predecessors(v):
                if p in bn and bn[p] != c and (p, c) not in transfer_pairs:
                    added.append((p, c))
            for s in dfg.successors(v):
                if s in bn and bn[s] != c and (v, bn[s]) not in transfer_pairs:
                    added.append((v, bn[s]))
            return added

        def dfs(depth: int) -> None:
            nonlocal best_key, best_binding
            if exhausted[0]:
                return
            if session.exhausted():
                # An evaluation/deadline budget on the shared session
                # cuts the tree like a node budget: the incumbent stays
                # valid, optimality is no longer proven.
                exhausted[0] = True
                return
            nodes[0] += 1
            if nodes[0] > max_nodes:
                exhausted[0] = True
                return
            if depth == n_ops:
                binding = Binding(dict(bn))
                out = session.evaluate(binding)
                key = (out.latency, out.num_transfers)
                if key < best_key:
                    best_key, best_binding = key, binding
                    session.stats.record_best(key)
                return
            if lower_bound() > best_key[0]:
                return  # prune: cannot beat the incumbent's latency
            v = names[depth]
            candidates = target_sets[v]
            if symmetric and depth == 0:
                candidates = candidates[:1]  # symmetry: pin the first op
            # Explore cheapest-transfer clusters first.
            ranked = sorted(
                candidates, key=lambda c: (len(new_transfers(v, c)), c)
            )
            for c in ranked:
                added = new_transfers(v, c)
                key = (c, futypes[v])
                bn[v] = c
                work[key] = work.get(key, 0) + diis[v]
                transfer_pairs.update(added)
                dfs(depth + 1)
                transfer_pairs.difference_update(added)
                work[key] -= diis[v]
                del bn[v]
                if exhausted[0]:
                    return

        session.stats.begin_segment()
        with session.phase("bnb:dfs"):
            dfs(0)
        validate_binding(best_binding, dfg, datapath)
        best_schedule = session.schedule(best_binding)
        return BnBResult(
            binding=best_binding,
            schedule=best_schedule,
            nodes_explored=nodes[0],
            proven_optimal=not exhausted[0],
            seconds=timer.seconds,
        )
