"""Exhaustive optimal binding for small DFGs.

Enumerates every assignment in the cross product of target sets and list
schedules each, returning the lexicographically best ``(L, M)``.  The
paper notes that "in some cases we were able to verify that the generated
solutions were optimal (at our level of abstraction)" — this module is
how our test suite makes the same check.

Guarded by an explicit search-space cap: the space is
``prod |TS(v)|``, which explodes quickly (2 clusters x 20 ops is already
a million).  Symmetry reduction for homogeneous datapaths (the first
operation is pinned to cluster 0) buys one factor of ``num_clusters``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.binding import Binding
from ..datapath.model import Datapath
from ..dfg.graph import Dfg
from ..dfg.transform import bind_dfg
from ..runner.progress import timed
from ..schedule.list_scheduler import list_schedule
from ..schedule.schedule import Schedule

__all__ = ["ExhaustiveResult", "exhaustive_bind", "search_space_size"]


@dataclass(frozen=True)
class ExhaustiveResult:
    """The provably optimal ``(L, M)`` binding (under list scheduling)."""

    binding: Binding
    schedule: Schedule
    evaluated: int
    seconds: float

    @property
    def latency(self) -> int:
        return self.schedule.latency

    @property
    def num_transfers(self) -> int:
        return self.schedule.num_transfers


def search_space_size(dfg: Dfg, datapath: Datapath) -> int:
    """``prod |TS(v)|`` over all regular operations."""
    size = 1
    for op in dfg.regular_operations():
        size *= len(datapath.target_set(op.optype))
    return size


def exhaustive_bind(
    dfg: Dfg,
    datapath: Datapath,
    max_space: int = 2_000_000,
) -> ExhaustiveResult:
    """Enumerate all bindings and return the best ``(L, M)``.

    Args:
        dfg: the original DFG (small!).
        datapath: the clustered machine.
        max_space: refuse to enumerate spaces larger than this.

    Raises:
        ValueError: if the search space exceeds ``max_space``.
    """
    datapath.check_bindable(dfg)
    space = search_space_size(dfg, datapath)
    symmetric = datapath.is_homogeneous
    effective = space // datapath.num_clusters if symmetric else space
    if effective > max_space:
        raise ValueError(
            f"search space {space} exceeds cap {max_space}; exhaustive "
            "binding is only for small DFGs"
        )

    with timed() as timer:
        names = [op.name for op in dfg.regular_operations()]
        target_sets: List[Tuple[int, ...]] = [
            datapath.target_set(dfg.operation(n).optype) for n in names
        ]
        if symmetric and names:
            # Pin the first operation to its first target: homogeneous
            # clusters make assignments equivalent under cluster renaming.
            target_sets[0] = target_sets[0][:1]

        best: Optional[Tuple[Tuple[int, int], Binding, Schedule]] = None
        evaluated = 0
        for combo in itertools.product(*target_sets):
            binding = Binding(dict(zip(names, combo)))
            schedule = list_schedule(
                bind_dfg(dfg, binding, interconnect=datapath.interconnect),
                datapath,
            )
            evaluated += 1
            key = (schedule.latency, schedule.num_transfers)
            if best is None or key < best[0]:
                best = (key, binding, schedule)
        assert best is not None
        _, binding, schedule = best
        return ExhaustiveResult(
            binding=binding,
            schedule=schedule,
            evaluated=evaluated,
            seconds=timer.seconds,
        )
