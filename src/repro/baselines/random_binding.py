"""Random-binding Monte-Carlo reference point.

Not a published algorithm — a sanity floor.  Any serious binder must
beat the best of N random bindings; the analysis scripts use this to put
the Table 1 numbers in perspective.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.binding import Binding
from ..datapath.model import Datapath
from ..dfg.graph import Dfg
from ..dfg.transform import bind_dfg
from ..runner.progress import timed
from ..schedule.list_scheduler import list_schedule
from ..schedule.schedule import Schedule
from .annealing import random_binding_seeded

__all__ = ["RandomSearchResult", "random_bind", "random_search"]


@dataclass(frozen=True)
class RandomSearchResult:
    """Best-of-N random bindings."""

    binding: Binding
    schedule: Schedule
    samples: int
    seconds: float

    @property
    def latency(self) -> int:
        return self.schedule.latency

    @property
    def num_transfers(self) -> int:
        return self.schedule.num_transfers


def random_bind(dfg: Dfg, datapath: Datapath, seed: int = 0) -> Binding:
    """One uniformly random valid binding."""
    return random_binding_seeded(dfg, datapath, random.Random(seed))


def random_search(
    dfg: Dfg, datapath: Datapath, samples: int = 100, seed: int = 0
) -> RandomSearchResult:
    """Best ``(L, M)`` binding out of ``samples`` random draws."""
    if samples < 1:
        raise ValueError("samples must be >= 1")
    datapath.check_bindable(dfg)
    with timed() as timer:
        rng = random.Random(seed)
        best: Optional[Tuple[Tuple[int, int], Binding, Schedule]] = None
        for _ in range(samples):
            binding = random_binding_seeded(dfg, datapath, rng)
            schedule = list_schedule(
                bind_dfg(dfg, binding, interconnect=datapath.interconnect),
                datapath,
            )
            key = (schedule.latency, schedule.num_transfers)
            if best is None or key < best[0]:
                best = (key, binding, schedule)
        assert best is not None
        _, binding, schedule = best
        return RandomSearchResult(
            binding=binding,
            schedule=schedule,
            samples=samples,
            seconds=timer.seconds,
        )
