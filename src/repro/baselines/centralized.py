"""Centralized-datapath reference point.

The paper's introduction frames clustering as a trade: restricted
connectivity (cheap register files) in exchange for data transfers and
their latency cost.  This module quantifies the other side of that
trade: the latency of the *equivalent centralized machine* — one
cluster holding every FU, no transfers ever — which is the best any
binding on the clustered machine could hope to approach.

``clustering_overhead`` is then ``L_clustered / L_centralized``; the
paper's algorithms exist to keep that ratio near 1 while the hardware
keeps the superlinear register-file port cost near the clustered point.
"""

from __future__ import annotations

from typing import Dict

from ..core.binding import Binding
from ..datapath.model import Cluster, Datapath
from ..dfg.graph import Dfg
from ..dfg.ops import FuType
from ..dfg.transform import bind_dfg
from ..schedule.list_scheduler import list_schedule
from ..schedule.schedule import Schedule

__all__ = [
    "centralized_equivalent",
    "centralized_latency",
    "clustering_overhead",
]


def centralized_equivalent(datapath: Datapath) -> Datapath:
    """The one-cluster machine with the same total FU complement.

    The bus is kept (it is never used: a single cluster needs no
    transfers) so the timing registry carries over unchanged.
    """
    totals: Dict[FuType, int] = {}
    for cluster in datapath.clusters:
        for futype, count in cluster.fu_counts.items():
            totals[futype] = totals.get(futype, 0) + count
    return Datapath(
        [Cluster(0, totals)],
        num_buses=datapath.num_buses,
        registry=datapath.registry,
        name=f"centralized({datapath.name})",
    )


def centralized_latency(dfg: Dfg, datapath: Datapath) -> Schedule:
    """Schedule ``dfg`` on the centralized equivalent of ``datapath``.

    Returns the schedule (its ``latency`` is the reference ``L``; its
    transfer count is zero by construction).
    """
    central = centralized_equivalent(datapath)
    binding = Binding({op.name: 0 for op in dfg.regular_operations()})
    return list_schedule(bind_dfg(dfg, binding), central)


def clustering_overhead(dfg: Dfg, datapath: Datapath, latency: int) -> float:
    """``L_clustered / L_centralized`` for an achieved clustered latency.

    1.0 means clustering cost nothing on this block; the paper's
    algorithms typically land within ~10-30% on 2-3 cluster machines.

    Raises:
        ValueError: if ``latency`` is below the centralized reference
            (impossible for a valid clustered schedule).
    """
    reference = centralized_latency(dfg, datapath).latency
    if reference == 0:
        return 1.0
    if latency < reference:
        raise ValueError(
            f"clustered latency {latency} below the centralized reference "
            f"{reference}: the clustered schedule cannot be valid"
        )
    return latency / reference
