"""Append-only JSONL run store.

Every job that passes through :func:`repro.runner.api.run_jobs` can be
recorded — spec summary, outcome, and execution provenance (worker pid,
attempt count, cache hit or live run) — one JSON object per line::

    {"format": "repro-run/1", "key": "ab12...", "kernel": "ewf",
     "algorithm": "b-init", "datapath": "|2,1|1,1|", "num_buses": 2,
     "move_latency": 1, "config": [["iter_starts", 1]],
     "status": "ok", "latency": 19, "transfers": 4, "seconds": 0.41,
     "attempts": 1, "worker": "12345", "cached": false, "error": null}

JSONL + append-only keeps the store crash-tolerant (a torn final line
is skipped on read, never fatal) and trivially greppable/mergeable.
:meth:`RunStore.summary` aggregates the counters the acceptance checks
care about — how many jobs ran, failed, or were served from cache.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Union

from .jobs import BindJob, JobResult

__all__ = ["RUN_FORMAT", "RunStore", "RunSummary"]

#: Schema tag of every record line; bump on field changes.
RUN_FORMAT = "repro-run/1"


@dataclass(frozen=True)
class RunSummary:
    """Aggregate counters over a run store's records."""

    total: int
    ok: int
    failed: int
    cached: int

    @property
    def executed(self) -> int:
        """Jobs that actually invoked a binder (not served from cache)."""
        return self.total - self.cached


class RunStore:
    """Append-only experiment log at ``path`` (created on first record)."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def record(self, job: BindJob, result: JobResult) -> None:
        """Append one (job, result) record."""
        entry: Dict[str, Any] = {
            "format": RUN_FORMAT,
            "key": result.key,
            "kernel": result.kernel,
            "algorithm": job.algorithm,
            "datapath": job.datapath_spec,
            "num_buses": job.num_buses,
            "move_latency": job.move_latency,
            "config": [list(pair) for pair in job.config],
            "status": result.status,
            "latency": result.latency,
            "transfers": result.transfers,
            "seconds": result.seconds,
            "attempts": result.attempts,
            "worker": result.worker,
            "cached": result.cached,
            "error": result.error,
            "eval_hits": result.eval_hits,
            "eval_misses": result.eval_misses,
            "evaluations": result.evaluations,
            "search_stats": result.search_stats,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as f:
            f.write(json.dumps(entry, sort_keys=True) + "\n")

    @staticmethod
    def read(path: Union[str, Path]) -> List[Dict[str, Any]]:
        """Load all records from ``path``.

        Lines that fail to parse (e.g. a torn tail after a crash) or
        carry an unknown format tag are skipped.
        """
        records: List[Dict[str, Any]] = []
        try:
            lines: Iterable[str] = Path(path).read_text().splitlines()
        except OSError:
            return records
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue
            if entry.get("format") == RUN_FORMAT:
                records.append(entry)
        return records

    def records(self) -> List[Dict[str, Any]]:
        """All records of this store's file."""
        return self.read(self.path)

    def summary(self) -> RunSummary:
        """Aggregate status/provenance counters over the store."""
        records = self.records()
        ok = sum(1 for r in records if r["status"] == "ok")
        cached = sum(1 for r in records if r.get("cached"))
        return RunSummary(
            total=len(records),
            ok=ok,
            failed=len(records) - ok,
            cached=cached,
        )
