"""Append-only JSONL run store.

Every job that passes through :func:`repro.runner.api.run_jobs` can be
recorded — spec summary, outcome, and execution provenance (worker pid,
attempt count, cache hit or live run) — one JSON object per line::

    {"format": "repro-run/1", "key": "ab12...", "kernel": "ewf",
     "algorithm": "b-init", "datapath": "|2,1|1,1|", "num_buses": 2,
     "move_latency": 1, "config": [["iter_starts", 1]],
     "status": "ok", "latency": 19, "transfers": 4, "seconds": 0.41,
     "attempts": 1, "worker": "12345", "cached": false, "error": null,
     "sha256": "..."}

JSONL + append-only keeps the store crash-tolerant (a torn final line
is skipped on read, never fatal) and trivially greppable/mergeable.
Self-healing extensions:

* every line carries a SHA-256 checksum over its canonical payload;
  lines whose checksum does not match (bit rot, a torn write that
  still parses) are skipped on read — legacy checksum-less lines are
  still accepted;
* *incident* records (``repro-incident/1``) share the file: structured
  notes of caught invariant violations, cache-write failures, and
  circuit-breaker quarantines, so one artifact tells the whole story
  of a sweep including its degradations;
* transient append failures (full/flaky filesystems) are retried once
  before surfacing;
* :meth:`ok_records`/:meth:`failed_attempts` serve the runner's
  ``resume=`` and circuit-breaker logic.

:meth:`RunStore.summary` aggregates the counters the acceptance checks
care about — how many jobs ran, failed, quarantined, or were served
from cache.

Named fault-injection sites (see :mod:`repro.resilience.faults`):
``store.record``, ``store.record.write``.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from ..resilience import faults
from .jobs import BindJob, JobResult

__all__ = [
    "RUN_FORMAT",
    "INCIDENT_FORMAT",
    "EVENT_FORMAT",
    "RunStore",
    "RunSummary",
]

#: Schema tag of every record line; bump on field changes.
RUN_FORMAT = "repro-run/1"

#: Schema tag of incident lines (caught violations, quarantines).
INCIDENT_FORMAT = "repro-incident/1"

#: Schema tag of service lifecycle events (queued/started/completed),
#: appended by :mod:`repro.service` and replayed by its streaming
#: ``/jobs/{id}/events`` endpoint.
EVENT_FORMAT = "repro-service-event/1"


def _line_checksum(entry: Dict[str, Any]) -> str:
    """Checksum over the canonical payload (sans the checksum field)."""
    payload = {k: v for k, v in entry.items() if k != "sha256"}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class RunSummary:
    """Aggregate counters over a run store's records."""

    total: int
    ok: int
    failed: int
    cached: int
    quarantined: int = 0

    @property
    def executed(self) -> int:
        """Jobs that actually invoked a binder (not served from cache)."""
        return self.total - self.cached


class RunStore:
    """Append-only experiment log at ``path`` (created on first record)."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def _append(self, entry: Dict[str, Any]) -> None:
        entry["sha256"] = _line_checksum(entry)
        line = json.dumps(entry, sort_keys=True) + "\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        faults.fire("store.record")
        line = faults.perturb("store.record.write", line)
        try:
            with self.path.open("a") as f:
                f.write(line)
        except OSError:
            # One retry covers transient filesystem hiccups; a second
            # failure is a real environment problem and should surface.
            time.sleep(0.01)
            with self.path.open("a") as f:
                f.write(line)

    def record(self, job: BindJob, result: JobResult) -> None:
        """Append one (job, result) record."""
        entry: Dict[str, Any] = {
            "format": RUN_FORMAT,
            "key": result.key,
            "kernel": result.kernel,
            "algorithm": job.algorithm,
            "datapath": job.datapath_spec,
            "num_buses": job.num_buses,
            "move_latency": job.move_latency,
            "config": [list(pair) for pair in job.config],
            "status": result.status,
            "completion": result.completion,
            "latency": result.latency,
            "transfers": result.transfers,
            "seconds": result.seconds,
            "attempts": result.attempts,
            "worker": result.worker,
            "cached": result.cached,
            "error": result.error,
            "eval_hits": result.eval_hits,
            "eval_misses": result.eval_misses,
            "evaluations": result.evaluations,
            "search_stats": result.search_stats,
            "extras": result.extras,
        }
        self._append(entry)

    def record_incident(
        self, site: str, kind: str, detail: str, key: str = ""
    ) -> None:
        """Append one structured incident line (caught violation,
        failed cache write, circuit-breaker quarantine, ...)."""
        self._append(
            {
                "format": INCIDENT_FORMAT,
                "site": site,
                "kind": kind,
                "detail": detail,
                "key": key,
            }
        )

    def record_event(
        self,
        event: str,
        job_id: str,
        key: str = "",
        detail: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Append one service lifecycle event (queued, started, ...).

        Events share the store file with run records and incidents, so
        a single JSONL artifact replays a job's whole service history —
        the ``/jobs/{id}/events`` endpoint is a filtered tail of this
        file.  ``ts`` is a wall-clock stamp for display only; it is not
        part of any result.
        """
        entry: Dict[str, Any] = {
            "format": EVENT_FORMAT,
            "event": event,
            "job": job_id,
            "key": key,
            "ts": time.time(),
        }
        if detail:
            entry["detail"] = detail
        self._append(entry)

    @staticmethod
    def parse_line(line: str) -> Dict[str, Any]:
        """Parse one store line into its verified entry, or ``{}``.

        One code path owns the "is this line trustworthy" decision for
        every reader — bulk loads here and the service's incremental
        tail (:mod:`repro.service.stream`).  A line that is blank,
        fails to parse, is not an object, or fails its checksum comes
        back as an empty dict (legacy checksum-less lines still pass).
        """
        line = line.strip()
        if not line:
            return {}
        try:
            entry = json.loads(line)
        except ValueError:
            return {}
        if not isinstance(entry, dict):
            return {}
        checksum = entry.get("sha256")
        if checksum is not None and checksum != _line_checksum(entry):
            return {}  # bit rot / torn-but-parseable line
        return entry

    @staticmethod
    def _read_lines(
        path: Union[str, Path], fmt: str
    ) -> List[Dict[str, Any]]:
        records: List[Dict[str, Any]] = []
        try:
            lines: Iterable[str] = Path(path).read_text().splitlines()
        except OSError:
            return records
        for line in lines:
            entry = RunStore.parse_line(line)
            if entry and entry.get("format") == fmt:
                records.append(entry)
        return records

    @staticmethod
    def read(path: Union[str, Path]) -> List[Dict[str, Any]]:
        """Load all run records from ``path``.

        Lines that fail to parse (e.g. a torn tail after a crash),
        fail their checksum, or carry an unknown format tag are
        skipped.
        """
        return RunStore._read_lines(path, RUN_FORMAT)

    def records(self) -> List[Dict[str, Any]]:
        """All run records of this store's file."""
        return self.read(self.path)

    def incidents(self) -> List[Dict[str, Any]]:
        """All incident records of this store's file."""
        return self._read_lines(self.path, INCIDENT_FORMAT)

    def events(self) -> List[Dict[str, Any]]:
        """All service lifecycle events of this store's file."""
        return self._read_lines(self.path, EVENT_FORMAT)

    def ok_records(self) -> Dict[str, Dict[str, Any]]:
        """Latest successful record per job key (``resume=`` source)."""
        latest: Dict[str, Dict[str, Any]] = {}
        for entry in self.records():
            if entry.get("status") == "ok" and entry.get("key"):
                latest[entry["key"]] = entry
        return latest

    def failed_attempts(self) -> Dict[str, int]:
        """Summed recorded attempts of failed runs, per job key.

        Feeds the runner's circuit breaker: a key whose historical
        failures exceed the threshold is quarantined instead of
        re-executed.
        """
        counts: Dict[str, int] = {}
        for entry in self.records():
            if entry.get("status") == "failed" and entry.get("key"):
                counts[entry["key"]] = counts.get(
                    entry["key"], 0
                ) + max(1, int(entry.get("attempts") or 1))
        return counts

    def summary(self) -> RunSummary:
        """Aggregate status/provenance counters over the store."""
        records = self.records()
        ok = sum(1 for r in records if r["status"] == "ok")
        failed = sum(1 for r in records if r["status"] == "failed")
        quarantined = sum(
            1 for r in records if r["status"] == "quarantined"
        )
        cached = sum(1 for r in records if r.get("cached"))
        return RunSummary(
            total=len(records),
            ok=ok,
            failed=failed,
            cached=cached,
            quarantined=quarantined,
        )
