"""Parallel job execution with timeouts, retries, and crash recovery.

:func:`run_batch` drains a list of :class:`~repro.runner.jobs.BindJob`
through one of two engines:

* ``max_workers == 1`` — a plain in-process serial loop.  No pool, no
  pickling, no forked state: determinism arguments (and determinism
  tests) stay trivially valid, and results are identical to the
  pre-runner code paths.
* ``max_workers > 1`` — a ``concurrent.futures.ProcessPoolExecutor``.
  Jobs are independent, so results are collected in completion order
  but always *returned* in submission order.

Fault tolerance, either engine:

* **timeout** — enforced inside the executing process via ``SIGALRM``
  (accurate per-job, immune to queueing delay).  On platforms without
  ``SIGALRM`` the timeout is not enforced (documented limitation; the
  repo targets Linux).
* **retry** — a job whose attempt raises (or times out) is re-run up to
  ``retries`` more times; a job that exhausts its attempts yields a
  ``status == "failed"`` result with the last error, and the rest of
  the batch continues unaffected.  Re-attempts back off exponentially
  (``backoff * 2**(attempt-1)``, capped) with *deterministic* jitter —
  the jitter factor is hashed from the job key and attempt number, so
  transient contention is spread out yet every run of the same batch
  sleeps identically.
* **worker crash** — a hard worker death breaks the whole pool.  The
  pool is rebuilt, and recovery distinguishes suspects from bystanders
  via a shared started-marker map: jobs that were *running* when the
  pool died are re-run one at a time in isolated single-worker pools
  (a solo crash is exact attribution, so a persistent crasher exhausts
  its own retry budget without starving its neighbours), while queued
  jobs that never started are resubmitted without being charged an
  attempt.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import signal
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..resilience import faults
from .jobs import BindJob, JobResult, execute_job

__all__ = ["JobTimeout", "attempt_job", "run_batch"]


def _backoff_delay(
    key: str, attempt: int, base: float, cap: float
) -> float:
    """Exponential backoff with deterministic jitter.

    ``base * 2**(attempt-1)``, capped at ``cap``, scaled by a jitter
    factor in ``[0.5, 1.5)`` derived from ``sha256(key:attempt)`` — so
    concurrent retries of different jobs de-synchronize while repeated
    runs of the same batch sleep for bit-identical durations.  Zero for
    the first attempt or a zero ``base``.
    """
    if attempt <= 1 or base <= 0.0:
        return 0.0
    digest = hashlib.sha256(f"{key}:{attempt}".encode()).digest()
    jitter = 0.5 + int.from_bytes(digest[:4], "big") / 0xFFFFFFFF
    return min(base * 2 ** (attempt - 2), cap) * jitter


class JobTimeout(RuntimeError):
    """A job exceeded its per-attempt wall-clock budget."""


@contextmanager
def _deadline(seconds: Optional[float]) -> Iterator[None]:
    """Raise :class:`JobTimeout` in the current process after ``seconds``.

    A no-op when ``seconds`` is None, when the platform lacks
    ``SIGALRM``, or when not on the main thread (signals cannot be
    delivered elsewhere).
    """
    usable = (
        seconds is not None
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(signum: int, frame: Any) -> None:
        raise JobTimeout(f"job timed out after {seconds:.3f}s")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _attempt(job: BindJob, timeout: Optional[float]) -> JobResult:
    with _deadline(timeout):
        faults.fire("executor.attempt")
        return execute_job(job)


def attempt_job(job: BindJob, timeout: Optional[float] = None) -> JobResult:
    """Run one job attempt in the current process, under ``timeout``.

    This is the single-attempt primitive both execution engines are
    built on: the wall-clock budget is enforced with ``SIGALRM`` inside
    the executing process, and the ``executor.attempt`` fault-injection
    site fires before the strategy dispatch.  Long-lived callers that
    manage their own retry/queue policy — the service's warm worker
    pool — call this directly instead of going through
    :func:`run_batch`.  Raises whatever the strategy (or the deadline)
    raises; failure bookkeeping is the caller's responsibility.
    """
    return _attempt(job, timeout)


def _worker(
    job: BindJob,
    timeout: Optional[float],
    started: Optional[Any] = None,
    token: Optional[str] = None,
    delay: float = 0.0,
) -> Dict[str, Any]:
    """Pool entry point: run one job, ship the result back as a dict.

    ``started`` is a manager-backed dict the worker marks before doing
    any work; if the pool later dies, the parent uses it to tell jobs
    that were mid-execution from ones still waiting in the queue.
    ``delay`` is the retry backoff, slept in the worker (before the
    started mark) so the parent's collection loop never blocks.
    """
    if delay > 0.0:
        time.sleep(delay)
    if started is not None:
        started[token] = os.getpid()
    return _attempt(job, timeout).to_dict()


def _failure(job: BindJob, error: str, attempts: int) -> JobResult:
    return JobResult(
        key=job.cache_key(),
        kernel=job.kernel,
        algorithm=job.algorithm,
        datapath_spec=job.datapath_spec,
        status="failed",
        error=error,
        attempts=attempts,
    )


def run_batch(
    jobs: Sequence[BindJob],
    *,
    max_workers: int = 1,
    timeout: Optional[float] = None,
    retries: int = 1,
    backoff: float = 0.05,
    backoff_cap: float = 2.0,
    on_result: Optional[Callable[[JobResult], None]] = None,
) -> List[JobResult]:
    """Execute ``jobs`` and return their results in input order.

    Args:
        jobs: the batch; order is preserved in the returned list.
        max_workers: 1 = in-process serial (default); >1 = process pool.
        timeout: per-attempt wall-clock budget in seconds (None = no
            limit).
        retries: extra attempts after a failed first one (so a job runs
            at most ``retries + 1`` times).
        backoff: base seconds of the exponential retry backoff (0
            disables sleeping between attempts).
        backoff_cap: upper bound on one backoff sleep, pre-jitter.
        on_result: called once per job as it finishes (completion
            order), for progress tracking.

    Returns:
        One :class:`JobResult` per job; failures are reported in-band
        via ``status == "failed"``, never raised.
    """
    if max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    jobs = list(jobs)
    if max_workers == 1:
        return _run_serial(jobs, timeout, retries, backoff, backoff_cap, on_result)
    return _run_pool(
        jobs, max_workers, timeout, retries, backoff, backoff_cap, on_result
    )


def _emit(
    on_result: Optional[Callable[[JobResult], None]], result: JobResult
) -> None:
    if on_result is not None:
        on_result(result)


def _run_serial(
    jobs: List[BindJob],
    timeout: Optional[float],
    retries: int,
    backoff: float,
    backoff_cap: float,
    on_result: Optional[Callable[[JobResult], None]],
) -> List[JobResult]:
    results: List[JobResult] = []
    for job in jobs:
        result: Optional[JobResult] = None
        key = job.cache_key()
        for attempt in range(1, retries + 2):
            delay = _backoff_delay(key, attempt, backoff, backoff_cap)
            if delay:
                time.sleep(delay)
            try:
                result = _attempt(job, timeout)
                result.attempts = attempt
                break
            except Exception as exc:
                error = f"{type(exc).__name__}: {exc}"
                if attempt == retries + 1:
                    result = _failure(job, error, attempt)
        assert result is not None
        results.append(result)
        _emit(on_result, result)
    return results


def _run_pool(
    jobs: List[BindJob],
    max_workers: int,
    timeout: Optional[float],
    retries: int,
    backoff: float,
    backoff_cap: float,
    on_result: Optional[Callable[[JobResult], None]],
) -> List[JobResult]:
    results: List[Optional[JobResult]] = [None] * len(jobs)
    attempts = [0] * len(jobs)
    keys = [job.cache_key() for job in jobs]
    manager = multiprocessing.Manager()
    started = manager.dict()
    seq = 0
    pool = ProcessPoolExecutor(max_workers=max_workers)
    pending: Dict[Any, Tuple[int, str]] = {}

    def submit(index: int, charge: bool = True) -> None:
        nonlocal seq
        if charge:
            attempts[index] += 1
        seq += 1
        token = f"{index}:{seq}"
        delay = _backoff_delay(
            keys[index], attempts[index], backoff, backoff_cap
        )
        future = pool.submit(
            _worker, jobs[index], timeout, started, token, delay
        )
        pending[future] = (index, token)

    def finish(index: int, result: JobResult) -> None:
        results[index] = result
        _emit(on_result, result)

    def quarantine(index: int) -> None:
        """Re-run a crash suspect alone: a solo crash is its own fault."""
        while True:
            if attempts[index] > retries:
                finish(
                    index,
                    _failure(
                        jobs[index], "worker process crashed", attempts[index]
                    ),
                )
                return
            attempts[index] += 1
            delay = _backoff_delay(
                keys[index], attempts[index], backoff, backoff_cap
            )
            if delay:
                time.sleep(delay)
            solo = ProcessPoolExecutor(max_workers=1)
            try:
                payload = solo.submit(_worker, jobs[index], timeout).result()
            except BrokenProcessPool:
                continue  # crashed again; loop until the budget runs out
            except Exception as exc:
                error = f"{type(exc).__name__}: {exc}"
                if attempts[index] > retries:
                    finish(index, _failure(jobs[index], error, attempts[index]))
                    return
            else:
                result = JobResult.from_dict(payload)
                result.attempts = attempts[index]
                finish(index, result)
                return
            finally:
                solo.shutdown(wait=False)

    try:
        for i in range(len(jobs)):
            submit(i)
        while pending:
            done, _ = wait(set(pending), return_when=FIRST_COMPLETED)
            # Resubmissions are deferred past the batch: if the pool
            # broke, submitting inside the loop would target (or tear
            # down) the wrong pool instance.
            resubmit: List[Tuple[int, str]] = []  # (index, error)
            suspects: List[int] = []
            recycled: List[int] = []
            broken = False
            for future in done:
                index, token = pending.pop(future)
                try:
                    payload = future.result()
                except BrokenProcessPool:
                    broken = True
                    if token in started:
                        suspects.append(index)
                    else:
                        recycled.append(index)
                    continue
                except Exception as exc:
                    resubmit.append((index, f"{type(exc).__name__}: {exc}"))
                    continue
                result = JobResult.from_dict(payload)
                result.attempts = attempts[index]
                finish(index, result)
            if broken:
                # A dead worker poisons the whole pool.  Sort the other
                # in-flight jobs: started ones are crash suspects and go
                # to solo quarantine; queued ones never ran and are
                # recycled without being charged an attempt.
                for future, (index, token) in pending.items():
                    if token in started:
                        suspects.append(index)
                    else:
                        recycled.append(index)
                pending.clear()
                pool.shutdown(wait=False)
                pool = ProcessPoolExecutor(max_workers=max_workers)
                for index in suspects:
                    quarantine(index)
                for index in recycled:
                    submit(index, charge=False)
            for index, error in resubmit:
                if attempts[index] <= retries:
                    submit(index)
                else:
                    finish(index, _failure(jobs[index], error, attempts[index]))
    finally:
        pool.shutdown(wait=False)
        manager.shutdown()
    assert all(r is not None for r in results)
    return results  # type: ignore[return-value]
