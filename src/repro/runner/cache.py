"""On-disk content-addressed result cache.

Results are stored one JSON blob per job under a two-level fan-out
directory keyed by the job's content hash::

    <root>/ab/abcdef0123....json

Each blob is a :class:`~repro.runner.jobs.JobResult` dict wrapped in a
versioned envelope; blobs with an unknown envelope or result schema are
treated as misses (never as errors), so stale caches degrade to cold
ones instead of poisoning runs.  Writes are atomic (tmp file + rename),
which makes a single cache directory safe to share between concurrent
experiment processes on POSIX filesystems.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union

from .jobs import RESULT_SCHEMA

__all__ = ["CACHE_FORMAT", "CacheStats", "ResultCache"]

#: Envelope version of on-disk blobs; bump to invalidate old caches.
CACHE_FORMAT = "repro-cache/1"


@dataclass
class CacheStats:
    """Hit/miss/write counters for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 with no lookups)."""
        return self.hits / self.lookups if self.lookups else 0.0


class ResultCache:
    """Content-addressed store of job results.

    Args:
        root: cache directory; created (with parents) if missing.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except FileExistsError:
            raise NotADirectoryError(
                f"cache root {self.root} exists but is not a directory"
            )
        self.stats = CacheStats()

    def _path(self, key: str) -> Path:
        if len(key) < 3:
            raise ValueError(f"malformed cache key {key!r}")
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Return the cached result dict for ``key``, or None on miss.

        Unreadable or schema-mismatched blobs count as misses.
        """
        path = self._path(key)
        try:
            envelope = json.loads(path.read_text())
        except (OSError, ValueError):
            self.stats.misses += 1
            return None
        if (
            envelope.get("format") != CACHE_FORMAT
            or envelope.get("key") != key
            or envelope.get("result", {}).get("format") != RESULT_SCHEMA
        ):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return envelope["result"]

    def put(self, key: str, result: Dict[str, Any]) -> None:
        """Store ``result`` (a ``JobResult.to_dict()``) under ``key``."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = {"format": CACHE_FORMAT, "key": key, "result": result}
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(envelope, f, sort_keys=True)
                f.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.writes += 1

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("??/*.json"))
