"""On-disk content-addressed result cache.

Results are stored one JSON blob per job under a two-level fan-out
directory keyed by the job's content hash::

    <root>/ab/abcdef0123....json

Each blob is a :class:`~repro.runner.jobs.JobResult` dict wrapped in a
versioned envelope; blobs with an unknown envelope or result schema are
treated as misses (never as errors), so stale caches degrade to cold
ones instead of poisoning runs.  Writes are atomic (tmp file + rename),
which makes a single cache directory safe to share between concurrent
experiment processes on POSIX filesystems.

Self-healing extensions: every envelope carries a SHA-256 checksum
over its canonical result payload, verified on read (legacy
checksum-less blobs are still accepted); a blob that fails to parse or
fails its checksum is *quarantined* — renamed to ``*.corrupt`` so it
is kept for post-mortem but never consulted again — and reported as a
miss, so corruption costs one re-execution, never a wrong table.

Named fault-injection sites (see :mod:`repro.resilience.faults`):
``cache.get``, ``cache.put``, ``cache.put.write``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..resilience import faults
from .jobs import RESULT_SCHEMA

__all__ = ["CACHE_FORMAT", "CacheStats", "ResultCache"]

#: Envelope version of on-disk blobs; bump to invalidate old caches.
CACHE_FORMAT = "repro-cache/1"


def _result_checksum(result: Dict[str, Any]) -> str:
    canonical = json.dumps(result, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/write counters for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    quarantined: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 with no lookups)."""
        return self.hits / self.lookups if self.lookups else 0.0


class ResultCache:
    """Content-addressed store of job results.

    Args:
        root: cache directory; created (with parents) if missing.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except FileExistsError:
            raise NotADirectoryError(
                f"cache root {self.root} exists but is not a directory"
            )
        self.stats = CacheStats()

    def _path(self, key: str) -> Path:
        if len(key) < 3:
            raise ValueError(f"malformed cache key {key!r}")
        return self.root / key[:2] / f"{key}.json"

    def _quarantine(self, path: Path) -> None:
        """Rename a damaged blob to ``*.corrupt`` (kept, never re-read)."""
        try:
            os.replace(path, path.with_suffix(path.suffix + ".corrupt"))
            self.stats.quarantined += 1
        except OSError:
            pass

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Return the cached result dict for ``key``, or None on miss.

        Unreadable or schema-mismatched blobs count as misses; blobs
        that exist but fail to parse or fail their checksum are
        quarantined first.
        """
        path = self._path(key)
        try:
            faults.fire("cache.get")
            envelope = json.loads(path.read_text())
        except OSError:
            self.stats.misses += 1
            return None
        except ValueError:
            self._quarantine(path)
            self.stats.misses += 1
            return None
        if (
            not isinstance(envelope, dict)
            or envelope.get("format") != CACHE_FORMAT
            or envelope.get("key") != key
            or not isinstance(envelope.get("result"), dict)
            or envelope["result"].get("format") != RESULT_SCHEMA
        ):
            self.stats.misses += 1
            return None
        checksum = envelope.get("sha256")
        if checksum is not None and checksum != _result_checksum(
            envelope["result"]
        ):
            self._quarantine(path)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return envelope["result"]

    def put(self, key: str, result: Dict[str, Any]) -> None:
        """Store ``result`` (a ``JobResult.to_dict()``) under ``key``."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = {
            "format": CACHE_FORMAT,
            "key": key,
            "sha256": _result_checksum(result),
            "result": result,
        }
        faults.fire("cache.put")
        data = faults.perturb(
            "cache.put.write", json.dumps(envelope, sort_keys=True) + "\n"
        )
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as f:
                f.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.writes += 1

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("??/*.json"))
