"""Timing and live-progress primitives for the experiment engine.

Two small, dependency-free tools:

* :class:`timed` — the wall-clock context manager shared by every
  algorithm entry point (it replaces the ``t0 = time.perf_counter()``
  boilerplate that used to be copy-pasted across the baselines);
* :class:`ProgressTracker` — running counters (done / failed / cached,
  elapsed, throughput) with a callback hook, so callers such as the CLI
  can render live progress while :func:`repro.runner.api.run_jobs`
  drains a batch.

This module deliberately imports nothing from the rest of ``repro`` —
the baselines use :class:`timed`, and the runner executes the baselines,
so any package import here would close a cycle.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Optional

__all__ = ["timed", "ProgressTracker"]


class timed:
    """Measure wall-clock seconds around a block.

    Usage::

        with timed() as timer:
            heavy_work()
        print(timer.seconds)

    ``seconds`` is also readable *inside* the block (elapsed so far),
    which lets algorithms that return from within the timed region
    stamp their result without leaving the context first.
    """

    def __enter__(self) -> "timed":
        self._start = time.perf_counter()
        self._end: Optional[float] = None
        return self

    def __exit__(self, *exc: object) -> None:
        self._end = time.perf_counter()

    @property
    def seconds(self) -> float:
        """Elapsed seconds: final once exited, running while inside."""
        end = self._end if self._end is not None else time.perf_counter()
        return end - self._start


class ProgressTracker:
    """Counters for one batch of jobs, with a per-update callback.

    The runner calls :meth:`update` once per finished job (whether it
    ran, failed, or was served from the cache); the callback — if any —
    receives the tracker itself and can render :meth:`line` however it
    likes.  Callback exceptions propagate: a broken renderer should not
    be silently swallowed mid-experiment.
    """

    def __init__(
        self,
        total: int,
        callback: Optional[Callable[["ProgressTracker"], None]] = None,
    ) -> None:
        if total < 0:
            raise ValueError(f"total must be >= 0, got {total}")
        self.total = total
        self.done = 0
        self.failed = 0
        self.cached = 0
        self._callback = callback
        self._timer = timed().__enter__()

    def update(self, result: Any) -> None:
        """Record one finished job (an object with status/cached attrs)."""
        self.done += 1
        if getattr(result, "status", "ok") != "ok":
            self.failed += 1
        if getattr(result, "cached", False):
            self.cached += 1
        if self._callback is not None:
            self._callback(self)

    @property
    def elapsed(self) -> float:
        """Wall-clock seconds since the tracker was created."""
        return self._timer.seconds

    @property
    def throughput(self) -> float:
        """Jobs finished per second (0.0 before the first update)."""
        elapsed = self.elapsed
        return self.done / elapsed if elapsed > 0 else 0.0

    def line(self) -> str:
        """One-line progress summary for terminal rendering."""
        parts = [f"{self.done}/{self.total} jobs"]
        if self.cached:
            parts.append(f"{self.cached} cached")
        if self.failed:
            parts.append(f"{self.failed} failed")
        parts.append(f"{self.throughput:.1f} jobs/s")
        return " | ".join(parts)
