"""Binding-job specifications and their execution.

A :class:`BindJob` is a frozen, hashable, picklable description of one
``(DFG, datapath, algorithm, config)`` binding run — the unit of work of
every experiment in the repository (Table 1/2 cells, the random-DFG
study, design-space exploration).  Jobs carry their inputs *by value*
(the DFG as canonical JSON, the datapath as its spec string), so they
can cross process boundaries and be content-addressed:

* :meth:`BindJob.cache_key` is a SHA-256 over a canonical, versioned
  envelope — the same job always hashes the same, across processes,
  hash-randomization seeds, and config-dict orderings; any change to
  the DFG, machine, algorithm, or config changes the key;
* :func:`execute_job` rehydrates the inputs and dispatches to the
  algorithm, returning a :class:`JobResult`.

The ``debug-*`` algorithms are failure-injection hooks for the executor
tests (an always-raising job, a sleeper for timeout tests, a hard crash
for worker-loss tests); they are registered here so worker processes
know them without test-side setup.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from ..datapath.model import Datapath
from ..datapath.parse import parse_datapath
from ..dfg.graph import Dfg
from ..dfg.serialize import dfg_from_dict, dfg_to_dict

__all__ = [
    "JOB_SCHEMA",
    "RESULT_SCHEMA",
    "BindJob",
    "JobResult",
    "execute_job",
]

#: Version tag mixed into every cache key; bump on any change to the
#: job envelope or to result semantics to invalidate stale caches.
JOB_SCHEMA = "repro-bindjob/1"

#: Version tag carried by serialized results (cache blobs, run stores).
RESULT_SCHEMA = "repro-runresult/1"


def _canonical(value: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace drift."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class BindJob:
    """One binding run, specified by value.

    Attributes:
        dfg_json: the DFG as canonical ``repro-dfg/1`` JSON (see
            :mod:`repro.dfg.serialize`); operation order is part of the
            serialization, so a serialize/deserialize round trip keys
            identically.
        datapath_spec: normalized paper-style cluster spec.
        num_buses: ``N_B``.
        move_latency: ``lat(move)``.
        algorithm: ``"pcc"``, ``"b-init"``, ``"b-iter"``, or
            ``"pressure"`` (B-ITER plus the pressure-aware ``Q_P`` pass;
            ``budget`` config selects the per-cluster register budget),
            plus the ``debug-*`` failure-injection hooks.
        config: algorithm options as a sorted tuple of ``(key, value)``
            pairs; values must be JSON scalars so the key stays
            canonical.
    """

    dfg_json: str
    datapath_spec: str
    num_buses: int
    move_latency: int
    algorithm: str
    config: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def make(
        cls,
        dfg: Dfg,
        datapath: Datapath,
        algorithm: str,
        **config: Any,
    ) -> "BindJob":
        """Build a job from live objects, normalizing as it goes."""
        if algorithm not in _ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; "
                f"known: {sorted(_ALGORITHMS)}"
            )
        for key, value in config.items():
            if not isinstance(value, (str, int, float, bool, type(None))):
                raise TypeError(
                    f"config value {key}={value!r} is not a JSON scalar"
                )
        # The job carries the machine as (spec, N_B, lat(move)) — enough
        # for every paper configuration, but a datapath with further
        # registry customization (multi-cycle ALUs, unpipelined MULs, …)
        # would rehydrate differently and poison the cache.  Refuse it.
        reference = parse_datapath(
            datapath.spec(),
            num_buses=datapath.num_buses,
            move_latency=datapath.move_latency,
        )
        if {i.optype: i for i in datapath.registry} != {
            i.optype: i for i in reference.registry
        }:
            raise ValueError(
                "datapath has a custom timing registry that a BindJob "
                "cannot carry; only lat(move) overrides are supported"
            )
        return cls(
            dfg_json=_canonical(dfg_to_dict(dfg)),
            datapath_spec=datapath.spec(),
            num_buses=datapath.num_buses,
            move_latency=datapath.move_latency,
            algorithm=algorithm,
            config=tuple(sorted(config.items())),
        )

    def dfg(self) -> Dfg:
        """Rehydrate the DFG."""
        return dfg_from_dict(json.loads(self.dfg_json))

    def datapath(self) -> Datapath:
        """Rehydrate the datapath."""
        return parse_datapath(
            self.datapath_spec,
            num_buses=self.num_buses,
            move_latency=self.move_latency,
        )

    @property
    def kernel(self) -> str:
        """The DFG's name (used for labels; not part of the algorithm)."""
        return str(json.loads(self.dfg_json).get("name", "dfg"))

    def cache_key(self) -> str:
        """Content hash of the job (hex SHA-256 of the envelope)."""
        envelope = _canonical(
            {
                "schema": JOB_SCHEMA,
                "dfg": self.dfg_json,
                "datapath": self.datapath_spec,
                "num_buses": self.num_buses,
                "move_latency": self.move_latency,
                "algorithm": self.algorithm,
                "config": list(self.config),
            }
        )
        return hashlib.sha256(envelope.encode("utf-8")).hexdigest()


@dataclass
class JobResult:
    """Outcome of one job attempt (or a cache replay of one).

    ``latency``/``transfers`` are None when ``status == "failed"``;
    ``seconds`` is the algorithm's own wall-clock measurement.
    ``cached``/``attempts``/``worker`` are execution provenance, filled
    in by the runner rather than the algorithm.
    """

    key: str
    kernel: str
    algorithm: str
    datapath_spec: str
    status: str = "ok"
    latency: Optional[int] = None
    transfers: Optional[int] = None
    seconds: float = 0.0
    error: Optional[str] = None
    attempts: int = 1
    worker: str = field(default_factory=lambda: str(os.getpid()))
    cached: bool = False
    # Evaluation-engine observability (None for algorithms/runs that do
    # not report them; additive, so repro-runresult/1 blobs still load).
    eval_hits: Optional[int] = None
    eval_misses: Optional[int] = None
    evaluations: Optional[int] = None
    # Unified search telemetry (repro.search.SearchStats.as_dict():
    # best-quality trajectory, per-phase seconds, budget flags).
    search_stats: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        data["format"] = RESULT_SCHEMA
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobResult":
        fmt = data.get("format")
        if fmt != RESULT_SCHEMA:
            raise ValueError(
                f"unsupported result format {fmt!r}; expected {RESULT_SCHEMA!r}"
            )
        fields = {k: v for k, v in data.items() if k != "format"}
        return cls(**fields)


# ----------------------------------------------------------------------
# Algorithm dispatch.  The real binders are imported lazily: the runner
# executes the baselines and the baselines import runner.progress, so a
# module-level import here would close the cycle.
# ----------------------------------------------------------------------

def _run_pcc(dfg: Dfg, datapath: Datapath, config: Dict[str, Any]):
    from ..baselines.pcc import pcc_bind

    result = pcc_bind(dfg, datapath)
    return result.latency, result.num_transfers, result.seconds


def _eval_stats(result) -> Dict[str, Any]:
    stats: Dict[str, Any] = {
        "eval_hits": result.eval_hits,
        "eval_misses": result.eval_misses,
        "evaluations": result.evaluations,
    }
    if getattr(result, "search_stats", None) is not None:
        stats["search_stats"] = result.search_stats.as_dict()
    return stats


def _run_b_init(dfg: Dfg, datapath: Datapath, config: Dict[str, Any]):
    from ..core.driver import bind_initial

    result = bind_initial(dfg, datapath)
    return (
        result.latency,
        result.num_transfers,
        result.init_seconds,
        _eval_stats(result),
    )


def _budget_kwargs(config: Dict[str, Any]) -> Dict[str, Any]:
    """Session budget knobs carried by a job's config, when present.

    ``max_evals``/``deadline`` config keys map to a
    :class:`~repro.search.session.SearchSession`'s
    ``max_evaluations``/``deadline_seconds`` budgets; absent keys leave
    the session unbudgeted (bit-identical to the unbudgeted runs).
    """
    kwargs: Dict[str, Any] = {}
    if config.get("max_evals") is not None:
        kwargs["max_evaluations"] = int(config["max_evals"])
    if config.get("deadline") is not None:
        kwargs["deadline_seconds"] = float(config["deadline"])
    return kwargs


def _run_b_iter(dfg: Dfg, datapath: Datapath, config: Dict[str, Any]):
    from ..core.driver import bind
    from ..search.session import SearchSession

    budgets = _budget_kwargs(config)
    session = SearchSession(dfg, datapath, **budgets) if budgets else None
    result = bind(
        dfg,
        datapath,
        iter_starts=config.get("iter_starts"),
        session=session,
    )
    return (
        result.latency,
        result.num_transfers,
        result.init_seconds + result.iter_seconds,
        _eval_stats(result),
    )


def _run_pressure(dfg: Dfg, datapath: Datapath, config: Dict[str, Any]):
    """B-ITER followed by the pressure-aware Q_P pass, one shared session.

    The whole pipeline — B-INIT sweep, Q_U/Q_M descent, Q_P descent —
    shares a single :class:`~repro.search.session.SearchSession`, so the
    pressure pass starts with the descent's evaluation memo warm and the
    reported counters/telemetry cover the complete run.
    """
    from ..core.driver import bind
    from ..core.pressure_aware import pressure_aware_improvement
    from ..search.session import SearchSession

    budget = int(config.get("budget", 4))
    session = SearchSession(dfg, datapath, **_budget_kwargs(config))
    base = bind(
        dfg, datapath, iter_starts=config.get("iter_starts"), session=session
    )
    refined = pressure_aware_improvement(
        dfg, datapath, base.binding, budget=budget, session=session
    )
    stats = session.eval_stats
    return (
        refined.schedule.latency,
        refined.schedule.num_transfers,
        base.init_seconds + base.iter_seconds,
        {
            "eval_hits": stats.hits,
            "eval_misses": stats.misses,
            "evaluations": stats.evaluations,
            "search_stats": session.stats.as_dict(),
        },
    )


def _run_debug_fail(dfg: Dfg, datapath: Datapath, config: Dict[str, Any]):
    raise RuntimeError("injected failure (debug-fail job)")


def _run_debug_sleep(dfg: Dfg, datapath: Datapath, config: Dict[str, Any]):
    import time

    time.sleep(float(config.get("seconds", 60.0)))
    return 0, 0, 0.0


def _run_debug_crash(dfg: Dfg, datapath: Datapath, config: Dict[str, Any]):
    # Simulates a worker dying mid-job (segfault, OOM kill): exit the
    # process without cleanup so ProcessPoolExecutor sees a lost worker.
    os._exit(17)


_ALGORITHMS: Dict[str, Callable[[Dfg, Datapath, Dict[str, Any]], Any]] = {
    "pcc": _run_pcc,
    "b-init": _run_b_init,
    "b-iter": _run_b_iter,
    "pressure": _run_pressure,
    "debug-fail": _run_debug_fail,
    "debug-sleep": _run_debug_sleep,
    "debug-crash": _run_debug_crash,
}


def execute_job(job: BindJob) -> JobResult:
    """Run one job in the current process.

    Raises whatever the algorithm raises — retry/failure bookkeeping is
    the executor's responsibility, not this function's.
    """
    fn = _ALGORITHMS[job.algorithm]
    dfg = job.dfg()
    out = fn(dfg, job.datapath(), dict(job.config))
    # Algorithms return (L, M, seconds) or (L, M, seconds, stats) where
    # stats carries evaluation-engine counters.
    latency, transfers, seconds = out[:3]
    stats = out[3] if len(out) > 3 else {}
    return JobResult(
        key=job.cache_key(),
        kernel=dfg.name,
        algorithm=job.algorithm,
        datapath_spec=job.datapath_spec,
        status="ok",
        latency=latency,
        transfers=transfers,
        seconds=seconds,
        eval_hits=stats.get("eval_hits"),
        eval_misses=stats.get("eval_misses"),
        evaluations=stats.get("evaluations"),
        search_stats=stats.get("search_stats"),
    )
