"""Binding-job specifications and their execution.

A :class:`BindJob` is a frozen, hashable, picklable description of one
``(DFG, datapath, algorithm, config)`` binding run — the unit of work of
every experiment in the repository (Table 1/2 cells, the random-DFG
study, design-space exploration).  Jobs carry their inputs *by value*
(the DFG as canonical JSON, the datapath as its spec string), so they
can cross process boundaries and be content-addressed:

* :meth:`BindJob.cache_key` is a SHA-256 over a canonical, versioned
  envelope — the same job always hashes the same, across processes,
  hash-randomization seeds, and config-dict orderings; any change to
  the DFG, machine, algorithm, or config changes the key;
* :func:`execute_job` rehydrates the inputs and dispatches through the
  strategy registry (:mod:`repro.search.registry`), returning a
  :class:`JobResult` populated from the strategy's uniform
  :class:`~repro.search.registry.StrategyResult`.

The runner has no algorithm table of its own: ``job.algorithm`` is a
registered strategy name, validated (together with the config, against
the strategy's typed schema) at :meth:`BindJob.make` time.  Registering
a new strategy makes it runnable — with caching, budgets, retries, and
telemetry — without touching this module.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..datapath.model import Datapath
from ..datapath.parse import parse_datapath
from ..dfg.graph import Dfg
from ..dfg.serialize import dfg_from_dict, dfg_to_dict
from ..search.registry import get_strategy

__all__ = [
    "JOB_SCHEMA",
    "RESULT_SCHEMA",
    "BindJob",
    "JobResult",
    "execute_job",
]

#: Version tag mixed into every cache key; bump on any change to the
#: job envelope or to result semantics to invalidate stale caches.
JOB_SCHEMA = "repro-bindjob/1"

#: Version tag carried by serialized results (cache blobs, run stores).
RESULT_SCHEMA = "repro-runresult/1"


def _canonical(value: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace drift."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class BindJob:
    """One binding run, specified by value.

    Attributes:
        dfg_json: the DFG as canonical ``repro-dfg/1`` JSON (see
            :mod:`repro.dfg.serialize`); operation order is part of the
            serialization, so a serialize/deserialize round trip keys
            identically.
        datapath_spec: normalized paper-style cluster spec, including
            the ``@topology`` suffix for non-bus interconnects (bus
            machines stay suffix-free, so legacy job hashes replay).
        num_buses: ``N_B``.
        move_latency: ``lat(move)``.
        algorithm: a registered strategy name — ``repro.search.
            strategy_names(include_hidden=True)`` is the authoritative
            list (the paper's binders, every baseline, and the
            ``debug-*`` failure-injection hooks).
        config: strategy options as a sorted tuple of ``(key, value)``
            pairs; values must be JSON scalars so the key stays
            canonical, and keys/types must fit the strategy's declared
            schema.
    """

    dfg_json: str
    datapath_spec: str
    num_buses: int
    move_latency: int
    algorithm: str
    config: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def make(
        cls,
        dfg: Dfg,
        datapath: Datapath,
        algorithm: str,
        **config: Any,
    ) -> "BindJob":
        """Build a job from live objects, normalizing as it goes.

        ``algorithm`` must be a registered strategy and ``config`` must
        satisfy its schema — unknown names, unknown config keys (for
        strict strategies), non-scalar values, and type/range
        violations are all rejected here, before the job can reach a
        worker or a cache key.
        """
        strategy = get_strategy(algorithm)
        config = strategy.validate_config(config)
        # The job carries the machine as (spec, N_B, lat(move)) — enough
        # for every paper configuration, but a datapath with further
        # registry customization (multi-cycle ALUs, unpipelined MULs, …)
        # would rehydrate differently and poison the cache.  Refuse it.
        try:
            reference = parse_datapath(
                datapath.spec(),
                num_buses=datapath.num_buses,
                move_latency=datapath.move_latency,
            )
        except ValueError as exc:
            raise ValueError(
                f"datapath spec {datapath.spec()!r} does not round-trip "
                f"({exc}); BindJobs carry the machine by spec"
            ) from exc
        if reference.interconnect != datapath.interconnect:
            raise ValueError(
                "datapath has an interconnect its spec cannot reproduce "
                "(hand-built links?); BindJobs carry the machine by spec"
            )
        if {i.optype: i for i in datapath.registry} != {
            i.optype: i for i in reference.registry
        }:
            raise ValueError(
                "datapath has a custom timing registry that a BindJob "
                "cannot carry; only lat(move) overrides are supported"
            )
        return cls(
            dfg_json=_canonical(dfg_to_dict(dfg)),
            datapath_spec=datapath.spec(),
            num_buses=datapath.num_buses,
            move_latency=datapath.move_latency,
            algorithm=algorithm,
            config=tuple(sorted(config.items())),
        )

    def dfg(self) -> Dfg:
        """Rehydrate the DFG."""
        return dfg_from_dict(json.loads(self.dfg_json))

    def datapath(self) -> Datapath:
        """Rehydrate the datapath."""
        return parse_datapath(
            self.datapath_spec,
            num_buses=self.num_buses,
            move_latency=self.move_latency,
        )

    @property
    def kernel(self) -> str:
        """The DFG's name (used for labels; not part of the algorithm)."""
        return str(json.loads(self.dfg_json).get("name", "dfg"))

    def cache_key(self) -> str:
        """Content hash of the job (hex SHA-256 of the envelope)."""
        envelope = _canonical(
            {
                "schema": JOB_SCHEMA,
                "dfg": self.dfg_json,
                "datapath": self.datapath_spec,
                "num_buses": self.num_buses,
                "move_latency": self.move_latency,
                "algorithm": self.algorithm,
                "config": list(self.config),
            }
        )
        return hashlib.sha256(envelope.encode("utf-8")).hexdigest()


@dataclass
class JobResult:
    """Outcome of one job attempt (or a cache replay of one).

    ``latency``/``transfers`` are None when ``status == "failed"``;
    ``seconds`` is the algorithm's own wall-clock measurement.
    ``cached``/``attempts``/``worker`` are execution provenance, filled
    in by the runner rather than the algorithm.

    ``status`` says whether the run *produced a result*: ``ok``,
    ``failed``, ``quarantined`` (circuit breaker), ``expired`` (the
    end-to-end deadline passed while the job sat in a service queue),
    or ``shed`` (displaced under overload before dispatch).
    ``completion`` qualifies an ``ok`` result: ``complete`` (natural
    termination), ``deadline``/``cancelled`` (a budget or cooperative
    cancel cut the search; the numbers are the legal best-so-far), or
    ``salvaged`` (rebuilt from a dead worker's snapshot sidecar) —
    the :data:`repro.resilience.anytime.RESULT_STATUSES` taxonomy.
    Additive: pre-anytime cache blobs replay as ``complete``.
    """

    key: str
    kernel: str
    algorithm: str
    datapath_spec: str
    status: str = "ok"
    completion: str = "complete"
    latency: Optional[int] = None
    transfers: Optional[int] = None
    seconds: float = 0.0
    error: Optional[str] = None
    attempts: int = 1
    worker: str = field(default_factory=lambda: str(os.getpid()))
    cached: bool = False
    # Evaluation-engine observability (None for algorithms/runs that do
    # not report them; additive, so repro-runresult/1 blobs still load).
    eval_hits: Optional[int] = None
    eval_misses: Optional[int] = None
    evaluations: Optional[int] = None
    # Unified search telemetry (repro.search.SearchStats.as_dict():
    # best-quality trajectory, per-phase seconds, budget flags).
    search_stats: Optional[Dict[str, Any]] = None
    # Strategy-specific scalars from StrategyResult.extras
    # (nodes_explored, proven_optimal, cut_size, ...); additive too —
    # pre-registry cache blobs replay with an empty dict.
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        data["format"] = RESULT_SCHEMA
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobResult":
        fmt = data.get("format")
        if fmt != RESULT_SCHEMA:
            raise ValueError(
                f"unsupported result format {fmt!r}; expected {RESULT_SCHEMA!r}"
            )
        fields = {k: v for k, v in data.items() if k != "format"}
        return cls(**fields)


def execute_job(job: BindJob) -> JobResult:
    """Run one job in the current process.

    Dispatches through the strategy registry; the job's config was
    validated at :meth:`BindJob.make` time, so the strategy's run
    callable is invoked directly.  Raises whatever the strategy raises —
    retry/failure bookkeeping is the executor's responsibility, not this
    function's.
    """
    strategy = get_strategy(job.algorithm)
    dfg = job.dfg()
    out = strategy.run(dfg, job.datapath(), dict(job.config))
    return JobResult(
        key=job.cache_key(),
        kernel=dfg.name,
        algorithm=job.algorithm,
        datapath_spec=job.datapath_spec,
        status="ok",
        completion=out.status,
        latency=out.latency,
        transfers=out.transfers,
        seconds=out.seconds,
        eval_hits=out.stats.get("eval_hits"),
        eval_misses=out.stats.get("eval_misses"),
        evaluations=out.stats.get("evaluations"),
        search_stats=out.stats.get("search_stats"),
        extras=dict(out.extras),
    )
