"""repro.runner — the parallel, cache-backed experiment engine.

Every experiment in this repository reduces to batches of independent
``(kernel × datapath × algorithm × config)`` binding jobs — the paper's
tables, the random-DFG robustness study, and the design-space
exploration its conclusion points at.  This subsystem gives those
batches one engine:

* :class:`BindJob` / :class:`JobResult` — frozen job specs with
  deterministic content-hash cache keys (:mod:`repro.runner.jobs`);
* :class:`ResultCache` — on-disk content-addressed result reuse
  (:mod:`repro.runner.cache`);
* :func:`run_batch` — process-pool execution with per-job timeout,
  bounded retry, and crash recovery (:mod:`repro.runner.executor`);
* :class:`RunStore` — an append-only JSONL log of every run
  (:mod:`repro.runner.store`);
* :class:`timed` / :class:`ProgressTracker` — shared timing and live
  progress (:mod:`repro.runner.progress`);
* :func:`run_jobs` — the single entry point composing all of the above
  (:mod:`repro.runner.api`).

See ``docs/RUNNER.md`` for the job model, cache layout, and run-store
schema.
"""

from .api import run_jobs
from .cache import CacheStats, ResultCache
from .executor import JobTimeout, run_batch
from .jobs import BindJob, JobResult, execute_job
from .progress import ProgressTracker, timed
from .store import RunStore, RunSummary

__all__ = [
    "BindJob",
    "JobResult",
    "execute_job",
    "ResultCache",
    "CacheStats",
    "RunStore",
    "RunSummary",
    "run_batch",
    "run_jobs",
    "JobTimeout",
    "ProgressTracker",
    "timed",
]
