"""The experiment engine's single entry point: :func:`run_jobs`.

Composition of the runner layers::

    jobs --(resume store)---> prior ok results replayed
         --(circuit breaker)> persistent failers quarantined
         --(cache lookup)---> hits replayed, misses executed
         --(executor)-------> parallel / serial, timeout, retry, backoff
         --(validation)-----> trajectory invariants checked (opt-in)
         --(cache fill)-----> successful results written back
         --(run store)------> every (job, result) appended, input order
         --(progress)-------> per-completion callback

Results always come back in input order, regardless of worker
scheduling — callers that reassemble rows or design points can rely on
positional correspondence with the submitted job list.

Resilience semantics:

* ``resume=`` replays the latest successful record per job key from a
  prior (possibly killed) run's store, so re-invoking an interrupted
  sweep re-executes only the missing jobs;
* a per-spec *circuit breaker* quarantines any job whose accumulated
  failed attempts (this batch plus ``resume`` history) reach
  ``breaker_threshold``: the job is reported ``status ==
  "quarantined"`` without further execution and an incident line is
  appended to the run store, so one poisoned spec cannot burn the
  whole batch's retry budget run after run;
* ``validate=`` (default: the ``REPRO_VALIDATE`` environment gate)
  turns on checked invariants inside every worker's search sessions
  *and* a post-hoc trajectory check here; violations become incident
  records, never crashes;
* a cache write that fails (full disk, permissions) degrades to an
  incident + uncached result instead of aborting the batch.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Iterable, List, Optional

from ..resilience.validate import (
    VALIDATE_ENV,
    InvariantViolation,
    validate_trajectory,
)
from ..search.diskcache import EVAL_CACHE_ENV
from .cache import ResultCache
from .executor import run_batch
from .jobs import BindJob, JobResult
from .progress import ProgressTracker
from .store import RunStore

__all__ = ["run_jobs"]


def _replay(payload: Dict, worker: str) -> JobResult:
    result = JobResult.from_dict(payload)
    result.cached = True
    result.attempts = 0
    result.worker = worker
    return result


def run_jobs(
    jobs: Iterable[BindJob],
    *,
    max_workers: int = 1,
    cache: Optional[ResultCache] = None,
    store: Optional[RunStore] = None,
    resume: Optional[RunStore] = None,
    progress: Optional[Callable[[ProgressTracker], None]] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    backoff: float = 0.05,
    breaker_threshold: int = 3,
    validate: Optional[bool] = None,
) -> List[JobResult]:
    """Run a batch of binding jobs with caching, parallelism, and logging.

    Args:
        jobs: the batch; the result list matches its order.
        max_workers: 1 = in-process serial (deterministic, default);
            >1 = process-pool parallelism.
        cache: optional :class:`ResultCache`.  Hits skip execution
            entirely (their results replay with ``cached=True``);
            successful misses are written back.  Failures are never
            cached — a flaky job gets a fresh chance next run.  A cache
            also enables cross-worker *evaluation-outcome* sharing: the
            batch runs with ``REPRO_EVAL_CACHE`` pointing into the cache
            directory (unless already set), so search sessions in all
            workers pool their schedule evaluations.
        store: optional :class:`RunStore`; every job is recorded, in
            input order, with execution provenance.
        resume: optional *prior* :class:`RunStore` (typically the same
            path as ``store``): jobs whose key already has a successful
            record replay it (``worker == "resume"``) instead of
            re-executing, so an interrupted sweep picks up where it was
            killed.  Prior failed attempts count toward the circuit
            breaker.
        progress: optional callback, invoked with the shared
            :class:`ProgressTracker` after every finished job.
        timeout: per-attempt wall-clock budget in seconds.
        retries: extra attempts for a failing job (see
            :func:`repro.runner.executor.run_batch`).
        backoff: base seconds of the exponential retry backoff with
            deterministic jitter (0 disables).
        breaker_threshold: failed attempts (historical + current) at
            which a job key is quarantined instead of executed; <= 0
            disables the breaker.
        validate: run checked invariants (sessions re-check every
            outcome; trajectories are verified here).  Default: the
            ``REPRO_VALIDATE`` environment gate.

    Returns:
        One :class:`JobResult` per job, in input order; failures are
        in-band (``status == "failed"`` or ``"quarantined"``), never
        raised.
    """
    jobs = list(jobs)
    tracker = ProgressTracker(total=len(jobs), callback=progress)
    results: List[Optional[JobResult]] = [None] * len(jobs)
    keys = [job.cache_key() for job in jobs]

    prior_ok: Dict[str, Dict] = {}
    failed_attempts: Dict[str, int] = {}
    if resume is not None:
        prior_ok = resume.ok_records()
        failed_attempts = resume.failed_attempts()

    misses: List[int] = []
    for i, job in enumerate(jobs):
        key = keys[i]
        prior = prior_ok.get(key)
        if prior is not None:
            result = _replay(_record_to_payload(prior), "resume")
            results[i] = result
            tracker.update(result)
            continue
        if (
            breaker_threshold > 0
            and failed_attempts.get(key, 0) >= breaker_threshold
        ):
            result = _quarantined(job, key, failed_attempts[key])
            results[i] = result
            tracker.update(result)
            if store is not None:
                store.record_incident(
                    "run_jobs",
                    "circuit-breaker",
                    f"quarantined after {failed_attempts[key]} failed "
                    f"attempts (threshold {breaker_threshold})",
                    key=key,
                )
            continue
        if cache is not None:
            payload = cache.get(key)
            if payload is not None:
                result = _replay(payload, "cache")
                results[i] = result
                tracker.update(result)
                continue
        misses.append(i)

    # Share evaluation outcomes across worker processes: when a result
    # cache is configured and the caller has not pointed REPRO_EVAL_CACHE
    # elsewhere, expose an eval-outcome store next to it.  Workers (and
    # serial in-process runs) inherit the environment, so every
    # SearchSession warm-starts from — and persists back to — one pool.
    eval_cache_set = EVAL_CACHE_ENV not in os.environ and cache is not None
    if eval_cache_set:
        assert cache is not None
        os.environ[EVAL_CACHE_ENV] = str(cache.root / "evals")
    # Validation crosses process boundaries the same way: the explicit
    # argument (when given) overrides the inherited environment for the
    # duration of the batch.
    validate_prev = os.environ.get(VALIDATE_ENV)
    if validate is not None:
        os.environ[VALIDATE_ENV] = "1" if validate else "0"
    try:
        executed = run_batch(
            [jobs[i] for i in misses],
            max_workers=max_workers,
            timeout=timeout,
            retries=retries,
            backoff=backoff,
            on_result=tracker.update,
        )
    finally:
        if eval_cache_set:
            del os.environ[EVAL_CACHE_ENV]
        if validate is not None:
            if validate_prev is None:
                os.environ.pop(VALIDATE_ENV, None)
            else:
                os.environ[VALIDATE_ENV] = validate_prev

    validating = (
        validate
        if validate is not None
        else (validate_prev or "").strip().lower()
        in ("1", "true", "yes", "on")
    )
    for i, result in zip(misses, executed):
        results[i] = result
        if validating and result.ok and result.search_stats:
            try:
                validate_trajectory(
                    result.search_stats.get("best_trajectory", []),
                    result.search_stats.get("segments", []),
                )
            except InvariantViolation as exc:
                if store is not None:
                    store.record_incident(
                        "run_jobs",
                        "trajectory-violation",
                        str(exc),
                        key=keys[i],
                    )
        if cache is not None and result.ok and _cacheable(result):
            try:
                cache.put(keys[i], result.to_dict())
            except OSError as exc:
                # A failed write degrades to an uncached result; the
                # batch (and its tables) must not die on a full disk.
                if store is not None:
                    store.record_incident(
                        "run_jobs",
                        "cache-write-failed",
                        f"{type(exc).__name__}: {exc}",
                        key=keys[i],
                    )

    if store is not None:
        for job, result in zip(jobs, results):
            assert result is not None
            store.record(job, result)
    return [r for r in results if r is not None]


def _cacheable(result: JobResult) -> bool:
    """Should a successful result enter the content-addressed cache?

    ``complete`` results always cache.  ``deadline`` results cache only
    when the deadline came from the job *config* (part of the cache
    key) — an environment-propagated end-to-end deadline
    (``REPRO_DEADLINE_AT``) is not in the key, so caching its partial
    result would poison identical resubmits that have more time.
    ``cancelled`` results are artifacts of an external signal and never
    cache.
    """
    from ..resilience.anytime import DEADLINE_ENV

    if result.completion == "complete":
        return True
    if result.completion == "deadline":
        return DEADLINE_ENV not in os.environ
    return False


def _record_to_payload(record: Dict) -> Dict:
    """Project a run-store record back into a ``JobResult`` payload."""
    from .jobs import RESULT_SCHEMA

    return {
        "format": RESULT_SCHEMA,
        "key": record.get("key", ""),
        "kernel": record.get("kernel", ""),
        "algorithm": record.get("algorithm", ""),
        "datapath_spec": record.get("datapath", ""),
        "status": record.get("status", "ok"),
        "completion": record.get("completion", "complete"),
        "latency": record.get("latency"),
        "transfers": record.get("transfers"),
        "seconds": record.get("seconds", 0.0),
        "error": record.get("error"),
        "attempts": 0,
        "worker": "resume",
        "cached": True,
        "eval_hits": record.get("eval_hits", 0),
        "eval_misses": record.get("eval_misses", 0),
        "evaluations": record.get("evaluations", 0),
        "search_stats": record.get("search_stats"),
        "extras": record.get("extras") or {},
    }


def _quarantined(job: BindJob, key: str, prior_failures: int) -> JobResult:
    return JobResult(
        key=key,
        kernel=job.kernel,
        algorithm=job.algorithm,
        datapath_spec=job.datapath_spec,
        status="quarantined",
        error=(
            f"circuit breaker open: {prior_failures} prior failed attempts"
        ),
        attempts=0,
        worker="breaker",
    )
