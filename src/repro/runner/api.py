"""The experiment engine's single entry point: :func:`run_jobs`.

Composition of the runner layers::

    jobs --(cache lookup)--> hits replayed, misses executed
         --(executor)------> parallel / serial, timeout, retry
         --(cache fill)----> successful results written back
         --(run store)-----> every (job, result) appended, input order
         --(progress)------> per-completion callback

Results always come back in input order, regardless of worker
scheduling — callers that reassemble rows or design points can rely on
positional correspondence with the submitted job list.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, List, Optional

from ..search.diskcache import EVAL_CACHE_ENV
from .cache import ResultCache
from .executor import run_batch
from .jobs import BindJob, JobResult
from .progress import ProgressTracker
from .store import RunStore

__all__ = ["run_jobs"]


def run_jobs(
    jobs: Iterable[BindJob],
    *,
    max_workers: int = 1,
    cache: Optional[ResultCache] = None,
    store: Optional[RunStore] = None,
    progress: Optional[Callable[[ProgressTracker], None]] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
) -> List[JobResult]:
    """Run a batch of binding jobs with caching, parallelism, and logging.

    Args:
        jobs: the batch; the result list matches its order.
        max_workers: 1 = in-process serial (deterministic, default);
            >1 = process-pool parallelism.
        cache: optional :class:`ResultCache`.  Hits skip execution
            entirely (their results replay with ``cached=True``);
            successful misses are written back.  Failures are never
            cached — a flaky job gets a fresh chance next run.  A cache
            also enables cross-worker *evaluation-outcome* sharing: the
            batch runs with ``REPRO_EVAL_CACHE`` pointing into the cache
            directory (unless already set), so search sessions in all
            workers pool their schedule evaluations.
        store: optional :class:`RunStore`; every job is recorded, in
            input order, with execution provenance.
        progress: optional callback, invoked with the shared
            :class:`ProgressTracker` after every finished job.
        timeout: per-attempt wall-clock budget in seconds.
        retries: extra attempts for a failing job (see
            :func:`repro.runner.executor.run_batch`).

    Returns:
        One :class:`JobResult` per job, in input order; failures are
        in-band (``status == "failed"``), never raised.
    """
    jobs = list(jobs)
    tracker = ProgressTracker(total=len(jobs), callback=progress)
    results: List[Optional[JobResult]] = [None] * len(jobs)

    misses: List[int] = []
    for i, job in enumerate(jobs):
        if cache is not None:
            payload = cache.get(job.cache_key())
            if payload is not None:
                result = JobResult.from_dict(payload)
                result.cached = True
                result.attempts = 0
                result.worker = "cache"
                results[i] = result
                tracker.update(result)
                continue
        misses.append(i)

    # Share evaluation outcomes across worker processes: when a result
    # cache is configured and the caller has not pointed REPRO_EVAL_CACHE
    # elsewhere, expose an eval-outcome store next to it.  Workers (and
    # serial in-process runs) inherit the environment, so every
    # SearchSession warm-starts from — and persists back to — one pool.
    eval_cache_set = EVAL_CACHE_ENV not in os.environ and cache is not None
    if eval_cache_set:
        assert cache is not None
        os.environ[EVAL_CACHE_ENV] = str(cache.root / "evals")
    try:
        executed = run_batch(
            [jobs[i] for i in misses],
            max_workers=max_workers,
            timeout=timeout,
            retries=retries,
            on_result=tracker.update,
        )
    finally:
        if eval_cache_set:
            del os.environ[EVAL_CACHE_ENV]
    for i, result in zip(misses, executed):
        results[i] = result
        if cache is not None and result.ok:
            cache.put(jobs[i].cache_key(), result.to_dict())

    if store is not None:
        for job, result in zip(jobs, results):
            assert result is not None
            store.record(job, result)
    return [r for r in results if r is not None]
