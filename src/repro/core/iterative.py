"""B-ITER: iterative improvement by cluster-boundary perturbation (Section 3.2).

The initial binding is greedy; its partition boundaries are where the
greediness shows.  B-ITER repeatedly perturbs *boundary operations* —
operations with a producer or consumer bound to a different cluster — by
tentatively re-binding them (alone, or in pairs) to the cluster(s) where
the operand/result resides, and accepting the perturbation that most
improves a lexicographic quality vector:

1. a first hill-climbing pass driven by ``Q_U`` minimizes latency while
   steering off plateaus (Figure 6);
2. a second pass driven by ``Q_M`` trims data transfers without giving
   back any latency.

Every candidate is evaluated exactly: the DFG is re-bound (transfers
re-derived) and list-scheduled.  Perturbations are steepest-descent: each
iteration scans all candidates and commits the single best improving one,
terminating when no candidate improves the quality vector.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from ..datapath.model import Datapath
from ..dfg.graph import Dfg
from ..dfg.transform import bind_dfg
from ..schedule.list_scheduler import list_schedule
from ..schedule.schedule import Schedule
from .binding import Binding
from .quality import QualityVector, quality_qm, quality_qu

__all__ = [
    "IterativeResult",
    "iterative_improvement",
    "boundary_operations",
    "candidate_moves",
]


@dataclass(frozen=True)
class IterativeResult:
    """Outcome of B-ITER.

    Attributes:
        binding: the improved binding.
        schedule: the schedule of the improved binding.
        iterations: number of committed perturbations across both passes.
        evaluations: number of candidate bindings scheduled.
        history: quality vector after each committed perturbation.
    """

    binding: Binding
    schedule: Schedule
    iterations: int
    evaluations: int
    history: Tuple[QualityVector, ...]


def boundary_operations(dfg: Dfg, binding: Binding) -> Tuple[str, ...]:
    """Operations with a producer or consumer in a different cluster."""
    out = []
    for op in dfg.regular_operations():
        c = binding[op.name]
        neighbours = itertools.chain(
            dfg.predecessors(op.name), dfg.successors(op.name)
        )
        if any(binding[n] != c for n in neighbours):
            out.append(op.name)
    return tuple(out)


def candidate_moves(
    dfg: Dfg, datapath: Datapath, binding: Binding, v: str
) -> Tuple[int, ...]:
    """Clusters where an operand or result of ``v`` resides (Section 3.2).

    Only clusters in ``TS(v)`` that differ from the current binding are
    returned.
    """
    current = binding[v]
    ts = set(datapath.target_set(dfg.operation(v).optype))
    clusters = {
        binding[n]
        for n in itertools.chain(dfg.predecessors(v), dfg.successors(v))
    }
    return tuple(sorted(c for c in clusters if c != current and c in ts))


def _evaluate(
    dfg: Dfg,
    datapath: Datapath,
    binding: Binding,
    quality: Callable[[Schedule], QualityVector],
) -> Tuple[QualityVector, Schedule]:
    bound = bind_dfg(dfg, binding)
    schedule = list_schedule(bound, datapath)
    return quality(schedule), schedule


def _perturbations(
    dfg: Dfg,
    datapath: Datapath,
    binding: Binding,
    use_pairs: bool,
) -> Iterable[Tuple[Tuple[str, int], ...]]:
    """Yield candidate re-bindings as tuples of ``(op, new cluster)``.

    Singles: each boundary operation to each neighbour cluster.  Pairs:
    boundary operations connected by an edge or sharing a consumer, moved
    simultaneously — this captures the "move a producer together with its
    consumer" and "merge two producers of a common consumer" corrections
    that single moves cannot express without passing through a worse state.
    """
    boundary = boundary_operations(dfg, binding)
    moves: Dict[str, Tuple[int, ...]] = {
        v: candidate_moves(dfg, datapath, binding, v) for v in boundary
    }
    for v in boundary:
        for c in moves[v]:
            yield ((v, c),)
    if not use_pairs:
        return
    boundary_set = set(boundary)
    pairs: Set[Tuple[str, str]] = set()
    for v in boundary:
        for u in dfg.successors(v):
            if u in boundary_set:
                pairs.add((v, u))
        # Siblings: two boundary producers feeding a common consumer.
        for u in dfg.successors(v):
            for w in dfg.predecessors(u):
                if w != v and w in boundary_set:
                    pairs.add(tuple(sorted((v, w))))  # type: ignore[arg-type]
    for v, w in sorted(pairs):
        v_opts = moves[v] + (binding[v],)
        w_opts = moves[w] + (binding[w],)
        for cv in v_opts:
            for cw in w_opts:
                if cv == binding[v] and cw == binding[w]:
                    continue
                if cv == binding[v] or cw == binding[w]:
                    # Covered by single moves.
                    continue
                yield ((v, cv), (w, cw))


def _descend(
    dfg: Dfg,
    datapath: Datapath,
    binding: Binding,
    quality: Callable[[Schedule], QualityVector],
    use_pairs: bool,
    max_iterations: int,
    history: List[QualityVector],
    eval_counter: List[int],
) -> Tuple[Binding, QualityVector, Schedule, int]:
    """Steepest-descent loop for one quality function."""
    best_q, best_schedule = _evaluate(dfg, datapath, binding, quality)
    eval_counter[0] += 1
    committed = 0
    while committed < max_iterations:
        round_best: Optional[Tuple[QualityVector, Binding, Schedule]] = None
        for perturbation in _perturbations(dfg, datapath, binding, use_pairs):
            candidate = binding.rebind(*perturbation)
            q, schedule = _evaluate(dfg, datapath, candidate, quality)
            eval_counter[0] += 1
            if q < best_q and (round_best is None or q < round_best[0]):
                round_best = (q, candidate, schedule)
        if round_best is None:
            break
        best_q, binding, best_schedule = round_best
        history.append(best_q)
        committed += 1
    return binding, best_q, best_schedule, committed


def iterative_improvement(
    dfg: Dfg,
    datapath: Datapath,
    binding: Binding,
    use_pairs: bool = True,
    quality: str = "qu+qm",
    max_iterations: int = 1000,
) -> IterativeResult:
    """Run B-ITER on an existing binding.

    Args:
        dfg: the original DFG.
        datapath: the machine.
        binding: the starting point (normally the driver's best B-INIT).
        use_pairs: also try simultaneous pair re-bindings (paper default).
        quality: ``"qu+qm"`` (paper: Q_U to convergence, then Q_M),
            ``"qu"``, ``"qm"``, or ``"latency"`` (the naive function the
            paper shows getting stuck; kept for the ablation benchmark).
        max_iterations: safety cap on committed perturbations per pass.

    Returns:
        An :class:`IterativeResult`; its schedule's latency is the paper's
        B-ITER ``L`` and its transfer count the ``M``.
    """
    history: List[QualityVector] = []
    evals = [0]
    iterations = 0

    passes: List[Callable[[Schedule], QualityVector]]
    if quality == "qu+qm":
        passes = [quality_qu, quality_qm]
    elif quality == "qu":
        passes = [quality_qu]
    elif quality == "qm":
        passes = [quality_qm]
    elif quality == "latency":
        passes = [lambda s: (s.latency,)]
    else:
        raise ValueError(f"unknown quality spec {quality!r}")

    schedule: Optional[Schedule] = None
    for fn in passes:
        binding, _, schedule, committed = _descend(
            dfg,
            datapath,
            binding,
            fn,
            use_pairs,
            max_iterations,
            history,
            evals,
        )
        iterations += committed
    assert schedule is not None
    return IterativeResult(
        binding=binding,
        schedule=schedule,
        iterations=iterations,
        evaluations=evals[0],
        history=tuple(history),
    )
