"""B-ITER: iterative improvement by cluster-boundary perturbation (Section 3.2).

The initial binding is greedy; its partition boundaries are where the
greediness shows.  B-ITER repeatedly perturbs *boundary operations* —
operations with a producer or consumer bound to a different cluster — by
tentatively re-binding them (alone, or in pairs) to the cluster(s) where
the operand/result resides, and accepting the perturbation that most
improves a lexicographic quality vector:

1. a first hill-climbing pass driven by ``Q_U`` minimizes latency while
   steering off plateaus (Figure 6);
2. a second pass driven by ``Q_M`` trims data transfers without giving
   back any latency.

Every candidate is evaluated exactly: the DFG is re-bound (transfers
re-derived) and list-scheduled.  Perturbations are steepest-descent: each
iteration scans all candidates and commits the single best improving one,
terminating when no candidate improves the quality vector.

By default candidates run through the fast evaluation engine
(:mod:`repro.schedule.fastpath` + :mod:`repro.core.evalcache`): a
precompiled scheduling context, incremental transfer re-derivation, and
a placement-keyed memo shared between the Q_U and Q_M passes.  The
engine is bit-equivalent to the naive ``bind_dfg`` + ``list_schedule``
path (``fast=False``), which is retained for differential testing.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Set, Tuple

from ..datapath.model import Datapath
from ..dfg.graph import Dfg
from ..dfg.transform import bind_dfg
from ..schedule.fastpath import fastpath_enabled
from ..schedule.list_scheduler import list_schedule
from ..schedule.schedule import Schedule
from .binding import Binding
from .evalcache import Evaluator
from .quality import QualityVector, quality_qm, quality_qu

__all__ = [
    "IterativeResult",
    "iterative_improvement",
    "boundary_operations",
    "candidate_moves",
]


@dataclass(frozen=True)
class IterativeResult:
    """Outcome of B-ITER.

    Attributes:
        binding: the improved binding.
        schedule: the schedule of the improved binding.
        iterations: number of committed perturbations across both passes.
        evaluations: number of candidate bindings evaluated (whether the
            schedule came from the memo or was computed).
        history: quality vector after each committed perturbation.
        cache_hits: candidate evaluations answered by the evaluation
            memo (0 on the naive path).
        cache_misses: candidate evaluations that had to schedule.
    """

    binding: Binding
    schedule: Schedule
    iterations: int
    evaluations: int
    history: Tuple[QualityVector, ...]
    cache_hits: int = 0
    cache_misses: int = 0


def boundary_operations(dfg: Dfg, binding: Binding) -> Tuple[str, ...]:
    """Operations with a producer or consumer in a different cluster."""
    out = []
    for op in dfg.regular_operations():
        c = binding[op.name]
        neighbours = itertools.chain(
            dfg.predecessors(op.name), dfg.successors(op.name)
        )
        if any(binding[n] != c for n in neighbours):
            out.append(op.name)
    return tuple(out)


def candidate_moves(
    dfg: Dfg, datapath: Datapath, binding: Binding, v: str
) -> Tuple[int, ...]:
    """Clusters where an operand or result of ``v`` resides (Section 3.2).

    Only clusters in ``TS(v)`` that differ from the current binding are
    returned.
    """
    current = binding[v]
    ts = set(datapath.target_set(dfg.operation(v).optype))
    clusters = {
        binding[n]
        for n in itertools.chain(dfg.predecessors(v), dfg.successors(v))
    }
    return tuple(sorted(c for c in clusters if c != current and c in ts))


#: An evaluation function: binding -> schedule-like object exposing
#: ``latency``, ``num_transfers``, and ``completion_profile()``.
EvaluateFn = Callable[[Binding], object]


def _naive_evaluate(dfg: Dfg, datapath: Datapath) -> EvaluateFn:
    """The reference evaluation: rebuild the bound DFG and schedule it."""

    def evaluate(binding: Binding) -> Schedule:
        return list_schedule(bind_dfg(dfg, binding), datapath)

    return evaluate


def _perturbations(
    dfg: Dfg,
    datapath: Datapath,
    binding: Binding,
    use_pairs: bool,
    boundary: Optional[Tuple[str, ...]] = None,
    moves: Optional[Dict[str, Tuple[int, ...]]] = None,
) -> Iterable[Tuple[Tuple[str, int], ...]]:
    """Yield candidate re-bindings as tuples of ``(op, new cluster)``.

    Singles: each boundary operation to each neighbour cluster.  Pairs:
    boundary operations connected by an edge or sharing a consumer, moved
    simultaneously — this captures the "move a producer together with its
    consumer" and "merge two producers of a common consumer" corrections
    that single moves cannot express without passing through a worse state.

    ``boundary``/``moves`` accept a precomputed neighbourhood (see
    :func:`boundary_operations`/:func:`candidate_moves`); ``_descend``
    hoists that setup out of the generator so profiling attributes the
    round's time to candidate evaluation, not neighbourhood discovery.
    """
    if boundary is None:
        boundary = boundary_operations(dfg, binding)
    if moves is None:
        moves = {
            v: candidate_moves(dfg, datapath, binding, v) for v in boundary
        }
    for v in boundary:
        for c in moves[v]:
            yield ((v, c),)
    if not use_pairs:
        return
    boundary_set = set(boundary)
    pairs: Set[Tuple[str, str]] = set()
    for v in boundary:
        for u in dfg.successors(v):
            if u in boundary_set:
                pairs.add((v, u))
        # Siblings: two boundary producers feeding a common consumer.
        for u in dfg.successors(v):
            for w in dfg.predecessors(u):
                if w != v and w in boundary_set:
                    pairs.add(tuple(sorted((v, w))))  # type: ignore[arg-type]
    for v, w in sorted(pairs):
        v_opts = moves[v] + (binding[v],)
        w_opts = moves[w] + (binding[w],)
        for cv in v_opts:
            for cw in w_opts:
                if cv == binding[v] and cw == binding[w]:
                    continue
                if cv == binding[v] or cw == binding[w]:
                    # Covered by single moves.
                    continue
                yield ((v, cv), (w, cw))


def _descend(
    dfg: Dfg,
    datapath: Datapath,
    binding: Binding,
    quality: Callable[[object], QualityVector],
    use_pairs: bool,
    max_iterations: int,
    history: List[QualityVector],
    eval_counter: List[int],
    evaluate: Optional[EvaluateFn] = None,
) -> Tuple[Binding, QualityVector, object, int]:
    """Steepest-descent loop for one quality function.

    Returns the improved binding, its quality, the evaluation outcome
    of the final binding (a :class:`Schedule` on the naive path, a
    :class:`~repro.schedule.fastpath.FastOutcome` on the fast path),
    and the number of committed perturbations.
    """
    if evaluate is None:
        evaluate = _naive_evaluate(dfg, datapath)
    best_out = evaluate(binding)
    best_q = quality(best_out)
    eval_counter[0] += 1
    committed = 0
    while committed < max_iterations:
        boundary = boundary_operations(dfg, binding)
        moves = {
            v: candidate_moves(dfg, datapath, binding, v) for v in boundary
        }
        round_best: Optional[Tuple[QualityVector, Binding, object]] = None
        threshold = best_q
        for perturbation in _perturbations(
            dfg, datapath, binding, use_pairs, boundary, moves
        ):
            candidate = binding.rebind(*perturbation)
            out = evaluate(candidate)
            q = quality(out)
            eval_counter[0] += 1
            if q < threshold:
                round_best = (q, candidate, out)
                threshold = q
        if round_best is None:
            break
        best_q, binding, best_out = round_best
        history.append(best_q)
        committed += 1
    return binding, best_q, best_out, committed


def iterative_improvement(
    dfg: Dfg,
    datapath: Datapath,
    binding: Binding,
    use_pairs: bool = True,
    quality: str = "qu+qm",
    max_iterations: int = 1000,
    fast: Optional[bool] = None,
    evaluator: Optional[Evaluator] = None,
) -> IterativeResult:
    """Run B-ITER on an existing binding.

    Args:
        dfg: the original DFG.
        datapath: the machine.
        binding: the starting point (normally the driver's best B-INIT).
        use_pairs: also try simultaneous pair re-bindings (paper default).
        quality: ``"qu+qm"`` (paper: Q_U to convergence, then Q_M),
            ``"qu"``, ``"qm"``, or ``"latency"`` (the naive function the
            paper shows getting stuck; kept for the ablation benchmark).
        max_iterations: safety cap on committed perturbations per pass.
        fast: use the precompiled fast-path evaluation engine (default:
            on, unless ``REPRO_FASTPATH=0``).  Bit-equivalent to the
            naive path either way.
        evaluator: a shared :class:`~repro.core.evalcache.Evaluator`
            for this exact ``(dfg, datapath)`` pair — the driver passes
            one so all multi-start descents share a single memo.
            Implies ``fast``.

    Returns:
        An :class:`IterativeResult`; its schedule's latency is the paper's
        B-ITER ``L`` and its transfer count the ``M``.
    """
    history: List[QualityVector] = []
    evals = [0]
    iterations = 0

    passes: List[Callable[[object], QualityVector]]
    if quality == "qu+qm":
        passes = [quality_qu, quality_qm]
    elif quality == "qu":
        passes = [quality_qu]
    elif quality == "qm":
        passes = [quality_qm]
    elif quality == "latency":
        passes = [lambda s: (s.latency,)]
    else:
        raise ValueError(f"unknown quality spec {quality!r}")

    if evaluator is None and (fast if fast is not None else fastpath_enabled()):
        evaluator = Evaluator(dfg, datapath)
    if evaluator is not None:
        hits0, misses0 = evaluator.cache.hits, evaluator.cache.misses
        evaluate: EvaluateFn = evaluator.evaluate
    else:
        hits0 = misses0 = 0
        evaluate = _naive_evaluate(dfg, datapath)

    outcome: Optional[object] = None
    for fn in passes:
        binding, _, outcome, committed = _descend(
            dfg,
            datapath,
            binding,
            fn,
            use_pairs,
            max_iterations,
            history,
            evals,
            evaluate,
        )
        iterations += committed
    assert outcome is not None
    if evaluator is not None:
        schedule = evaluator.schedule(binding)
        cache_hits = evaluator.cache.hits - hits0
        cache_misses = evaluator.cache.misses - misses0
    else:
        schedule = outcome  # the naive path evaluates to a Schedule
        cache_hits = cache_misses = 0
    return IterativeResult(
        binding=binding,
        schedule=schedule,
        iterations=iterations,
        evaluations=evals[0],
        history=tuple(history),
        cache_hits=cache_hits,
        cache_misses=cache_misses,
    )
