"""B-ITER: iterative improvement by cluster-boundary perturbation (Section 3.2).

The initial binding is greedy; its partition boundaries are where the
greediness shows.  B-ITER repeatedly perturbs *boundary operations* —
operations with a producer or consumer bound to a different cluster — by
tentatively re-binding them (alone, or in pairs) to the cluster(s) where
the operand/result resides, and accepting the perturbation that most
improves a lexicographic quality vector:

1. a first hill-climbing pass driven by ``Q_U`` minimizes latency while
   steering off plateaus (Figure 6);
2. a second pass driven by ``Q_M`` trims data transfers without giving
   back any latency.

Every candidate is evaluated exactly: the DFG is re-bound (transfers
re-derived) and list-scheduled.  Perturbations are steepest-descent: each
iteration scans all candidates and commits the single best improving one,
terminating when no candidate improves the quality vector.

This module is the B-ITER *strategy*; all strategy-independent machinery
lives in :mod:`repro.search`: move generation in
:class:`~repro.search.neighborhood.Neighborhood`, the descent loop in
:func:`~repro.search.descent.steepest_descent`, quality-vector
resolution in :class:`~repro.search.quality.QualitySpec`, and evaluation
(fast/naive dispatch, memoization, counters, budgets) in
:class:`~repro.search.session.SearchSession`.  By default candidates run
through the fast evaluation engine (:mod:`repro.schedule.fastpath` +
:mod:`repro.core.evalcache`), bit-equivalent to the naive ``bind_dfg`` +
``list_schedule`` path (``fast=False``), which is retained for
differential testing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..datapath.model import Datapath
from ..dfg.graph import Dfg
from ..schedule.schedule import Schedule
from ..search.descent import steepest_descent
from ..search.neighborhood import Neighborhood
from ..search.quality import QualitySpec
from ..search.session import SearchSession
from .binding import Binding
from .evalcache import Evaluator
from .quality import QualityVector

__all__ = [
    "IterativeResult",
    "iterative_improvement",
    "boundary_operations",
    "candidate_moves",
]


@dataclass(frozen=True)
class IterativeResult:
    """Outcome of B-ITER.

    Attributes:
        binding: the improved binding.
        schedule: the schedule of the improved binding.
        iterations: number of committed perturbations across both passes.
        evaluations: number of candidate bindings evaluated (whether the
            schedule came from the memo or was computed).
        history: quality vector after each committed perturbation.
        cache_hits: candidate evaluations answered by the evaluation
            memo (0 on the naive path).
        cache_misses: candidate evaluations that had to schedule.
    """

    binding: Binding
    schedule: Schedule
    iterations: int
    evaluations: int
    history: Tuple[QualityVector, ...]
    cache_hits: int = 0
    cache_misses: int = 0


def boundary_operations(dfg: Dfg, binding: Binding) -> Tuple[str, ...]:
    """Operations with a producer or consumer in a different cluster.

    Thin wrapper over :meth:`~repro.search.neighborhood.Neighborhood.
    boundary`, kept as a module-level function for callers that inspect
    a single binding without building a neighbourhood (the datapath is
    not needed for boundary discovery).
    """
    return Neighborhood(dfg).boundary(binding)


def candidate_moves(
    dfg: Dfg, datapath: Datapath, binding: Binding, v: str
) -> Tuple[int, ...]:
    """Clusters where an operand or result of ``v`` resides (Section 3.2).

    Only clusters in ``TS(v)`` that differ from the current binding are
    returned.  Wrapper over :meth:`~repro.search.neighborhood.
    Neighborhood.moves`.
    """
    return Neighborhood(dfg, datapath).moves(binding, v)


def _perturbations(
    dfg: Dfg,
    datapath: Datapath,
    binding: Binding,
    use_pairs: bool,
    boundary: Optional[Tuple[str, ...]] = None,
    moves: Optional[Dict[str, Tuple[int, ...]]] = None,
) -> Iterable[Tuple[Tuple[str, int], ...]]:
    """Yield candidate re-bindings as tuples of ``(op, new cluster)``.

    Retained as the historical entry point; the generation itself lives
    in :meth:`~repro.search.neighborhood.Neighborhood.perturbations`.
    """
    return Neighborhood(dfg, datapath, use_pairs=use_pairs).perturbations(
        binding, boundary, moves
    )


def iterative_improvement(
    dfg: Dfg,
    datapath: Datapath,
    binding: Binding,
    use_pairs: bool = True,
    quality: str = "qu+qm",
    max_iterations: int = 1000,
    fast: Optional[bool] = None,
    evaluator: Optional[Evaluator] = None,
    session: Optional[SearchSession] = None,
) -> IterativeResult:
    """Run B-ITER on an existing binding.

    Args:
        dfg: the original DFG.
        datapath: the machine.
        binding: the starting point (normally the driver's best B-INIT).
        use_pairs: also try simultaneous pair re-bindings (paper default).
        quality: a :class:`~repro.search.quality.QualitySpec` string:
            ``"qu+qm"`` (paper: Q_U to convergence, then Q_M), ``"qu"``,
            ``"qm"``, or ``"latency"`` (the naive function the paper
            shows getting stuck; kept for the ablation benchmark).
        max_iterations: safety cap on committed perturbations per pass.
        fast: use the precompiled fast-path evaluation engine (default:
            on, unless ``REPRO_FASTPATH=0``).  Bit-equivalent to the
            naive path either way.
        evaluator: a shared :class:`~repro.core.evalcache.Evaluator`
            for this exact ``(dfg, datapath)`` pair — so multi-start
            descents share a single memo.  Implies ``fast``.
        session: a shared :class:`~repro.search.session.SearchSession`
            (the driver passes one so the sweep, every descent, and any
            pressure pass feed one memo and one stats record).
            Supersedes ``fast``/``evaluator``.

    Returns:
        An :class:`IterativeResult`; its schedule's latency is the paper's
        B-ITER ``L`` and its transfer count the ``M``.  The counters are
        this call's deltas even on a shared session.
    """
    spec = QualitySpec.parse(quality)
    if session is None:
        session = SearchSession(dfg, datapath, fast=fast, evaluator=evaluator)
    neighborhood = Neighborhood(dfg, datapath, use_pairs=use_pairs)

    history: List[QualityVector] = []
    iterations = 0
    snap = session.stats.snapshot()

    outcome: Optional[object] = None
    for name, fn in zip(spec.passes, spec.functions()):
        with session.phase(f"descend:{name}"):
            binding, _, outcome, committed = steepest_descent(
                session, neighborhood, binding, fn, max_iterations, history
            )
        iterations += committed
    assert outcome is not None
    evaluations, cache_hits, cache_misses = session.stats.since(snap)
    if session.fast:
        schedule = session.schedule(binding)
    else:
        schedule = outcome  # the naive path evaluates to a Schedule
    return IterativeResult(
        binding=binding,
        schedule=schedule,
        iterations=iterations,
        evaluations=evaluations,
        history=tuple(history),
        cache_hits=cache_hits,
        cache_misses=cache_misses,
    )
