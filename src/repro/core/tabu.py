"""Tabu-search variant of the iterative improvement (footnote 4).

The paper's Section 3.2 describes the simple B-ITER termination rule
("terminates ... when the perturbations fail to find a binding solution
with a better value of the cost function") and footnotes "a more
powerful variant of the algorithm".  This module implements the natural
such variant: a tabu walk over the same boundary-perturbation
neighbourhood that may accept *non-improving* moves (bounded sideways/
uphill steps) while remembering visited bindings, keeping the best
solution ever seen.

In practice it recovers a further cycle on a small fraction of cells at
a few times the cost of plain B-ITER; the ablation benchmark
``benchmarks/test_ablation_tabu.py`` quantifies that.  The walk revisits
neighbourhoods of bindings near the incumbent constantly, so it benefits
disproportionately from the shared evaluation memo (``fast=True``,
default).  Move generation and evaluation run through the
:mod:`repro.search` substrate
(:class:`~repro.search.neighborhood.Neighborhood` and
:class:`~repro.search.session.SearchSession`); only the acceptance rule
— the strategy — lives here.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Set, Tuple

from ..datapath.model import Datapath
from ..dfg.graph import Dfg
from ..search.neighborhood import Neighborhood
from ..search.session import SearchSession
from .binding import Binding
from .evalcache import Evaluator
from .iterative import IterativeResult
from .quality import QualityVector, quality_qm, quality_qu

__all__ = ["tabu_improvement"]


def tabu_improvement(
    dfg: Dfg,
    datapath: Datapath,
    binding: Binding,
    use_pairs: bool = True,
    sideways_budget: int = 20,
    max_steps: int = 2000,
    fast: Optional[bool] = None,
    evaluator: Optional[Evaluator] = None,
    session: Optional[SearchSession] = None,
) -> IterativeResult:
    """Tabu-search refinement of a binding under ``Q_U`` then ``Q_M``.

    Args:
        dfg: the original DFG.
        datapath: the machine.
        binding: the starting point (e.g. the driver's B-INIT result).
        use_pairs: include pair perturbations (as in B-ITER).
        sideways_budget: non-improving steps allowed since the last
            strict improvement before the walk stops.
        max_steps: hard cap on committed steps.
        fast: use the memo-backed fast evaluation engine (default: on,
            unless ``REPRO_FASTPATH=0``).  Bit-equivalent either way.
        evaluator: a shared :class:`~repro.core.evalcache.Evaluator`.
            Implies ``fast``.
        session: a shared :class:`~repro.search.session.SearchSession`;
            supersedes ``fast``/``evaluator``.

    Returns:
        An :class:`~repro.core.iterative.IterativeResult` holding the
        best binding *ever visited* (never worse than the start).
    """
    if session is None:
        session = SearchSession(dfg, datapath, fast=fast, evaluator=evaluator)
    neighborhood = Neighborhood(dfg, datapath, use_pairs=use_pairs)

    def evaluate(
        b: Binding, quality: Callable[[object], QualityVector]
    ) -> Tuple[QualityVector, object]:
        out = session.evaluate(b)
        return quality(out), out

    history: List[QualityVector] = []
    snap = session.stats.snapshot()
    steps = 0

    best_binding = binding
    best_q, _ = evaluate(binding, quality_qu)

    for quality in (quality_qu, quality_qm):
        session.stats.begin_segment()
        current = best_binding
        current_q, _ = evaluate(current, quality)
        best_q_this, _ = evaluate(best_binding, quality)
        best_binding_this = best_binding
        visited: Set[Binding] = {current}
        since_improvement = 0

        while (
            steps < max_steps
            and since_improvement <= sideways_budget
            and not session.exhausted()
        ):
            round_best: Optional[Tuple[QualityVector, Binding]] = None
            for perturbation in neighborhood.perturbations(current):
                candidate = current.rebind(*perturbation)
                if candidate in visited:
                    continue
                q, _ = evaluate(candidate, quality)
                if round_best is None or q < round_best[0]:
                    round_best = (q, candidate)
            if round_best is None:
                break  # neighbourhood exhausted
            q, current = round_best
            visited.add(current)
            steps += 1
            history.append(q)
            if q < best_q_this:
                best_q_this = q
                best_binding_this = current
                session.stats.record_best(q)
                since_improvement = 0
            else:
                since_improvement += 1
        best_binding = best_binding_this

    evaluations, cache_hits, cache_misses = session.stats.since(snap)
    final_schedule = session.schedule(best_binding)
    return IterativeResult(
        binding=best_binding,
        schedule=final_schedule,
        iterations=steps,
        evaluations=evaluations,
        history=tuple(history),
        cache_hits=cache_hits,
        cache_misses=cache_misses,
    )
