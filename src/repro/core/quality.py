"""Binding quality functions Q_U and Q_M (paper Section 3.2, Figure 6).

Both quality functions are vectors compared lexicographically (smaller is
better):

* ``Q_U = (L, U_0, U_1, ...)`` — schedule latency followed by the number
  of *regular* operations completing at step ``L``, ``L-1``, ... .  This
  captures improvement *potential*: a binding that clears operations off
  the last schedule steps is closer to a latency reduction even when ``L``
  itself has not moved yet, which is what lets the hill-climbing
  perturbations make gradual progress (the naive latency-only function
  stalls on plateaus).
* ``Q_M = (L, N_MV)`` — latency then number of data transfers.  Q_M is
  worse at escaping latency plateaus but good at trimming transfers, so
  B-ITER runs Q_U to convergence first and then Q_M (paper: "we first use
  Q_U to achieve the minimum latency and then use Q_M to minimize N_MV").

Vectors are plain tuples, so Python's tuple comparison provides the exact
lexicographic semantics, including the footnote-5 "compare until first
mismatch" short-circuit.
"""

from __future__ import annotations

from typing import Callable, Tuple

from ..schedule.schedule import Schedule

__all__ = ["QualityVector", "quality_qu", "quality_qm", "make_quality"]

#: A lexicographically comparable quality vector; smaller is better.
QualityVector = Tuple[int, ...]


def quality_qu(schedule: Schedule, depth: int | None = None) -> QualityVector:
    """``Q_U``: latency followed by completion counts from the last step.

    Args:
        schedule: a schedule of the bound DFG.
        depth: number of ``U_i`` components to include; defaults to all
            ``L`` of them.  The components count regular operations
            completing at steps ``L``, ``L-1``, ...

    Returns:
        ``(L, U_0, U_1, ..., U_{depth-1})``.
    """
    profile = schedule.completion_profile()
    if depth is not None:
        profile = profile[:depth]
    return (schedule.latency, *profile)


def quality_qm(schedule: Schedule) -> QualityVector:
    """``Q_M = (L, N_MV)``: latency then number of data transfers."""
    return (schedule.latency, schedule.num_transfers)


def make_quality(name: str) -> Callable[[Schedule], QualityVector]:
    """Look up a quality function by name (``"qu"`` or ``"qm"``)."""
    if name == "qu":
        return quality_qu
    if name == "qm":
        return quality_qm
    raise ValueError(f"unknown quality function {name!r}; use 'qu' or 'qm'")
