"""Binding-keyed evaluation memo shared across search phases.

B-ITER's Q_U and Q_M passes, the driver's multi-start descents, the
tabu walk, and annealing all evaluate *bindings*; the mapping from a
binding to its schedule is a pure function of ``(DFG, datapath)``.
Descents started from different B-INIT sweep candidates converge into
the same basins and re-schedule identical bindings; the Q_M pass
re-evaluates every binding the Q_U pass just visited at its frontier.
:class:`EvalCache` memoizes evaluation outcomes under the placement
tuple so each distinct binding is scheduled at most once per
``(DFG, datapath)`` job, and :class:`Evaluator` packages the memo with
the precompiled :class:`~repro.schedule.fastpath.SchedContext` into the
evaluation engine the algorithms consume.

Hit/miss/evaluation counters are exposed on the cache and surfaced on
:class:`~repro.core.iterative.IterativeResult`,
:class:`~repro.core.driver.BindResult`, and the runner's JSONL store as
an observability layer — a table regeneration reports how much work the
memo actually removed.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from ..datapath.model import Datapath
from ..dfg.graph import Dfg
from ..schedule.fastpath import FastOutcome, SchedContext
from ..schedule.schedule import Schedule

__all__ = [
    "WARM_CONTEXT_ENV",
    "EvalStats",
    "EvalCache",
    "Evaluator",
    "shared_context",
    "warm_contexts_enabled",
]

#: Environment gate for the process-level :class:`SchedContext` pool.
#: Long-lived processes that evaluate many jobs over a few recurring
#: ``(DFG, datapath)`` pairs — the service's warm worker pool — set it
#: so successive :class:`Evaluator` instances reuse the precompiled
#: context instead of rebuilding the integer tables per job.
WARM_CONTEXT_ENV = "REPRO_WARM_CONTEXTS"

#: Most contexts kept warm per process (LRU beyond this).
_CONTEXT_POOL_MAX = 8

#: content hash -> precompiled context, most recently used last.
_context_pool: "OrderedDict[str, SchedContext]" = OrderedDict()


def warm_contexts_enabled() -> bool:
    """True when ``REPRO_WARM_CONTEXTS`` asks for context pooling."""
    value = os.environ.get(WARM_CONTEXT_ENV, "").strip().lower()
    return value in ("1", "true", "yes", "on")


def shared_context(dfg: Dfg, datapath: Datapath) -> SchedContext:
    """The process-level precompiled context for ``(dfg, datapath)``.

    Keyed by the same content hash the on-disk
    :class:`~repro.search.diskcache.OutcomeStore` uses (full timing
    registry included), so two jobs get one context exactly when their
    evaluation spaces are identical.  A context is stateless between
    ``evaluate`` calls — a single :class:`Evaluator` already reuses one
    across its whole lifetime — so sequential sharing across evaluators
    in one process is observationally identical to a fresh build, only
    without the precompilation cost.  The pool is LRU-bounded.
    """
    from ..search.diskcache import outcome_cache_key  # lazy: avoids cycle

    key = outcome_cache_key(dfg, datapath)
    ctx = _context_pool.get(key)
    if ctx is None:
        ctx = SchedContext(dfg, datapath)
        _context_pool[key] = ctx
        while len(_context_pool) > _CONTEXT_POOL_MAX:
            _context_pool.popitem(last=False)
    else:
        _context_pool.move_to_end(key)
    return ctx

#: Memo key: the cluster of every regular operation, in DFG order.
PlacementKey = Tuple[int, ...]


@dataclass(frozen=True)
class EvalStats:
    """Counters of one evaluation engine's lifetime.

    Attributes:
        hits: memo lookups answered without scheduling.
        misses: memo lookups that fell through.
        evaluations: schedules actually computed (== misses while every
            evaluation goes through the cache).
    """

    hits: int = 0
    misses: int = 0
    evaluations: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evaluations": self.evaluations,
        }


class EvalCache:
    """Placement-keyed memo of :class:`FastOutcome` objects.

    Outcomes are quality-agnostic — Q_U, Q_M, annealing's energy, and
    plain ``(L, M)`` ranking all read the same memo entry — so one cache
    instance can (and should) be shared across passes and multi-start
    descents of the same ``(DFG, datapath)`` job.  Never share a cache
    across different DFGs or datapaths: the key is the placement tuple
    alone.

    Args:
        max_entries: optional bound; the oldest entry is evicted first
            (insertion order).  Unbounded by default — outcomes are a
            few hundred bytes and search spaces here are small.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self._data: Dict[PlacementKey, FastOutcome] = {}
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: PlacementKey) -> Optional[FastOutcome]:
        out = self._data.get(key)
        if out is None:
            self.misses += 1
        else:
            self.hits += 1
        return out

    def peek(self, key: PlacementKey) -> Optional[FastOutcome]:
        """Non-counting lookup (no hit/miss bookkeeping).

        The batched vector path probes the memo while *planning* a
        batch — deciding which placements still need scheduling —
        before any evaluation is accounted.  Counting those probes
        would double-book against the per-candidate accounting the
        session does afterwards, so this lookup leaves the counters to
        the caller.
        """
        return self._data.get(key)

    def put(self, key: PlacementKey, outcome: FastOutcome) -> None:
        if (
            self.max_entries is not None
            and key not in self._data
            and len(self._data) >= self.max_entries
        ):
            self._data.pop(next(iter(self._data)))
        self._data[key] = outcome

    def clear(self) -> None:
        self._data.clear()

    def discard(self, key: PlacementKey) -> None:
        """Drop one memo entry (counters untouched).

        Used by validation's self-healing path: a memo entry that
        failed its invariant check is evicted so later evaluations
        recompute it instead of replaying the poisoned outcome.
        """
        self._data.pop(key, None)

    def items(self):
        """Iterate ``(placement, FastOutcome)`` memo entries.

        Counters are untouched; used by the on-disk
        :class:`~repro.search.diskcache.OutcomeStore` to externalize
        the memo across worker processes.
        """
        return self._data.items()

    @property
    def stats(self) -> EvalStats:
        return EvalStats(
            hits=self.hits, misses=self.misses, evaluations=self.misses
        )


class Evaluator:
    """The fast-path evaluation engine: precompiled context + memo.

    One instance serves one ``(DFG, datapath)`` pair.  ``evaluate`` maps
    a binding to a :class:`FastOutcome` (consulting the memo first);
    ``schedule`` materializes a full, bit-identical
    :class:`~repro.schedule.schedule.Schedule` for committed results.

    Successive ``evaluate`` calls patch the previous call's transfer
    pairs incrementally (see :meth:`SchedContext.transfer_dests`), which
    matches B-ITER's access pattern of evaluating many perturbations of
    one base binding.
    """

    def __init__(
        self,
        dfg: Dfg,
        datapath: Datapath,
        cache: Optional[EvalCache] = None,
    ) -> None:
        if warm_contexts_enabled():
            self.ctx = shared_context(dfg, datapath)
        else:
            self.ctx = SchedContext(dfg, datapath)
        self.cache = cache if cache is not None else EvalCache()
        self.evaluations = 0
        self._prev: Optional[Tuple[PlacementKey, list]] = None

    def placement_of(self, binding: Mapping[str, int]) -> PlacementKey:
        """The memo key of ``binding``."""
        return tuple(binding[n] for n in self.ctx.names)

    def evaluate(self, binding: Mapping[str, int]) -> FastOutcome:
        """Evaluate ``binding``, via the memo when possible."""
        placement = self.placement_of(binding)
        out = self.cache.get(placement)
        if out is not None:
            return out
        dests = self.ctx.transfer_dests(placement, self._prev)
        out = self.ctx.evaluate(placement, dests)
        self._prev = (placement, dests)
        self.evaluations += 1
        self.cache.put(placement, out)
        return out

    def schedule(self, binding: Mapping[str, int]) -> Schedule:
        """Full :class:`Schedule` of ``binding`` (memo-backed)."""
        return self.evaluate(binding).to_schedule()

    @property
    def stats(self) -> EvalStats:
        return EvalStats(
            hits=self.cache.hits,
            misses=self.cache.misses,
            evaluations=self.evaluations,
        )
