"""Binding-order ranking functions (paper Section 3.1.1, Figure 2).

The initial binding visits operations in a fixed order determined by a
three-component lexicographic ranking:

1. ``alap(v)`` ascending — operations at earlier levels first, which makes
   the traversal level-oriented (enabling load estimation without
   scheduling) while still starting with the critical path;
2. mobility ascending — within a level, the least flexible first;
3. consumer count descending — operations whose result feeds more
   consumers are more constraining, so they bind earlier.

The reversed order (Section 3.1.4) is the mirror image — useful for DFGs
with few inputs and many outputs: it ranks by the mirrored ALAP level
(i.e. by ``asap(v) + lat(v)`` descending), then mobility, then *producer*
count descending.

Two deliberately weaker orderings (pure mobility, seeded random) are
provided for the ablation benchmarks.
"""

from __future__ import annotations

import random
from typing import Callable, List

from ..dfg.graph import Dfg
from ..dfg.ops import OpTypeRegistry
from ..dfg.timing import TimingInfo

__all__ = [
    "OrderingFn",
    "paper_order",
    "reverse_order",
    "mobility_order",
    "random_order",
    "make_ordering",
]

#: An ordering function maps (dfg, timing, registry) to a binding sequence.
OrderingFn = Callable[[Dfg, TimingInfo, OpTypeRegistry], List[str]]


def paper_order(dfg: Dfg, timing: TimingInfo, registry: OpTypeRegistry) -> List[str]:
    """The paper's forward order: (alap, mobility, -consumers)."""
    names = [op.name for op in dfg.regular_operations()]
    index = {n: i for i, n in enumerate(dfg)}
    return sorted(
        names,
        key=lambda n: (
            timing.alap[n],
            timing.mobility(n),
            -dfg.out_degree(n),
            index[n],
        ),
    )


def reverse_order(dfg: Dfg, timing: TimingInfo, registry: OpTypeRegistry) -> List[str]:
    """Mirror-image order, binding from the output nodes (Section 3.1.4)."""
    names = [op.name for op in dfg.regular_operations()]
    index = {n: i for i, n in enumerate(dfg)}

    def finish_level(n: str) -> int:
        return timing.asap[n] + registry.latency(dfg.operation(n).optype)

    return sorted(
        names,
        key=lambda n: (
            -finish_level(n),
            timing.mobility(n),
            -dfg.in_degree(n),
            index[n],
        ),
    )


def mobility_order(dfg: Dfg, timing: TimingInfo, registry: OpTypeRegistry) -> List[str]:
    """Ablation baseline: rank purely by mobility (critical path first).

    This is the "simplest" ordering the paper discusses and rejects: it
    traverses the DFG vertically along critical paths, which defeats
    level-based load estimation.
    """
    names = [op.name for op in dfg.regular_operations()]
    index = {n: i for i, n in enumerate(dfg)}
    return sorted(
        names, key=lambda n: (timing.mobility(n), timing.asap[n], index[n])
    )


def random_order(seed: int = 0) -> OrderingFn:
    """Ablation baseline: a seeded random topological-ish order."""

    def order(dfg: Dfg, timing: TimingInfo, registry: OpTypeRegistry) -> List[str]:
        names = [op.name for op in dfg.regular_operations()]
        rng = random.Random(seed)
        rng.shuffle(names)
        return names

    return order


def make_ordering(name: str, seed: int = 0) -> OrderingFn:
    """Look up an ordering by name: paper|reverse|mobility|random."""
    if name == "paper":
        return paper_order
    if name == "reverse":
        return reverse_order
    if name == "mobility":
        return mobility_order
    if name == "random":
        return random_order(seed)
    raise ValueError(f"unknown ordering {name!r}")
