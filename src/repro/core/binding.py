"""Binding of DFG operations to datapath clusters.

A binding is the function ``bn(v)`` of the paper: for every regular
operation of the original DFG it selects a cluster from the operation's
target set ``TS(v)``.  Transfer operations are not part of a binding —
they are *derived* from it (see :mod:`repro.dfg.transform`); each transfer
conceptually executes on the bus and delivers its value into a destination
cluster's register file.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Tuple

from ..datapath.model import Datapath
from ..dfg.graph import Dfg

__all__ = ["Binding", "BindingError", "validate_binding"]


class BindingError(ValueError):
    """Raised when a binding violates the datapath's target sets."""


class Binding(Mapping[str, int]):
    """Immutable mapping from operation name to cluster index.

    Supports mapping semantics plus convenience constructors for
    perturbation (:meth:`rebind`) used by the iterative-improvement phase.
    """

    __slots__ = ("_bn",)

    def __init__(self, assignments: Mapping[str, int]) -> None:
        self._bn: Dict[str, int] = dict(assignments)

    def __getitem__(self, name: str) -> int:
        return self._bn[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._bn)

    def __len__(self) -> int:
        return len(self._bn)

    def __repr__(self) -> str:
        return f"Binding({self._bn!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Binding):
            return self._bn == other._bn
        if isinstance(other, Mapping):
            return self._bn == dict(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._bn.items()))

    def rebind(self, *moves: Tuple[str, int]) -> "Binding":
        """Return a new binding with the given ``(name, cluster)`` changes."""
        bn = dict(self._bn)
        for name, cluster in moves:
            if name not in bn:
                raise KeyError(f"cannot rebind unknown operation {name!r}")
            bn[name] = cluster
        return Binding(bn)

    def cluster_members(self, cluster: int) -> Tuple[str, ...]:
        """Names of all operations bound to ``cluster``."""
        return tuple(n for n, c in self._bn.items() if c == cluster)

    def used_clusters(self) -> Tuple[int, ...]:
        """Sorted indices of clusters with at least one operation."""
        return tuple(sorted(set(self._bn.values())))

    def cut_edges(self, dfg: Dfg) -> Tuple[Tuple[str, str], ...]:
        """Edges of ``dfg`` whose endpoints sit in different clusters."""
        return tuple(
            (u, v)
            for u, v in dfg.edges()
            if u in self._bn and v in self._bn and self._bn[u] != self._bn[v]
        )

    def num_required_transfers(self, dfg: Dfg) -> int:
        """Number of transfers the bound DFG will contain.

        One transfer moves a value from its producer's cluster to one
        destination cluster, shared by all consumers in that cluster — so
        the count is over distinct ``(producer, destination)`` pairs, not
        over cut edges.
        """
        pairs = {
            (u, self._bn[v])
            for u, v in dfg.edges()
            if u in self._bn and v in self._bn and self._bn[u] != self._bn[v]
        }
        return len(pairs)


def validate_binding(binding: Binding, dfg: Dfg, datapath: Datapath) -> None:
    """Check that ``binding`` is complete and respects target sets.

    Raises:
        BindingError: if a regular operation is unbound, a non-existent
            operation is bound, or an operation sits in a cluster lacking
            an FU of the required type.
    """
    regular = {op.name for op in dfg.regular_operations()}
    bound = set(binding)
    missing = regular - bound
    if missing:
        raise BindingError(f"unbound operations: {sorted(missing)[:5]}")
    extra = bound - regular
    if extra:
        raise BindingError(
            f"binding mentions operations not in the DFG (or transfers): "
            f"{sorted(extra)[:5]}"
        )
    for name, cluster in binding.items():
        if not 0 <= cluster < datapath.num_clusters:
            raise BindingError(
                f"{name!r} bound to non-existent cluster {cluster}"
            )
        optype = dfg.operation(name).optype
        if not datapath.supports_op(cluster, optype):
            raise BindingError(
                f"{name!r} ({optype}) bound to cluster {cluster}, which has "
                f"no {datapath.futype_of(optype)} units"
            )
