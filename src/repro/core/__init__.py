"""The paper's contribution: B-INIT, B-ITER, and the driver."""

from .binding import Binding, BindingError, validate_binding
from .cost import CostBreakdown, CostParams, buscost, fucost, icost, trcost
from .driver import BindResult, bind, bind_initial, default_lpr_values
from .evalcache import EvalCache, EvalStats, Evaluator
from .initial import InitialBindingResult, initial_binding
from .iterative import (
    IterativeResult,
    boundary_operations,
    candidate_moves,
    iterative_improvement,
)
from .loadprofile import Profile, ProfileSet, Window, operation_window, transfer_window
from .pressure_aware import pressure_aware_improvement, pressure_quality
from .tabu import tabu_improvement
from .ordering import (
    make_ordering,
    mobility_order,
    paper_order,
    random_order,
    reverse_order,
)
from .quality import QualityVector, make_quality, quality_qm, quality_qu

__all__ = [
    "Binding",
    "BindingError",
    "validate_binding",
    "CostParams",
    "CostBreakdown",
    "icost",
    "trcost",
    "fucost",
    "buscost",
    "initial_binding",
    "InitialBindingResult",
    "iterative_improvement",
    "IterativeResult",
    "boundary_operations",
    "candidate_moves",
    "bind",
    "bind_initial",
    "BindResult",
    "default_lpr_values",
    "Window",
    "Profile",
    "ProfileSet",
    "operation_window",
    "transfer_window",
    "paper_order",
    "reverse_order",
    "mobility_order",
    "random_order",
    "make_ordering",
    "QualityVector",
    "quality_qu",
    "quality_qm",
    "make_quality",
    "pressure_aware_improvement",
    "pressure_quality",
    "tabu_improvement",
    "Evaluator",
    "EvalCache",
    "EvalStats",
]
