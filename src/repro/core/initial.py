"""B-INIT: the greedy initial binding phase (paper Section 3.1).

The algorithm visits operations in the three-component lexicographic
order of :mod:`repro.core.ordering` and, for each operation, evaluates the
incremental cost :func:`repro.core.cost.icost` of every cluster in the
operation's target set, committing the cheapest.  Committing updates the
cluster load profile and, when transfers are implied, the bus profile and
the shared-transfer set.

Despite its low complexity — one cost sweep per operation — this phase
already delivers solutions competitive with PCC (paper Table 1); the
driver (:mod:`repro.core.driver`) runs it repeatedly over the ``L_PR``
stretch and binding-direction knobs and keeps the best result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..datapath.model import Datapath
from ..dfg.graph import Dfg
from .binding import Binding, validate_binding
from .cost import CostBreakdown, CostParams, icost
from .loadprofile import ProfileSet, transfer_leg_windows
from .ordering import OrderingFn, paper_order, reverse_order

__all__ = ["InitialBindingResult", "initial_binding"]


@dataclass(frozen=True)
class InitialBindingResult:
    """Outcome of one B-INIT run.

    Attributes:
        binding: the complete operation-to-cluster assignment.
        lpr: the load-profile latency the run used.
        reverse: whether the run bound from the outputs backwards.
        order: the operation visit order that was used.
        cost_log: per-operation chosen-cluster cost breakdowns, in visit
            order (useful for debugging and for the paper-figure tests).
    """

    binding: Binding
    lpr: int
    reverse: bool
    order: Tuple[str, ...]
    cost_log: Tuple[Tuple[str, int, CostBreakdown], ...] = ()


def initial_binding(
    dfg: Dfg,
    datapath: Datapath,
    lpr: Optional[int] = None,
    reverse: bool = False,
    params: CostParams = CostParams(),
    ordering: Optional[OrderingFn] = None,
    keep_log: bool = False,
    profiles: Optional[ProfileSet] = None,
) -> InitialBindingResult:
    """Run the greedy initial binding.

    Args:
        dfg: the original DFG (no transfers).
        datapath: the clustered machine.
        lpr: load-profile latency ``L_PR``; defaults to the critical-path
            length ``L_CP`` (Section 3.1.3 motivates stretching it).
        reverse: bind from the output nodes backwards (Section 3.1.4).
        params: cost-function weights (alpha/beta/gamma).
        ordering: override the visit order; defaults to the paper's order
            for the chosen direction.  Custom orderings are used by the
            ablation benchmarks.
        keep_log: record per-operation cost breakdowns in the result.
        profiles: an existing :class:`ProfileSet` for this
            ``(dfg, datapath, lpr)`` to reuse (it is reset first).  The
            driver's sweep passes one per ``L_PR`` so timing and the
            centralized profiles are built once, not once per direction.

    Returns:
        An :class:`InitialBindingResult` whose binding is complete and
        valid for ``datapath``.

    Raises:
        ValueError: if some operation has an empty target set, or if
            ``profiles`` was built for a different ``lpr``.
    """
    datapath.check_bindable(dfg)
    if profiles is None:
        profiles = ProfileSet(dfg, datapath, lpr=lpr)
    else:
        if lpr is not None and profiles.lpr != lpr:
            raise ValueError(
                f"profiles built for L_PR={profiles.lpr}, requested {lpr}"
            )
        profiles.reset()
    if ordering is None:
        ordering = reverse_order if reverse else paper_order
    order = ordering(dfg, profiles.timing, datapath.registry)
    if set(order) != {op.name for op in dfg.regular_operations()}:
        raise ValueError("ordering must enumerate every regular operation once")

    bn: Dict[str, int] = {}
    committed_transfers: Set[Tuple[str, int]] = set()
    log: List[Tuple[str, int, CostBreakdown]] = []
    reg = datapath.registry

    for v in order:
        optype = dfg.operation(v).optype
        candidates = datapath.target_set(optype)
        best_cluster: Optional[int] = None
        best_key: Optional[Tuple[float, int, float, int]] = None
        best_breakdown: Optional[CostBreakdown] = None
        for c in candidates:
            breakdown = icost(
                dfg,
                datapath,
                profiles,
                v,
                c,
                bn,
                committed_transfers,
                reverse=reverse,
                params=params,
            )
            # Tie-breaks beyond the paper's cost: fewer predicted
            # transfers, lighter current cluster load, lower index —
            # all chosen to keep results deterministic.
            futype = reg.futype(optype)
            load_now = profiles.cluster_level_sum(c, futype)
            load_now /= max(1, datapath.fu_count(c, futype))
            key = (breakdown.total, breakdown.trcost, load_now, c)
            if best_key is None or key < best_key:
                best_key = key
                best_cluster = c
                best_breakdown = breakdown
        assert best_cluster is not None and best_breakdown is not None
        bn[v] = best_cluster
        profiles.commit_operation(v, best_cluster)
        _commit_transfers(
            dfg, datapath, profiles, committed_transfers, bn, v,
            best_breakdown, reverse,
        )
        if keep_log:
            log.append((v, best_cluster, best_breakdown))

    binding = Binding(bn)
    validate_binding(binding, dfg, datapath)
    return InitialBindingResult(
        binding=binding,
        lpr=profiles.lpr,
        reverse=reverse,
        order=tuple(order),
        cost_log=tuple(log),
    )


def _commit_transfers(
    dfg: Dfg,
    datapath: Datapath,
    profiles: ProfileSet,
    committed: Set[Tuple[str, int]],
    bn: Dict[str, int],
    v: str,
    breakdown: CostBreakdown,
    reverse: bool,
) -> None:
    """Record the transfers implied by the just-committed binding of ``v``.

    Forward mode: each new transfer carries a predecessor's value into
    ``v``'s cluster, so ``v`` itself anchors the window.  Reverse mode:
    each new transfer carries ``v``'s value out to a destination cluster;
    the earliest-deadline bound consumer in that cluster anchors it.
    """
    reg = datapath.registry
    interconnect = datapath.interconnect
    for producer, dest in breakdown.new_transfers:
        committed.add((producer, dest))
        if not reverse:
            anchor = v
        else:
            in_dest = [
                u
                for u in dfg.successors(producer)
                if u in bn and bn[u] == dest
            ]
            anchor = min(
                in_dest, key=lambda u: profiles.timing.alap[u], default=v
            )
        # One window per MOVE leg of the route, committed to the link
        # the leg rides — on the bus that is the single one-hop window
        # on link 0, the paper's model.
        route = interconnect.route(bn[producer], dest)
        legs = transfer_leg_windows(
            profiles.timing,
            producer=producer,
            consumer=anchor,
            producer_latency=reg.latency(dfg.operation(producer).optype),
            move_latency=reg.move_latency,
            move_dii=reg.move_dii,
            hops=len(route),
            reverse=reverse,
        )
        for link, window in zip(route, legs):
            profiles.commit_transfer(window, link=link)
