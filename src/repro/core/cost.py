"""The incremental binding cost function (paper Section 3.1.2).

The cost of binding operation ``v`` to cluster ``c`` combines three delay
penalties, each weighted by the timing quantity it trades against::

    icost(v, c) = fucost(v, c) * alpha * dii(v)
                + buscost(v, c) * beta * dii(move)
                + trcost(v, c) * gamma * lat(move)

with ``alpha = beta = 1.0`` and ``gamma = 1.1`` — the transfer penalty is
given *slightly* larger priority than the serialization penalties, which
the authors found to work best.

* ``trcost`` — predicted data transfers: a direct-data-dependency part
  (operands already bound elsewhere) plus a common-consumer look-ahead
  part (an unbound consumer that will need a transfer no matter where it
  goes, Figure 3).
* ``fucost`` — FU serialization: levels where the candidate cluster's
  normalized load profile would exceed both 1 and the equivalent
  centralized datapath's profile.
* ``buscost`` — bus serialization: levels where the bus profile,
  including the transfers this binding would add, exceeds capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, List, Mapping, Set, Tuple

from ..datapath.model import Datapath
from ..dfg.graph import Dfg
from .loadprofile import ProfileSet, Window, transfer_leg_windows

__all__ = ["CostParams", "CostBreakdown", "icost", "trcost", "fucost", "buscost"]


@dataclass(frozen=True)
class CostParams:
    """Weights and options of the cost function.

    Attributes:
        alpha: weight of the FU-serialization penalty (paper: 1.0).
        beta: weight of the bus-serialization penalty (paper: 1.0).
        gamma: weight of the data-transfer penalty (paper: 1.1 — slightly
            above the serialization weights).
        share_aware: when True, a predecessor whose value has already been
            transferred to the candidate cluster (for a previously bound
            consumer) costs nothing — the transfer is shared.
    """

    alpha: float = 1.0
    beta: float = 1.0
    gamma: float = 1.1
    share_aware: bool = True


@dataclass(frozen=True)
class CostBreakdown:
    """``icost`` and its three components, for inspection and tests."""

    total: float
    fucost: int
    buscost: int
    trcost: int
    new_transfers: Tuple[Tuple[str, int], ...] = ()


def trcost(
    dfg: Dfg,
    v: str,
    c: int,
    bn: Mapping[str, int],
    committed_transfers: AbstractSet[Tuple[str, int]] = frozenset(),
    reverse: bool = False,
    share_aware: bool = True,
    interconnect=None,
) -> Tuple[int, List[str]]:
    """Data-transfer penalty ``trcost(v, c)`` (Figure 3).

    Forward mode (producers of ``v`` already bound):

    * direct-data-dependency: one MOVE per route hop per predecessor
      bound to a different cluster — +1 on the bus, where every route
      is one hop (unless ``share_aware`` and that value already has a
      committed transfer into ``c``);
    * common-consumer: +1 per successor ``u`` of ``v`` that has some
      *other* bound predecessor ``z`` with ``bn(z) != c`` — such a
      consumer forces a transfer regardless of where it binds (its
      route, and so its hop count, is unknown until it binds).

    Reverse mode is the mirror image (consumers of ``v`` already bound):
    the direct part counts distinct consumer clusters differing from
    ``c`` (one shared transfer serves all consumers in one cluster), the
    look-ahead part counts predecessors that already have another bound
    consumer elsewhere.

    Args:
        interconnect: optional routed topology; hop counts come from its
            routing table.  ``None`` (or a bus) counts 1 per transfer —
            the paper's model, bit-identical to the historical penalty.

    Returns:
        ``(penalty, producers)`` where ``producers`` lists, in forward
        mode, the predecessors whose values need *new* transfers into
        ``c`` (used to update the link profiles on commit); in reverse
        mode, it lists ``v`` once per distinct destination cluster.
    """
    routed = interconnect is not None and not interconnect.is_bus
    penalty = 0
    producers: List[str] = []
    if not reverse:
        for u in dfg.predecessors(v):
            if u in bn and bn[u] != c:
                if share_aware and (u, c) in committed_transfers:
                    continue
                penalty += (
                    interconnect.route_len(bn[u], c) if routed else 1
                )
                producers.append(u)
        for u in dfg.successors(v):
            for z in dfg.predecessors(u):
                if z != v and z in bn and bn[z] != c:
                    penalty += 1
                    break
    else:
        dest_clusters = sorted(
            {bn[u] for u in dfg.successors(v) if u in bn and bn[u] != c}
        )
        for dest in dest_clusters:
            if share_aware and (v, dest) in committed_transfers:
                continue
            penalty += interconnect.route_len(c, dest) if routed else 1
            producers.append(v)
        for u in dfg.predecessors(v):
            for z in dfg.successors(u):
                if z != v and z in bn and bn[z] != c:
                    penalty += 1
                    break
    return penalty, producers


def fucost(profiles: ProfileSet, v: str, c: int) -> int:
    """FU serialization penalty: overload levels after tentatively adding ``v``.

    The penalty counts the profile levels ``tau`` at which the candidate
    cluster's normalized load would exceed ``max(load_DP(t, tau), 1)`` —
    i.e. the cluster is overloaded both in absolute terms and relative to
    the equivalent centralized machine.

    Outside ``v``'s load window the tentative load equals the committed
    load, so only the window's levels can differ from the ProfileSet's
    standing overload count; the loop below corrects that count over the
    window instead of re-scanning every level per candidate.
    """
    dp = profiles.datapath
    reg = dp.registry
    op = profiles.dfg.operation(v)
    futype = reg.futype(op.optype)
    n_cluster = dp.fu_count(c, futype)
    window = profiles.op_window(v)
    levels = profiles.cluster_profile(c, futype).levels
    thresholds = profiles.dp_thresholds(futype)
    over, penalty = profiles.cluster_overload(c, futype)

    height = window.height
    lo = max(0, window.start)
    hi = min(profiles.length - 1, window.end)
    for tau in range(lo, hi + 1):
        if (levels[tau] + height) / n_cluster > thresholds[tau] + 1e-9:
            if not over[tau]:
                penalty += 1
        elif over[tau]:
            penalty -= 1
    return penalty


def buscost(
    profiles: ProfileSet,
    v: str,
    new_transfer_windows: List,
) -> int:
    """Interconnect serialization penalty: overloaded levels, all links.

    ``new_transfer_windows`` are the windows of the transfer legs this
    candidate binding would add — plain :class:`Window` entries land on
    link 0 (the bus), ``(link, Window)`` pairs on the given link.  The
    penalty counts levels where some link's normalized load exceeds 1,
    summed over every link.  As in :func:`fucost`, only levels inside
    some new window can change state, so each link's standing overload
    count is corrected over those levels only.  On a bus machine there
    is exactly one link, reducing to the paper's bus penalty.
    """
    penalty = 0
    for link in range(profiles.num_links):
        penalty += profiles.link_overload(link)[1]
    if not new_transfer_windows:
        return penalty
    tagged: List[Tuple[int, Window]] = [
        w if isinstance(w, tuple) else (0, w) for w in new_transfer_windows
    ]
    length = profiles.length
    for link in sorted({l for l, _ in tagged}):
        windows = [w for l, w in tagged if l == link]
        over, _ = profiles.link_overload(link)
        cap = profiles.link_capacity(link)
        levels = profiles.link_profile(link).levels
        taus: Set[int] = set()
        for w in windows:
            taus.update(range(max(0, w.start), min(length - 1, w.end) + 1))
        for tau in sorted(taus):
            extra = 0.0
            for w in windows:
                if w.start <= tau <= w.end:
                    extra += w.height
            if (levels[tau] + extra) / cap > 1.0 + 1e-9:
                if not over[tau]:
                    penalty += 1
            elif over[tau]:
                penalty -= 1
    return penalty


def icost(
    dfg: Dfg,
    datapath: Datapath,
    profiles: ProfileSet,
    v: str,
    c: int,
    bn: Mapping[str, int],
    committed_transfers: AbstractSet[Tuple[str, int]] = frozenset(),
    reverse: bool = False,
    params: CostParams = CostParams(),
) -> CostBreakdown:
    """Full incremental cost of binding ``v`` to ``c`` (Equation 1).

    Returns a :class:`CostBreakdown`; ``new_transfers`` records the
    ``(producer, destination cluster)`` pairs this binding introduces, so
    the caller can commit their bus-profile windows and share later
    transfers.
    """
    reg = datapath.registry
    interconnect = datapath.interconnect
    tr_penalty, producers = trcost(
        dfg,
        v,
        c,
        bn,
        committed_transfers,
        reverse=reverse,
        share_aware=params.share_aware,
        interconnect=interconnect,
    )

    # One window per MOVE leg, tagged with the link it rides; on the
    # bus every route is the single hop over link 0, reducing to the
    # paper's one-window-per-transfer model.
    windows: List[Tuple[int, Window]] = []
    new_transfers: List[Tuple[str, int]] = []
    if not reverse:
        for u in producers:
            route = interconnect.route(bn[u], c)
            legs = transfer_leg_windows(
                profiles.timing,
                producer=u,
                consumer=v,
                producer_latency=reg.latency(dfg.operation(u).optype),
                move_latency=reg.move_latency,
                move_dii=reg.move_dii,
                hops=len(route),
                reverse=False,
            )
            windows.extend(zip(route, legs))
            new_transfers.append((u, c))
    else:
        # In reverse mode the new transfers carry v's own value out to the
        # clusters of already-bound consumers.
        dest_clusters = sorted(
            {bn[u] for u in dfg.successors(v) if u in bn and bn[u] != c}
        )
        for dest in dest_clusters:
            if params.share_aware and (v, dest) in committed_transfers:
                continue
            consumers = [
                u for u in dfg.successors(v) if u in bn and bn[u] == dest
            ]
            route = interconnect.route(c, dest)
            legs = transfer_leg_windows(
                profiles.timing,
                producer=v,
                consumer=consumers[0],
                producer_latency=reg.latency(dfg.operation(v).optype),
                move_latency=reg.move_latency,
                move_dii=reg.move_dii,
                hops=len(route),
                reverse=True,
            )
            windows.extend(zip(route, legs))
            new_transfers.append((v, dest))

    fu_penalty = fucost(profiles, v, c)
    bus_penalty = buscost(profiles, v, windows)

    total = (
        fu_penalty * params.alpha * reg.dii(dfg.operation(v).optype)
        + bus_penalty * params.beta * reg.move_dii
        + tr_penalty * params.gamma * reg.move_latency
    )
    return CostBreakdown(
        total=total,
        fucost=fu_penalty,
        buscost=bus_penalty,
        trcost=tr_penalty,
        new_transfers=tuple(new_transfers),
    )
