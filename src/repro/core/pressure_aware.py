"""Register-pressure-aware binding refinement (extension).

The paper defers register allocation entirely (Section 2, unbounded
register files).  This extension closes the loop for machines with
*small* local register files: after B-ITER converges, a further
boundary-perturbation pass trades bindings that exceed a per-cluster
register budget for ones that do not — without giving back latency —
by descending on the lexicographic quality

``Q_P = (L, total pressure excess over the budget, N_MV)``.

This reuses the exact B-ITER machinery (same perturbation space, same
exact evaluation), only the quality vector changes — a demonstration of
the quality-function plug-in point the paper's Section 3.2 establishes.
"""

from __future__ import annotations

from typing import List

from ..analysis.pressure import register_pressure
from ..datapath.model import Datapath
from ..dfg.graph import Dfg
from ..schedule.schedule import Schedule
from .binding import Binding
from .iterative import IterativeResult, _descend
from .quality import QualityVector

__all__ = ["pressure_quality", "pressure_aware_improvement"]


def pressure_quality(budget: int):
    """Build the ``Q_P`` quality function for a per-cluster register
    budget.

    Args:
        budget: registers available in each cluster's local file.

    Returns:
        A callable mapping a schedule to ``(L, excess, N_MV)`` where
        ``excess`` sums, over clusters, the pressure above ``budget``.
    """
    if budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")

    def quality(schedule: Schedule) -> QualityVector:
        report = register_pressure(schedule)
        excess = sum(
            max(0, peak - budget) for peak in report.per_cluster.values()
        )
        return (schedule.latency, excess, schedule.num_transfers)

    return quality


def pressure_aware_improvement(
    dfg: Dfg,
    datapath: Datapath,
    binding: Binding,
    budget: int,
    use_pairs: bool = True,
    max_iterations: int = 1000,
) -> IterativeResult:
    """Refine ``binding`` to respect a per-cluster register budget.

    Runs the boundary-perturbation descent under ``Q_P``; latency is the
    leading component, so the refinement never trades latency for
    pressure — it only resolves pressure (then transfers) at equal
    latency.  Check the returned schedule with
    :func:`repro.analysis.pressure.register_pressure` to see whether the
    budget was fully met (some (graph, budget) pairs are infeasible at
    the binding level).
    """
    history: List[QualityVector] = []
    evals = [0]
    quality = pressure_quality(budget)
    improved, _, schedule, committed = _descend(
        dfg,
        datapath,
        binding,
        quality,
        use_pairs,
        max_iterations,
        history,
        evals,
    )
    return IterativeResult(
        binding=improved,
        schedule=schedule,
        iterations=committed,
        evaluations=evals[0],
        history=tuple(history),
    )
