"""Register-pressure-aware binding refinement (extension).

The paper defers register allocation entirely (Section 2, unbounded
register files).  This extension closes the loop for machines with
*small* local register files: after B-ITER converges, a further
boundary-perturbation pass trades bindings that exceed a per-cluster
register budget for ones that do not — without giving back latency —
by descending on the lexicographic quality

``Q_P = (L, total pressure excess over the budget, N_MV)``.

This reuses the exact B-ITER machinery (same perturbation space, same
exact evaluation), only the quality vector changes — a demonstration of
the quality-function plug-in point the paper's Section 3.2 establishes.
The vector itself lives in :func:`repro.search.quality.pressure_vector`
(spec name ``"qp:<budget>"``); it dispatches on the outcome type, so
the descent rides the memoized fast path by default — a
:class:`~repro.schedule.fastpath.FastOutcome` computes per-cluster
liveness directly from its integer arrays
(:meth:`~repro.schedule.fastpath.FastOutcome.pressure_per_cluster`),
bit-identical to the reference
:func:`~repro.analysis.pressure.register_pressure` analysis used on
the naive path (``fast=False``).
"""

from __future__ import annotations

from typing import List, Optional

from ..datapath.model import Datapath
from ..dfg.graph import Dfg
from ..search.descent import steepest_descent
from ..search.neighborhood import Neighborhood
from ..search.quality import pressure_vector
from ..search.session import SearchSession
from .binding import Binding
from .evalcache import Evaluator
from .iterative import IterativeResult
from .quality import QualityVector

__all__ = ["pressure_quality", "pressure_aware_improvement"]


def pressure_quality(budget: int):
    """Build the ``Q_P`` quality function for a per-cluster register
    budget.

    Args:
        budget: registers available in each cluster's local file.

    Returns:
        A callable mapping an evaluation outcome (a ``Schedule`` or a
        ``FastOutcome``) to ``(L, excess, N_MV)`` where ``excess``
        sums, over clusters, the pressure above ``budget``.
    """
    return pressure_vector(budget)


def pressure_aware_improvement(
    dfg: Dfg,
    datapath: Datapath,
    binding: Binding,
    budget: int,
    use_pairs: bool = True,
    max_iterations: int = 1000,
    fast: Optional[bool] = None,
    evaluator: Optional[Evaluator] = None,
    session: Optional[SearchSession] = None,
) -> IterativeResult:
    """Refine ``binding`` to respect a per-cluster register budget.

    Runs the boundary-perturbation descent under ``Q_P``; latency is the
    leading component, so the refinement never trades latency for
    pressure — it only resolves pressure (then transfers) at equal
    latency.  Check the returned schedule with
    :func:`repro.analysis.pressure.register_pressure` to see whether the
    budget was fully met (some (graph, budget) pairs are infeasible at
    the binding level).

    Args:
        fast: use the memo-backed fast evaluation engine (default: on,
            unless ``REPRO_FASTPATH=0``).  Bit-equivalent either way.
        evaluator: a shared :class:`~repro.core.evalcache.Evaluator` —
            pass the one B-ITER used so the pressure pass starts with
            its memo already populated.  Implies ``fast``.
        session: a shared :class:`~repro.search.session.SearchSession`;
            supersedes ``fast``/``evaluator``.
    """
    quality = pressure_vector(budget)
    if session is None:
        session = SearchSession(dfg, datapath, fast=fast, evaluator=evaluator)
    neighborhood = Neighborhood(dfg, datapath, use_pairs=use_pairs)

    history: List[QualityVector] = []
    snap = session.stats.snapshot()
    with session.phase("descend:qp"):
        improved, _, outcome, committed = steepest_descent(
            session, neighborhood, binding, quality, max_iterations, history
        )
    evaluations, cache_hits, cache_misses = session.stats.since(snap)
    if session.fast:
        schedule = session.schedule(improved)
    else:
        schedule = outcome  # the naive path evaluates to a Schedule
    return IterativeResult(
        binding=improved,
        schedule=schedule,
        iterations=committed,
        evaluations=evaluations,
        history=tuple(history),
        cache_hits=cache_hits,
        cache_misses=cache_misses,
    )
